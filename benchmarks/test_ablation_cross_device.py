"""Ablation A4 (extension): cross-device transfer.

The paper's limitations section notes that speaker-to-IMU geometry and
sensor models differ per device, so accuracy varies — every published
cell trains and tests on the *same* phone. This extension quantifies the
gap a real attacker faces when their training phone differs from the
victim's: train the classifier on OnePlus 7T recordings, test it on
traces from each other device.

Expected shape: matched-device accuracy is the ceiling; transfer loses
accuracy (more for more dissimilar hardware) but typically stays above
chance — the attack degrades gracefully rather than collapsing.
"""


from repro.eval.experiment import make_classifier
from repro.ml.metrics import accuracy_score
from repro.ml.preprocessing import clean_features

from benchmarks._common import features_for, print_header

TRAIN_DEVICE = "oneplus7t"
TEST_DEVICES = ("oneplus7t", "galaxys21", "pixel5")


def test_ablation_cross_device_transfer(benchmark):
    accuracies = {}

    def run():
        train = features_for("tess", TRAIN_DEVICE, seed=0)
        X_train, y_train, _ = clean_features(train.X, train.y)
        model = make_classifier("random_forest", seed=0, fast=True)
        model.fit(X_train, y_train)
        for device in TEST_DEVICES:
            test = features_for("tess", device, seed=1)
            X_test, y_test, _ = clean_features(test.X, test.y)
            accuracies[device] = accuracy_score(y_test, model.predict(X_test))
        return accuracies

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(f"Ablation A4 - cross-device transfer (train on {TRAIN_DEVICE})")
    for device, accuracy in accuracies.items():
        marker = "  <- matched" if device == TRAIN_DEVICE else ""
        print(f"  test on {device:<16} {accuracy:.2%}{marker}")

    chance = 1.0 / 7.0
    matched = accuracies[TRAIN_DEVICE]
    # Matched device is the ceiling.
    for device in TEST_DEVICES[1:]:
        assert accuracies[device] <= matched + 0.05
    # Same-vendor-ish transfer (strong-coupling S21) stays above chance.
    assert accuracies["galaxys21"] > 1.5 * chance
