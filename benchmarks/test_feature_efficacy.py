"""Section III-B4: feature-efficacy information-gain analysis.

"The analysis demonstrated that all the features listed in Table II
exhibit non-zero information gain in both the table-top and handheld
settings." We reproduce the analysis on TESS (the dataset the paper ran
it on) and additionally report the top of the ranking — plus a
feature-selection check: the top half of the features carries most of
the classification accuracy.
"""

import numpy as np

from repro.attack.features import FEATURE_NAMES
from repro.eval.experiment import make_classifier
from repro.ml.feature_selection import InfoGainSelector, rank_features
from repro.ml.metrics import accuracy_score
from repro.ml.preprocessing import clean_features, train_test_split

from benchmarks._common import features_for, print_header


def test_feature_efficacy_both_settings(benchmark):
    rankings = {}

    def run():
        for setting, kwargs in (
            ("table_top", {}),
            ("handheld", {"mode": "ear_speaker", "placement": "handheld"}),
        ):
            data = features_for("tess", "oneplus7t", **kwargs)
            X = np.nan_to_num(data.X, nan=0.0, posinf=0.0, neginf=0.0)
            rankings[setting] = rank_features(X, data.y, FEATURE_NAMES)
        return rankings

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Section III-B4 - feature information gain (TESS, 7T)")
    for setting, ranking in rankings.items():
        top = ", ".join(f"{name}={gain:.2f}" for name, gain in ranking[:5])
        nonzero = sum(1 for _, gain in ranking if gain > 0.0)
        print(f"  {setting:<10} non-zero: {nonzero}/24; top-5: {top}")

    # The paper's claim: every Table II feature is informative in both
    # settings (we allow one borderline-zero feature per setting).
    for setting, ranking in rankings.items():
        nonzero = sum(1 for _, gain in ranking if gain > 1e-6)
        assert nonzero >= 23, f"{setting}: only {nonzero}/24 features informative"


def test_feature_selection_top_half_suffices(benchmark):
    accuracies = {}

    def run():
        data = features_for("tess", "oneplus7t")
        X, y, _ = clean_features(data.X, data.y)
        X_train, X_test, y_train, y_test = train_test_split(X, y, 0.2, 0)
        full_model = make_classifier("random_forest", seed=0, fast=True)
        full_model.fit(X_train, y_train)
        accuracies["all_24"] = accuracy_score(y_test, full_model.predict(X_test))
        selector = InfoGainSelector(k=12).fit(X_train, y_train)
        reduced_model = make_classifier("random_forest", seed=0, fast=True)
        reduced_model.fit(selector.transform(X_train), y_train)
        accuracies["top_12"] = accuracy_score(
            y_test, reduced_model.predict(selector.transform(X_test))
        )
        return accuracies

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Feature selection - top-12 features vs all 24 (TESS, 7T)")
    print(f"  all 24 features : {accuracies['all_24']:.2%}")
    print(f"  top 12 by gain  : {accuracies['top_12']:.2%}")

    # The informative half retains the bulk of the accuracy.
    assert accuracies["top_12"] > 0.8 * accuracies["all_24"]
