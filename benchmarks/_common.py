"""Shared helpers for the benchmark harness.

Each benchmark reproduces one table or figure from the paper: it collects
the scenario's dataset through the simulated vibration channel, runs the
paper's classifiers, prints the same rows the paper reports (side by side
with the published numbers), and asserts the result *shape* (who wins, by
roughly what factor — not absolute accuracy).

Collection goes through the engine's :class:`CollectionCache`, so a
table's five classifier rows — including the spectrogram CNN row — share
one render→transmit→detect pass per scenario. Set ``EMOLEAK_N_JOBS`` to
fan the collection out over the engine's worker pool (results are
identical at any worker count). ``benchmark.pedantic(..., rounds=1)`` is
used everywhere: the quantity of interest is the experiment outcome, not
a timing distribution.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Optional

from repro.attack.engine import CollectionCache, collect_datasets
from repro.attack.pipeline import FeatureDataset, SpectrogramDataset
from repro.datasets import build_corpus
from repro.eval.experiment import (
    run_feature_experiment,
    run_spectrogram_experiment,
)
from repro.eval.reporting import paper_comparison
from repro.phone.channel import VibrationChannel

__all__ = [
    "corpus_for",
    "features_for",
    "spectrograms_for",
    "run_cell",
    "print_header",
]

#: Benchmark-scale corpus budgets: large enough for stable accuracy,
#: small enough that the whole harness runs in minutes.
_TESS_WORDS = 30          # 2 x 7 x 30 = 420 utterances
_CREMAD_CLIPS = 1200      # of 7442
_SAVEE_FULL = True        # 480 utterances: always run SAVEE in full

#: Collection-engine worker count (results identical at any value).
N_JOBS = int(os.environ.get("EMOLEAK_N_JOBS", "1"))

#: One shared cache for the whole benchmark session: every scenario's
#: render→transmit→detect pass runs exactly once.
CACHE = CollectionCache()


@lru_cache(maxsize=None)
def corpus_for(dataset: str):
    """Build the benchmark-scale corpus for a dataset name."""
    if dataset == "tess":
        return build_corpus("tess", words_per_emotion=_TESS_WORDS, seed=1)
    if dataset == "savee":
        return build_corpus("savee", seed=0)
    if dataset == "cremad":
        return build_corpus("cremad", n_clips=_CREMAD_CLIPS, seed=2)
    raise ValueError(f"unknown dataset {dataset!r}")


def _collect(
    dataset: str,
    device: str,
    mode: str,
    placement: str,
    sample_rate: Optional[float],
    feature_highpass_hz: Optional[float],
    seed: int,
):
    corpus = corpus_for(dataset)
    channel = VibrationChannel(
        device, mode=mode, placement=placement, sample_rate=sample_rate
    )
    return collect_datasets(
        corpus,
        channel,
        seed=seed,
        feature_highpass_hz=feature_highpass_hz,
        n_jobs=N_JOBS,
        cache=CACHE,
    )


def features_for(
    dataset: str,
    device: str,
    mode: str = "loudspeaker",
    placement: str = "table_top",
    sample_rate: Optional[float] = None,
    feature_highpass_hz: Optional[float] = None,
    seed: int = 0,
) -> FeatureDataset:
    """Collect (and cache) the Table II feature dataset for a scenario."""
    return _collect(
        dataset, device, mode, placement, sample_rate, feature_highpass_hz, seed
    ).features


def spectrograms_for(
    dataset: str,
    device: str,
    mode: str = "loudspeaker",
    placement: str = "table_top",
    seed: int = 0,
) -> SpectrogramDataset:
    """Collect (and cache) the spectrogram dataset for a scenario."""
    return _collect(dataset, device, mode, placement, None, None, seed).spectrograms


def run_cell(
    table: str,
    dataset: str,
    device: str,
    classifier: str,
    mode: str = "loudspeaker",
    placement: str = "table_top",
    seed: int = 0,
):
    """Run one (dataset, device, classifier) evaluation cell and report it."""
    if classifier == "cnn_spectrogram":
        data = spectrograms_for(dataset, device, mode, placement, seed=seed)
        result = run_spectrogram_experiment(data, seed=seed, fast=True)
    else:
        data = features_for(dataset, device, mode, placement, seed=seed)
        result = run_feature_experiment(data, classifier, seed=seed, fast=True)
    print(paper_comparison(table, dataset, device, classifier, result.accuracy))
    return result


def print_header(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
