"""Paper Table V: TESS, loudspeaker/table-top, five devices.

Published accuracies (random guess 14.28 %):

    classifier      OnePlus7T  GalaxyS10  Pixel5  GalaxyS21  S21 Ultra
    Logistic          94.52%     78.84%   73.93%   85.79%     82.15%
    MultiClass        91.32%     71.80%   71.75%   84.46%     81.65%
    trees.LMT         94.23%     72.15%   78.48%   87.04%     84.47%
    CNN (features)    95.30%     83.20%   82.62%   88.49%     84.38%
    CNN (spectro)     89.44%     85.37%   80.92%   83.51%     85.74%

Expected shape: every cell >=4x chance; the OnePlus 7T is the best
device; TESS is by far the strongest dataset.
"""

import pytest

from benchmarks._common import print_header, run_cell

CLASSIFIERS = ("logistic", "multiclass", "lmt", "cnn", "cnn_spectrogram")
DEVICES = ("oneplus7t", "galaxys10", "pixel5", "galaxys21", "galaxys21ultra")


@pytest.mark.parametrize("device", DEVICES)
def test_table5_tess_loudspeaker(benchmark, device):
    results = {}

    def run():
        print_header(f"Table V - TESS / loudspeaker / {device}")
        for classifier in CLASSIFIERS:
            results[classifier] = run_cell("V", "tess", device, classifier)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    chance = 1.0 / 7.0
    for classifier, result in results.items():
        assert result.accuracy > 3.0 * chance, (
            f"{classifier} on {device}: {result.accuracy:.2%}"
        )
    # Feature-based classical ML should reach the strong band on TESS.
    assert max(results[c].accuracy for c in ("logistic", "lmt")) > 0.60


def test_table5_device_ordering(benchmark):
    """OnePlus 7T must beat the weaker-coupling Pixel 5 (paper ordering)."""
    accuracies = {}

    def run():
        for device in ("oneplus7t", "pixel5"):
            accuracies[device] = run_cell("V", "tess", device, "logistic").accuracy
        return accuracies

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Table V - device ordering (logistic)")
    for device, acc in accuracies.items():
        print(f"  {device:<16} {acc:.2%}")
    assert accuracies["oneplus7t"] > accuracies["pixel5"]
