"""Paper Table I: information gain with no filter vs a 1 Hz high-pass.

The paper motivates *not* filtering the feature path: on handheld
ear-speaker data, even a 1 Hz high-pass destroys the information carried
by the raw time-domain features (min/mean/max/CV go from >1 bit to 0;
power drops to 0.117; smoothness to 0). We reproduce the analysis:
collect handheld features with and without the 1 Hz filter and compare
the information gain of the same six features.

Expected shape: every Table I feature loses most of its information gain
under the 1 Hz filter.
"""

import numpy as np

from repro.attack.features import FEATURE_NAMES
from repro.ml.infogain import information_gain_table

from benchmarks._common import features_for, print_header

#: Paper Table I values (bits), features in our naming.
PAPER_NO_FILTER = {
    "min": 1.31,
    "mean": 1.293,
    "max": 1.265,
    "cv": 0.994,
    "energy": 0.903,       # "power"
    "smoothness": 0.761,
}
PAPER_1HZ = {
    "min": 0.0,
    "mean": 0.0,
    "max": 0.0,
    "cv": 0.0,
    "energy": 0.117,
    "smoothness": 0.0,
}


def _info_gains(feature_highpass_hz):
    data = features_for(
        "tess",
        "oneplus7t",
        mode="ear_speaker",
        placement="handheld",
        feature_highpass_hz=feature_highpass_hz,
    )
    X = np.nan_to_num(data.X, nan=0.0, posinf=0.0, neginf=0.0)
    table = information_gain_table(X, data.y, FEATURE_NAMES)
    return {name: table[name] for name in PAPER_NO_FILTER}


def test_table1_information_gain(benchmark):
    gains = {}

    def run():
        gains["no_filter"] = _info_gains(None)
        gains["1hz"] = _info_gains(1.0)
        return gains

    benchmark.pedantic(run, rounds=1, iterations=1)

    no_filter = gains["no_filter"]
    filtered = gains["1hz"]

    print_header("Table I - information gain, no filter vs 1 Hz high-pass")
    print(f"{'feature':<12} {'paper(no)':>10} {'ours(no)':>10} "
          f"{'paper(1Hz)':>11} {'ours(1Hz)':>10}")
    for name in PAPER_NO_FILTER:
        print(
            f"{name:<12} {PAPER_NO_FILTER[name]:>10.3f} {no_filter[name]:>10.3f} "
            f"{PAPER_1HZ[name]:>11.3f} {filtered[name]:>10.3f}"
        )

    # Shape assertions: unfiltered features carry substantial information...
    for name in ("min", "mean", "max", "cv", "energy"):
        assert no_filter[name] > 0.25, f"{name} should be informative unfiltered"
    # ...and the 1 Hz filter destroys most of it (paper: to ~zero).
    total_raw = sum(no_filter.values())
    total_filtered = sum(filtered.values())
    assert total_filtered < 0.55 * total_raw, (
        f"1 Hz HPF should slash info gain: {total_filtered:.2f} vs {total_raw:.2f}"
    )
    # The raw *level* features (mean especially) suffer the most, since
    # their information rides on the sub-1 Hz envelope drift.
    assert filtered["mean"] < 0.4 * no_filter["mean"]
