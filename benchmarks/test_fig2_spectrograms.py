"""Paper Fig. 2: spectrograms of one sentence in five emotions.

The paper plays "Say the word back" (same actor) in angry / neutral /
fear / happy / sad through the OnePlus 7T loudspeaker and shows that the
accelerometer spectrograms differ visibly per emotion. We reproduce the
setup — one fixed carrier utterance, five emotions, same speaker, same
channel — and assert the images are (a) valid, (b) mutually distinct,
and (c) consistent with prosody (the angry rendition carries more total
vibration energy than the sad one).
"""

import numpy as np

from repro.attack.pipeline import EmoLeakAttack
from repro.datasets.base import Corpus, UtteranceSpec
from repro.datasets import build_tess
from repro.phone.channel import VibrationChannel

from benchmarks._common import print_header

EMOTIONS = ("angry", "neutral", "fear", "happy", "sad")


def _one_sentence_corpus():
    """One TESS speaker saying the same carrier sentence in 5 emotions."""
    base = build_tess(words_per_emotion=1, seed=1)
    speaker = sorted(base.speakers)[0]
    specs = [
        UtteranceSpec(
            utterance_id=f"fig2-{emotion}",
            speaker_id=speaker,
            emotion=emotion,
            seed=777,  # same seed: same carrier plan, same target word
            mean_syllables=4.0,
            carrier=True,
        )
        for emotion in EMOTIONS
    ]
    return Corpus(
        name="fig2",
        emotions=base.emotions,
        speakers={speaker: base.speakers[speaker]},
        specs=specs,
        expressiveness=base.expressiveness,
        variability=0.0,  # single exemplar per emotion, no realisation noise
        audio_fs=base.audio_fs,
    )


def test_fig2_emotion_spectrograms(benchmark):
    out = {}

    def run():
        corpus = _one_sentence_corpus()
        channel = VibrationChannel("oneplus7t")
        dataset = EmoLeakAttack(channel, seed=3).collect_spectrograms(corpus)
        out["dataset"] = dataset
        return dataset

    benchmark.pedantic(run, rounds=1, iterations=1)
    dataset = out["dataset"]

    print_header("Fig. 2 - per-emotion spectrograms of one carrier sentence")
    images = {label: img[..., 0] for img, label in zip(dataset.images, dataset.y)}
    for emotion in EMOTIONS:
        assert emotion in images, f"no spectrogram extracted for {emotion}"
        img = images[emotion]
        print(f"  {emotion:<8} image mean={img.mean():.3f} std={img.std():.3f}")
        assert img.shape == (32, 32)
        assert 0.0 <= img.min() and img.max() <= 1.0

    # Pairwise distinctness: different emotions give different images.
    labels = list(images)
    for i, a in enumerate(labels):
        for b in labels[i + 1 :]:
            diff = np.abs(images[a] - images[b]).mean()
            assert diff > 0.01, f"{a} and {b} spectrograms nearly identical"
