"""Section VI-B: quantitative defense evaluation.

The paper recommends stricter sensor-rate limits, sensor relocation and
vibration-absorbing mounting. This benchmark measures every mitigation
in :mod:`repro.attack.defense` against the strongest attack scenario
(TESS / OnePlus 7T / loudspeaker).

Expected shape: the deployed 200 Hz cap leaves the attack viable; a
software low-pass at legitimate-motion bandwidth or strong mechanical
damping drives it to (near) chance — the paper's conclusion that
hardware/bandwidth isolation, not rate capping, is the decisive defense.
"""

from repro.attack.defense import (
    LowPassObfuscationDefense,
    NoiseInjectionDefense,
    RateLimitDefense,
    SensorDampingDefense,
    evaluate_defense,
)
from repro.phone.channel import VibrationChannel

from benchmarks._common import corpus_for, print_header

DEFENSES = (
    None,
    RateLimitDefense(max_rate_hz=200.0),
    RateLimitDefense(max_rate_hz=50.0),
    NoiseInjectionDefense(noise_rms=0.05, seed=0),
    LowPassObfuscationDefense(cutoff_hz=20.0),
    SensorDampingDefense(attenuation_db=40.0),
)


def test_defense_evaluation(benchmark):
    outcomes = {}

    def run():
        corpus = corpus_for("tess").subsample(per_class=20, seed=0)
        channel = VibrationChannel("oneplus7t")
        for defense in DEFENSES:
            name = defense.name if defense else "undefended"
            outcomes[name] = evaluate_defense(
                defense, corpus, channel, seed=0, fast=True
            )
        return outcomes

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Section VI-B - defense evaluation (TESS, OnePlus 7T)")
    for name, (accuracy, extraction) in outcomes.items():
        print(f"  {name:<22} accuracy {accuracy:6.2%}  extraction {extraction:.0%}")

    chance = 1.0 / 7.0
    baseline = outcomes["undefended"][0]
    assert baseline > 4 * chance
    # The deployed cap does not defeat the attack.
    assert outcomes["rate_limit_200hz"][0] > 3 * chance
    # Bandwidth/hardware isolation is decisive.
    assert outcomes["lowpass_20hz"][0] < baseline - 0.25
    assert outcomes["damping_40db"][0] < baseline - 0.25