"""Section VI-B: quantitative defense evaluation.

The paper recommends stricter sensor-rate limits, sensor relocation and
vibration-absorbing mounting. This benchmark measures every mitigation
in :mod:`repro.attack.defense` against the strongest attack scenario
(TESS / OnePlus 7T / loudspeaker).

Expected shape: the deployed 200 Hz cap leaves the attack viable; a
software low-pass at legitimate-motion bandwidth or strong mechanical
damping drives it to (near) chance — the paper's conclusion that
hardware/bandwidth isolation, not rate capping, is the decisive defense.

``test_privacy_gate_grid`` extends the sweep to the full defense×attack
grid (:mod:`repro.eval.defense_grid`): composable stacks against both
the *static* attacker (trained undefended) and the *adaptive* attacker
(retrained on defended collections), packed into a gate bundle and
queried back through the serving front-end. The grid trajectory is
written to ``BENCH_10.json`` (override with ``EMOLEAK_GATE_BENCH_OUT``;
``EMOLEAK_GATE_SUBSAMPLE`` shrinks the corpus for CI).
"""

import json
import os

import pytest

from repro.attack.defense import (
    LowPassObfuscationDefense,
    NoiseInjectionDefense,
    RateLimitDefense,
    SensorDampingDefense,
    evaluate_defense,
)
from repro.phone.channel import VibrationChannel

from benchmarks._common import corpus_for, print_header

DEFENSES = (
    None,
    RateLimitDefense(max_rate_hz=200.0),
    RateLimitDefense(max_rate_hz=50.0),
    NoiseInjectionDefense(noise_rms=0.05, seed=0),
    LowPassObfuscationDefense(cutoff_hz=20.0),
    SensorDampingDefense(attenuation_db=40.0),
)


def test_defense_evaluation(benchmark):
    outcomes = {}

    def run():
        corpus = corpus_for("tess").subsample(per_class=20, seed=0)
        channel = VibrationChannel("oneplus7t")
        for defense in DEFENSES:
            name = defense.name if defense else "undefended"
            outcomes[name] = evaluate_defense(
                defense, corpus, channel, seed=0, fast=True
            )
        return outcomes

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Section VI-B - defense evaluation (TESS, OnePlus 7T)")
    for name, (accuracy, extraction) in outcomes.items():
        print(f"  {name:<22} accuracy {accuracy:6.2%}  extraction {extraction:.0%}")

    chance = 1.0 / 7.0
    baseline = outcomes["undefended"][0]
    assert baseline > 4 * chance
    # The deployed cap does not defeat the attack.
    assert outcomes["rate_limit_200hz"][0] > 3 * chance
    # Bandwidth/hardware isolation is decisive.
    assert outcomes["lowpass_20hz"][0] < baseline - 0.25
    assert outcomes["damping_40db"][0] < baseline - 0.25


# -- defense×attack privacy-gate grid ---------------------------------------

GATE_SUBSAMPLE = int(os.environ.get("EMOLEAK_GATE_SUBSAMPLE", "8"))

#: Filled by test_privacy_gate_grid, serialised to BENCH_10.json.
GATE_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_gate_bench_artifact():
    """Write the privacy-gate grid trajectory once the module finishes."""
    yield
    if not GATE_RESULTS:
        return
    path = os.environ.get("EMOLEAK_GATE_BENCH_OUT", "BENCH_10.json")
    payload = {
        "schema": "emoleak/privacy-gate-bench/v1",
        "subsample": GATE_SUBSAMPLE,
        **GATE_RESULTS,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\n[emoleak] wrote privacy-gate trajectory to {path}")


def test_privacy_gate_grid(benchmark, tmp_path):
    from repro.attack.privacy_gate import (
        LOWPASS_OFF,
        DefenseAxes,
        DefenseConfig,
        GateScorer,
    )
    from repro.eval.defense_grid import run_defense_grid
    from repro.serve.bundle import load_gate_bundle, save_gate_bundle
    from repro.serve.frontend import FrontendClient, ServingFrontend
    from repro.serve.registry import ModelRegistry
    from repro.serve.server import InferenceServer

    axes = DefenseAxes(
        rate_caps_hz=(200.0, 50.0),
        lowpass_hz=(LOWPASS_OFF, 20.0),
        noise_rms=(0.0, 0.1),
        quant_lsb=(0.0,),
    )
    holder = {}

    def run():
        holder["report"] = run_defense_grid(
            axes=axes,
            modes=("static", "adaptive"),
            classifiers=("logistic", "random_forest"),
            subsample=GATE_SUBSAMPLE,
            seed=0,
            n_jobs=2,
        )
        return holder["report"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    report = holder["report"]

    print_header("Privacy gate - defense x attack grid (TESS, OnePlus 7T)")
    for config in axes.configs():
        parts = []
        for mode in report.modes:
            summary = report.summary(config, "emotion", mode)
            margin = summary["margin"] if summary else float("nan")
            parts.append(f"{mode} margin {margin:+.3f}")
        print(f"  {config.name:<28} {'  '.join(parts)}")
    frontier = report.safe_frontier()
    print(f"  safe frontier: {[c.name for c in frontier] or 'EMPTY'}")

    assert not report.degraded_cells()
    # The deployed 200 Hz cap leaves the ADAPTIVE attacker well above
    # chance: rate capping alone is not a defense.
    deployed = report.summary(
        DefenseConfig(rate_cap_hz=200.0), "emotion", "adaptive"
    )
    assert deployed["margin"] >= 0.15
    # ... while at least one software-only stack in the grid pins even
    # the retrained attacker to within 5 pp of chance.
    assert frontier, "no swept config is safe against the adaptive attacker"
    safest = report.summary(frontier[0], "emotion", "adaptive")
    assert safest["margin"] <= 0.05

    # Pack the grid and answer leakage queries through the serving stack.
    bundle_path = tmp_path / "gate.zip"
    save_gate_bundle(report, bundle_path)
    _manifest, loaded = load_gate_bundle(bundle_path)
    server = InferenceServer(ModelRegistry(), gate=GateScorer(loaded))
    with server:
        with ServingFrontend(server, host="127.0.0.1", port=0) as frontend:
            with FrontendClient(frontend.host, frontend.port) as client:
                swept = client.gate_score(
                    rate_cap_hz=200.0, lowpass_hz=LOWPASS_OFF,
                    noise_rms=0.0, quant_lsb=0.0,
                )
                interp = client.gate_score(
                    rate_cap_hz=125.0, lowpass_hz=LOWPASS_OFF,
                    noise_rms=0.0, quant_lsb=0.0,
                )
                refused = client.gate_score(
                    rate_cap_hz=10.0, lowpass_hz=LOWPASS_OFF,
                    noise_rms=0.0, quant_lsb=0.0,
                )
    assert swept["status"] == "ok" and swept["exact"]
    assert abs(swept["margin"] - deployed["margin"]) < 1e-9
    assert interp["status"] == "ok" and not interp["exact"]
    low = report.summary(DefenseConfig(rate_cap_hz=50.0), "emotion", "adaptive")
    bounds = sorted((low["margin"], deployed["margin"]))
    assert bounds[0] - 1e-9 <= interp["margin"] <= bounds[1] + 1e-9
    assert refused["status"] == "refused"

    GATE_RESULTS.update(
        {
            "axes": {
                "rate_caps_hz": list(axes.rate_caps_hz),
                "lowpass_hz": list(axes.lowpass_hz),
                "noise_rms": list(axes.noise_rms),
                "quant_lsb": list(axes.quant_lsb),
            },
            "grid": report.to_payload(),
            "safe_frontier": [c.name for c in frontier],
            "deployed_cap_margin": deployed["margin"],
            "safest_margin": safest["margin"],
            "interpolated_query": interp,
        }
    )