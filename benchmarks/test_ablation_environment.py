"""Ablation A5 (extension, paper §VI-C/D): environmental robustness.

The paper flags susceptibility "to external noise factors in the
environment" as a limitation and proposes testing in various
environments as future work. This ablation runs the TESS/OnePlus 7T
loudspeaker attack on three ambient profiles: a quiet room, a busy
office (footfalls, desk bumps) and a moving vehicle (road rumble).

Expected shape: accuracy decreases monotonically-ish with ambient
severity; the quiet-room result matches the clean-table baseline; the
vehicle environment hurts but does not necessarily kill the attack.
"""

from repro.attack.pipeline import EmoLeakAttack
from repro.eval.experiment import run_feature_experiment
from repro.phone.channel import VibrationChannel

from benchmarks._common import corpus_for, print_header

ENVIRONMENTS = (None, "quiet_room", "busy_office", "vehicle")


def test_ablation_environment_noise(benchmark):
    accuracies = {}

    def run():
        corpus = corpus_for("tess")
        for env in ENVIRONMENTS:
            channel = VibrationChannel("oneplus7t", environment=env)
            data = EmoLeakAttack(channel, seed=0).collect_features(corpus)
            if data.X.shape[0] < 40:
                accuracies[env] = 1.0 / 7.0
                continue
            accuracies[env] = run_feature_experiment(
                data, "random_forest", seed=0, fast=True
            ).accuracy
        return accuracies

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation A5 - ambient environment (TESS, OnePlus 7T)")
    for env, accuracy in accuracies.items():
        print(f"  {str(env or 'ideal surface'):<14} {accuracy:.2%}")

    chance = 1.0 / 7.0
    # Quiet room ~ ideal surface.
    assert abs(accuracies["quiet_room"] - accuracies[None]) < 0.12
    # Severe ambient vibration costs accuracy relative to quiet settings.
    assert accuracies["vehicle"] <= accuracies["quiet_room"] + 0.03
    # Even then the attack stays above chance (graceful degradation).
    assert accuracies["vehicle"] > 1.2 * chance
