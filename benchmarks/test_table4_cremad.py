"""Paper Table IV: CREMA-D, loudspeaker/table-top, Samsung Galaxy S10.

Published rows (accuracy, random guess 16.67 %, six emotions):

    Logistic                58.99 %
    MultiClassClassifier    58.51 %
    trees.LMT               58.99 %
    CNN (features)          60.32 %
    CNN (spectrogram)       53.00 %

Expected shape: all methods land ~3-4x above the 6-class chance rate and
within a narrow band of each other; the spectrogram CNN trails.
"""


from benchmarks._common import print_header, run_cell

CLASSIFIERS = ("logistic", "multiclass", "lmt", "cnn", "cnn_spectrogram")


def test_table4_cremad_loudspeaker(benchmark):
    results = {}

    def run():
        print_header("Table IV - CREMA-D / loudspeaker / Galaxy S10")
        for classifier in CLASSIFIERS:
            results[classifier] = run_cell("IV", "cremad", "galaxys10", classifier)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    chance = 1.0 / 6.0
    for classifier, result in results.items():
        assert result.n_classes == 6
        bar = 1.5 if classifier == "cnn_spectrogram" else 2.0
        assert result.accuracy > bar * chance, (
            f"{classifier}: {result.accuracy:.2%} should beat 6-class chance"
        )
    feature_methods = [
        results[c].accuracy for c in ("logistic", "multiclass", "lmt", "cnn")
    ]
    assert max(feature_methods) < 0.85, "CREMA-D should stay in the moderate band"
