"""Paper Fig. 6: confusion matrices on TESS (OnePlus 7T).

Fig. 6a: loudspeaker, time-frequency features — near-diagonal matrix
(the paper's shows >=59/84 correct per class). Fig. 6b: ear speaker,
10-fold cross-validation — diagonal still dominant but with substantial
off-diagonal mass (e.g. neutral/disgust confusion).

We regenerate both matrices and assert their shapes.
"""

import numpy as np

from repro.eval.tables import format_confusion
from repro.ml.crossval import cross_val_confusion
from repro.ml.forest import RandomForest
from repro.ml.logistic import LogisticRegression
from repro.ml.preprocessing import clean_features

from benchmarks._common import features_for, print_header


def test_fig6a_loudspeaker_confusion(benchmark):
    out = {}

    def run():
        data = features_for("tess", "oneplus7t")
        X, y, _ = clean_features(data.X, data.y)
        out["matrix"], out["labels"], out["accuracy"] = cross_val_confusion(
            LogisticRegression(), X, y, n_splits=5
        )
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    matrix, labels, accuracy = out["matrix"], out["labels"], out["accuracy"]

    print_header("Fig. 6a - TESS loudspeaker confusion matrix (OnePlus 7T)")
    print(format_confusion(matrix, labels))
    print(f"  pooled accuracy: {accuracy:.2%}")

    # Strongly diagonal: every class's most common prediction is itself.
    for i in range(matrix.shape[0]):
        assert matrix[i, i] == matrix[i].max(), f"class {labels[i]} not diagonal"
    assert np.trace(matrix) / matrix.sum() > 0.6


def test_fig6b_ear_speaker_confusion_10fold(benchmark):
    out = {}

    def run():
        data = features_for(
            "tess", "oneplus7t", mode="ear_speaker", placement="handheld"
        )
        X, y, _ = clean_features(data.X, data.y)
        out["matrix"], out["labels"], out["accuracy"] = cross_val_confusion(
            RandomForest(n_estimators=15, seed=0), X, y, n_splits=10
        )
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    matrix, labels, accuracy = out["matrix"], out["labels"], out["accuracy"]

    print_header("Fig. 6b - TESS ear-speaker confusion matrix, 10-fold")
    print(format_confusion(matrix, labels))
    print(f"  pooled accuracy: {accuracy:.2%} (paper: 59.67 %)")

    total = matrix.sum()
    diagonal = np.trace(matrix)
    # Diagonal dominant but clearly noisier than the loudspeaker matrix.
    assert diagonal / total > 2.0 / 7.0
    assert diagonal / total < 0.9
    off_diagonal = total - diagonal
    assert off_diagonal > 0.1 * total, "ear-speaker matrix should show confusion"
