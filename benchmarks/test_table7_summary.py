"""Paper Table VII: vibration-domain results vs audio-domain prior work.

The paper contrasts its best vibration-domain accuracy per dataset with
the best published *audio-domain* results (SAVEE 91.7 %, TESS 99.57 %,
CREMA-D 94.99 %). The audio-domain numbers are literature constants (the
paper did not rebuild those systems); we additionally *measure* an
audio-domain upper bound with our own feature pipeline applied to the
clean synthesized audio, demonstrating the table's message — vibration
is below audio but the gap is smallest on TESS.
"""

import numpy as np

from repro.attack.features import extract_features
from repro.eval.experiment import run_feature_experiment
from repro.eval.reporting import AUDIO_DOMAIN_REFERENCES
from repro.ml.forest import RandomForest
from repro.ml.preprocessing import train_test_split
from repro.ml.metrics import accuracy_score

from benchmarks._common import corpus_for, features_for, print_header

PAPER_VIBRATION = {"savee": 0.5377, "tess": 0.953, "cremad": 0.6032}


def _audio_domain_accuracy(dataset: str) -> float:
    """Upper bound: same features on the clean audio, no channel."""
    corpus = corpus_for(dataset)
    X, y = [], []
    for spec, wave in corpus.iter_rendered():
        X.append(extract_features(wave, corpus.audio_fs))
        y.append(spec.emotion)
    X = np.nan_to_num(np.vstack(X), nan=0.0)
    y = np.array(y)
    X_train, X_test, y_train, y_test = train_test_split(X, y, 0.2, 0)
    model = RandomForest(n_estimators=25, seed=0).fit(X_train, y_train)
    return accuracy_score(y_test, model.predict(X_test))


def test_table7_summary(benchmark):
    rows = {}

    def run():
        for dataset, device in (
            ("savee", "oneplus7t"),
            ("tess", "oneplus7t"),
            ("cremad", "galaxys10"),
        ):
            vibration = run_feature_experiment(
                features_for(dataset, device), "logistic", fast=True
            ).accuracy
            audio = _audio_domain_accuracy(dataset)
            rows[dataset] = (vibration, audio)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Table VII - vibration domain vs audio domain")
    print(f"{'dataset':<9} {'vib(paper)':>11} {'vib(ours)':>10} "
          f"{'audio(lit.)':>12} {'audio(ours)':>12}")
    for dataset, (vibration, audio) in rows.items():
        print(
            f"{dataset:<9} {PAPER_VIBRATION[dataset]:>11.2%} {vibration:>10.2%} "
            f"{AUDIO_DOMAIN_REFERENCES[dataset]:>12.2%} {audio:>12.2%}"
        )

    for dataset, (vibration, audio) in rows.items():
        # Vibration <= audio upper bound (the channel only loses info).
        assert vibration <= audio + 0.05, dataset
    # TESS shows the smallest relative vibration-vs-audio gap (the paper's
    # "comparable to audio domain" claim is made on TESS).
    gaps = {d: a - v for d, (v, a) in rows.items()}
    assert gaps["tess"] <= min(gaps["savee"], gaps["cremad"]) + 0.02
