"""Ablation A6 (extension): Z-axis only vs tri-axial feature fusion.

The paper follows prior work in reading the Z axis; AccelEve showed all
three axes carry usable signal. This ablation collects tri-axial data
(shared ADC clock, weaker X/Y coupling), detects regions on Z, and
compares classification on Z-only features vs the concatenation of all
three axes' features.

Expected shape: fusion >= Z-only (extra, noisier views can only help or
wash out); both far above chance.
"""

import numpy as np

from repro.attack.features import extract_features
from repro.attack.regions import RegionDetector
from repro.eval.experiment import make_classifier
from repro.ml.metrics import accuracy_score
from repro.ml.preprocessing import clean_features, train_test_split
from repro.phone.chassis import ChassisTransfer
from repro.phone.devices import get_device
from repro.phone.speaker import loudspeaker_model
from repro.phone.triaxial import TriaxialAccelerometer

from benchmarks._common import corpus_for, print_header


def _collect_triaxial(corpus, seed=0):
    device = get_device("oneplus7t")
    speaker = loudspeaker_model(device.loud_gain)
    chassis = ChassisTransfer(
        resonance_hz=device.resonance_hz, q_factor=device.q_factor
    )
    sensor = TriaxialAccelerometer(fs=device.accel_fs, noise_rms=device.noise_rms)
    detector = RegionDetector.for_setting("table_top")
    rng = np.random.default_rng(seed)
    rows_z, rows_xyz, labels = [], [], []
    for spec in corpus.specs:
        audio = corpus.render(spec)
        pad = np.zeros(int(0.3 * corpus.audio_fs))
        audio = np.concatenate([pad, audio, pad])
        vibration = chassis.transfer(speaker.drive(audio, corpus.audio_fs),
                                     corpus.audio_fs)
        samples = sensor.sample(vibration, corpus.audio_fs, rng)
        z = samples[:, 2]
        regions = detector.detect(z, sensor.fs)
        if not regions:
            continue
        best = max(regions, key=lambda r: r.end - r.start)
        per_axis = [
            extract_features(samples[best.start : best.end, axis], sensor.fs)
            for axis in range(3)
        ]
        rows_z.append(per_axis[2])
        rows_xyz.append(np.concatenate(per_axis))
        labels.append(spec.emotion)
    return np.vstack(rows_z), np.vstack(rows_xyz), np.array(labels)


def test_ablation_axis_fusion(benchmark):
    accuracies = {}

    def run():
        corpus = corpus_for("tess")
        Xz, Xxyz, y = _collect_triaxial(corpus)
        for name, X in (("z_only", Xz), ("xyz_fusion", Xxyz)):
            Xc, yc, _ = clean_features(np.nan_to_num(X, nan=0.0), y)
            X_train, X_test, y_train, y_test = train_test_split(Xc, yc, 0.2, 0)
            model = make_classifier("random_forest", seed=0, fast=True)
            model.fit(X_train, y_train)
            accuracies[name] = accuracy_score(y_test, model.predict(X_test))
        return accuracies

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation A6 - Z-axis vs tri-axial fusion (TESS, 7T)")
    print(f"  Z axis only      : {accuracies['z_only']:.2%}")
    print(f"  X+Y+Z fusion     : {accuracies['xyz_fusion']:.2%}")

    chance = 1.0 / 7.0
    assert accuracies["z_only"] > 3 * chance
    # Fusion must not collapse below the single best axis by much.
    assert accuracies["xyz_fusion"] >= accuracies["z_only"] - 0.08
