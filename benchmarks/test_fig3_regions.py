"""Paper Fig. 3: word regions visible in the accelerometer stream.

Fig. 3 shows a TESS playback segment where each spoken word produces a
clear spike in the Z-axis acceleration and a matching column in the
spectrogram. We reproduce it: play a handful of TESS utterances
table-top, show that (a) the raw trace sits at gravity with speech
spikes, (b) the detector recovers one region per utterance, and (c)
regions align with the playback log.
"""

import numpy as np

from repro.attack.regions import RegionDetector, detection_rate
from repro.phone.channel import VibrationChannel
from repro.phone.recording import record_session

from benchmarks._common import corpus_for, print_header


def test_fig3_word_regions(benchmark):
    out = {}

    def run():
        corpus = corpus_for("tess")
        channel = VibrationChannel("oneplus7t")
        session = record_session(
            corpus, channel, specs=corpus.specs[:12], gap_s=0.5, seed=0
        )
        detector = RegionDetector.for_setting("table_top")
        regions = detector.detect(session.trace, session.fs)
        out["session"] = session
        out["regions"] = regions
        return regions

    benchmark.pedantic(run, rounds=1, iterations=1)
    session, regions = out["session"], out["regions"]

    print_header("Fig. 3 - word regions in the accelerometer trace")
    print(f"  utterances played : {len(session.events)}")
    print(f"  regions detected  : {len(regions)}")
    truth = [(e.start_s, e.end_s) for e in session.events]
    rate = detection_rate(regions, truth)
    print(f"  detection rate    : {rate:.0%}")

    # Raw trace rides on gravity (Fig. 3b shows ~±9.8 m/s^2 axis values).
    assert abs(abs(session.trace.mean()) - 9.81) < 0.5
    # Speech spikes: in-region variance dwarfs gap variance.
    in_region = np.concatenate([r.slice(session.trace) for r in regions])
    mask = np.ones(session.trace.size, dtype=bool)
    for r in regions:
        mask[r.start : r.end] = False
    gaps = session.trace[mask]
    assert in_region.std() > 3 * gaps.std()
    # Every played word is recovered in the table-top setting.
    assert rate >= 0.9
    # Regions align with the log: each region's centre is inside an event.
    for region in regions:
        assert session.label_at(region.center_s) is not None
