"""Prior-work baselines: the sibling attacks on the EmoLeak channel.

EmoLeak's closest prior work (Spearphone, cited as [17]) showed the same
loudspeaker→accelerometer channel reveals the speaker's gender and
identity, and Kinetic Song Comprehension showed it reveals which song is
playing. Running those baselines on our substrate validates the channel
against the prior work's findings and positions EmoLeak's contribution:
the same captured features support *all* of the attacks.

Two benchmarks:

- ``test_baseline_spearphone_gender``: the original head-to-head —
  gender (Spearphone's task) vs emotion (EmoLeak's task) on CREMA-D.
- ``test_multi_attack_comparison``: the full scenario × task × classifier
  fan-out through ``run_table("ATTACKS")`` over the shared executor
  pool; every task must beat its random-guess rate. The table and the
  cache's relabel statistics are written to ``BENCH_8.json`` (override
  the path with ``EMOLEAK_ATTACK_BENCH_OUT``; ``EMOLEAK_ATTACK_SUBSAMPLE``
  scales the per-class budget for CI smoke runs) and uploaded by CI into
  the merged bench-trajectory artifact.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.attack.scenarios import SCENARIOS
from repro.attack.spearphone import SpearphoneBaseline
from repro.eval.experiment import run_feature_experiment
from repro.eval.suite import TABLE_DEFINITIONS, run_table
from repro.ml.forest import RandomForest
from repro.obs import metrics
from repro.phone.channel import VibrationChannel

from benchmarks._common import CACHE, N_JOBS, corpus_for, features_for, print_header

#: Utterances/clips per class for the multi-attack table (CI smoke runs
#: shrink this via the environment).
ATTACK_SUBSAMPLE = int(os.environ.get("EMOLEAK_ATTACK_SUBSAMPLE", "12"))

#: (task -> result rows) accumulated for the BENCH_8 artifact.
RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_artifact():
    """Write the multi-attack trajectory once every benchmark reported."""
    yield
    path = os.environ.get("EMOLEAK_ATTACK_BENCH_OUT")
    if not path or not RESULTS:
        return
    payload = {
        "schema": "emoleak/multi-attack-bench/v1",
        "numpy": np.__version__,
        "subsample_per_class": ATTACK_SUBSAMPLE,
        "n_jobs": N_JOBS,
        "results": RESULTS,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\n[emoleak] wrote multi-attack trajectory to {path}")


def test_baseline_spearphone_gender(benchmark):
    results = {}

    def run():
        corpus = corpus_for("cremad").subsample(per_class=60, seed=0)
        channel = VibrationChannel("galaxys10")
        baseline = SpearphoneBaseline(channel, seed=0)
        results["gender"] = baseline.gender_accuracy(
            corpus, RandomForest(n_estimators=15, seed=0)
        )
        results["emotion"] = run_feature_experiment(
            features_for("cremad", "galaxys10"), "random_forest", seed=0,
            fast=True,
        ).accuracy
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Baseline - Spearphone gender ID vs EmoLeak emotion ID")
    print(f"  gender (Spearphone task, chance 50.0%) : {results['gender']:.2%}")
    print(f"  emotion (EmoLeak task, chance 16.7%)   : {results['emotion']:.2%}")

    assert results["gender"] > 0.70
    assert results["emotion"] > 2 * (1.0 / 6.0)


def test_multi_attack_comparison(benchmark):
    """Every attack task on the shared channel must beat chance.

    One ``run_table("ATTACKS")`` call: emotion, speaker-ID, gender and
    song content-ID cells fan out over the shared executor pool, and the
    SAVEE emotion/speaker pair shares one physical collection pass via
    the cache's re-label layer.
    """
    state: dict = {}

    def run():
        relabels_before = metrics().counter_total("cache.relabel_hits")
        state["suite"] = run_table(
            "ATTACKS",
            subsample=ATTACK_SUBSAMPLE,
            seed=0,
            fast=True,
            n_jobs=N_JOBS,
            cache=CACHE,
        )
        state["relabel_hits"] = (
            metrics().counter_total("cache.relabel_hits") - relabels_before
        )
        return state

    benchmark.pedantic(run, rounds=1, iterations=1)
    suite = state["suite"]

    print_header("Multi-attack comparison (same channel, per-task labels)")
    print(suite.render())
    print(f"  collection relabel hits: {state['relabel_hits']} "
          "(passes served by re-labelling cached products)")

    scenario_names, classifiers = TABLE_DEFINITIONS["ATTACKS"]
    for name in scenario_names:
        task = SCENARIOS[name].task
        cells = [suite.cells[(name, c)] for c in classifiers]
        best = max(cells, key=lambda r: r.accuracy)
        chance = best.random_guess
        RESULTS[task] = {
            "scenario": name,
            "n_classes": best.n_classes,
            "chance": chance,
            "accuracy_by_classifier": {
                c: suite.cells[(name, c)].accuracy for c in classifiers
            },
            "best_accuracy": best.accuracy,
            "gain_over_chance": best.gain_over_chance,
        }
        print(f"  {task:<11} ({name}): best {best.accuracy:.2%} "
              f"over {best.n_classes} classes (chance {chance:.2%})")
        # Every sibling attack must beat its random-guess rate; the
        # gender head gets the classical Spearphone margin.
        floor = 1.25 * chance if task != "gender" else 0.6
        assert best.accuracy > floor, (
            f"{task} head failed to beat chance: {best.accuracy:.2%} "
            f"vs floor {floor:.2%}"
        )
    RESULTS["relabel_hits"] = int(state["relabel_hits"])
    # The SAVEE emotion and speaker-ID scenarios share one corpus and
    # channel, so at least one bundle must have been served by the
    # cache's re-label layer rather than a fresh physical pass.
    assert state["relabel_hits"] >= 1
