"""Prior-work baseline: Spearphone-style gender/speaker identification.

EmoLeak's closest prior work (Spearphone, cited as [17]) showed the same
loudspeaker→accelerometer channel reveals the speaker's gender and
identity. Running that baseline on our substrate validates the channel
against the prior work's findings and positions EmoLeak's contribution:
the same captured features support *both* attacks.

Expected shape: gender >> 50 % chance; emotion (EmoLeak) and gender
(Spearphone) both succeed on identical recordings.
"""

from repro.attack.spearphone import SpearphoneBaseline
from repro.eval.experiment import run_feature_experiment
from repro.ml.forest import RandomForest
from repro.phone.channel import VibrationChannel

from benchmarks._common import corpus_for, features_for, print_header


def test_baseline_spearphone_gender(benchmark):
    results = {}

    def run():
        corpus = corpus_for("cremad").subsample(per_class=60, seed=0)
        channel = VibrationChannel("galaxys10")
        baseline = SpearphoneBaseline(channel, seed=0)
        results["gender"] = baseline.gender_accuracy(
            corpus, RandomForest(n_estimators=15, seed=0)
        )
        results["emotion"] = run_feature_experiment(
            features_for("cremad", "galaxys10"), "random_forest", seed=0,
            fast=True,
        ).accuracy
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Baseline - Spearphone gender ID vs EmoLeak emotion ID")
    print(f"  gender (Spearphone task, chance 50.0%) : {results['gender']:.2%}")
    print(f"  emotion (EmoLeak task, chance 16.7%)   : {results['emotion']:.2%}")

    assert results["gender"] > 0.70
    assert results["emotion"] > 2 * (1.0 / 6.0)
