"""Paper Table III: SAVEE, loudspeaker/table-top, OnePlus 7T and Pixel 5.

Published rows (accuracy, random guess 14.28 %):

    classifier              OnePlus 7T   Pixel 5
    Logistic                  53.77 %    44.44 %
    MultiClassClassifier      51.85 %    52.97 %
    trees.LMT                 51.58 %    53.00 %
    CNN (features)            46.98 %    44.18 %
    CNN (spectrogram)         39.16 %    35.38 %

Expected shape: every cell lands well above chance (>=2.5x) but far below
the TESS numbers (Table V); the spectrogram CNN is the weakest method on
SAVEE.
"""

import pytest

from benchmarks._common import print_header, run_cell

CLASSIFIERS = ("logistic", "multiclass", "lmt", "cnn", "cnn_spectrogram")
DEVICES = ("oneplus7t", "pixel5")


@pytest.mark.parametrize("device", DEVICES)
def test_table3_savee_loudspeaker(benchmark, device):
    results = {}

    def run():
        print_header(f"Table III - SAVEE / loudspeaker / {device}")
        for classifier in CLASSIFIERS:
            results[classifier] = run_cell("III", "savee", device, classifier)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    chance = 1.0 / 7.0
    for classifier, result in results.items():
        # The spectrogram CNN is the paper's weakest SAVEE method
        # (39.2 % / 35.4 % = 2.5-2.7x chance); hold it to a softer bar.
        bar = 1.5 if classifier == "cnn_spectrogram" else 2.0
        assert result.accuracy > bar * chance, (
            f"{classifier} on {device}: {result.accuracy:.2%} "
            f"should beat chance clearly"
        )
    # SAVEE stays in the paper's moderate band, far from TESS-level.
    best = max(r.accuracy for r in results.values())
    assert best < 0.80, f"SAVEE should stay well below TESS accuracy, got {best:.2%}"
