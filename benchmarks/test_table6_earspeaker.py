"""Paper Table VI: ear-speaker / handheld setting.

Published accuracies (random guess 14.28 %):

    classifier         SAVEE/OnePlus7T  SAVEE/OnePlus9  TESS/OnePlus7T
    RandomForest            53.12%          58.40%          59.67%
    RandomSubSpace          56.25%          54.83%          55.45%
    trees.LMT               49.11%          53.76%          53.03%
    CNN (features)          51.11%          60.52%          54.82%

Expected shape: every cell is a ~3-4x improvement over chance but well
below the corresponding loudspeaker cells; only time/frequency features
are used (the paper extracts no spectrograms in this setting).
"""

import pytest

from repro.eval.experiment import run_feature_experiment

from benchmarks._common import features_for, print_header, run_cell

CLASSIFIERS = ("random_forest", "random_subspace", "lmt", "cnn")
CELLS = (
    ("savee", "oneplus7t"),
    ("savee", "oneplus9"),
    ("tess", "oneplus7t"),
)


@pytest.mark.parametrize("dataset,device", CELLS)
def test_table6_ear_speaker(benchmark, dataset, device):
    results = {}

    def run():
        print_header(f"Table VI - {dataset.upper()} / ear speaker / {device}")
        for classifier in CLASSIFIERS:
            results[classifier] = run_cell(
                "VI", dataset, device, classifier,
                mode="ear_speaker", placement="handheld",
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    chance = 1.0 / 7.0
    best = max(r.accuracy for r in results.values())
    assert best > 2.0 * chance, f"best ear-speaker cell only {best:.2%}"
    # The ear-speaker channel never reaches loudspeaker-TESS territory.
    assert best < 0.85


def test_table6_ear_below_loudspeaker(benchmark):
    """The paper's central contrast: ear speaker << loudspeaker on TESS."""
    accuracies = {}

    def run():
        ear = features_for(
            "tess", "oneplus7t", mode="ear_speaker", placement="handheld"
        )
        loud = features_for("tess", "oneplus7t")
        accuracies["ear"] = run_feature_experiment(
            ear, "random_forest", fast=True
        ).accuracy
        accuracies["loud"] = run_feature_experiment(
            loud, "random_forest", fast=True
        ).accuracy
        return accuracies

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Table VI vs Table V - ear speaker vs loudspeaker (TESS, 7T)")
    print(f"  loudspeaker: {accuracies['loud']:.2%}  ear: {accuracies['ear']:.2%}")
    assert accuracies["loud"] > accuracies["ear"] + 0.10
