"""Parallel training engine and batched data plane: throughput gates.

Two comparisons share this module:

- **Training engine**: the same warm-cache table run twice — serial,
  then fanned over the process executor — asserting the parallel wall
  time wins on a multi-core box *without* changing a single cell
  accuracy. Collection is pre-warmed into a shared cache so the
  comparison isolates the training/evaluation engine. Skipped on
  single-core machines, where there is no speedup to measure.
- **Collection data plane**: the same corpus collected twice through
  ``collect_datasets`` — the per-utterance reference pipeline, then the
  batched pipeline — asserting byte-identical datasets and a >= 3x
  throughput win. Both passes run after a small warm-up so process-wide
  design caches (filter coefficients, the glottal pulse bank) are
  excluded from the comparison. The measured ratio is written to
  ``BENCH_7.json`` (override with ``EMOLEAK_DATA_BENCH_OUT``) so CI
  merges it into the bench-trajectory artifact.
"""

from __future__ import annotations

import json
import os
import platform
import time

import pytest

from repro.attack.engine import CollectionCache, collect_datasets
from repro.datasets import build_tess
from repro.eval.experiment import collect_scenario_datasets
from repro.eval.suite import TABLE_DEFINITIONS, run_table
from repro.phone import VibrationChannel

from benchmarks._common import print_header

_CORES = os.cpu_count() or 1

#: Filled by the data-plane gate, serialised to BENCH_7.json at session end.
DATA_PLANE_RESULTS: dict[str, float] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_data_bench_artifact():
    """Write the data-plane trajectory once the gate has reported."""
    yield
    if not DATA_PLANE_RESULTS:
        return
    path = os.environ.get("EMOLEAK_DATA_BENCH_OUT", "BENCH_7.json")
    payload = {
        "schema": "emoleak/data-plane-bench/v1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cores": _CORES,
        **DATA_PLANE_RESULTS,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"\nwrote {path}")

_TABLE = "III"
_CLASSIFIERS = ("logistic", "multiclass", "lmt", "cnn")
_SUBSAMPLE = 20


@pytest.mark.skipif(_CORES < 2, reason="needs >= 2 cores to show a speedup")
def test_parallel_run_table_beats_serial(benchmark):
    n_jobs = min(4, _CORES)
    cache = CollectionCache()
    scenario_names, _ = TABLE_DEFINITIONS[_TABLE]
    out = {}

    def run():
        # Warm the collection cache so both timed runs are training-only.
        for name in scenario_names:
            collect_scenario_datasets(
                name, subsample=_SUBSAMPLE, seed=0, cache=cache
            )
        t0 = time.perf_counter()
        serial = run_table(
            _TABLE, subsample=_SUBSAMPLE, seed=0, fast=True,
            classifiers=_CLASSIFIERS, cache=cache,
        )
        t1 = time.perf_counter()
        parallel = run_table(
            _TABLE, subsample=_SUBSAMPLE, seed=0, fast=True,
            classifiers=_CLASSIFIERS, cache=cache,
            n_jobs=n_jobs, executor="process",
        )
        t2 = time.perf_counter()
        out["serial"] = serial
        out["parallel"] = parallel
        out["serial_s"] = t1 - t0
        out["parallel_s"] = t2 - t1
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        f"Parallel training engine - Table {_TABLE}, "
        f"{len(out['serial'].cells)} cells, {n_jobs} process workers"
    )
    speedup = out["serial_s"] / max(out["parallel_s"], 1e-9)
    print(f"  serial   : {out['serial_s']:.2f}s")
    print(f"  parallel : {out['parallel_s']:.2f}s  ({speedup:.2f}x)")

    # Identical results first: the speedup must be free.
    assert set(out["parallel"].cells) == set(out["serial"].cells)
    for key, result in out["serial"].cells.items():
        assert out["parallel"].cells[key].accuracy == result.accuracy, key
    # The point of the engine: the fan-out wins on a multi-core box.
    assert out["parallel_s"] < out["serial_s"]


def _best_of_interleaved(fns, repeats: int = 4) -> list[float]:
    """Best-of-N wall times measured in interleaved rounds.

    Alternating the candidates inside each round means a transient load
    burst on a shared box hits all of them in the same window instead of
    biasing whichever happened to run last; the per-candidate best then
    comes from each one's quietest window.
    """
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for k, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[k] = min(best[k], time.perf_counter() - t0)
    return best


def test_batched_collection_beats_per_utterance(benchmark):
    """PR 7 gate: the batched data plane is >= 3x the reference, for free."""
    corpus = build_tess(words_per_emotion=20, seed=1)  # 280 utterances
    channel = VibrationChannel(
        "oneplus7t", mode="loudspeaker", placement="table_top"
    )
    out = {}

    def collect(pipeline):
        return collect_datasets(corpus, channel, seed=0, pipeline=pipeline)

    def run():
        # Warm process-wide design caches (filter coefficients, the
        # glottal pulse bank) so both timed passes start equal.
        warm = corpus.specs[:8]
        for pipeline in ("per_utterance", "batched"):
            collect_datasets(
                corpus, channel, specs=warm, seed=0, pipeline=pipeline
            )
        out["reference"] = collect("per_utterance")
        out["batched"] = collect("batched")
        out["reference_s"], out["batched_s"] = _best_of_interleaved(
            [lambda: collect("per_utterance"), lambda: collect("batched")]
        )
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)

    ratio = out["reference_s"] / max(out["batched_s"], 1e-9)
    n = len(corpus.specs)
    print_header(
        f"Batched data plane - TESS {n} utterances, oneplus7t loudspeaker"
    )
    print(f"  per-utterance : {out['reference_s']:.3f}s "
          f"({n / out['reference_s']:.0f} utt/s)")
    print(f"  batched       : {out['batched_s']:.3f}s "
          f"({n / out['batched_s']:.0f} utt/s, {ratio:.2f}x)")

    DATA_PLANE_RESULTS.update(
        schema_note="per_utterance vs batched collect_datasets, warm caches",
        n_utterances=n,
        reference_s=out["reference_s"],
        batched_s=out["batched_s"],
        speedup=ratio,
    )

    # Identical results first: the speedup must be free (byte parity).
    ref, bat = out["reference"], out["batched"]
    assert bat.features.X.tobytes() == ref.features.X.tobytes()
    assert list(bat.features.y) == list(ref.features.y)
    assert bat.spectrograms.images.tobytes() == ref.spectrograms.images.tobytes()
    # The tentpole gate: >= 3x collection throughput.
    assert ratio >= 3.0, f"batched data plane only {ratio:.2f}x"
