"""Parallel training engine: serial vs fan-out `run_table` comparison.

Times the same warm-cache table run twice — serial, then fanned over the
process executor — and asserts the parallel wall time wins on a
multi-core box *without* changing a single cell accuracy. Collection is
pre-warmed into a shared cache so the comparison isolates the
training/evaluation engine (the collection engine has its own benchmark
coverage).

Skipped on single-core machines, where there is no speedup to measure.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.attack.engine import CollectionCache
from repro.eval.experiment import collect_scenario_datasets
from repro.eval.suite import TABLE_DEFINITIONS, run_table

from benchmarks._common import print_header

_CORES = os.cpu_count() or 1

_TABLE = "III"
_CLASSIFIERS = ("logistic", "multiclass", "lmt", "cnn")
_SUBSAMPLE = 20


@pytest.mark.skipif(_CORES < 2, reason="needs >= 2 cores to show a speedup")
def test_parallel_run_table_beats_serial(benchmark):
    n_jobs = min(4, _CORES)
    cache = CollectionCache()
    scenario_names, _ = TABLE_DEFINITIONS[_TABLE]
    out = {}

    def run():
        # Warm the collection cache so both timed runs are training-only.
        for name in scenario_names:
            collect_scenario_datasets(
                name, subsample=_SUBSAMPLE, seed=0, cache=cache
            )
        t0 = time.perf_counter()
        serial = run_table(
            _TABLE, subsample=_SUBSAMPLE, seed=0, fast=True,
            classifiers=_CLASSIFIERS, cache=cache,
        )
        t1 = time.perf_counter()
        parallel = run_table(
            _TABLE, subsample=_SUBSAMPLE, seed=0, fast=True,
            classifiers=_CLASSIFIERS, cache=cache,
            n_jobs=n_jobs, executor="process",
        )
        t2 = time.perf_counter()
        out["serial"] = serial
        out["parallel"] = parallel
        out["serial_s"] = t1 - t0
        out["parallel_s"] = t2 - t1
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(
        f"Parallel training engine - Table {_TABLE}, "
        f"{len(out['serial'].cells)} cells, {n_jobs} process workers"
    )
    speedup = out["serial_s"] / max(out["parallel_s"], 1e-9)
    print(f"  serial   : {out['serial_s']:.2f}s")
    print(f"  parallel : {out['parallel_s']:.2f}s  ({speedup:.2f}x)")

    # Identical results first: the speedup must be free.
    assert set(out["parallel"].cells) == set(out["serial"].cells)
    for key, result in out["serial"].cells.items():
        assert out["parallel"].cells[key].accuracy == result.accuracy, key
    # The point of the engine: the fan-out wins on a multi-core box.
    assert out["parallel_s"] < out["serial_s"]
