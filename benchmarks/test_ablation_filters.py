"""Ablation A2: the detection-path high-pass cutoff (design choice).

Section III-B2 picks an 8 Hz high-pass for handheld region detection —
high enough to reject hand/body motion (tremor tops out near 8 Hz), low
enough to keep the aliased speech band. This ablation sweeps the cutoff
and shows the paper's choice sits in the usable plateau: no filter is
far worse, and very aggressive cutoffs start eating the speech band.
"""

from repro.attack.regions import RegionDetector, detection_rate
from repro.phone.channel import VibrationChannel
from repro.phone.recording import record_session

from benchmarks._common import corpus_for, print_header

CUTOFFS = (None, 2.0, 8.0, 30.0, 80.0)
N_UTTERANCES = 40


def test_ablation_detection_highpass(benchmark):
    rates = {}

    def run():
        corpus = corpus_for("tess")
        channel = VibrationChannel(
            "oneplus7t", mode="ear_speaker", placement="handheld"
        )
        session = record_session(
            corpus, channel, specs=corpus.specs[:N_UTTERANCES], seed=4
        )
        truth = [(e.start_s, e.end_s) for e in session.events]
        for cutoff in CUTOFFS:
            detector = RegionDetector(
                highpass_hz=cutoff,
                threshold_factor=2.2,
                release_factor=0.6,
                min_duration_s=0.15,
                merge_gap_s=0.30,
            )
            regions = detector.detect(session.trace, session.fs)
            rates[cutoff] = detection_rate(regions, truth) if regions else 0.0
        return rates

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation A2 - handheld detection high-pass cutoff")
    for cutoff, rate in rates.items():
        label = "none" if cutoff is None else f"{cutoff:g} Hz"
        marker = "  <- paper's choice" if cutoff == 8.0 else ""
        print(f"  cutoff {label:>7}: extraction rate {rate:.0%}{marker}")

    # The paper's 8 Hz choice must beat the unfiltered detector...
    assert rates[8.0] > rates[None]
    # ...and meet the paper's >=45 % extraction floor.
    assert rates[8.0] >= 0.45
