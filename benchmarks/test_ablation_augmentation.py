"""Ablation A7 (extension): attacker training-data augmentation.

The paper's attacker gathers "more comprehensive training data" over
multiple days. When captures are scarce, augmentation substitutes:
this ablation trains on a *small* captured set (8 utterances per
emotion) with and without 3x augmentation, evaluating both on the same
large held-out set.

Expected shape: with scarce data, augmentation helps or at worst is
neutral; both configurations beat chance.
"""


from repro.attack.augmentation import RegionAugmenter, augmented_feature_dataset
from repro.attack.pipeline import collect_feature_dataset
from repro.eval.experiment import make_classifier
from repro.ml.metrics import accuracy_score
from repro.ml.preprocessing import clean_features
from repro.phone.channel import VibrationChannel

from benchmarks._common import corpus_for, print_header


def test_ablation_training_augmentation(benchmark):
    accuracies = {}

    def run():
        corpus = corpus_for("tess")
        channel = VibrationChannel("oneplus7t")
        train_corpus = corpus.subsample(per_class=8, seed=0)
        train_ids = {s.utterance_id for s in train_corpus.specs}
        test_specs = [s for s in corpus.specs if s.utterance_id not in train_ids]

        test_data = collect_feature_dataset(
            corpus, channel, specs=test_specs, seed=9
        )
        X_test, y_test, _ = clean_features(test_data.X, test_data.y)

        plain = collect_feature_dataset(
            corpus, channel, specs=train_corpus.specs, seed=1
        )
        augmented = augmented_feature_dataset(
            corpus, channel, RegionAugmenter(copies=3, seed=1),
            specs=train_corpus.specs, seed=1,
        )
        for name, data in (("plain_56", plain), ("augmented_224", augmented)):
            X, y, _ = clean_features(data.X, data.y)
            model = make_classifier("random_forest", seed=0, fast=True)
            model.fit(X, y)
            accuracies[name] = accuracy_score(y_test, model.predict(X_test))
        return accuracies

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation A7 - training-data augmentation (TESS, 7T, scarce)")
    print(f"  56 real regions            : {accuracies['plain_56']:.2%}")
    print(f"  + 3x augmentation (224)    : {accuracies['augmented_224']:.2%}")

    chance = 1.0 / 7.0
    assert accuracies["plain_56"] > 2 * chance
    # Augmentation must not hurt materially, and usually helps.
    assert accuracies["augmented_224"] >= accuracies["plain_56"] - 0.05
