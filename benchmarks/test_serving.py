"""Serving-layer benchmark: micro-batched vs unbatched throughput.

Packs a feature-CNN bundle (the paper's Table II pipeline behind the
serving API), fires the same request burst at two servers — one with
batching disabled (``max_batch=1``, the serial baseline) and one
micro-batching (``max_batch=32``) — and times both. Batching amortises
the per-forward Python and kernel-dispatch overhead across the batch,
so the batched server must clear the acceptance gate: **at least 2x
the unbatched throughput on the feature-CNN path**, with predictions
identical to the serial baseline.

All timings and derived throughputs are written to ``BENCH_5.json``
(override the path with ``EMOLEAK_SERVE_BENCH_OUT``) so CI uploads the
trajectory as an artifact.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.eval.experiment import make_classifier
from repro.ml.logistic import LogisticRegression
from repro.serve import (
    InferenceServer,
    ModelBundle,
    ModelRegistry,
    save_bundle,
    serve_burst,
)

from benchmarks._common import print_header

N_CLASSES = 3
N_FEATURES = 24
N_REQUESTS = 256
CNN_EPOCHS = 3

#: Filled by the tests, serialised to BENCH_5.json at session end.
RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_artifact():
    """Write the serving benchmark trajectory once both modes reported."""
    yield
    path = os.environ.get("EMOLEAK_SERVE_BENCH_OUT", "BENCH_5.json")
    payload = {
        "schema": "emoleak/serving-bench/v1",
        "numpy": np.__version__,
        "n_requests": N_REQUESTS,
        "results": RESULTS,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\n[emoleak] wrote serving benchmark trajectory to {path}")


def _blobs(n_per_class=40, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, size=(N_CLASSES, N_FEATURES))
    X = np.vstack(
        [centers[i] + 0.5 * rng.normal(size=(n_per_class, N_FEATURES))
         for i in range(N_CLASSES)]
    )
    y = np.repeat([f"emo{i}" for i in range(N_CLASSES)], n_per_class)
    return X, y


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    """A registry holding one packed feature-CNN bundle."""
    X, y = _blobs()
    clf = LogisticRegression().fit(X, y)
    cnn = make_classifier("cnn", seed=0, fast=True)
    cnn.epochs = CNN_EPOCHS
    cnn.fit(X, y)
    bundle = ModelBundle.create(
        "bench", "1", classifier=clf, cnn=cnn,
        provenance={"source": "benchmarks/test_serving.py"},
    )
    path = tmp_path_factory.mktemp("bundles") / "bench-1"
    save_bundle(bundle, path)
    registry = ModelRegistry()
    registry.register(path)
    registry.get("bench")  # warm the LRU so neither mode pays the load
    return registry


def _request_rows():
    return list(np.random.default_rng(9).normal(0, 2.0, size=(N_REQUESTS, N_FEATURES)))


def _timed_burst(registry, max_batch: int, max_linger_s: float):
    """Serve the standard burst; returns (seconds, results, batches)."""
    rows = _request_rows()
    with InferenceServer(
        registry, model="bench", max_batch=max_batch,
        max_linger_s=max_linger_s, max_queue=2 * N_REQUESTS,
        default_timeout_s=120.0,
    ) as server:
        t0 = time.perf_counter()
        results = serve_burst(server, rows, timeout_s=120.0)
        elapsed = time.perf_counter() - t0
        batches = server.batches_run
    assert all(r.ok for r in results), "burst had failed requests"
    return elapsed, results, batches


class TestServingThroughput:
    def test_batched_beats_unbatched_by_2x(self, registry):
        """The acceptance gate: micro-batching >= 2x the serial baseline
        on the feature-CNN path, answering identically."""
        # Warm both code paths (policy casts, im2col workspaces) so the
        # measurement reflects steady-state serving.
        _timed_burst(registry, max_batch=8, max_linger_s=0.001)

        serial_s, serial_results, serial_batches = _timed_burst(
            registry, max_batch=1, max_linger_s=0.0
        )
        batched_s, batched_results, batched_batches = _timed_burst(
            registry, max_batch=32, max_linger_s=0.002
        )

        serial_rps = N_REQUESTS / serial_s
        batched_rps = N_REQUESTS / batched_s
        speedup = batched_rps / serial_rps
        mean_batch = N_REQUESTS / batched_batches

        print_header("Serving benchmark - batched vs unbatched (feature CNN)")
        print(f"  unbatched : {serial_s:7.3f} s  {serial_rps:8.1f} req/s  "
              f"({serial_batches} batches)")
        print(f"  batched   : {batched_s:7.3f} s  {batched_rps:8.1f} req/s  "
              f"({batched_batches} batches, mean size {mean_batch:.1f})")
        print(f"  speedup   : {speedup:5.2f}x  (gate: 2x)")

        labels_match = [
            b.label == s.label for b, s in zip(batched_results, serial_results)
        ]
        RESULTS["feature_cnn_burst"] = {
            "n_requests": N_REQUESTS,
            "unbatched": {
                "seconds": serial_s, "req_per_s": serial_rps,
                "batches": serial_batches, "max_batch": 1,
            },
            "batched": {
                "seconds": batched_s, "req_per_s": batched_rps,
                "batches": batched_batches, "max_batch": 32,
                "mean_batch_size": mean_batch,
            },
            "speedup": speedup,
            "predictions_identical": all(labels_match),
        }

        assert all(labels_match), "batched burst answered differently"
        assert speedup >= 2.0, (
            f"batched serving only {speedup:.2f}x the unbatched throughput "
            f"on the feature-CNN path (gate: 2x)"
        )

    def test_batched_latency_stays_bounded(self, registry):
        """Lingering for a batch must not blow up tail latency: the p95
        request latency stays within a small multiple of a batch run."""
        elapsed, results, batches = _timed_burst(
            registry, max_batch=32, max_linger_s=0.002
        )
        latencies = sorted(r.latency_s for r in results)
        p50 = latencies[len(latencies) // 2]
        p95 = latencies[int(0.95 * len(latencies))]
        print_header("Serving benchmark - latency under batching")
        print(f"  p50 {p50 * 1e3:7.2f} ms   p95 {p95 * 1e3:7.2f} ms   "
              f"burst {elapsed:5.3f} s over {batches} batches")
        RESULTS["feature_cnn_latency"] = {
            "p50_s": p50, "p95_s": p95, "burst_seconds": elapsed,
            "batches": batches,
        }
        # The whole burst is submitted at once, so the worst request waits
        # for every batch before it; p95 must stay inside the burst wall.
        assert p95 <= elapsed + 0.1
