"""Paper Fig. 4: region detection — earpiece vs loudspeaker.

Fig. 4 shows the same speech through (a) the ear speaker, raw — no
visible trace; (b) the ear speaker after an 8 Hz high-pass — regions
emerge; (c) the loudspeaker — regions obvious without any filter. The
paper reports >=45 % extraction for the ear speaker and 90 % table-top.

We reproduce all three panels quantitatively.
"""

import numpy as np

from repro.attack.regions import RegionDetector, detection_rate
from repro.phone.channel import VibrationChannel
from repro.phone.recording import record_session

from benchmarks._common import corpus_for, print_header

N_UTTERANCES = 40


def _session(mode, placement, seed=0):
    corpus = corpus_for("tess")
    channel = VibrationChannel("oneplus7t", mode=mode, placement=placement)
    return record_session(
        corpus, channel, specs=corpus.specs[:N_UTTERANCES], seed=seed
    )


def test_fig4_earpiece_vs_loudspeaker(benchmark):
    out = {}

    def run():
        out["ear"] = _session("ear_speaker", "handheld")
        out["loud"] = _session("loudspeaker", "table_top")
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    ear, loud = out["ear"], out["loud"]
    truth_ear = [(e.start_s, e.end_s) for e in ear.events]
    truth_loud = [(e.start_s, e.end_s) for e in loud.events]

    # Panel (a): raw earpiece trace — no usable region contrast. The
    # unfiltered detector sees mostly hand/body motion.
    unfiltered = RegionDetector(highpass_hz=None)
    raw_env = unfiltered.detection_signal(ear.trace, ear.fs)
    speech_mask = np.zeros(ear.trace.size, dtype=bool)
    for start, end in truth_ear:
        speech_mask[int(start * ear.fs) : int(end * ear.fs)] = True
    raw_contrast = raw_env[speech_mask].mean() / raw_env[~speech_mask].mean()

    # Panel (b): 8 Hz high-pass on the detection path reveals regions.
    handheld = RegionDetector.for_setting("handheld")
    hp_env = handheld.detection_signal(ear.trace, ear.fs)
    hp_contrast = hp_env[speech_mask].mean() / hp_env[~speech_mask].mean()
    ear_regions = handheld.detect(ear.trace, ear.fs)
    ear_rate = detection_rate(ear_regions, truth_ear)

    # Panel (c): loudspeaker needs no filter at all.
    tabletop = RegionDetector.for_setting("table_top")
    loud_regions = tabletop.detect(loud.trace, loud.fs)
    loud_rate = detection_rate(loud_regions, truth_loud)

    print_header("Fig. 4 - region detection: earpiece vs loudspeaker")
    print(f"  earpiece raw speech/gap envelope contrast : {raw_contrast:5.2f}x")
    print(f"  earpiece 8 Hz-HPF speech/gap contrast     : {hp_contrast:5.2f}x")
    print(f"  earpiece extraction rate (paper >=45 %)    : {ear_rate:.0%}")
    print(f"  loudspeaker extraction rate (paper ~90 %)  : {loud_rate:.0%}")

    # The filter must improve the earpiece contrast (panel a -> b).
    assert hp_contrast > raw_contrast
    # Paper floors.
    assert ear_rate >= 0.45
    assert loud_rate >= 0.90
    # Loudspeaker detection is the easy case.
    assert loud_rate >= ear_rate
