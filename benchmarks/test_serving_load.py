"""Sustained-load serving benchmark: multi-tenant Poisson traffic over TCP.

The gate for the network front-end: several simulated tenants fire an
**open-loop Poisson workload** (arrivals keep coming whether or not
answers came back — the millions-of-phones traffic model) at a
:class:`~repro.serve.frontend.ServingFrontend` whose dispatch into the
batching :class:`~repro.serve.server.InferenceServer` is paced to a
calibrated fraction of the box's measured capacity, so the run is
genuinely overloaded on every machine it lands on:

- three well-behaved **realtime** tenants offer less than their fair
  share each;
- one **aggressor** floods at ~5x its token-bucket contract — its
  excess must be shed (with retry-after hints), not served at the
  expense of everyone else;
- one **backfill** tenant rides the low-priority lane and only gets
  residual capacity.

Asserted, per the acceptance criteria:

1. **zero lost accepted requests** — every submitted request receives
   exactly one response, and every *accepted* one receives a verdict
   (the frontend's accepted == answered after drain);
2. **p99 latency bound** on the realtime lane (frontend accept-to-answer);
3. **fairness** — each well-behaved tenant's goodput is at least 80% of
   ``min(what it sent, its weighted fair share)`` while the aggressor
   floods, and the aggressor cannot exceed its admission contract.

Results land in ``BENCH_6.json`` (``EMOLEAK_LOAD_BENCH_OUT`` overrides
the path, ``EMOLEAK_LOAD_BENCH_SECONDS`` the sustained-window length),
in the ``BENCH_5.json`` trajectory format, uploaded by CI's
serving-load-smoke job.
"""

from __future__ import annotations

import asyncio
import json
import os

import numpy as np
import pytest

from repro.ml.logistic import LogisticRegression
from repro.serve import (
    AsyncFrontendClient,
    InferenceServer,
    ModelBundle,
    ModelRegistry,
    ServingFrontend,
    TenantConfig,
    save_bundle,
)

from benchmarks._common import print_header

N_CLASSES = 3
N_FEATURES = 24

#: Nominal tenant mix, scaled to the box's measured capacity. Rates are
#: requests/s at scale 1.0 (dispatch paced to BASE_DISPATCH_RPS).
BASE_DISPATCH_RPS = 240.0
REALTIME_TENANTS = ("rt-a", "rt-b", "rt-c")
RT_OFFERED = 40.0  # each; under their 60/s admission contract
RT_RATE = 60.0
FLOOD_OFFERED = 400.0  # ~5x its contract: most of this must be shed
FLOOD_RATE = 80.0
BULK_OFFERED = 30.0  # backfill lane, residual capacity only

DURATION_S = max(2.0, float(os.environ.get("EMOLEAK_LOAD_BENCH_SECONDS", "6")))
P99_BOUND_S = 0.75
FAIR_SHARE_FLOOR = 0.80

#: Filled by the test, serialised to BENCH_6.json at session end.
RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_artifact():
    """Write the sustained-load trajectory once the workload reported."""
    yield
    path = os.environ.get("EMOLEAK_LOAD_BENCH_OUT", "BENCH_6.json")
    payload = {
        "schema": "emoleak/serving-load-bench/v1",
        "numpy": np.__version__,
        "duration_s": DURATION_S,
        "results": RESULTS,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\n[emoleak] wrote serving-load trajectory to {path}")


def _blobs(n_per_class=40, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, size=(N_CLASSES, N_FEATURES))
    X = np.vstack(
        [centers[i] + 0.5 * rng.normal(size=(n_per_class, N_FEATURES))
         for i in range(N_CLASSES)]
    )
    y = np.repeat([f"emo{i}" for i in range(N_CLASSES)], n_per_class)
    return X, y


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    X, y = _blobs()
    clf = LogisticRegression().fit(X, y)
    bundle = ModelBundle.create(
        "load", "1", classifier=clf,
        provenance={"source": "benchmarks/test_serving_load.py"},
    )
    path = tmp_path_factory.mktemp("bundles") / "load-1"
    save_bundle(bundle, path)
    registry = ModelRegistry()
    registry.register(path)
    registry.get("load")
    return registry


def _request_rows(n=64, seed=9):
    return list(
        np.random.default_rng(seed).normal(0, 2.0, size=(n, N_FEATURES))
    )


def _calibrate_capacity(registry) -> float:
    """Closed-loop round-trip throughput (req/s) with no pacing or limits."""
    rows = _request_rows()

    async def burst(port, n):
        client = await AsyncFrontendClient("127.0.0.1", port, "cal").connect()
        try:
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            futures = [
                client.submit(rows[i % len(rows)], timeout_s=30.0)
                for i in range(n)
            ]
            responses = await asyncio.gather(*futures)
            elapsed = loop.time() - t0
        finally:
            await client.close()
        assert all(r["status"] == "ok" for r in responses)
        return n / elapsed

    with InferenceServer(
        registry, model="load", max_batch=32, max_linger_s=0.002,
        default_timeout_s=60.0,
    ) as server:
        with ServingFrontend(
            server,
            default_tenant=TenantConfig(
                "default", rate=float("inf"), burst=512.0, max_backlog=1024
            ),
        ) as frontend:
            asyncio.run(burst(frontend.port, 64))  # warm both code paths
            return asyncio.run(burst(frontend.port, 256))


async def _tenant_load(port, tenant, lane, rows, rate, duration, seed):
    """Open-loop Poisson arrivals for one tenant; returns its raw stats."""
    rng = np.random.default_rng(seed)
    client = await AsyncFrontendClient("127.0.0.1", port, tenant).connect()
    loop = asyncio.get_running_loop()
    pending = []
    t0 = loop.time()
    t = float(rng.exponential(1.0 / rate))
    i = 0
    try:
        while t < duration:
            delay = (t0 + t) - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            future = client.submit(
                rows[i % len(rows)], lane=lane, timeout_s=20.0
            )
            pending.append((future, loop.time()))
            i += 1
            t += float(rng.exponential(1.0 / rate))
        responses = []
        for future, sent_at in pending:
            response = await asyncio.wait_for(future, timeout=60.0)
            responses.append((response, loop.time() - sent_at))
    finally:
        await client.close()
    return {"tenant": tenant, "lane": lane, "sent": len(pending),
            "responses": responses}


async def _run_workload(port, duration, scale):
    tasks = [
        _tenant_load(
            port, tenant, "realtime", _request_rows(seed=10 + i),
            RT_OFFERED * scale, duration, seed=100 + i,
        )
        for i, tenant in enumerate(REALTIME_TENANTS)
    ]
    tasks.append(
        _tenant_load(
            port, "flood", "realtime", _request_rows(seed=20),
            FLOOD_OFFERED * scale, duration, seed=200,
        )
    )
    tasks.append(
        _tenant_load(
            port, "bulk", "backfill", _request_rows(seed=21),
            BULK_OFFERED * scale, duration, seed=300,
        )
    )
    return await asyncio.gather(*tasks)


def _summarise(stats, duration):
    out = {}
    for entry in stats:
        responses = [r for r, _ in entry["responses"]]
        ok = [r for r in responses if r["status"] == "ok"]
        shed = [r for r in responses if r["status"] == "shed"]
        serve_lat = sorted(r["latency_s"] for r in ok)
        client_lat = sorted(
            lat for r, lat in entry["responses"] if r["status"] == "ok"
        )
        summary = {
            "lane": entry["lane"],
            "sent": entry["sent"],
            "answered": len(responses),
            "ok": len(ok),
            "shed": len(shed),
            "error": len(responses) - len(ok) - len(shed),
            "goodput_rps": len(ok) / duration,
            "shed_reasons": {},
            "retry_after_hints_positive": all(
                r["retry_after_s"] > 0 for r in shed
            ),
        }
        for r in shed:
            reason = r["reason"]
            summary["shed_reasons"][reason] = (
                summary["shed_reasons"].get(reason, 0) + 1
            )
        if serve_lat:
            summary["p50_serve_s"] = serve_lat[len(serve_lat) // 2]
            summary["p99_serve_s"] = serve_lat[
                min(len(serve_lat) - 1, int(0.99 * len(serve_lat)))
            ]
            summary["p99_client_s"] = client_lat[
                min(len(client_lat) - 1, int(0.99 * len(client_lat)))
            ]
        out[entry["tenant"]] = summary
    return out


class TestSustainedLoad:
    def test_fairness_latency_and_no_lost_requests_under_flood(self, registry):
        capacity = _calibrate_capacity(registry)
        dispatch_rps = max(20.0, min(BASE_DISPATCH_RPS, 0.5 * capacity))
        scale = dispatch_rps / BASE_DISPATCH_RPS

        tenants = [
            TenantConfig(name, weight=1.0, rate=RT_RATE * scale,
                         burst=max(4.0, 0.25 * RT_RATE * scale))
            for name in REALTIME_TENANTS
        ]
        tenants.append(
            TenantConfig("flood", weight=1.0, rate=FLOOD_RATE * scale,
                         burst=max(4.0, 0.25 * FLOOD_RATE * scale),
                         max_backlog=64)
        )
        tenants.append(TenantConfig("bulk", weight=1.0, rate=float("inf")))

        with InferenceServer(
            registry, model="load", max_batch=32, max_linger_s=0.002,
            max_queue=512, default_timeout_s=60.0,
        ) as server:
            frontend = ServingFrontend(
                server, tenants=tenants, dispatch_rate=dispatch_rps,
            ).start()
            try:
                stats = asyncio.run(
                    _run_workload(frontend.port, DURATION_S, scale)
                )
            finally:
                frontend.stop()
            accepted, answered = frontend.accepted, frontend.answered

        per_tenant = _summarise(stats, DURATION_S)
        total_sent = sum(s["sent"] for s in per_tenant.values())
        total_answered = sum(s["answered"] for s in per_tenant.values())
        total_ok = sum(s["ok"] for s in per_tenant.values())
        total_shed = sum(s["shed"] for s in per_tenant.values())

        # Weighted fair share on the realtime lane: four weight-1 tenants
        # compete for the paced dispatch rate.
        rt_share = dispatch_rps / (len(REALTIME_TENANTS) + 1)

        print_header("Serving-load benchmark - multi-tenant Poisson open loop")
        print(f"  capacity   : {capacity:7.1f} req/s closed-loop calibration")
        print(f"  dispatch   : {dispatch_rps:7.1f} req/s paced "
              f"(scale {scale:.2f}, fair share {rt_share:.1f}/s)")
        print(f"  duration   : {DURATION_S:.1f} s sustained window")
        print(f"  traffic    : {total_sent} sent, {total_answered} answered, "
              f"{total_ok} ok, {total_shed} shed")
        for name, s in sorted(per_tenant.items()):
            lat = (f"p99 {1e3 * s['p99_serve_s']:6.1f} ms"
                   if "p99_serve_s" in s else "p99     n/a")
            print(f"  {name:<8} : {s['lane']:<8} sent {s['sent']:>5}  "
                  f"ok {s['ok']:>5}  shed {s['shed']:>5}  "
                  f"goodput {s['goodput_rps']:7.1f}/s  {lat}")

        RESULTS["sustained_load"] = {
            "capacity_rps": capacity,
            "dispatch_rps": dispatch_rps,
            "scale": scale,
            "fair_share_rps": rt_share,
            "duration_s": DURATION_S,
            "total": {
                "sent": total_sent,
                "answered": total_answered,
                "ok": total_ok,
                "shed": total_shed,
                "accepted_by_frontend": accepted,
                "answered_by_frontend": answered,
            },
            "tenants": per_tenant,
        }

        # 1. Zero lost requests: every submission answered exactly once,
        #    and every frontend-accepted request got a verdict.
        assert total_answered == total_sent, (
            f"{total_sent - total_answered} requests vanished without an answer"
        )
        assert accepted == answered, (
            f"frontend accepted {accepted} but answered {answered}: "
            f"an accepted request was lost"
        )
        for name, s in per_tenant.items():
            assert s["error"] == 0, f"{name} saw {s['error']} error responses"
            assert s["retry_after_hints_positive"], (
                f"{name} got a shed response without a positive retry_after_s"
            )

        # 2. p99 latency bound on the realtime lane.
        for name in REALTIME_TENANTS:
            p99 = per_tenant[name]["p99_serve_s"]
            assert p99 <= P99_BOUND_S, (
                f"{name} realtime p99 {p99 * 1e3:.1f} ms over the "
                f"{P99_BOUND_S * 1e3:.0f} ms bound"
            )

        # 3. Fairness under flood: each well-behaved tenant keeps >= 80%
        #    of min(what it sent, its weighted fair share).
        for name in REALTIME_TENANTS:
            s = per_tenant[name]
            entitled = min(s["sent"] / DURATION_S, rt_share)
            assert s["goodput_rps"] >= FAIR_SHARE_FLOOR * entitled, (
                f"{name} goodput {s['goodput_rps']:.1f}/s below "
                f"{FAIR_SHARE_FLOOR:.0%} of its entitled {entitled:.1f}/s "
                f"while the aggressor flooded"
            )

        # The aggressor is contained by its admission contract...
        flood = per_tenant["flood"]
        flood_budget = (
            FLOOD_RATE * scale * DURATION_S
            + max(4.0, 0.25 * FLOOD_RATE * scale)
        )
        assert flood["ok"] <= 1.1 * flood_budget + 1, (
            f"aggressor served {flood['ok']} > its token budget "
            f"{flood_budget:.0f}"
        )
        # ...and its excess was shed with hints, not dropped.
        assert flood["shed"] > 0, "the flood was never shed"
        assert "rate" in flood["shed_reasons"], flood["shed_reasons"]

        # Backfill rides residual capacity without being starved outright.
        assert per_tenant["bulk"]["ok"] > 0, "backfill lane fully starved"
