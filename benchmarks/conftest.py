"""Benchmark-session hooks.

Set ``EMOLEAK_TRACE_OUT=<path>`` to export the whole benchmark
session's span trace as JSON Lines when pytest finishes — CI uploads
the smoke run's trace as a build artifact so a slow benchmark can be
diagnosed from the trace instead of a rerun under a profiler.
"""

from __future__ import annotations

import os


def pytest_sessionfinish(session, exitstatus):
    path = os.environ.get("EMOLEAK_TRACE_OUT")
    if not path:
        return
    from repro.obs import tracer

    n_spans = tracer().export_jsonl(path)
    print(f"\n[emoleak] wrote {n_spans} trace spans to {path}")
