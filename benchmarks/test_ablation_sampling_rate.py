"""Paper Section VI-A: the Android-12 200 Hz sampling-rate cap.

The paper re-runs the TESS/OnePlus 7T/loudspeaker experiment with the
accelerometer capped at 200 Hz (the Android 12 background-app limit) and
reports 80.1 % vs 95.3 % at the default rate — degraded but still >5x
chance.

We sweep the output rate. Expected shape: accuracy at 200 Hz stays >=4x
chance; the default-rate run is at least as good. (Known deviation,
recorded in EXPERIMENTS.md: our Table II features are envelope-dominated,
so the cap costs only a few points here vs ~15 in the paper.)
"""


from repro.eval.experiment import run_feature_experiment

from benchmarks._common import features_for, print_header

RATES = (None, 200.0, 100.0)


def test_ablation_sampling_rate(benchmark):
    accuracies = {}

    def run():
        for rate in RATES:
            data = features_for("tess", "oneplus7t", sample_rate=rate)
            result = run_feature_experiment(data, "logistic", seed=0, fast=True)
            accuracies[rate] = result.accuracy
        return accuracies

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation VI-A - accelerometer sampling-rate cap (TESS, 7T)")
    print(f"  default rate : {accuracies[None]:.2%}  (paper 95.3 %)")
    print(f"  200 Hz cap   : {accuracies[200.0]:.2%}  (paper 80.1 %)")
    print(f"  100 Hz       : {accuracies[100.0]:.2%}")

    chance = 1.0 / 7.0
    # The Android cap leaves the attack well above chance (paper: >5x).
    assert accuracies[200.0] > 4 * chance
    # Default rate is at least as good as the capped rate.
    assert accuracies[None] >= accuracies[200.0] - 0.03
    # Halving again should not *improve* things.
    assert accuracies[100.0] <= accuracies[None] + 0.03
