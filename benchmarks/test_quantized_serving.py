"""Quantised-serving benchmark: float32 vs int8 vs distilled-int8.

Packs three variants of the same feature-CNN pipeline — the float32
teacher, its post-training int8 quantisation, and an int8-quantised
distilled student — registers them side by side, and fires the same
request burst at each through the micro-batching server. The rollout
premise of the quantised path is the acceptance gate: **the
distilled-int8 variant must serve at >= 2x the float32 throughput
while losing at most one accuracy point**, and the plain int8 variant
must also stay within one point (its win is memory/bandwidth, not
FLOPs, so it carries no throughput gate).

A second test drives a canary rollout of the quantised variant under
load: the deterministic counter split must land exactly on the
configured fraction, and rolling back mid-burst must not drop a single
accepted request.

All numbers land in ``BENCH_9.json`` (override with
``EMOLEAK_QUANT_BENCH_OUT``) so CI uploads the trajectory.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.eval.experiment import FeatureCNNClassifier
from repro.ml.logistic import LogisticRegression
from repro.nn import distill_feature_cnn
from repro.serve import (
    InferenceServer,
    ModelBundle,
    ModelRegistry,
    quantize_bundle,
    save_bundle,
    serve_burst,
)

from benchmarks._common import print_header

N_CLASSES = 3
N_FEATURES = 24
N_REQUESTS = 256
TEACHER_EPOCHS = 10
STUDENT_WIDTH = 0.35
CANARY_FRACTION = 0.25

#: Filled by the tests, serialised to BENCH_9.json at session end.
RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_artifact():
    """Write the quantised-serving trajectory once every test reported."""
    yield
    path = os.environ.get("EMOLEAK_QUANT_BENCH_OUT", "BENCH_9.json")
    payload = {
        "schema": "emoleak/quantized-serving-bench/v1",
        "numpy": np.__version__,
        "n_requests": N_REQUESTS,
        "student_width_scale": STUDENT_WIDTH,
        "results": RESULTS,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\n[emoleak] wrote quantised serving trajectory to {path}")


def _blobs(n_per_class=40, seed=0, noise_seed=None):
    """Gaussian blobs; ``noise_seed`` draws held-out samples around the
    SAME class centers (the train/eval split shares the distribution)."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, size=(N_CLASSES, N_FEATURES))
    noise = np.random.default_rng(seed if noise_seed is None else noise_seed)
    X = np.vstack(
        [centers[i] + 0.5 * noise.normal(size=(n_per_class, N_FEATURES))
         for i in range(N_CLASSES)]
    )
    y = np.repeat([f"emo{i}" for i in range(N_CLASSES)], n_per_class)
    return X, y


@pytest.fixture(scope="module")
def variants(tmp_path_factory):
    """Registry with bench@1 (float32), @1-int8, @1-distilled-int8."""
    X, y = _blobs()
    clf = LogisticRegression().fit(X, y)
    teacher = FeatureCNNClassifier(
        epochs=TEACHER_EPOCHS, width_scale=1.0, seed=0
    ).fit(X, y)
    float_bundle = ModelBundle.create(
        "bench", "1", classifier=clf, cnn=teacher,
        provenance={"source": "benchmarks/test_quantized_serving.py"},
    )
    student = distill_feature_cnn(
        teacher, X, y, width_scale=STUDENT_WIDTH, epochs=TEACHER_EPOCHS,
    )
    student_bundle = ModelBundle.create(
        "bench", "1-distilled", classifier=clf, cnn=student,
        provenance={"distill_width": STUDENT_WIDTH},
    )

    root = tmp_path_factory.mktemp("bundles")
    registry = ModelRegistry(max_loaded=8)
    float_path = root / "bench-1"
    save_bundle(float_bundle, float_path)
    registry.register(float_path)
    int8_path = root / "bench-1-int8.zip"
    save_bundle(quantize_bundle(float_bundle, version="1-int8"), int8_path)
    registry.register(int8_path)
    dist_path = root / "bench-1-distilled-int8.zip"
    save_bundle(
        quantize_bundle(
            student_bundle, version="1-distilled-int8",
            variant="distilled-int8",
        ),
        dist_path,
    )
    registry.register(dist_path)
    registry.set_default("bench", "1")
    for ref in ("bench@1", "bench@1-int8", "bench@1-distilled-int8"):
        registry.get(ref)  # warm the LRU so no burst pays the load
    return registry


def _request_rows():
    return list(
        np.random.default_rng(9).normal(0, 2.0, size=(N_REQUESTS, N_FEATURES))
    )


def _timed_burst(registry, ref: str):
    rows = _request_rows()
    with InferenceServer(
        registry, model=ref, max_batch=32, max_linger_s=0.002,
        max_queue=2 * N_REQUESTS, default_timeout_s=120.0,
    ) as server:
        t0 = time.perf_counter()
        results = serve_burst(server, rows, timeout_s=120.0)
        elapsed = time.perf_counter() - t0
    assert all(r.ok for r in results), f"burst against {ref} had failures"
    assert all(r.used == "cnn" for r in results), f"{ref} fell back off-CNN"
    return elapsed, results


def _accuracy(registry, ref: str) -> float:
    X_eval, y_eval = _blobs(n_per_class=60, seed=0, noise_seed=42)
    bundle = registry.get(ref)
    return float(np.mean(bundle.predict(X_eval) == y_eval))


class TestQuantizedThroughput:
    def test_distilled_int8_clears_2x_with_1pp_accuracy(self, variants):
        """The acceptance gate for the quantised rollout path."""
        _timed_burst(variants, "bench@1")  # warm caches/workspaces

        measured = {}
        for ref in ("bench@1", "bench@1-int8", "bench@1-distilled-int8"):
            seconds, _results = _timed_burst(variants, ref)
            measured[ref] = {
                "seconds": seconds,
                "req_per_s": N_REQUESTS / seconds,
                "accuracy": _accuracy(variants, ref),
            }

        float_stats = measured["bench@1"]
        print_header("Quantised serving - throughput and accuracy by variant")
        for ref, stats in measured.items():
            speedup = stats["req_per_s"] / float_stats["req_per_s"]
            print(
                f"  {ref:28s} {stats['seconds']:7.3f} s  "
                f"{stats['req_per_s']:8.1f} req/s  {speedup:5.2f}x  "
                f"acc {stats['accuracy']:.4f}"
            )
            stats["speedup_vs_float32"] = speedup
            stats["accuracy_drop"] = float_stats["accuracy"] - stats["accuracy"]
        RESULTS["variant_burst"] = measured

        for ref in ("bench@1-int8", "bench@1-distilled-int8"):
            drop = measured[ref]["accuracy_drop"]
            assert drop <= 0.01, (
                f"{ref} lost {drop * 100:.2f} accuracy points (gate: 1pp)"
            )
        speedup = measured["bench@1-distilled-int8"]["speedup_vs_float32"]
        assert speedup >= 2.0, (
            f"distilled-int8 served at only {speedup:.2f}x the float32 "
            f"throughput (gate: 2x)"
        )


class TestCanaryUnderLoad:
    def test_fraction_exact_and_rollback_drops_nothing(self, variants):
        """Canary split is exact under a full burst; rollback loses none."""
        rows = _request_rows()
        with InferenceServer(
            variants, model="bench", max_batch=32, max_linger_s=0.002,
            max_queue=2 * N_REQUESTS, default_timeout_s=120.0,
        ) as server:
            server.set_canary(
                "bench", "1-distilled-int8", fraction=CANARY_FRACTION
            )
            results = serve_burst(server, rows, timeout_s=120.0)
            status = server.canary_status("bench")
            restored = server.rollback_canary("bench")
            post = serve_burst(server, rows[:32], timeout_s=120.0)
            accepted = server.requests_accepted
            answered = server.requests_answered

        routed = sum(r.model == "bench@1-distilled-int8" for r in results)
        expected = int(N_REQUESTS * CANARY_FRACTION)
        print_header("Quantised serving - canary rollout under load")
        print(
            f"  fraction {CANARY_FRACTION}: routed {routed}/{N_REQUESTS} "
            f"(expected exactly {expected}); rollback -> default "
            f"{restored!r}; {answered}/{accepted} answered"
        )
        RESULTS["canary_rollout"] = {
            "fraction": CANARY_FRACTION,
            "n_requests": N_REQUESTS,
            "routed": routed,
            "expected_routed": expected,
            "rollback_default": restored,
            "accepted": accepted,
            "answered": answered,
        }

        assert all(r.ok for r in results) and all(r.ok for r in post)
        assert routed == expected == status["routed"]
        assert restored == "1"
        assert all(r.model == "bench" for r in post)  # no candidate traffic
        assert accepted == answered == N_REQUESTS + 32
