"""Paper Fig. 7: CNN training/validation loss and accuracy curves.

Fig. 7a/b: loudspeaker feature-CNN on TESS — loss decays toward zero,
train and validation accuracy climb together to a high plateau.
Fig. 7c/d: ear-speaker feature-CNN on TESS — loss decays but validation
accuracy plateaus much lower, with a visible generalisation gap.

We train the paper's feature CNN in both settings and assert those curve
shapes from the recorded History.
"""


from repro.eval.experiment import run_feature_experiment

from benchmarks._common import features_for, print_header


def _curve_summary(history):
    return (
        f"loss {history.loss[0]:.3f}->{history.loss[-1]:.3f}  "
        f"acc {history.accuracy[0]:.2%}->{history.accuracy[-1]:.2%}  "
        f"val_acc {history.val_accuracy[0]:.2%}->{history.val_accuracy[-1]:.2%}"
    )


def test_fig7ab_loudspeaker_training_curves(benchmark):
    out = {}

    def run():
        data = features_for("tess", "oneplus7t")
        out["result"] = run_feature_experiment(data, "cnn", seed=0, fast=True)
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    history = out["result"].history

    print_header("Fig. 7a/b - loudspeaker CNN training curves (TESS)")
    print("  " + _curve_summary(history))

    assert history.loss[-1] < 0.5 * history.loss[0], "training loss must decay"
    assert history.accuracy[-1] > history.accuracy[0]
    assert history.val_accuracy[-1] > 0.45, "validation accuracy should climb high"
    # Validation roughly tracks training in the loudspeaker setting.
    assert history.accuracy[-1] - history.val_accuracy[-1] < 0.45


def test_fig7cd_ear_speaker_training_curves(benchmark):
    out = {}

    def run():
        data = features_for(
            "tess", "oneplus7t", mode="ear_speaker", placement="handheld"
        )
        out["result"] = run_feature_experiment(data, "cnn", seed=0, fast=True)
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    history = out["result"].history

    print_header("Fig. 7c/d - ear-speaker CNN training curves (TESS)")
    print("  " + _curve_summary(history))

    assert history.loss[-1] < history.loss[0]
    # Ear-speaker validation accuracy plateaus well below the loudspeaker's.
    assert 1.0 / 7.0 < history.val_accuracy[-1] < 0.85


def test_fig7_loudspeaker_beats_ear_curves(benchmark):
    finals = {}

    def run():
        loud = run_feature_experiment(
            features_for("tess", "oneplus7t"), "cnn", seed=0, fast=True
        )
        ear = run_feature_experiment(
            features_for("tess", "oneplus7t", mode="ear_speaker",
                         placement="handheld"),
            "cnn", seed=0, fast=True,
        )
        finals["loud"] = loud.history.val_accuracy[-1]
        finals["ear"] = ear.history.val_accuracy[-1]
        return finals

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Fig. 7 - final validation accuracy, loudspeaker vs ear")
    print(f"  loudspeaker {finals['loud']:.2%}  ear {finals['ear']:.2%}")
    assert finals["loud"] > finals["ear"]
