"""NN compute-kernel microbenchmarks: GEMM vs reference conv kernels.

Times the conv kernels three ways — the seed's kernel-offset loop in
float64 (``reference/f64``), the im2col GEMM rewrite in float64
(``gemm/f64``), and GEMM under the float32 precision policy
(``gemm/f32``) — first as isolated layer forward/backward
microbenchmarks, then as full one-epoch ``fit`` runs of the paper's
feature CNN and spectrogram CNN.

The acceptance gate lives here: the GEMM+float32 spectrogram-CNN epoch
must run at least 2x faster than the seed kernel path. All timings and
the derived speedups are written to ``BENCH_4.json`` (override the path
with ``EMOLEAK_BENCH_OUT``) so CI uploads the trajectory as an artifact.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.attack.models import build_feature_cnn, build_spectrogram_cnn
from repro.nn.layers import Conv1D, Conv2D
from repro.nn.optim import Adam
from repro.nn.policy import policy_scope

from benchmarks._common import print_header

#: (label, conv_kernel, compute_dtype). ``reference/f64`` is the seed path.
CONFIGS = [
    ("reference/f64", "reference", "float64"),
    ("gemm/f64", "gemm", "float64"),
    ("gemm/f32", "gemm", "float32"),
]

#: Filled by the tests, serialised to BENCH_4.json at session end.
RESULTS: dict[str, dict[str, float]] = {}


def _best_of(fn, repeats: int = 3) -> float:
    """Best-of-N wall time: the least-noisy point estimate on shared CI."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _print_block(name: str) -> None:
    print_header(f"NN kernel benchmark - {name}")
    block = RESULTS[name]
    base = block["reference/f64"]
    for label, _, _ in CONFIGS:
        secs = block[label]
        print(f"  {label:<14}: {secs * 1e3:9.2f} ms  ({base / secs:5.2f}x)")


@pytest.fixture(scope="module", autouse=True)
def _write_bench_artifact():
    """Write the timing trajectory once every benchmark has reported."""
    yield
    path = os.environ.get("EMOLEAK_BENCH_OUT", "BENCH_4.json")
    speedups = {
        name: {
            label: block["reference/f64"] / block[label]
            for label, _, _ in CONFIGS
        }
        for name, block in RESULTS.items()
    }
    payload = {
        "schema": "emoleak/nn-kernel-bench/v1",
        "numpy": np.__version__,
        "configs": [
            {"label": label, "conv_kernel": kernel, "compute_dtype": dtype}
            for label, kernel, dtype in CONFIGS
        ],
        "seconds": RESULTS,
        "speedup_vs_reference_f64": speedups,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\n[emoleak] wrote kernel benchmark trajectory to {path}")


def _conv_layer_seconds(make_layer, input_shape, x64, kernel, dtype):
    """Forward+backward wall time for one conv layer under a config."""
    with policy_scope(compute_dtype=dtype, conv_kernel=kernel):
        layer = make_layer()
        layer.build(input_shape, np.random.default_rng(0))
    x = x64.astype(layer.params[0].dtype)
    grad_shape = layer.forward(x, training=True).shape
    grad = np.ones(grad_shape, dtype=x.dtype)

    def step():
        layer.forward(x, training=True)
        layer.backward(grad)

    step()  # warm the im2col workspace before timing
    return _best_of(step)


class TestConvMicrobench:
    def test_conv2d_forward_backward(self):
        x64 = np.random.default_rng(1).normal(size=(32, 32, 32, 8))
        RESULTS["conv2d_32x32x8_f16k3"] = {
            label: _conv_layer_seconds(
                lambda: Conv2D(16, (3, 3), padding="same"),
                (32, 32, 8), x64, kernel, dtype,
            )
            for label, kernel, dtype in CONFIGS
        }
        _print_block("conv2d_32x32x8_f16k3")

    def test_conv1d_forward_backward(self):
        x64 = np.random.default_rng(2).normal(size=(64, 96, 8))
        RESULTS["conv1d_96x8_f16k5"] = {
            label: _conv_layer_seconds(
                lambda: Conv1D(16, 5, padding="same"),
                (96, 8), x64, kernel, dtype,
            )
            for label, kernel, dtype in CONFIGS
        }
        _print_block("conv1d_96x8_f16k5")


def _epoch_seconds(builder, shape, width_scale, n, kernel, dtype, batch_size=32):
    """One-epoch fit wall time for a paper CNN under a config."""
    rng = np.random.default_rng(0)
    X = rng.random((n,) + shape) - 0.5
    y = rng.integers(0, 4, n)
    with policy_scope(compute_dtype=dtype, conv_kernel=kernel):
        model = builder(4, width_scale=width_scale, seed=0)
        model.build(shape)

        def epoch():
            model.fit(
                X, y, epochs=1, batch_size=batch_size,
                optimizer=Adam(lr=1e-3), shuffle_seed=0,
            )

        epoch()  # warm workspaces + dtype casts before timing
        return _best_of(epoch, repeats=2)


class TestModelEpochBench:
    def test_feature_cnn_epoch(self):
        RESULTS["feature_cnn_epoch"] = {
            label: _epoch_seconds(
                build_feature_cnn, (24, 1), 0.5, 128, kernel, dtype
            )
            for label, kernel, dtype in CONFIGS
        }
        _print_block("feature_cnn_epoch")

    def test_spectrogram_cnn_epoch_meets_speedup_gate(self):
        """Acceptance gate: GEMM+float32 epoch >= 2x the seed kernel path.

        Paper-scale width: at toy widths the conv layers are too small to
        dominate and the measurement reflects Python overhead instead.
        """
        RESULTS["spectrogram_cnn_epoch"] = {
            label: _epoch_seconds(
                build_spectrogram_cnn, (32, 32, 1), 1.0, 64, kernel, dtype
            )
            for label, kernel, dtype in CONFIGS
        }
        _print_block("spectrogram_cnn_epoch")
        block = RESULTS["spectrogram_cnn_epoch"]
        speedup = block["reference/f64"] / block["gemm/f32"]
        assert speedup >= 2.0, (
            f"GEMM+float32 spectrogram epoch only {speedup:.2f}x faster than "
            f"the reference float64 kernels (gate: 2x)"
        )
