"""Ablation A3 (Section III-B1): accelerometer vs gyroscope.

The paper chooses the accelerometer because prior work (Spearphone,
AccelEve, Gyrophone) found the gyroscope's response to conductive
speaker vibration is much weaker. Here we *measure* that rationale: the
same TESS/OnePlus 7T/loudspeaker experiment run against the gyroscope
model must come out far below the accelerometer — and near the level
where the attack stops being interesting.
"""

from repro.attack.pipeline import EmoLeakAttack
from repro.eval.experiment import run_feature_experiment
from repro.phone.channel import VibrationChannel

from benchmarks._common import corpus_for, features_for, print_header


def test_ablation_accelerometer_vs_gyroscope(benchmark):
    accuracies = {}

    def run():
        accel_data = features_for("tess", "oneplus7t")
        accuracies["accelerometer"] = run_feature_experiment(
            accel_data, "random_forest", seed=0, fast=True
        ).accuracy

        corpus = corpus_for("tess")
        gyro_channel = VibrationChannel("oneplus7t", sensor="gyroscope")
        gyro_data = EmoLeakAttack(gyro_channel, seed=0).collect_features(corpus)
        if gyro_data.X.shape[0] >= 40:
            accuracies["gyroscope"] = run_feature_experiment(
                gyro_data, "random_forest", seed=0, fast=True
            ).accuracy
            accuracies["gyro_extraction"] = gyro_data.extraction_rate
        else:
            # Too few regions even detectable — the attack collapses.
            accuracies["gyroscope"] = 1.0 / 7.0
            accuracies["gyro_extraction"] = gyro_data.extraction_rate
        return accuracies

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation III-B1 - sensor choice (TESS, OnePlus 7T)")
    print(f"  accelerometer : {accuracies['accelerometer']:.2%}")
    print(f"  gyroscope     : {accuracies['gyroscope']:.2%} "
          f"(extraction {accuracies['gyro_extraction']:.0%})")

    # The paper's design choice must be visible: the gyroscope either
    # loses most regions outright or classifies clearly worse.
    assert (
        accuracies["gyro_extraction"] < 0.5
        or accuracies["accelerometer"] > accuracies["gyroscope"] + 0.15
    )
    assert accuracies["accelerometer"] > accuracies["gyroscope"]
