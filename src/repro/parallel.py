"""Shared executor infrastructure for the collection *and* training engines.

PR 1's collection engine established the executor contract — ``serial``
(the reference path), ``thread`` and ``process``, selected by name or
defaulted from ``n_jobs``, with results byte-identical at any worker
count. This module hoists that contract out of
:mod:`repro.attack.engine` so the training/evaluation layers
(:mod:`repro.ml.crossval`, :mod:`repro.eval.suite`) can reuse it, and
adds :class:`ExecutorPool`: a *persistent* pool that a table run creates
once and every cell reuses, instead of paying pool start-up per cell.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "EXECUTOR_NAMES",
    "ExecutorPool",
    "resolve_executor",
    "run_tasks",
]

EXECUTOR_NAMES: Tuple[str, ...] = ("serial", "thread", "process")


def resolve_executor(n_jobs: int, executor: Optional[str]) -> str:
    """Canonical executor name for an ``(n_jobs, executor)`` request.

    ``executor=None`` selects ``serial`` for ``n_jobs <= 1`` and
    ``thread`` otherwise.
    """
    if executor is None:
        return "serial" if n_jobs <= 1 else "thread"
    key = str(executor).lower().strip()
    if key not in EXECUTOR_NAMES:
        raise ValueError(
            f"unknown executor {executor!r}; available: {EXECUTOR_NAMES}"
        )
    return key


class ExecutorPool:
    """A reusable worker pool with the engine's executor semantics.

    The underlying :class:`concurrent.futures` pool is created lazily on
    the first parallel :meth:`map` and *kept alive* across calls — the
    point of the class: one table run shares a single pool across all of
    its cells (and their cross-validation folds) rather than spinning a
    fresh pool per cell. Use as a context manager, or call
    :meth:`close` explicitly; the serial pool needs no cleanup.

    ``map_calls`` / ``tasks_run`` count usage so tests (and the
    benchmark harness) can assert the pool really was shared.
    """

    def __init__(self, n_jobs: int = 1, executor: Optional[str] = None):
        self.n_jobs = max(1, int(n_jobs))
        self.executor = resolve_executor(n_jobs, executor)
        self._pool: Optional[Executor] = None
        self.map_calls = 0
        self.tasks_run = 0

    # -- lifecycle ----------------------------------------------------------
    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.executor == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self.n_jobs)
            else:  # process
                self._pool = ProcessPoolExecutor(max_workers=self.n_jobs)
        return self._pool

    @property
    def is_parallel(self) -> bool:
        return self.executor != "serial" and self.n_jobs > 1

    @property
    def started(self) -> bool:
        """Whether the underlying worker pool has been created."""
        return self._pool is not None

    def close(self) -> None:
        """Shut the underlying pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ----------------------------------------------------------
    def map(self, fn: Callable, items: Sequence) -> List:
        """Run ``fn`` over ``items``, preserving order.

        Serial (or single-item) inputs run inline on the calling thread;
        otherwise work goes through the persistent pool. For the
        ``process`` executor ``fn`` and every item must be picklable.
        """
        items = list(items)
        self.map_calls += 1
        self.tasks_run += len(items)
        if not self.is_parallel or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))


def run_tasks(
    fn: Callable,
    items: Sequence,
    n_jobs: int = 1,
    executor: Optional[str] = None,
) -> List:
    """One-shot :meth:`ExecutorPool.map` (pool torn down afterwards)."""
    with ExecutorPool(n_jobs=n_jobs, executor=executor) as pool:
        return pool.map(fn, items)
