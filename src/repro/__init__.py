"""EmoLeak reproduction: emotion recognition from smartphone motion sensors.

Python reproduction of "EmoLeak: Smartphone Motions Reveal Emotions"
(Mahdad et al., IEEE ICDCS 2023). The library simulates the physical
side channel — emotional speech played through a phone speaker, captured
by the zero-permission accelerometer — and implements the paper's full
attack pipeline: speech-region detection, Table II feature extraction,
spectrogram images, and the classical-ML / CNN classifier suite.

Quick start::

    from repro.datasets import build_tess
    from repro.phone import VibrationChannel
    from repro.attack import EmoLeakAttack
    from repro.eval import run_feature_experiment

    corpus = build_tess(words_per_emotion=20)
    channel = VibrationChannel("oneplus7t")
    features = EmoLeakAttack(channel).collect_features(corpus)
    result = run_feature_experiment(features, "logistic")
    print(result.summary())

Subpackages: :mod:`repro.dsp` (signal processing), :mod:`repro.speech`
(emotional speech synthesis), :mod:`repro.datasets` (simulated corpora),
:mod:`repro.phone` (vibration channel), :mod:`repro.ml` (classical ML),
:mod:`repro.nn` (neural networks), :mod:`repro.attack` (the EmoLeak
pipeline), :mod:`repro.eval` (experiment harness).
"""

__version__ = "1.0.0"

__all__ = [
    "dsp",
    "speech",
    "datasets",
    "phone",
    "ml",
    "nn",
    "attack",
    "eval",
]
