"""Plain-text renderers for paper-style result tables."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["format_table", "format_confusion"]


def format_table(
    title: str,
    rows: Sequence[Sequence],
    headers: Sequence[str],
) -> str:
    """Render a fixed-width text table with a title line."""
    if not rows:
        raise ValueError("need at least one row")
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must match the header width")
    cells = [[str(h) for h in headers]] + [
        [
            f"{value:.2%}" if isinstance(value, float) else str(value)
            for value in row
        ]
        for row in rows
    ]
    widths = [max(len(row[j]) for row in cells) for j in range(len(headers))]
    lines = [title, "-" * max(len(title), sum(widths) + 2 * len(widths))]
    for i, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * widths[j] for j in range(len(widths))))
    return "\n".join(lines)


def format_confusion(matrix: np.ndarray, labels: Sequence) -> str:
    """Render a confusion matrix (rows = true class) as text."""
    matrix = np.asarray(matrix)
    labels = [str(label) for label in labels]
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    if matrix.shape[0] != len(labels):
        raise ValueError("label count must match matrix size")
    width = max(max(len(label) for label in labels), 5) + 1
    header = " " * width + "".join(label.rjust(width) for label in labels)
    lines = [header]
    for i, label in enumerate(labels):
        cells = "".join(str(int(v)).rjust(width) for v in matrix[i])
        lines.append(label.rjust(width) + cells)
    return "\n".join(lines)
