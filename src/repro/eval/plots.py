"""Terminal (ASCII) plotting for figures.

The evaluation environment has no plotting stack, so the figure
benchmarks and examples render their panels as text: line plots for the
Fig. 7 training curves and Fig. 3/4 traces, and intensity heatmaps for
the Fig. 2 spectrogram images. Everything returns a string so tests can
assert on structure.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["line_plot", "heatmap", "multi_line_plot"]

#: Intensity ramp for heatmaps, dark to bright.
_RAMP = " .:-=+*#%@"


def line_plot(
    values: Sequence[float],
    width: int = 64,
    height: int = 12,
    title: str = "",
    y_label_format: str = "{:8.3f}",
) -> str:
    """Render one series as an ASCII line plot.

    The x axis is the sample index scaled to ``width`` columns; the y
    axis is min-max scaled to ``height`` rows with labelled extremes.
    """
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ValueError("nothing to plot")
    if width < 8 or height < 3:
        raise ValueError("plot must be at least 8x3 characters")
    lo, hi = float(np.nanmin(values)), float(np.nanmax(values))
    span = hi - lo if hi > lo else 1.0
    # Column-wise downsample (mean) onto the plot width.
    edges = np.linspace(0, values.size, width + 1).astype(int)
    columns = np.array(
        [
            np.nanmean(values[a:b]) if b > a else values[min(a, values.size - 1)]
            for a, b in zip(edges[:-1], edges[1:])
        ]
    )
    rows = ((columns - lo) / span * (height - 1)).round().astype(int)
    grid = [[" "] * width for _ in range(height)]
    for x, r in enumerate(rows):
        grid[height - 1 - int(r)][x] = "*"
    lines = []
    if title:
        lines.append(title)
    top_label = y_label_format.format(hi)
    bottom_label = y_label_format.format(lo)
    pad = max(len(top_label), len(bottom_label))
    for i, row in enumerate(grid):
        if i == 0:
            label = top_label.rjust(pad)
        elif i == height - 1:
            label = bottom_label.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    return "\n".join(lines)


def multi_line_plot(
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 12,
    title: str = "",
) -> str:
    """Render several series on shared axes, one marker letter each."""
    if not series:
        raise ValueError("nothing to plot")
    arrays = {name: np.asarray(list(v), dtype=float) for name, v in series.items()}
    if any(a.size == 0 for a in arrays.values()):
        raise ValueError("every series needs at least one point")
    lo = min(float(np.nanmin(a)) for a in arrays.values())
    hi = max(float(np.nanmax(a)) for a in arrays.values())
    span = hi - lo if hi > lo else 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = {}
    for index, (name, values) in enumerate(arrays.items()):
        marker = chr(ord("a") + index) if len(arrays) > 1 else "*"
        markers[name] = marker
        edges = np.linspace(0, values.size, width + 1).astype(int)
        columns = np.array(
            [
                np.nanmean(values[s:e]) if e > s else values[min(s, values.size - 1)]
                for s, e in zip(edges[:-1], edges[1:])
            ]
        )
        rows = ((columns - lo) / span * (height - 1)).round().astype(int)
        for x, r in enumerate(rows):
            grid[height - 1 - int(r)][x] = marker
    lines = []
    if title:
        lines.append(title)
    label_top = f"{hi:8.3f}"
    label_bot = f"{lo:8.3f}"
    pad = max(len(label_top), len(label_bot))
    for i, row in enumerate(grid):
        if i == 0:
            label = label_top.rjust(pad)
        elif i == height - 1:
            label = label_bot.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    legend = "  ".join(f"{marker}={name}" for name, marker in markers.items())
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)


def heatmap(
    image: np.ndarray,
    max_width: int = 64,
    max_height: int = 24,
    title: str = "",
) -> str:
    """Render a 2-D array as an ASCII intensity map (row 0 at the top)."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2 or image.size == 0:
        raise ValueError(f"expected a non-empty 2-D image, got shape {image.shape}")
    rows = min(max_height, image.shape[0])
    cols = min(max_width, image.shape[1])
    from repro.dsp.spectrogram import resize_image

    small = resize_image(image, (rows, cols))
    lo, hi = small.min(), small.max()
    span = hi - lo if hi > lo else 1.0
    indices = ((small - lo) / span * (len(_RAMP) - 1)).round().astype(int)
    lines = []
    if title:
        lines.append(title)
    for row in indices:
        lines.append("".join(_RAMP[i] for i in row))
    return "\n".join(lines)
