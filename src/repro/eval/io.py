"""Dataset and result persistence.

The paper's tooling exported time/frequency features to Weka ``.arff``
files (Section IV-D1), CSV for the feature CNN (IV-D2), and packed the
train/test spectrograms into HDF5 (IV-C1). This module reproduces that
interchange surface with dependency-free equivalents: ARFF and CSV text
writers for :class:`~repro.attack.pipeline.FeatureDataset`, ``.npz``
bundles for :class:`~repro.attack.pipeline.SpectrogramDataset` (numpy's
portable container standing in for HDF5), and JSON for experiment
results.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.attack.engine import CollectionResult, _rebuild_result
from repro.attack.pipeline import FeatureDataset, SpectrogramDataset
from repro.eval.experiment import ExperimentResult

__all__ = [
    "to_arff",
    "to_csv",
    "save_spectrograms",
    "load_spectrograms",
    "save_collection",
    "load_collection",
    "result_to_json",
]

_PathLike = Union[str, Path]


def to_arff(dataset: FeatureDataset, relation: str = "emoleak") -> str:
    """Render a feature dataset as Weka ARFF text.

    NaN entries become ARFF missing values (``?``), matching how the
    paper's cleaning step treated invalid entries before Weka.
    """
    if dataset.X.shape[0] == 0:
        raise ValueError("cannot export an empty dataset")
    classes = sorted(set(str(label) for label in dataset.y))
    lines = [f"@RELATION {relation}", ""]
    for name in dataset.feature_names:
        lines.append(f"@ATTRIBUTE {name} NUMERIC")
    lines.append(f"@ATTRIBUTE emotion {{{','.join(classes)}}}")
    lines.append("")
    lines.append("@DATA")
    for row, label in zip(dataset.X, dataset.y):
        cells = ["?" if not np.isfinite(v) else f"{v:.10g}" for v in row]
        cells.append(str(label))
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def to_csv(dataset: FeatureDataset) -> str:
    """Render a feature dataset as CSV with a header row."""
    if dataset.X.shape[0] == 0:
        raise ValueError("cannot export an empty dataset")
    lines = [",".join(list(dataset.feature_names) + ["emotion"])]
    for row, label in zip(dataset.X, dataset.y):
        cells = ["" if not np.isfinite(v) else f"{v:.10g}" for v in row]
        cells.append(str(label))
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def save_spectrograms(dataset: SpectrogramDataset, path: _PathLike) -> None:
    """Persist a spectrogram dataset as a compressed ``.npz`` bundle."""
    if dataset.images.shape[0] == 0:
        raise ValueError("cannot export an empty dataset")
    np.savez_compressed(
        Path(path),
        images=dataset.images,
        labels=np.asarray(dataset.y, dtype=str),
        fs=np.array([dataset.fs]),
        n_played=np.array([dataset.n_played]),
    )


def load_spectrograms(path: _PathLike) -> SpectrogramDataset:
    """Load a spectrogram dataset saved by :func:`save_spectrograms`."""
    with np.load(Path(path), allow_pickle=False) as bundle:
        return SpectrogramDataset(
            images=bundle["images"],
            y=bundle["labels"],
            fs=float(bundle["fs"][0]),
            n_played=int(bundle["n_played"][0]),
        )


def save_collection(result: CollectionResult, path: _PathLike) -> None:
    """Persist one collection pass (both datasets) as an ``.npz`` bundle.

    The on-disk leg of the engine's :class:`CollectionCache`: a pass
    saved here can be reloaded by a later process instead of re-running
    render→transmit→detect.
    """
    np.savez_compressed(
        Path(path),
        X=result.features.X,
        y_features=np.asarray(result.features.y, dtype=str),
        images=result.spectrograms.images,
        y_images=np.asarray(result.spectrograms.y, dtype=str),
        fs=np.array([result.features.fs]),
        n_played=np.array([result.features.n_played]),
    )


def load_collection(path: _PathLike) -> CollectionResult:
    """Load a collection pass saved by :func:`save_collection`."""
    with np.load(Path(path), allow_pickle=False) as bundle:
        return _rebuild_result(
            X=bundle["X"],
            y_features=bundle["y_features"],
            images=bundle["images"],
            y_images=bundle["y_images"],
            fs=float(bundle["fs"][0]),
            n_played=int(bundle["n_played"][0]),
        )


def result_to_json(result: ExperimentResult) -> str:
    """Serialise an experiment result (metrics + confusion) to JSON."""
    payload = {
        "classifier": result.classifier,
        "accuracy": result.accuracy,
        "random_guess": result.random_guess,
        "gain_over_chance": result.gain_over_chance,
        "n_train": result.n_train,
        "n_test": result.n_test,
        "n_classes": result.n_classes,
        "extraction_rate": result.extraction_rate,
        "labels": [str(label) for label in result.labels],
        "confusion": result.confusion.tolist(),
    }
    if result.history is not None:
        payload["history"] = result.history.as_dict()
    return json.dumps(payload, indent=2)
