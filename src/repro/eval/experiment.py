"""Experiment runners: one (dataset, classifier) evaluation cell.

The classical classifiers are evaluated on the Table II features with the
paper's 80/20 stratified split; the two CNNs get the same split plus
their respective preprocessing (z-scoring for the feature CNN, 32x32
normalised images for the spectrogram CNN). Results carry everything the
table renderers and EXPERIMENTS.md need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.attack.models import build_feature_cnn, build_spectrogram_cnn
from repro.attack.pipeline import FeatureDataset, SpectrogramDataset
from repro.ml.base import Classifier
from repro.ml.forest import RandomForest
from repro.ml.lmt import LogisticModelTree
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.ml.multiclass import OneVsRestClassifier
from repro.ml.preprocessing import StandardScaler, clean_features, train_test_split
from repro.ml.subspace import RandomSubspace
from repro.nn.callbacks import TraceEpochs
from repro.nn.model import History
from repro.obs import trace

__all__ = [
    "CLASSIFIER_NAMES",
    "ExperimentResult",
    "FeatureCNNClassifier",
    "SpectrogramCNNClassifier",
    "collect_scenario_datasets",
    "make_classifier",
    "run_bundle_experiment",
    "run_feature_experiment",
    "run_spectrogram_experiment",
    "run_scenario_experiment",
]


class FeatureCNNClassifier(Classifier):
    """Classifier-API adapter around the paper's 1-D feature CNN.

    Z-scores the features, reshapes them to (24, 1) sequences and trains
    the Section IV-D2 architecture. ``history_`` retains the Fig. 7
    training curves of the last fit.
    """

    def __init__(
        self,
        epochs: int = 40,
        batch_size: int = 32,
        width_scale: float = 1.0,
        validation_fraction: float = 0.2,
        lr: float = 1e-3,
        seed: int = 0,
    ):
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.width_scale = float(width_scale)
        self.validation_fraction = float(validation_fraction)
        self.lr = float(lr)
        self.seed = int(seed)
        self.history_: Optional[History] = None

    def fit(self, X, y) -> "FeatureCNNClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        codes = self._encode_labels(y)
        self._scaler = StandardScaler().fit(X)
        Xs = self._scaler.transform(X)[..., None]
        self._model = build_feature_cnn(
            self.classes_.size, width_scale=self.width_scale, seed=self.seed
        )
        validation = None
        if 0.0 < self.validation_fraction < 1.0 and X.shape[0] >= 20:
            X_train, X_val, c_train, c_val = train_test_split(
                Xs, codes, test_fraction=self.validation_fraction, seed=self.seed
            )
            validation = (X_val, c_val)
        else:
            X_train, c_train = Xs, codes
        from repro.nn.optim import Adam

        self.history_ = self._model.fit(
            X_train,
            c_train,
            epochs=self.epochs,
            batch_size=self.batch_size,
            optimizer=Adam(lr=self.lr),
            validation_data=validation,
            shuffle_seed=self.seed,
            callbacks=[TraceEpochs()],
        )
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        return self._model.predict_proba(self._scaler.transform(X)[..., None])


class SpectrogramCNNClassifier(Classifier):
    """Classifier-API adapter around the paper's spectrogram image CNN."""

    def __init__(
        self,
        epochs: int = 25,
        batch_size: int = 32,
        width_scale: float = 1.0,
        validation_fraction: float = 0.2,
        lr: float = 2e-3,
        seed: int = 0,
    ):
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.width_scale = float(width_scale)
        self.validation_fraction = float(validation_fraction)
        self.lr = float(lr)
        self.seed = int(seed)
        self.history_: Optional[History] = None

    def fit(self, X, y) -> "SpectrogramCNNClassifier":
        X = np.asarray(X, dtype=float)
        if X.ndim == 3:
            X = X[..., None]
        if X.ndim != 4:
            raise ValueError(f"expected (n, h, w[, 1]) images, got shape {X.shape}")
        y = np.asarray(y)
        codes = self._encode_labels(y)
        X = X - 0.5  # centre the [0, 1] images for better conditioning
        self._model = build_spectrogram_cnn(
            self.classes_.size, width_scale=self.width_scale, seed=self.seed
        )
        validation = None
        if 0.0 < self.validation_fraction < 1.0 and X.shape[0] >= 20:
            X_train, X_val, c_train, c_val = train_test_split(
                X, codes, test_fraction=self.validation_fraction, seed=self.seed
            )
            validation = (X_val, c_val)
        else:
            X_train, c_train = X, codes
        from repro.nn.optim import Adam

        self.history_ = self._model.fit(
            X_train,
            c_train,
            epochs=self.epochs,
            batch_size=self.batch_size,
            optimizer=Adam(lr=self.lr),
            validation_data=validation,
            shuffle_seed=self.seed,
            callbacks=[TraceEpochs()],
        )
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 3:
            X = X[..., None]
        return self._model.predict_proba(X - 0.5)


#: Paper-name -> constructor. Keys match the rows of Tables III-VI.
CLASSIFIER_NAMES: Tuple[str, ...] = (
    "logistic",
    "multiclass",
    "lmt",
    "random_forest",
    "random_subspace",
    "cnn",
    "cnn_spectrogram",
)


def make_classifier(name: str, seed: int = 0, fast: bool = False) -> Classifier:
    """Instantiate a classifier by its paper name.

    ``fast=True`` shrinks the CNNs/ensembles for CI-speed runs while
    keeping the architectures intact.
    """
    key = name.lower().strip()
    if key == "logistic":
        return LogisticRegression()
    if key in ("multiclass", "multiclassclassifier"):
        return OneVsRestClassifier()
    if key in ("lmt", "trees.lmt"):
        return LogisticModelTree()
    if key in ("random_forest", "randomforest"):
        return RandomForest(n_estimators=15 if fast else 40, seed=seed)
    if key in ("random_subspace", "randomsubspace"):
        return RandomSubspace(n_estimators=6 if fast else 10, seed=seed)
    if key == "cnn":
        return FeatureCNNClassifier(
            epochs=30 if fast else 50,
            width_scale=0.5 if fast else 1.0,
            seed=seed,
        )
    if key == "cnn_spectrogram":
        # fast mode uses a gentler learning rate: at width 0.25 the small
        # model overfits hard datasets (SAVEE) at 2e-3 and collapses.
        return SpectrogramCNNClassifier(
            epochs=70 if fast else 60,
            width_scale=0.25 if fast else 1.0,
            lr=1e-3 if fast else 2e-3,
            seed=seed,
        )
    raise ValueError(f"unknown classifier {name!r}; known: {CLASSIFIER_NAMES}")


@dataclass
class ExperimentResult:
    """Outcome of one evaluation cell."""

    classifier: str
    accuracy: float
    n_train: int
    n_test: int
    n_classes: int
    confusion: np.ndarray
    labels: np.ndarray
    history: Optional[History] = None
    extraction_rate: float = 0.0

    @property
    def random_guess(self) -> float:
        return 1.0 / self.n_classes

    @property
    def gain_over_chance(self) -> float:
        """Accuracy as a multiple of the random-guess rate."""
        return self.accuracy / self.random_guess

    def summary(self) -> str:
        return (
            f"{self.classifier}: accuracy={self.accuracy:.2%} "
            f"(random guess {self.random_guess:.2%}, "
            f"{self.gain_over_chance:.1f}x chance; "
            f"{self.n_train} train / {self.n_test} test)"
        )


def run_feature_experiment(
    dataset: FeatureDataset,
    classifier_name: str,
    seed: int = 0,
    test_fraction: float = 0.2,
    fast: bool = False,
) -> ExperimentResult:
    """Evaluate one classifier on a feature dataset with an 80/20 split."""
    X, y, _ = clean_features(dataset.X, dataset.y)
    if X.shape[0] < 10:
        raise ValueError(f"too few usable samples ({X.shape[0]}) for an experiment")
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_fraction=test_fraction, seed=seed
    )
    model = make_classifier(classifier_name, seed=seed, fast=fast)
    with trace(
        "train",
        classifier=classifier_name,
        n_train=X_train.shape[0],
        metric_labels={"classifier": classifier_name},
    ):
        model.fit(X_train, y_train)
    with trace(
        "evaluate",
        classifier=classifier_name,
        n_test=X_test.shape[0],
        metric_labels={"classifier": classifier_name},
    ):
        predictions = model.predict(X_test)
        matrix, labels = confusion_matrix(y_test, predictions, labels=np.unique(y))
    return ExperimentResult(
        classifier=classifier_name,
        accuracy=accuracy_score(y_test, predictions),
        n_train=X_train.shape[0],
        n_test=X_test.shape[0],
        n_classes=int(np.unique(y).size),
        confusion=matrix,
        labels=labels,
        history=getattr(model, "history_", None),
        extraction_rate=dataset.extraction_rate,
    )


def collect_scenario_datasets(
    scenario,
    subsample: Optional[int] = 20,
    seed: int = 0,
    n_jobs: int = 1,
    executor: Optional[str] = None,
    cache=None,
    task: Optional[str] = None,
):
    """Collect a scenario's feature+spectrogram bundle through the engine.

    ``scenario`` is a canonical scenario name or a
    :class:`~repro.attack.scenarios.Scenario`. Collection goes through a
    :class:`~repro.attack.engine.CollectionCache` (the module-wide
    default when ``cache`` is None), so several classifiers — or a whole
    table — consuming the same scenario perform exactly one
    render→transmit→detect pass.

    ``task`` selects the attack label (emotion / speaker-id / gender /
    content-id); None takes the scenario's own task. Different tasks
    over the same scenario share the physical pass through the cache's
    re-label layer.
    """
    from repro.attack.engine import collect_datasets, default_cache
    from repro.attack.scenarios import get_scenario
    from repro.datasets import build_corpus

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if task is None:
        task = getattr(scenario, "task", "emotion")
    corpus = build_corpus(scenario.dataset)
    if subsample:
        # The speaker round-robin fills from the corpus's speaker order,
        # which on gender-ordered rosters (CREMA-D lists all males first)
        # gives a small subsample a single gender. The gender task takes
        # the random per-emotion draw instead, which mixes speakers.
        corpus = corpus.subsample(
            per_class=subsample,
            seed=seed,
            stratify_speakers=(task != "gender"),
        )
    channel = scenario.channel(seed=seed)
    return collect_datasets(
        corpus,
        channel,
        seed=seed,
        n_jobs=n_jobs,
        executor=executor,
        cache=cache if cache is not None else default_cache(),
        task=task,
    )


def run_bundle_experiment(
    bundle,
    classifier: str,
    seed: int = 0,
    fast: bool = True,
) -> ExperimentResult:
    """Evaluate one classifier on an already-collected bundle.

    The training half of a table cell: dispatches to the spectrogram or
    feature experiment depending on the classifier row.
    """
    if classifier == "cnn_spectrogram":
        return run_spectrogram_experiment(bundle.spectrograms, seed=seed, fast=fast)
    return run_feature_experiment(bundle.features, classifier, seed=seed, fast=fast)


def run_scenario_experiment(
    scenario,
    classifier: str,
    subsample: Optional[int] = 20,
    seed: int = 0,
    fast: bool = True,
    n_jobs: int = 1,
    executor: Optional[str] = None,
    cache=None,
    task: Optional[str] = None,
) -> ExperimentResult:
    """Run one (scenario, classifier) cell through the collection engine.

    Collection and evaluation in one call — see
    :func:`collect_scenario_datasets` and :func:`run_bundle_experiment`.
    """
    bundle = collect_scenario_datasets(
        scenario,
        subsample=subsample,
        seed=seed,
        n_jobs=n_jobs,
        executor=executor,
        cache=cache,
        task=task,
    )
    return run_bundle_experiment(bundle, classifier, seed=seed, fast=fast)


def run_spectrogram_experiment(
    dataset: SpectrogramDataset,
    seed: int = 0,
    test_fraction: float = 0.2,
    fast: bool = False,
) -> ExperimentResult:
    """Evaluate the spectrogram CNN on an image dataset (80/20 split)."""
    if dataset.images.shape[0] < 10:
        raise ValueError(
            f"too few spectrograms ({dataset.images.shape[0]}) for an experiment"
        )
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.images, dataset.y, test_fraction=test_fraction, seed=seed
    )
    model = make_classifier("cnn_spectrogram", seed=seed, fast=fast)
    with trace(
        "train",
        classifier="cnn_spectrogram",
        n_train=X_train.shape[0],
        metric_labels={"classifier": "cnn_spectrogram"},
    ):
        model.fit(X_train, y_train)
    with trace(
        "evaluate",
        classifier="cnn_spectrogram",
        n_test=X_test.shape[0],
        metric_labels={"classifier": "cnn_spectrogram"},
    ):
        predictions = model.predict(X_test)
        matrix, labels = confusion_matrix(
            y_test, predictions, labels=np.unique(dataset.y)
        )
    return ExperimentResult(
        classifier="cnn_spectrogram",
        accuracy=accuracy_score(y_test, predictions),
        n_train=X_train.shape[0],
        n_test=X_test.shape[0],
        n_classes=int(np.unique(dataset.y).size),
        confusion=matrix,
        labels=labels,
        history=model.history_,
        extraction_rate=dataset.extraction_rate,
    )
