"""Defense×attack grid runner — the privacy gate's measurement engine.

Sweeps a :class:`~repro.attack.privacy_gate.DefenseAxes` cross product
(sampling-rate cap × low-pass cutoff × injected-noise RMS × quantisation
LSB) against the attack's task heads in two attacker modes:

- ``static``   — classifier trained on *undefended* collections,
  evaluated on defended test splits (the attacker the defense is shipped
  against);
- ``adaptive`` — classifier retrained on the defended collections (the
  attacker that adapts to the deployed mitigation).

Each physical defended pass is collected exactly once per (config,
scenario) through the engine's :class:`~repro.attack.engine.CollectionCache`
— secondary tasks over the same corpus re-label cached product rows
(``cache.relabel_hits``), and the batched pipeline keeps the defended
pass as fast as the undefended one. Training/evaluation cells then fan
out over a shared :class:`~repro.parallel.ExecutorPool`.

Failure semantics mirror ``run_table``: a cell that raises ships its
exception back as a *value* (the sweep never dies mid-grid and traces
stay balanced), and the finished :class:`LeakageReport` marks the cell
``degraded``. A defense that suppresses so much signal that no
experiment can run is ``denied`` — the defender's best case, scored at
chance (leakage 0), matching :func:`repro.attack.defense.evaluate_defense`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.attack.engine import CollectionCache
from repro.attack.privacy_gate import (
    LOWPASS_OFF,
    RATE_CAP_OFF,
    DefenseAxes,
    DefenseConfig,
    LeakageCell,
    LeakageReport,
)
from repro.eval.experiment import (
    ExperimentResult,
    make_classifier,
    run_feature_experiment,
)
from repro.ml.metrics import accuracy_score
from repro.ml.preprocessing import clean_features, train_test_split
from repro.obs import capture_observability, merge_worker_trace, trace
from repro.parallel import ExecutorPool

__all__ = [
    "DEFAULT_GATE_SCENARIOS",
    "DEFENSE_TABLE_CONFIGS",
    "run_defense_grid",
    "run_defense_table",
]

#: task -> canonical scenario carrying that task head (PR-8 heads).
DEFAULT_GATE_SCENARIOS: Dict[str, str] = {
    "emotion": "tess-loud-oneplus7t",
    "speaker-id": "savee-speaker-oneplus7t",
    "gender": "cremad-gender-galaxys10",
    "content-id": "songs-content-oneplus7t",
}

#: Named defense stacks for the ``DEFENSES`` table (adaptive attacker).
DEFENSE_TABLE_CONFIGS: Dict[str, DefenseConfig] = {
    "undefended": DefenseConfig(),
    "cap200": DefenseConfig(rate_cap_hz=200.0),
    "cap50": DefenseConfig(rate_cap_hz=50.0),
    "cap50+lpf20": DefenseConfig(rate_cap_hz=50.0, lowpass_hz=20.0),
}

_DENIAL_MARKER = "too few usable samples"


def _collect_defended(
    scenario,
    task: str,
    config: Optional[DefenseConfig],
    noise_seed: int,
    subsample: Optional[int],
    seed: int,
    n_jobs: int,
    executor: Optional[str],
    cache: CollectionCache,
):
    """One (scenario, defense-config) collection pass through the engine."""
    from repro.attack.engine import collect_datasets
    from repro.attack.scenarios import get_scenario
    from repro.datasets import build_corpus

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    corpus = build_corpus(scenario.dataset)
    if subsample:
        corpus = corpus.subsample(
            per_class=subsample,
            seed=seed,
            stratify_speakers=(task != "gender"),
        )
    channel = scenario.channel(seed=seed)
    defense = None if config is None else config.build(noise_seed)
    return collect_datasets(
        corpus,
        channel,
        seed=seed,
        n_jobs=n_jobs,
        executor=executor,
        cache=cache,
        task=task,
        defense=defense,
    )


def _score_cell(
    mode: str,
    classifier: str,
    defended,
    undefended,
    seed: int,
    fast: bool,
) -> dict:
    """One grid cell's numbers. Denial (not enough defended signal to
    run an experiment) scores at chance; anything else raises."""
    X_u, y_u, _ = clean_features(undefended.X, undefended.y)
    n_classes = int(np.unique(y_u).size) if y_u is not None else 0
    if n_classes < 2:
        raise ValueError(
            f"undefended corpus exposes {n_classes} classes; need >= 2"
        )
    chance = 1.0 / n_classes
    denial = {
        "status": "denied",
        "accuracy": chance,
        "chance": chance,
        "n_classes": n_classes,
        "n_test": 0,
        "extraction_rate": float(defended.extraction_rate),
    }
    if mode == "adaptive":
        try:
            result = run_feature_experiment(
                defended, classifier, seed=seed, fast=fast
            )
        except ValueError as exc:
            if _DENIAL_MARKER in str(exc):
                return denial
            raise
        return {
            "status": "ok",
            "accuracy": float(result.accuracy),
            "chance": chance,
            "n_classes": n_classes,
            "n_test": int(result.n_test),
            "extraction_rate": float(defended.extraction_rate),
        }
    if mode != "static":
        raise ValueError(f"unknown attacker mode {mode!r}")
    if X_u.shape[0] < 10:
        raise ValueError(
            f"{_DENIAL_MARKER} ({X_u.shape[0]}) in the undefended baseline"
        )
    X_d, y_d, _ = clean_features(defended.X, defended.y)
    if X_d.shape[0] < 10:
        return denial
    X_train, _, y_train, _ = train_test_split(
        X_u, y_u, test_fraction=0.2, seed=seed
    )
    _, X_test, _, y_test = train_test_split(
        X_d, y_d, test_fraction=0.2, seed=seed
    )
    model = make_classifier(classifier, seed=seed, fast=fast)
    with trace(
        "train",
        classifier=classifier,
        n_train=X_train.shape[0],
        metric_labels={"classifier": classifier},
    ):
        model.fit(X_train, y_train)
    with trace(
        "evaluate",
        classifier=classifier,
        n_test=X_test.shape[0],
        metric_labels={"classifier": classifier},
    ):
        accuracy = accuracy_score(y_test, model.predict(X_test))
    return {
        "status": "ok",
        "accuracy": float(accuracy),
        "chance": chance,
        "n_classes": n_classes,
        "n_test": int(y_test.size),
        "extraction_rate": float(defended.extraction_rate),
    }


def _run_grid_cell(task):
    """Worker entry point: one (config, task, mode, classifier) cell.

    Module-level (picklable for the process executor); exceptions and
    spans travel back as values so the sweep survives any cell and the
    parent trace stays balanced.
    """
    index, config_name, task_name, mode, classifier, defended, undefended, seed, fast = task
    outcome = None
    error = None
    with capture_observability() as capture:
        try:
            with trace(
                "gate_cell",
                config=config_name,
                task=task_name,
                mode=mode,
                classifier=classifier,
            ):
                outcome = _score_cell(
                    mode, classifier, defended, undefended, seed, fast
                )
        except Exception as exc:
            error = exc
    return index, outcome, capture, error


def _normalise_scenarios(scenarios) -> Dict[str, str]:
    from repro.attack.scenarios import get_scenario

    if scenarios is None:
        return {"emotion": DEFAULT_GATE_SCENARIOS["emotion"]}
    if isinstance(scenarios, str):
        scenario = get_scenario(scenarios)
        return {getattr(scenario, "task", "emotion"): scenarios}
    if isinstance(scenarios, dict):
        return dict(scenarios)
    out: Dict[str, str] = {}
    for name in scenarios:
        scenario = get_scenario(name)
        task = getattr(scenario, "task", "emotion")
        if task in out:
            raise ValueError(f"two scenarios carry task {task!r}: "
                             f"{out[task]!r} and {name!r}")
        out[task] = name
    return out


def run_defense_grid(
    scenarios: Union[None, str, Dict[str, str], Tuple[str, ...]] = None,
    axes: Optional[DefenseAxes] = None,
    configs: Optional[List[DefenseConfig]] = None,
    modes: Tuple[str, ...] = ("static", "adaptive"),
    classifiers: Tuple[str, ...] = ("logistic", "random_forest"),
    subsample: Optional[int] = 12,
    seed: int = 0,
    noise_seed: int = 0,
    fast: bool = True,
    n_jobs: int = 1,
    executor: Optional[str] = None,
    cache: Optional[CollectionCache] = None,
    pool: Optional[ExecutorPool] = None,
) -> LeakageReport:
    """Run the defense×attack grid and return its :class:`LeakageReport`.

    Parameters
    ----------
    scenarios:
        Which task heads to attack: a ``task -> scenario name`` dict, a
        single scenario name (its own task), a sequence of scenario
        names (one per task), or None for the emotion head on
        ``tess-loud-oneplus7t``. :data:`DEFAULT_GATE_SCENARIOS` maps all
        four PR-8 heads.
    axes:
        The swept defense values; the grid is their full cross product.
    configs:
        Optional explicit config subset (e.g. the ``DEFENSES`` table's
        named stacks). Default: every config in ``axes``.
    modes:
        Attacker modes: ``static`` (trained undefended) and/or
        ``adaptive`` (retrained under the defense).
    subsample / seed / fast / n_jobs / executor / cache / pool:
        As in :func:`repro.eval.suite.run_table`; the cache is shared
        across the whole grid so every physical pass runs once and
        secondary tasks re-label.
    noise_seed:
        Seed for the injected-noise defense stage — part of each
        defended pass's cache key.
    """
    axes = axes if axes is not None else DefenseAxes()
    grid_configs = list(configs) if configs is not None else axes.configs()
    scenario_map = _normalise_scenarios(scenarios)
    modes = tuple(modes)
    classifiers = tuple(classifiers)
    cache = cache if cache is not None else CollectionCache()
    owns_pool = pool is None
    if pool is None:
        pool = ExecutorPool(n_jobs=n_jobs, executor=executor)

    report = LeakageReport(
        axes=axes,
        scenarios=dict(scenario_map),
        tasks=tuple(scenario_map),
        modes=modes,
        classifiers=classifiers,
        seed=int(seed),
        noise_seed=int(noise_seed),
        subsample=subsample,
    )
    try:
        with trace(
            "defense_grid",
            configs=len(grid_configs),
            tasks=len(scenario_map),
            modes=len(modes),
        ) as grid_span:
            # Phase 1 — collections. One undefended baseline per task
            # (the static attacker's training data and every cell's
            # class inventory), then one defended pass per (config,
            # task); errors are kept as values so one failing pass
            # degrades its own cells only.
            undefended: Dict[str, object] = {}
            for task, scenario in scenario_map.items():
                try:
                    undefended[task] = _collect_defended(
                        scenario, task, None, noise_seed,
                        subsample, seed, n_jobs, executor, cache,
                    ).features
                except Exception as exc:  # error-as-value
                    undefended[task] = exc
            defended: Dict[Tuple, object] = {}
            for config in grid_configs:
                for task, scenario in scenario_map.items():
                    try:
                        defended[(config.key, task)] = _collect_defended(
                            scenario, task, config, noise_seed,
                            subsample, seed, n_jobs, executor, cache,
                        ).features
                    except Exception as exc:  # error-as-value
                        defended[(config.key, task)] = exc

            # Phase 2 — fan the independent training/evaluation cells
            # out over the shared pool.
            cell_ids = [
                (config, task, mode, classifier)
                for config in grid_configs
                for task in scenario_map
                for mode in modes
                for classifier in classifiers
            ]
            tasks = []
            prefailed: Dict[int, str] = {}
            for index, (config, task, mode, classifier) in enumerate(cell_ids):
                base = undefended[task]
                dfnd = defended[(config.key, task)]
                failure = next(
                    (x for x in (dfnd, base) if isinstance(x, Exception)), None
                )
                if failure is not None:
                    prefailed[index] = f"collection failed: {failure}"
                    continue
                tasks.append(
                    (index, config.name, task, mode, classifier,
                     dfnd, base, seed, fast)
                )
            outcomes = {}
            for index, outcome, capture, error in pool.map(_run_grid_cell, tasks):
                merge_worker_trace(capture, parent=grid_span)
                outcomes[index] = (outcome, error)
            for index, (config, task, mode, classifier) in enumerate(cell_ids):
                cell = LeakageCell(
                    config=config, task=task, mode=mode, classifier=classifier
                )
                if index in prefailed:
                    cell.status = "degraded"
                    cell.error = prefailed[index]
                else:
                    outcome, error = outcomes[index]
                    if error is not None:
                        cell.status = "degraded"
                        cell.error = f"{type(error).__name__}: {error}"
                    else:
                        cell.status = outcome["status"]
                        cell.accuracy = outcome["accuracy"]
                        cell.chance = outcome["chance"]
                        cell.n_classes = outcome["n_classes"]
                        cell.n_test = outcome["n_test"]
                        cell.extraction_rate = outcome["extraction_rate"]
                report.cells.append(cell)
            report.meta["relabel_hits"] = _relabel_hits()
            report.meta["n_degraded"] = len(report.degraded_cells())
    finally:
        if owns_pool:
            pool.close()
    return report


def _relabel_hits() -> int:
    from repro.obs import metrics

    try:
        return int(metrics().counter_total("cache.relabel_hits"))
    except Exception:
        return 0


def run_defense_table(
    subsample: Optional[int] = 20,
    seed: int = 0,
    fast: bool = True,
    classifiers: Tuple[str, ...] = ("logistic", "random_forest"),
    n_jobs: int = 1,
    executor: Optional[str] = None,
    cache: Optional[CollectionCache] = None,
    pool: Optional[ExecutorPool] = None,
    scenario: str = "tess-loud-oneplus7t",
) -> Tuple[LeakageReport, Dict[Tuple[str, str], ExperimentResult]]:
    """The ``DEFENSES`` table: named defense stacks × classifiers,
    adaptive attacker, one scenario. Returns the underlying report plus
    ``(defense_name, classifier) -> ExperimentResult`` cells for
    :class:`~repro.eval.suite.TableSuite`."""
    axes = DefenseAxes(
        rate_caps_hz=(RATE_CAP_OFF, 200.0, 50.0),
        lowpass_hz=(LOWPASS_OFF, 20.0),
    )
    report = run_defense_grid(
        scenarios=scenario,
        axes=axes,
        configs=list(DEFENSE_TABLE_CONFIGS.values()),
        modes=("adaptive",),
        classifiers=classifiers,
        subsample=subsample,
        seed=seed,
        fast=fast,
        n_jobs=n_jobs,
        executor=executor,
        cache=cache,
        pool=pool,
    )
    cells: Dict[Tuple[str, str], ExperimentResult] = {}
    by_key = {config.key: name for name, config in DEFENSE_TABLE_CONFIGS.items()}
    for cell in report.cells:
        if cell.status == "degraded":
            raise RuntimeError(
                f"DEFENSES cell {cell.config.name}/{cell.classifier} "
                f"degraded: {cell.error}"
            )
        name = by_key[cell.config.key]
        cells[(name, cell.classifier)] = ExperimentResult(
            classifier=cell.classifier,
            accuracy=float(cell.accuracy),
            n_train=0,
            n_test=int(cell.n_test),
            n_classes=max(1, int(cell.n_classes)),
            confusion=np.zeros((0, 0)),
            labels=np.array([]),
            extraction_rate=float(cell.extraction_rate),
        )
    return report, cells
