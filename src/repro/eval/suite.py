"""Whole-table experiment suites.

Runs an entire paper table (III, IV, V or VI) programmatically —
collection, every classifier row, rendering — and returns structured
results plus the formatted text table. The benchmarks use finer-grained
control; this is the one-call API for users ("regenerate Table V").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.attack.engine import CollectionCache
from repro.attack.scenarios import SCENARIOS
from repro.eval.experiment import (
    ExperimentResult,
    collect_scenario_datasets,
    run_bundle_experiment,
)
from repro.eval.reporting import PAPER_RESULTS
from repro.eval.tables import format_table
from repro.obs import capture_observability, merge_worker_trace, trace
from repro.parallel import ExecutorPool

__all__ = ["TableSuite", "TABLE_DEFINITIONS", "run_table"]

#: Table id -> (scenario names, classifier rows).
TABLE_DEFINITIONS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "III": (
        ("savee-loud-oneplus7t", "savee-loud-pixel5"),
        ("logistic", "multiclass", "lmt", "cnn", "cnn_spectrogram"),
    ),
    "IV": (
        ("cremad-loud-galaxys10",),
        ("logistic", "multiclass", "lmt", "cnn", "cnn_spectrogram"),
    ),
    "V": (
        (
            "tess-loud-oneplus7t",
            "tess-loud-galaxys10",
            "tess-loud-pixel5",
            "tess-loud-galaxys21",
            "tess-loud-galaxys21ultra",
        ),
        ("logistic", "multiclass", "lmt", "cnn", "cnn_spectrogram"),
    ),
    "VI": (
        ("savee-ear-oneplus7t", "savee-ear-oneplus9", "tess-ear-oneplus7t"),
        ("random_forest", "random_subspace", "lmt", "cnn"),
    ),
    # Multi-attack comparison: one column per sibling attack task
    # (emotion / speaker-ID / gender / song content-ID), same channel
    # physics, per-task labels. Not a paper table — the cross-attack
    # baseline the related work (Spearphone, EarSpy, Kinetic Song
    # Comprehension) establishes.
    "ATTACKS": (
        (
            "savee-loud-oneplus7t",
            "savee-speaker-oneplus7t",
            "cremad-gender-galaxys10",
            "songs-content-oneplus7t",
        ),
        ("logistic", "random_forest"),
    ),
    # Defense evaluation: one column per named defense stack (see
    # repro.eval.defense_grid.DEFENSE_TABLE_CONFIGS), adaptive attacker
    # (retrained under each defense) on the TESS/OnePlus-7T emotion
    # head. Not a paper table — the Section VI-B mitigation sweep.
    "DEFENSES": (
        ("undefended", "cap200", "cap50", "cap50+lpf20"),
        ("logistic", "random_forest"),
    ),
}


@dataclass
class TableSuite:
    """Results of one regenerated paper table.

    ``cells`` maps ``(scenario_name, classifier)`` to the experiment
    result; :meth:`render` produces the paper-style text table with the
    published value beside each measurement.
    """

    table: str
    cells: Dict[Tuple[str, str], ExperimentResult] = field(default_factory=dict)

    def render(self) -> str:
        scenario_names, classifiers = TABLE_DEFINITIONS[self.table]
        if self.table == "DEFENSES":
            # Columns are defense stacks, not scenarios; there is no
            # published number to compare against.
            headers = ["classifier"] + [
                f"{name} (adaptive)" for name in scenario_names
            ]
            rows = []
            for classifier in classifiers:
                row: List = [classifier]
                for name in scenario_names:
                    result = self.cells.get((name, classifier))
                    row.append(result.accuracy if result else "-")
                rows.append(row)
            return format_table(
                "Defense sweep — adaptive attacker (reproduced)", rows, headers
            )
        headers = ["classifier"]
        for name in scenario_names:
            scenario = SCENARIOS[name]
            if self.table == "ATTACKS":
                # Columns are attacks, not devices, in the comparison.
                headers.append(f"{scenario.task} (ours)")
            else:
                headers.append(f"{scenario.device} (ours)")
            headers.append("(paper)")
        rows: List[List] = []
        for classifier in classifiers:
            row: List = [classifier]
            for name in scenario_names:
                scenario = SCENARIOS[name]
                result = self.cells.get((name, classifier))
                row.append(result.accuracy if result else "-")
                paper = PAPER_RESULTS.get(
                    (self.table, scenario.dataset, scenario.device, classifier)
                )
                row.append(paper if paper is not None else "-")
            rows.append(row)
        title = (
            "Multi-attack comparison (reproduced)"
            if self.table == "ATTACKS"
            else f"Table {self.table} (reproduced)"
        )
        return format_table(title, rows, headers)


def _run_cell_task(task):
    """Worker entry point: one (scenario, classifier) training cell.

    Module-level (picklable for the process executor). The cell's
    ``cell`` → ``train``/``evaluate`` spans are captured locally and
    shipped back for re-parenting under the dispatcher's ``table`` span;
    exceptions travel back as values so the trace stays balanced.
    """
    name, classifier, bundle, seed, fast = task
    result = None
    error = None
    with capture_observability() as capture:
        try:
            with trace("cell", scenario=name, classifier=classifier):
                result = run_bundle_experiment(
                    bundle, classifier, seed=seed, fast=fast
                )
        except Exception as exc:
            error = exc
    return name, classifier, result, capture, error


def run_table(
    table: str,
    subsample: Optional[int] = 20,
    seed: int = 0,
    fast: bool = True,
    classifiers: Optional[Tuple[str, ...]] = None,
    n_jobs: int = 1,
    executor: Optional[str] = None,
    cache: Optional[CollectionCache] = None,
    pool: Optional[ExecutorPool] = None,
) -> TableSuite:
    """Regenerate one paper table.

    Parameters
    ----------
    table:
        ``"III"``, ``"IV"``, ``"V"``, ``"VI"`` or ``"ATTACKS"`` (the
        multi-attack comparison: one column per task).
    subsample:
        Utterances per emotion class (None = full corpus; the default 20
        keeps a five-device table in the minutes range).
    fast:
        Use the CI-scale classifier configurations.
    classifiers:
        Optional subset of the table's classifier rows.
    n_jobs / executor:
        Worker pool for *both* engines: each scenario's collection pass
        fans its utterances out (see :mod:`repro.attack.engine`), then
        the table's training/evaluation cells fan out over one shared
        :class:`~repro.parallel.ExecutorPool`. Cell results are
        identical at any worker count.
    cache:
        Collection cache; a private per-call cache is used when None, so
        each scenario's render→transmit→detect pass runs exactly once
        regardless of how many classifier rows consume it.
    pool:
        Optional existing :class:`~repro.parallel.ExecutorPool` to reuse
        for the cell fan-out (e.g. across several tables); when None a
        pool is created from ``n_jobs``/``executor`` and closed on exit.
    """
    key = table.upper().strip()
    if key not in TABLE_DEFINITIONS:
        raise ValueError(
            f"unknown table {table!r}; available: {sorted(TABLE_DEFINITIONS)}"
        )
    if subsample is not None and subsample < 10:
        import sys

        print(
            f"warning: subsample={subsample} per class gives very small "
            "train/test splits; accuracies will be noisy",
            file=sys.stderr,
        )
    scenario_names, default_classifiers = TABLE_DEFINITIONS[key]
    chosen = tuple(classifiers) if classifiers else default_classifiers
    unknown = set(chosen) - set(default_classifiers)
    if unknown:
        raise ValueError(f"classifiers {sorted(unknown)} not part of Table {key}")

    if key == "DEFENSES":
        # The defense sweep has its own runner (defended collections,
        # adaptive retraining, leakage bookkeeping); reuse its cells.
        from repro.eval.defense_grid import run_defense_table

        _report, cells = run_defense_table(
            subsample=subsample,
            seed=seed,
            fast=fast,
            classifiers=chosen,
            n_jobs=n_jobs,
            executor=executor,
            cache=cache,
            pool=pool,
        )
        suite = TableSuite(table=key)
        suite.cells.update(cells)
        return suite

    cache = cache if cache is not None else CollectionCache()
    owns_pool = pool is None
    if pool is None:
        pool = ExecutorPool(n_jobs=n_jobs, executor=executor)
    suite = TableSuite(table=key)
    try:
        with trace("table", table=key) as table_span:
            # Phase 1 — one collection pass per scenario, through the
            # engine (its own utterance-level parallelism); every cell
            # below consumes the cached bundle.
            bundles = {
                name: collect_scenario_datasets(
                    name,
                    subsample=subsample,
                    seed=seed,
                    n_jobs=n_jobs,
                    executor=executor,
                    cache=cache,
                )
                for name in scenario_names
            }
            cells = [
                (name, classifier)
                for name in scenario_names
                for classifier in chosen
            ]
            # Phase 2 — fan the independent training cells out over the
            # shared pool (or run them inline with live spans).
            if not pool.is_parallel:
                for name, classifier in cells:
                    with trace("cell", scenario=name, classifier=classifier):
                        suite.cells[(name, classifier)] = run_bundle_experiment(
                            bundles[name], classifier, seed=seed, fast=fast
                        )
            else:
                tasks = [
                    (name, classifier, bundles[name], seed, fast)
                    for name, classifier in cells
                ]
                outcomes = pool.map(_run_cell_task, tasks)
                first_error = None
                for name, classifier, result, capture, error in outcomes:
                    merge_worker_trace(capture, parent=table_span)
                    if error is not None:
                        first_error = first_error or error
                        continue
                    suite.cells[(name, classifier)] = result
                if first_error is not None:
                    raise first_error
    finally:
        if owns_pool:
            pool.close()
    return suite
