"""Evaluation harness: classifier registry, experiment cells, tables.

Glue between the attack pipeline's datasets and the paper's result
tables: Weka-style classifier names, CNN adapters with the Classifier
API, 80/20-split and 10-fold evaluation runners, and plain-text
renderers for paper-style tables.
"""

from repro.eval.experiment import (
    CLASSIFIER_NAMES,
    ExperimentResult,
    FeatureCNNClassifier,
    SpectrogramCNNClassifier,
    make_classifier,
    run_feature_experiment,
    run_scenario_experiment,
    run_spectrogram_experiment,
)
from repro.eval.tables import format_table, format_confusion
from repro.eval.reporting import paper_comparison, random_guess_rate
from repro.eval.plots import line_plot, multi_line_plot, heatmap
from repro.eval.io import (
    to_arff,
    to_csv,
    save_spectrograms,
    load_spectrograms,
    save_collection,
    load_collection,
    result_to_json,
)
from repro.eval.suite import TableSuite, run_table
from repro.eval.defense_grid import run_defense_grid, run_defense_table

__all__ = [
    "CLASSIFIER_NAMES",
    "ExperimentResult",
    "FeatureCNNClassifier",
    "SpectrogramCNNClassifier",
    "make_classifier",
    "run_feature_experiment",
    "run_scenario_experiment",
    "run_spectrogram_experiment",
    "format_table",
    "format_confusion",
    "paper_comparison",
    "random_guess_rate",
    "line_plot",
    "multi_line_plot",
    "heatmap",
    "to_arff",
    "to_csv",
    "save_spectrograms",
    "load_spectrograms",
    "save_collection",
    "load_collection",
    "result_to_json",
    "TableSuite",
    "run_table",
    "run_defense_grid",
    "run_defense_table",
]
