"""Paper-vs-measured comparison helpers.

Holds the published numbers from the paper's tables so benchmarks can
print "paper vs measured" rows, and the audio-domain reference constants
of Table VII (which come from prior work the paper cites, not from
systems it built).
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "PAPER_RESULTS",
    "AUDIO_DOMAIN_REFERENCES",
    "random_guess_rate",
    "paper_comparison",
]

#: Published accuracies, keyed (table, dataset, device, classifier).
PAPER_RESULTS: Dict[tuple, float] = {
    # Table III — SAVEE, loudspeaker.
    ("III", "savee", "oneplus7t", "logistic"): 0.5377,
    ("III", "savee", "oneplus7t", "multiclass"): 0.5185,
    ("III", "savee", "oneplus7t", "lmt"): 0.5158,
    ("III", "savee", "oneplus7t", "cnn"): 0.4698,
    ("III", "savee", "oneplus7t", "cnn_spectrogram"): 0.3916,
    ("III", "savee", "pixel5", "logistic"): 0.4444,
    ("III", "savee", "pixel5", "multiclass"): 0.5297,
    ("III", "savee", "pixel5", "lmt"): 0.5300,
    ("III", "savee", "pixel5", "cnn"): 0.4418,
    ("III", "savee", "pixel5", "cnn_spectrogram"): 0.3538,
    # Table IV — CREMA-D, loudspeaker, Galaxy S10.
    ("IV", "cremad", "galaxys10", "logistic"): 0.5899,
    ("IV", "cremad", "galaxys10", "multiclass"): 0.5851,
    ("IV", "cremad", "galaxys10", "lmt"): 0.5899,
    ("IV", "cremad", "galaxys10", "cnn"): 0.6032,
    ("IV", "cremad", "galaxys10", "cnn_spectrogram"): 0.53,
    # Table V — TESS, loudspeaker.
    ("V", "tess", "oneplus7t", "logistic"): 0.9452,
    ("V", "tess", "oneplus7t", "multiclass"): 0.9132,
    ("V", "tess", "oneplus7t", "lmt"): 0.9423,
    ("V", "tess", "oneplus7t", "cnn"): 0.953,
    ("V", "tess", "oneplus7t", "cnn_spectrogram"): 0.8944,
    ("V", "tess", "galaxys10", "logistic"): 0.7884,
    ("V", "tess", "galaxys10", "multiclass"): 0.7180,
    ("V", "tess", "galaxys10", "lmt"): 0.7215,
    ("V", "tess", "galaxys10", "cnn"): 0.832,
    ("V", "tess", "galaxys10", "cnn_spectrogram"): 0.8537,
    ("V", "tess", "pixel5", "logistic"): 0.7393,
    ("V", "tess", "pixel5", "multiclass"): 0.7175,
    ("V", "tess", "pixel5", "lmt"): 0.7848,
    ("V", "tess", "pixel5", "cnn"): 0.8262,
    ("V", "tess", "pixel5", "cnn_spectrogram"): 0.8092,
    ("V", "tess", "galaxys21", "logistic"): 0.8579,
    ("V", "tess", "galaxys21", "multiclass"): 0.8446,
    ("V", "tess", "galaxys21", "lmt"): 0.8704,
    ("V", "tess", "galaxys21", "cnn"): 0.8849,
    ("V", "tess", "galaxys21", "cnn_spectrogram"): 0.8351,
    ("V", "tess", "galaxys21ultra", "logistic"): 0.8215,
    ("V", "tess", "galaxys21ultra", "multiclass"): 0.8165,
    ("V", "tess", "galaxys21ultra", "lmt"): 0.8447,
    ("V", "tess", "galaxys21ultra", "cnn"): 0.8438,
    ("V", "tess", "galaxys21ultra", "cnn_spectrogram"): 0.8574,
    # Table VI — ear speaker, handheld.
    ("VI", "savee", "oneplus7t", "random_forest"): 0.5312,
    ("VI", "savee", "oneplus7t", "random_subspace"): 0.5625,
    ("VI", "savee", "oneplus7t", "lmt"): 0.4911,
    ("VI", "savee", "oneplus7t", "cnn"): 0.5111,
    ("VI", "savee", "oneplus9", "random_forest"): 0.5840,
    ("VI", "savee", "oneplus9", "random_subspace"): 0.5483,
    ("VI", "savee", "oneplus9", "lmt"): 0.5376,
    ("VI", "savee", "oneplus9", "cnn"): 0.6052,
    ("VI", "tess", "oneplus7t", "random_forest"): 0.5967,
    ("VI", "tess", "oneplus7t", "random_subspace"): 0.5545,
    ("VI", "tess", "oneplus7t", "lmt"): 0.5303,
    ("VI", "tess", "oneplus7t", "cnn"): 0.5482,
    # Section VI-A — 200 Hz sampling-rate cap (TESS, OnePlus 7T, CNN).
    ("VI-A", "tess", "oneplus7t", "cnn@200hz"): 0.801,
}

#: Audio-domain accuracies of prior works (paper Table VII, cited refs).
AUDIO_DOMAIN_REFERENCES: Dict[str, float] = {
    "savee": 0.917,   # Abdulmohsin et al. [42]
    "tess": 0.9957,   # Gokilavani et al. / Patel et al. [25], [34]
    "cremad": 0.9499, # Pappagari et al. [32]
}

#: Emotion-class counts fix the random-guess rates the paper quotes
#: (14.28 % for 7 classes, 16.67 % for 6).
_N_CLASSES = {"savee": 7, "tess": 7, "cremad": 6}


def random_guess_rate(dataset: str) -> float:
    """Random-guess accuracy for a dataset's emotion inventory."""
    try:
        return 1.0 / _N_CLASSES[dataset.lower()]
    except KeyError:
        raise ValueError(
            f"unknown dataset {dataset!r}; known: {sorted(_N_CLASSES)}"
        ) from None


def paper_comparison(
    table: str, dataset: str, device: str, classifier: str, measured: float
) -> str:
    """One-line paper-vs-measured comparison for an experiment cell."""
    paper: Optional[float] = PAPER_RESULTS.get(
        (table, dataset, device, classifier)
    )
    guess = random_guess_rate(dataset)
    line = (
        f"[Table {table}] {dataset}/{device}/{classifier}: "
        f"measured={measured:.2%}"
    )
    if paper is not None:
        line += f" paper={paper:.2%}"
    line += f" chance={guess:.2%} ({measured / guess:.1f}x)"
    return line
