"""Batched data plane: the utterance-batch container and its policy.

The collection pipeline's batched stages (see
:meth:`repro.speech.synthesizer.Synthesizer.render_batch`,
:meth:`repro.phone.channel.VibrationChannel.transmit_batch`,
:meth:`repro.attack.regions.RegionDetector.detect_batch`,
:func:`repro.attack.features.extract_features_batch`,
:func:`repro.dsp.spectrogram.spectrogram_image_batch`) all operate on
stacked utterances under the contract defined here: zero-padded
:class:`UtteranceBatch` containers whose valid prefixes are bitwise
authoritative, and a process-wide :class:`BatchPolicy` whose ``float64``
default keeps every batched stage byte-identical to the per-utterance
reference path.
"""

from repro.batch.container import UtteranceBatch
from repro.batch.policy import (
    BATCH_DTYPES,
    BatchPolicy,
    batch_dtype,
    batch_policy_scope,
    get_batch_policy,
    set_batch_policy,
)

__all__ = [
    "UtteranceBatch",
    "BATCH_DTYPES",
    "BatchPolicy",
    "batch_dtype",
    "batch_policy_scope",
    "get_batch_policy",
    "set_batch_policy",
]
