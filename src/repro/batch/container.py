"""Padded/ragged utterance-batch container.

:class:`UtteranceBatch` stacks variable-length 1-D signals into one
``(n, max_len)`` array padded with zeros, plus a ``lengths`` vector that
recovers each row's valid prefix. The contract every batched stage is
tested against:

- **Padding invariant**: every entry of ``data[i, lengths[i]:]`` is
  exactly zero, and any function of a batch must depend only on the
  valid prefixes — re-packing with extra padding columns
  (:meth:`padded_to`) must not change a single output byte
  (pad-invariance).
- **Row fidelity**: ``row(i)`` is the original signal, bitwise — packing
  and unpacking is the identity.
- **Order independence**: batched stages act row-wise, so permuting the
  batch permutes the outputs and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

__all__ = ["UtteranceBatch"]


@dataclass(frozen=True)
class UtteranceBatch:
    """A zero-padded stack of variable-length utterance signals.

    Attributes
    ----------
    data:
        ``(n, max_len)`` array; row ``i`` holds its signal in
        ``data[i, :lengths[i]]`` and zeros after.
    lengths:
        ``(n,)`` int64 vector of valid prefix lengths.
    fs:
        Sampling rate the rows share (0.0 when not meaningful).
    """

    data: np.ndarray
    lengths: np.ndarray
    fs: float = 0.0

    def __post_init__(self) -> None:
        data = np.asarray(self.data)
        lengths = np.asarray(self.lengths, dtype=np.int64)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D (n, max_len), got shape {data.shape}")
        if lengths.ndim != 1 or lengths.shape[0] != data.shape[0]:
            raise ValueError(
                f"lengths shape {lengths.shape} does not match {data.shape[0]} rows"
            )
        if lengths.size and (lengths.min() < 0 or lengths.max() > data.shape[1]):
            raise ValueError("lengths must lie in [0, max_len]")
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "lengths", lengths)
        object.__setattr__(self, "fs", float(self.fs))

    # -- construction -------------------------------------------------------

    @classmethod
    def pack(
        cls,
        rows: Sequence[np.ndarray],
        fs: float = 0.0,
        dtype: Optional[Union[str, np.dtype, type]] = None,
        min_cols: int = 0,
    ) -> "UtteranceBatch":
        """Stack 1-D signals into a zero-padded batch.

        ``dtype`` defaults to the common numpy result type of the rows
        (float64 for an empty batch); ``min_cols`` forces at least that
        many columns (used by the pad-invariance tests).
        """
        arrays = [np.asarray(r) for r in rows]
        for i, a in enumerate(arrays):
            if a.ndim != 1:
                raise ValueError(f"row {i} must be 1-D, got shape {a.shape}")
        if dtype is None:
            dtype = np.result_type(*arrays) if arrays else np.float64
        dtype = np.dtype(dtype)
        lengths = np.array([a.size for a in arrays], dtype=np.int64)
        max_len = max(int(lengths.max()) if arrays else 0, int(min_cols))
        data = np.zeros((len(arrays), max_len), dtype=dtype)
        for i, a in enumerate(arrays):
            data[i, : a.size] = a
        return cls(data=data, lengths=lengths, fs=fs)

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return self.data.shape[0]

    def __iter__(self):
        for i in range(len(self)):
            yield self.row(i)

    @property
    def max_len(self) -> int:
        return self.data.shape[1]

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def row(self, i: int) -> np.ndarray:
        """Row ``i``'s valid prefix (a view into ``data``)."""
        return self.data[i, : int(self.lengths[i])]

    def unpack(self) -> List[np.ndarray]:
        """The original signals, as independent arrays."""
        return [self.row(i).copy() for i in range(len(self))]

    # -- transforms ---------------------------------------------------------

    def astype(self, dtype: Union[str, np.dtype, type]) -> "UtteranceBatch":
        """The same batch with rows cast to ``dtype``."""
        return UtteranceBatch(
            data=self.data.astype(dtype, copy=True), lengths=self.lengths, fs=self.fs
        )

    def padded_to(self, n_cols: int) -> "UtteranceBatch":
        """The same rows padded out to at least ``n_cols`` columns.

        Valid prefixes are untouched, so any pad-invariant consumer must
        produce byte-identical output for ``self`` and the result.
        """
        if n_cols <= self.max_len:
            return self
        data = np.zeros((len(self), n_cols), dtype=self.data.dtype)
        data[:, : self.max_len] = self.data
        return UtteranceBatch(data=data, lengths=self.lengths, fs=self.fs)

    def permuted(self, order: Sequence[int]) -> "UtteranceBatch":
        """The batch with rows reordered by ``order``."""
        order = np.asarray(order, dtype=np.int64)
        if sorted(order.tolist()) != list(range(len(self))):
            raise ValueError(f"order must be a permutation of 0..{len(self) - 1}")
        return UtteranceBatch(
            data=self.data[order], lengths=self.lengths[order], fs=self.fs
        )

    def check_padding(self) -> None:
        """Raise if any padding entry is non-zero (the container invariant)."""
        for i in range(len(self)):
            tail = self.data[i, int(self.lengths[i]) :]
            if tail.size and np.any(tail != 0):
                raise ValueError(f"row {i} has non-zero padding")
