"""Process-wide precision policy for the batched data plane.

Mirrors :mod:`repro.nn.policy`: one knob, ``compute_dtype``, read by the
batched collection pipeline at run time.

- ``float64`` (the default) is the *golden* configuration: every batched
  stage is byte-identical to the per-utterance reference pipeline, so
  the committed golden fixtures pin both paths at once.
- ``float32`` is the hot path: the product stage (Table II feature
  extraction and spectrogram images) runs in single precision and the
  collected arrays are stored as ``float32``. Outputs are only
  tolerance-close to the float64 numerics, which is why
  :func:`repro.attack.engine.collection_key` folds the active dtype into
  the cache key — a float32 run can never serve cached rows to a
  float64 golden run (or vice versa).

Synthesis, the vibration channel and region detection always run in
double precision regardless of policy: they are RNG-driven and feed a
thresholding detector whose region *boundaries* are discrete, so letting
precision shift them would change which rows exist rather than merely
perturbing values.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Optional, Union

import numpy as np

__all__ = [
    "BATCH_DTYPES",
    "BatchPolicy",
    "get_batch_policy",
    "set_batch_policy",
    "batch_policy_scope",
    "batch_dtype",
]

#: Allowed batch compute dtypes, by CLI name.
BATCH_DTYPES = {"float32": np.dtype(np.float32), "float64": np.dtype(np.float64)}


def _coerce_dtype(value: Union[str, np.dtype, type]) -> np.dtype:
    if isinstance(value, str) and value in BATCH_DTYPES:
        return BATCH_DTYPES[value]
    dtype = np.dtype(value)
    if dtype not in BATCH_DTYPES.values():
        raise ValueError(
            f"compute_dtype must be one of {sorted(BATCH_DTYPES)}, got {value!r}"
        )
    return dtype


@dataclass(frozen=True)
class BatchPolicy:
    """The active compute dtype of the batched collection pipeline."""

    compute_dtype: np.dtype = np.dtype(np.float64)

    def __post_init__(self):
        object.__setattr__(self, "compute_dtype", _coerce_dtype(self.compute_dtype))

    @property
    def is_golden(self) -> bool:
        """True when the policy reproduces the reference numerics exactly."""
        return self.compute_dtype == np.dtype(np.float64)


#: Default: double precision — byte-identical to the per-utterance path.
DEFAULT_BATCH_POLICY = BatchPolicy()

_current = DEFAULT_BATCH_POLICY


def get_batch_policy() -> BatchPolicy:
    """The active process-wide batch policy."""
    return _current


def set_batch_policy(
    compute_dtype: Optional[Union[str, np.dtype, type]] = None,
) -> BatchPolicy:
    """Replace selected fields of the process-wide policy; returns it."""
    global _current
    if compute_dtype is not None:
        _current = replace(_current, compute_dtype=_coerce_dtype(compute_dtype))
    return _current


@contextmanager
def batch_policy_scope(
    compute_dtype: Optional[Union[str, np.dtype, type]] = None,
):
    """Set policy fields for the duration of a ``with`` block."""
    previous = _current
    try:
        yield set_batch_policy(compute_dtype=compute_dtype)
    finally:
        _restore(previous)


def _restore(policy: BatchPolicy) -> None:
    global _current
    _current = policy


def batch_dtype() -> np.dtype:
    """The active batch compute dtype."""
    return _current.compute_dtype
