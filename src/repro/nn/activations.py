"""Activation functions and their gradients."""

from __future__ import annotations

import numpy as np

__all__ = ["relu", "relu_grad", "softmax"]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU w.r.t. its input (1 where x > 0)."""
    return (x > 0.0).astype(x.dtype)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax over the last axis, numerically stabilised."""
    z = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)
