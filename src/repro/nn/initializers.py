"""Weight initialisers."""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "glorot_uniform"]


def he_normal(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialisation, suited to ReLU layers."""
    if fan_in < 1:
        raise ValueError("fan_in must be >= 1")
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def glorot_uniform(
    shape, fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot (Xavier) uniform initialisation."""
    if fan_in < 1 or fan_out < 1:
        raise ValueError("fan_in and fan_out must be >= 1")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)
