"""Layers: dense, conv, pooling, normalisation, dropout.

Conventions
-----------
- Channels-last layouts: Conv2D works on ``(N, H, W, C)``, Conv1D on
  ``(N, L, C)``, Dense on ``(N, D)``.
- ``forward(x, training)`` caches what ``backward(grad)`` needs;
  ``backward`` returns dLoss/dInput and fills ``self.grads`` parallel to
  ``self.params``.
- Convolutions use "same" zero padding (as the paper's feature CNN
  states) or "valid".
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.nn.activations import relu, relu_grad
from repro.nn.initializers import he_normal

__all__ = [
    "Layer",
    "Dense",
    "Conv1D",
    "Conv2D",
    "MaxPool1D",
    "MaxPool2D",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "ReLU",
]


class Layer:
    """Base layer: parameter/gradient registry plus the fwd/bwd API."""

    def __init__(self):
        self.params: List[np.ndarray] = []
        self.grads: List[np.ndarray] = []
        self.built = False

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Allocate parameters once the input shape (sans batch) is known."""
        self.built = True

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape given the per-sample input shape."""
        return input_shape

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class ReLU(Layer):
    """Elementwise rectifier."""

    def forward(self, x, training):
        self._x = x
        return relu(x)

    def backward(self, grad):
        return grad * relu_grad(self._x)


class Flatten(Layer):
    """Collapse all per-sample axes into one."""

    def output_shape(self, input_shape):
        return (int(np.prod(input_shape)),)

    def forward(self, x, training):
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad):
        return grad.reshape(self._shape)


class Dense(Layer):
    """Fully connected layer."""

    def __init__(self, units: int):
        super().__init__()
        if units < 1:
            raise ValueError("units must be >= 1")
        self.units = int(units)

    def build(self, input_shape, rng):
        if len(input_shape) != 1:
            raise ValueError(f"Dense expects flat input, got shape {input_shape}")
        d = input_shape[0]
        self.W = he_normal((d, self.units), fan_in=d, rng=rng)
        self.b = np.zeros(self.units)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]
        self.built = True

    def output_shape(self, input_shape):
        return (self.units,)

    def forward(self, x, training):
        self._x = x
        return x @ self.W + self.b

    def backward(self, grad):
        self.grads[0][...] = self._x.T @ grad
        self.grads[1][...] = grad.sum(axis=0)
        return grad @ self.W.T


class Dropout(Layer):
    """Inverted dropout; identity at inference."""

    def __init__(self, rate: float, seed: int = 0):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)

    def forward(self, x, training):
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad):
        if self._mask is None:
            return grad
        return grad * self._mask


class BatchNorm(Layer):
    """Batch normalisation over the channel (last) axis."""

    def __init__(self, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__()
        self.momentum = float(momentum)
        self.eps = float(eps)

    def build(self, input_shape, rng):
        channels = input_shape[-1]
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)
        self.params = [self.gamma, self.beta]
        self.grads = [np.zeros_like(self.gamma), np.zeros_like(self.beta)]
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.built = True

    def forward(self, x, training):
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        self._x_hat = (x - mean) / np.sqrt(var + self.eps)
        self._var = var
        self._axes = axes
        self._m = int(np.prod([x.shape[a] for a in axes]))
        return self.gamma * self._x_hat + self.beta

    def backward(self, grad):
        axes = self._axes
        self.grads[0][...] = np.sum(grad * self._x_hat, axis=axes)
        self.grads[1][...] = np.sum(grad, axis=axes)
        m = self._m
        inv_std = 1.0 / np.sqrt(self._var + self.eps)
        g = grad * self.gamma
        return (
            inv_std
            / m
            * (
                m * g
                - np.sum(g, axis=axes)
                - self._x_hat * np.sum(g * self._x_hat, axis=axes)
            )
        )


def _pad_amounts(size: int, kernel: int, padding: str) -> Tuple[int, int]:
    if padding == "valid":
        return 0, 0
    if padding == "same":
        total = max(kernel - 1, 0)
        return total // 2, total - total // 2
    raise ValueError(f"padding must be 'same' or 'valid', got {padding!r}")


class Conv2D(Layer):
    """2-D convolution (stride 1, channels-last) via kernel-offset summation."""

    def __init__(self, filters: int, kernel_size, padding: str = "same"):
        super().__init__()
        if filters < 1:
            raise ValueError("filters must be >= 1")
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.filters = int(filters)
        self.kh, self.kw = int(kernel_size[0]), int(kernel_size[1])
        if self.kh < 1 or self.kw < 1:
            raise ValueError("kernel dims must be >= 1")
        self.padding = padding

    def build(self, input_shape, rng):
        if len(input_shape) != 3:
            raise ValueError(f"Conv2D expects (H, W, C) input, got {input_shape}")
        c_in = input_shape[2]
        fan_in = self.kh * self.kw * c_in
        self.W = he_normal((self.kh, self.kw, c_in, self.filters), fan_in, rng)
        self.b = np.zeros(self.filters)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]
        self.built = True

    def output_shape(self, input_shape):
        h, w, _ = input_shape
        if self.padding == "same":
            return (h, w, self.filters)
        return (h - self.kh + 1, w - self.kw + 1, self.filters)

    def forward(self, x, training):
        ph0, ph1 = _pad_amounts(x.shape[1], self.kh, self.padding)
        pw0, pw1 = _pad_amounts(x.shape[2], self.kw, self.padding)
        xp = np.pad(x, ((0, 0), (ph0, ph1), (pw0, pw1), (0, 0)))
        self._xp = xp
        self._pads = (ph0, ph1, pw0, pw1)
        n, hp, wp, c = xp.shape
        h_out = hp - self.kh + 1
        w_out = wp - self.kw + 1
        out = np.tile(self.b, (n, h_out, w_out, 1))
        for i in range(self.kh):
            for j in range(self.kw):
                patch = xp[:, i : i + h_out, j : j + w_out, :]
                out += patch @ self.W[i, j]
        self._out_hw = (h_out, w_out)
        return out

    def backward(self, grad):
        xp = self._xp
        h_out, w_out = self._out_hw
        dxp = np.zeros_like(xp)
        self.grads[0][...] = 0.0
        for i in range(self.kh):
            for j in range(self.kw):
                patch = xp[:, i : i + h_out, j : j + w_out, :]
                self.grads[0][i, j] = np.tensordot(
                    patch, grad, axes=([0, 1, 2], [0, 1, 2])
                )
                dxp[:, i : i + h_out, j : j + w_out, :] += grad @ self.W[i, j].T
        self.grads[1][...] = grad.sum(axis=(0, 1, 2))
        ph0, ph1, pw0, pw1 = self._pads
        hp, wp = dxp.shape[1], dxp.shape[2]
        return dxp[:, ph0 : hp - ph1, pw0 : wp - pw1, :]


class Conv1D(Layer):
    """1-D convolution (stride 1, channels-last) via kernel-offset summation."""

    def __init__(self, filters: int, kernel_size: int, padding: str = "same"):
        super().__init__()
        if filters < 1 or kernel_size < 1:
            raise ValueError("filters and kernel_size must be >= 1")
        self.filters = int(filters)
        self.k = int(kernel_size)
        self.padding = padding

    def build(self, input_shape, rng):
        if len(input_shape) != 2:
            raise ValueError(f"Conv1D expects (L, C) input, got {input_shape}")
        c_in = input_shape[1]
        fan_in = self.k * c_in
        self.W = he_normal((self.k, c_in, self.filters), fan_in, rng)
        self.b = np.zeros(self.filters)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]
        self.built = True

    def output_shape(self, input_shape):
        length, _ = input_shape
        if self.padding == "same":
            return (length, self.filters)
        return (length - self.k + 1, self.filters)

    def forward(self, x, training):
        p0, p1 = _pad_amounts(x.shape[1], self.k, self.padding)
        xp = np.pad(x, ((0, 0), (p0, p1), (0, 0)))
        self._xp = xp
        self._pads = (p0, p1)
        n, lp, c = xp.shape
        l_out = lp - self.k + 1
        out = np.tile(self.b, (n, l_out, 1))
        for i in range(self.k):
            out += xp[:, i : i + l_out, :] @ self.W[i]
        self._l_out = l_out
        return out

    def backward(self, grad):
        xp = self._xp
        l_out = self._l_out
        dxp = np.zeros_like(xp)
        self.grads[0][...] = 0.0
        for i in range(self.k):
            patch = xp[:, i : i + l_out, :]
            self.grads[0][i] = np.tensordot(patch, grad, axes=([0, 1], [0, 1]))
            dxp[:, i : i + l_out, :] += grad @ self.W[i].T
        self.grads[1][...] = grad.sum(axis=(0, 1))
        p0, p1 = self._pads
        lp = dxp.shape[1]
        return dxp[:, p0 : lp - p1, :]


class MaxPool2D(Layer):
    """Non-overlapping 2-D max pooling (trailing remainder cropped)."""

    def __init__(self, pool_size: int = 2):
        super().__init__()
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.p = int(pool_size)

    def output_shape(self, input_shape):
        h, w, c = input_shape
        return (max(1, h // self.p), max(1, w // self.p), c)

    def forward(self, x, training):
        n, h, w, c = x.shape
        p = self.p
        h_out, w_out = max(1, h // p), max(1, w // p)
        if h < p or w < p:
            # Degenerate: pool over whatever is there.
            self._degenerate = True
            self._shape = x.shape
            flat = x.reshape(n, h * w, c)
            self._argmax = flat.argmax(axis=1)
            return flat.max(axis=1).reshape(n, 1, 1, c)
        self._degenerate = False
        xc = x[:, : h_out * p, : w_out * p, :]
        self._shape = x.shape
        blocks = xc.reshape(n, h_out, p, w_out, p, c).transpose(0, 1, 3, 5, 2, 4)
        blocks = blocks.reshape(n, h_out, w_out, c, p * p)
        self._argmax = blocks.argmax(axis=-1)
        return blocks.max(axis=-1)

    def backward(self, grad):
        n, h, w, c = self._shape
        p = self.p
        dx = np.zeros((n, h, w, c))
        if self._degenerate:
            flat = dx.reshape(n, h * w, c)
            ni, ci = np.meshgrid(np.arange(n), np.arange(c), indexing="ij")
            flat[ni, self._argmax, ci] = grad.reshape(n, c)
            return flat.reshape(n, h, w, c)
        h_out, w_out = grad.shape[1], grad.shape[2]
        rows = self._argmax // p
        cols = self._argmax % p
        ni, hi, wi, ci = np.meshgrid(
            np.arange(n), np.arange(h_out), np.arange(w_out), np.arange(c),
            indexing="ij",
        )
        dx[ni, hi * p + rows, wi * p + cols, ci] = grad
        return dx


class MaxPool1D(Layer):
    """Non-overlapping 1-D max pooling (trailing remainder cropped)."""

    def __init__(self, pool_size: int = 2):
        super().__init__()
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.p = int(pool_size)

    def output_shape(self, input_shape):
        length, c = input_shape
        return (max(1, length // self.p), c)

    def forward(self, x, training):
        n, length, c = x.shape
        p = self.p
        self._shape = x.shape
        if length < p:
            self._degenerate = True
            self._argmax = x.argmax(axis=1)
            return x.max(axis=1, keepdims=True)
        self._degenerate = False
        l_out = length // p
        xc = x[:, : l_out * p, :].reshape(n, l_out, p, c)
        self._argmax = xc.argmax(axis=2)
        return xc.max(axis=2)

    def backward(self, grad):
        n, length, c = self._shape
        p = self.p
        dx = np.zeros((n, length, c))
        if self._degenerate:
            ni, ci = np.meshgrid(np.arange(n), np.arange(c), indexing="ij")
            dx[ni, self._argmax, ci] = grad[:, 0, :]
            return dx
        l_out = grad.shape[1]
        ni, li, ci = np.meshgrid(
            np.arange(n), np.arange(l_out), np.arange(c), indexing="ij"
        )
        dx[ni, li * p + self._argmax, ci] = grad
        return dx
