"""Layers: dense, conv, pooling, normalisation, dropout.

Conventions
-----------
- Channels-last layouts: Conv2D works on ``(N, H, W, C)``, Conv1D on
  ``(N, L, C)``, Dense on ``(N, D)``.
- ``forward(x, training)`` caches what ``backward(grad)`` needs;
  ``backward`` returns dLoss/dInput and fills ``self.grads`` parallel to
  ``self.params``.
- Convolutions use "same" zero padding (as the paper's feature CNN
  states) or "valid".
- Parameters are allocated in the :mod:`repro.nn.policy` compute dtype
  at ``build`` time; the convolution kernel ("gemm" im2col/GEMM or the
  original "reference" kernel-offset summation) is re-read from the
  policy on every forward, unless pinned per layer via ``kernel=``.

The GEMM path lowers each convolution to one matrix multiply per
direction: ``sliding_window_view`` gathers the receptive fields into a
per-layer reusable im2col workspace (grown once, then recycled every
batch), the forward is ``cols @ W2d + b`` and the backward is two GEMMs
(``colsᵀ @ grad`` for dW, ``grad @ W2dᵀ`` followed by a kh·kw slice
scatter-add for dX). 1x1 convolutions skip the gather entirely.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.activations import relu, relu_grad
from repro.nn.initializers import he_normal
from repro.nn.policy import CONV_KERNELS, get_policy

__all__ = [
    "Layer",
    "Dense",
    "Conv1D",
    "Conv2D",
    "MaxPool1D",
    "MaxPool2D",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "ReLU",
]


class _Workspace:
    """A grow-only scratch buffer reused across batches.

    ``get(shape, dtype)`` returns a C-contiguous array of that shape
    backed by one flat allocation that only grows (or is replaced on a
    dtype change), so steady-state training performs zero scratch
    allocations per batch.
    """

    __slots__ = ("_buf",)

    def __init__(self):
        self._buf: Optional[np.ndarray] = None

    def get(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        size = int(np.prod(shape))
        dtype = np.dtype(dtype)
        if self._buf is None or self._buf.size < size or self._buf.dtype != dtype:
            self._buf = np.empty(max(size, 1), dtype=dtype)
        return self._buf[:size].reshape(shape)


class Layer:
    """Base layer: parameter/gradient registry plus the fwd/bwd API."""

    def __init__(self):
        self.params: List[np.ndarray] = []
        self.grads: List[np.ndarray] = []
        self.built = False

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Allocate parameters once the input shape (sans batch) is known."""
        self.built = True

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape given the per-sample input shape."""
        return input_shape

    def forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class ReLU(Layer):
    """Elementwise rectifier."""

    def forward(self, x, training):
        self._x = x
        return relu(x)

    def backward(self, grad):
        return grad * relu_grad(self._x)


class Flatten(Layer):
    """Collapse all per-sample axes into one."""

    def output_shape(self, input_shape):
        return (int(np.prod(input_shape)),)

    def forward(self, x, training):
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad):
        return grad.reshape(self._shape)


class Dense(Layer):
    """Fully connected layer."""

    def __init__(self, units: int):
        super().__init__()
        if units < 1:
            raise ValueError("units must be >= 1")
        self.units = int(units)

    def build(self, input_shape, rng):
        if len(input_shape) != 1:
            raise ValueError(f"Dense expects flat input, got shape {input_shape}")
        d = input_shape[0]
        dtype = get_policy().compute_dtype
        self.W = he_normal((d, self.units), fan_in=d, rng=rng).astype(dtype)
        self.b = np.zeros(self.units, dtype=dtype)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]
        self.built = True

    def output_shape(self, input_shape):
        return (self.units,)

    def forward(self, x, training):
        if get_policy().conv_kernel == "quantized":
            if training:
                raise RuntimeError(
                    "the quantized kernel is inference-only; train under "
                    "'gemm' or 'reference' and quantize afterwards"
                )
            from repro.nn.quant import dense_forward_quantized

            return dense_forward_quantized(self.W, self.b, x)
        self._x = x
        return x @ self.W + self.b

    def backward(self, grad):
        self.grads[0][...] = self._x.T @ grad
        self.grads[1][...] = grad.sum(axis=0)
        return grad @ self.W.T


class Dropout(Layer):
    """Inverted dropout; identity at inference."""

    def __init__(self, rate: float, seed: int = 0):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)

    def forward(self, x, training):
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        # Draw in the activation dtype: float64 inputs keep the original
        # stream; float32 inputs get native float32 draws (half the
        # bandwidth, no astype) at the cost of a policy-specific mask.
        draw_dtype = np.float32 if x.dtype == np.float32 else np.float64
        self._mask = (self._rng.random(x.shape, dtype=draw_dtype) < keep).astype(
            x.dtype
        )
        self._mask /= np.asarray(keep, dtype=x.dtype)
        return x * self._mask

    def backward(self, grad):
        if self._mask is None:
            return grad
        return grad * self._mask


class BatchNorm(Layer):
    """Batch normalisation over the channel (last) axis."""

    def __init__(self, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__()
        self.momentum = float(momentum)
        self.eps = float(eps)

    def build(self, input_shape, rng):
        channels = input_shape[-1]
        dtype = get_policy().compute_dtype
        self.gamma = np.ones(channels, dtype=dtype)
        self.beta = np.zeros(channels, dtype=dtype)
        self.params = [self.gamma, self.beta]
        self.grads = [np.zeros_like(self.gamma), np.zeros_like(self.beta)]
        self.running_mean = np.zeros(channels, dtype=dtype)
        self.running_var = np.ones(channels, dtype=dtype)
        self.built = True

    def forward(self, x, training):
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        self._x_hat = (x - mean) / np.sqrt(var + self.eps)
        self._var = var
        self._axes = axes
        self._m = int(np.prod([x.shape[a] for a in axes]))
        return self.gamma * self._x_hat + self.beta

    def backward(self, grad):
        axes = self._axes
        self.grads[0][...] = np.sum(grad * self._x_hat, axis=axes)
        self.grads[1][...] = np.sum(grad, axis=axes)
        m = self._m
        inv_std = 1.0 / np.sqrt(self._var + self.eps)
        g = grad * self.gamma
        return (
            inv_std
            / m
            * (
                m * g
                - np.sum(g, axis=axes)
                - self._x_hat * np.sum(g * self._x_hat, axis=axes)
            )
        )


def _pad_amounts(size: int, kernel: int, padding: str) -> Tuple[int, int]:
    if padding == "valid":
        return 0, 0
    if padding == "same":
        total = max(kernel - 1, 0)
        return total // 2, total - total // 2
    raise ValueError(f"padding must be 'same' or 'valid', got {padding!r}")


class _ConvBase(Layer):
    """Shared kernel dispatch for the convolution layers."""

    def __init__(self, kernel: Optional[str]):
        super().__init__()
        if kernel is not None and kernel not in CONV_KERNELS:
            raise ValueError(f"kernel must be one of {CONV_KERNELS}, got {kernel!r}")
        self.kernel = kernel
        self._cols_ws = _Workspace()
        self._dcols_ws = _Workspace()

    def _active_kernel(self) -> str:
        return self.kernel if self.kernel is not None else get_policy().conv_kernel

    def forward(self, x, training):
        kernel = self._active_kernel()
        self._fwd_kernel = kernel  # backward must match the forward's cache
        if kernel == "reference":
            return self._forward_reference(x, training)
        if kernel == "quantized":
            if training:
                raise RuntimeError(
                    "the quantized kernel is inference-only; train under "
                    "'gemm' or 'reference' and quantize afterwards"
                )
            from repro.nn.quant import conv_forward_quantized

            return conv_forward_quantized(self, x)
        return self._forward_gemm(x, training)

    def backward(self, grad):
        if self._fwd_kernel == "reference":
            return self._backward_reference(grad)
        if self._fwd_kernel == "quantized":
            raise RuntimeError("the quantized kernel has no backward pass")
        return self._backward_gemm(grad)


class Conv2D(_ConvBase):
    """2-D convolution (stride 1, channels-last).

    The default "gemm" kernel lowers the convolution to im2col plus a
    single GEMM per direction; ``kernel="reference"`` pins this layer to
    the original kernel-offset summation (otherwise the
    :mod:`repro.nn.policy` selection applies).
    """

    def __init__(
        self,
        filters: int,
        kernel_size,
        padding: str = "same",
        kernel: Optional[str] = None,
    ):
        super().__init__(kernel)
        if filters < 1:
            raise ValueError("filters must be >= 1")
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.filters = int(filters)
        self.kh, self.kw = int(kernel_size[0]), int(kernel_size[1])
        if self.kh < 1 or self.kw < 1:
            raise ValueError("kernel dims must be >= 1")
        self.padding = padding

    def build(self, input_shape, rng):
        if len(input_shape) != 3:
            raise ValueError(f"Conv2D expects (H, W, C) input, got {input_shape}")
        c_in = input_shape[2]
        fan_in = self.kh * self.kw * c_in
        dtype = get_policy().compute_dtype
        self.W = he_normal((self.kh, self.kw, c_in, self.filters), fan_in, rng)
        self.W = self.W.astype(dtype)
        self.b = np.zeros(self.filters, dtype=dtype)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]
        self.built = True

    def output_shape(self, input_shape):
        h, w, _ = input_shape
        if self.padding == "same":
            return (h, w, self.filters)
        return (h - self.kh + 1, w - self.kw + 1, self.filters)

    # -- gemm kernel --------------------------------------------------------
    def _forward_gemm(self, x, training):
        kh, kw, f = self.kh, self.kw, self.filters
        c = self.W.shape[2]
        n = x.shape[0]
        if kh == 1 and kw == 1:
            # Pointwise: the pixels already are the im2col rows.
            self._x2 = x.reshape(-1, c)
            self._x_shape = x.shape
            out = self._x2 @ self.W[0, 0]
            out += self.b
            return out.reshape(n, x.shape[1], x.shape[2], f)
        ph0, ph1 = _pad_amounts(x.shape[1], kh, self.padding)
        pw0, pw1 = _pad_amounts(x.shape[2], kw, self.padding)
        if ph0 or ph1 or pw0 or pw1:
            xp = np.pad(x, ((0, 0), (ph0, ph1), (pw0, pw1), (0, 0)))
        else:
            xp = x
        h_out = xp.shape[1] - kh + 1
        w_out = xp.shape[2] - kw + 1
        # (n, h_out, w_out, c, kh, kw) view -> contiguous (rows, kh*kw*c).
        windows = sliding_window_view(xp, (kh, kw), axis=(1, 2))
        cols6 = self._cols_ws.get((n, h_out, w_out, kh, kw, c), xp.dtype)
        np.copyto(cols6, windows.transpose(0, 1, 2, 4, 5, 3))
        cols = cols6.reshape(n * h_out * w_out, kh * kw * c)
        out = cols @ self.W.reshape(kh * kw * c, f)
        out += self.b
        self._cols = cols
        self._x_shape = x.shape
        self._pads = (ph0, ph1, pw0, pw1)
        self._out_hw = (h_out, w_out)
        return out.reshape(n, h_out, w_out, f)

    def _backward_gemm(self, grad):
        kh, kw, f = self.kh, self.kw, self.filters
        c = self.W.shape[2]
        if kh == 1 and kw == 1:
            g2 = grad.reshape(-1, f)
            self.grads[0][...] = self._x2.T @ g2
            self.grads[1][...] = g2.sum(axis=0)
            return (g2 @ self.W[0, 0].T).reshape(self._x_shape)
        n = self._x_shape[0]
        h_out, w_out = self._out_hw
        g2 = grad.reshape(n * h_out * w_out, f)
        self.grads[0][...] = (self._cols.T @ g2).reshape(self.W.shape)
        self.grads[1][...] = grad.sum(axis=(0, 1, 2))
        dcols = self._dcols_ws.get((g2.shape[0], kh * kw * c), self._cols.dtype)
        np.matmul(g2, self.W.reshape(kh * kw * c, f).T, out=dcols)
        dcols6 = dcols.reshape(n, h_out, w_out, kh, kw, c)
        dxp = np.zeros(
            (n, h_out + kh - 1, w_out + kw - 1, c), dtype=dcols.dtype
        )
        for i in range(kh):
            for j in range(kw):
                dxp[:, i : i + h_out, j : j + w_out, :] += dcols6[:, :, :, i, j, :]
        ph0, ph1, pw0, pw1 = self._pads
        hp, wp = dxp.shape[1], dxp.shape[2]
        return dxp[:, ph0 : hp - ph1, pw0 : wp - pw1, :]

    # -- reference kernel (the original kernel-offset summation) ------------
    def _forward_reference(self, x, training):
        ph0, ph1 = _pad_amounts(x.shape[1], self.kh, self.padding)
        pw0, pw1 = _pad_amounts(x.shape[2], self.kw, self.padding)
        xp = np.pad(x, ((0, 0), (ph0, ph1), (pw0, pw1), (0, 0)))
        self._xp = xp
        self._pads = (ph0, ph1, pw0, pw1)
        n, hp, wp, c = xp.shape
        h_out = hp - self.kh + 1
        w_out = wp - self.kw + 1
        out = np.tile(self.b, (n, h_out, w_out, 1))
        for i in range(self.kh):
            for j in range(self.kw):
                patch = xp[:, i : i + h_out, j : j + w_out, :]
                out += patch @ self.W[i, j]
        self._out_hw = (h_out, w_out)
        return out

    def _backward_reference(self, grad):
        xp = self._xp
        h_out, w_out = self._out_hw
        dxp = np.zeros_like(xp)
        self.grads[0][...] = 0.0
        for i in range(self.kh):
            for j in range(self.kw):
                patch = xp[:, i : i + h_out, j : j + w_out, :]
                self.grads[0][i, j] = np.tensordot(
                    patch, grad, axes=([0, 1, 2], [0, 1, 2])
                )
                dxp[:, i : i + h_out, j : j + w_out, :] += grad @ self.W[i, j].T
        self.grads[1][...] = grad.sum(axis=(0, 1, 2))
        ph0, ph1, pw0, pw1 = self._pads
        hp, wp = dxp.shape[1], dxp.shape[2]
        return dxp[:, ph0 : hp - ph1, pw0 : wp - pw1, :]


class Conv1D(_ConvBase):
    """1-D convolution (stride 1, channels-last).

    Kernel selection mirrors :class:`Conv2D`: "gemm" (im2col + GEMM,
    default) or "reference" (kernel-offset summation).
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        padding: str = "same",
        kernel: Optional[str] = None,
    ):
        super().__init__(kernel)
        if filters < 1 or kernel_size < 1:
            raise ValueError("filters and kernel_size must be >= 1")
        self.filters = int(filters)
        self.k = int(kernel_size)
        self.padding = padding

    def build(self, input_shape, rng):
        if len(input_shape) != 2:
            raise ValueError(f"Conv1D expects (L, C) input, got {input_shape}")
        c_in = input_shape[1]
        fan_in = self.k * c_in
        dtype = get_policy().compute_dtype
        self.W = he_normal((self.k, c_in, self.filters), fan_in, rng).astype(dtype)
        self.b = np.zeros(self.filters, dtype=dtype)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]
        self.built = True

    def output_shape(self, input_shape):
        length, _ = input_shape
        if self.padding == "same":
            return (length, self.filters)
        return (length - self.k + 1, self.filters)

    # -- gemm kernel --------------------------------------------------------
    def _forward_gemm(self, x, training):
        k, f = self.k, self.filters
        c = self.W.shape[1]
        n = x.shape[0]
        if k == 1:
            self._x2 = x.reshape(-1, c)
            self._x_shape = x.shape
            out = self._x2 @ self.W[0]
            out += self.b
            return out.reshape(n, x.shape[1], f)
        p0, p1 = _pad_amounts(x.shape[1], k, self.padding)
        xp = np.pad(x, ((0, 0), (p0, p1), (0, 0))) if (p0 or p1) else x
        l_out = xp.shape[1] - k + 1
        # (n, l_out, c, k) view -> contiguous (rows, k*c).
        windows = sliding_window_view(xp, k, axis=1)
        cols4 = self._cols_ws.get((n, l_out, k, c), xp.dtype)
        np.copyto(cols4, windows.transpose(0, 1, 3, 2))
        cols = cols4.reshape(n * l_out, k * c)
        out = cols @ self.W.reshape(k * c, f)
        out += self.b
        self._cols = cols
        self._x_shape = x.shape
        self._pads = (p0, p1)
        self._l_out = l_out
        return out.reshape(n, l_out, f)

    def _backward_gemm(self, grad):
        k, f = self.k, self.filters
        c = self.W.shape[1]
        if k == 1:
            g2 = grad.reshape(-1, f)
            self.grads[0][...] = self._x2.T @ g2
            self.grads[1][...] = g2.sum(axis=0)
            return (g2 @ self.W[0].T).reshape(self._x_shape)
        n = self._x_shape[0]
        l_out = self._l_out
        g2 = grad.reshape(n * l_out, f)
        self.grads[0][...] = (self._cols.T @ g2).reshape(self.W.shape)
        self.grads[1][...] = grad.sum(axis=(0, 1))
        dcols = self._dcols_ws.get((g2.shape[0], k * c), self._cols.dtype)
        np.matmul(g2, self.W.reshape(k * c, f).T, out=dcols)
        dcols4 = dcols.reshape(n, l_out, k, c)
        dxp = np.zeros((n, l_out + k - 1, c), dtype=dcols.dtype)
        for i in range(k):
            dxp[:, i : i + l_out, :] += dcols4[:, :, i, :]
        p0, p1 = self._pads
        lp = dxp.shape[1]
        return dxp[:, p0 : lp - p1, :]

    # -- reference kernel (the original kernel-offset summation) ------------
    def _forward_reference(self, x, training):
        p0, p1 = _pad_amounts(x.shape[1], self.k, self.padding)
        xp = np.pad(x, ((0, 0), (p0, p1), (0, 0)))
        self._xp = xp
        self._pads = (p0, p1)
        n, lp, c = xp.shape
        l_out = lp - self.k + 1
        out = np.tile(self.b, (n, l_out, 1))
        for i in range(self.k):
            out += xp[:, i : i + l_out, :] @ self.W[i]
        self._l_out = l_out
        return out

    def _backward_reference(self, grad):
        xp = self._xp
        l_out = self._l_out
        dxp = np.zeros_like(xp)
        self.grads[0][...] = 0.0
        for i in range(self.k):
            patch = xp[:, i : i + l_out, :]
            self.grads[0][i] = np.tensordot(patch, grad, axes=([0, 1], [0, 1]))
            dxp[:, i : i + l_out, :] += grad @ self.W[i].T
        self.grads[1][...] = grad.sum(axis=(0, 1))
        p0, p1 = self._pads
        lp = dxp.shape[1]
        return dxp[:, p0 : lp - p1, :]


class MaxPool2D(Layer):
    """Non-overlapping 2-D max pooling (trailing remainder cropped)."""

    def __init__(self, pool_size: int = 2):
        super().__init__()
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.p = int(pool_size)

    def output_shape(self, input_shape):
        h, w, c = input_shape
        return (max(1, h // self.p), max(1, w // self.p), c)

    def forward(self, x, training):
        n, h, w, c = x.shape
        p = self.p
        h_out, w_out = max(1, h // p), max(1, w // p)
        if h < p or w < p:
            # Degenerate: pool over whatever is there.
            self._degenerate = True
            self._shape = x.shape
            flat = x.reshape(n, h * w, c)
            self._argmax = flat.argmax(axis=1)
            return flat.max(axis=1).reshape(n, 1, 1, c)
        self._degenerate = False
        xc = x[:, : h_out * p, : w_out * p, :]
        self._shape = x.shape
        self._dtype = x.dtype
        blocks = xc.reshape(n, h_out, p, w_out, p, c).transpose(0, 1, 3, 5, 2, 4)
        blocks = blocks.reshape(n, h_out, w_out, c, p * p)
        self._argmax = blocks.argmax(axis=-1)
        # One reduction pass: the max is the value at the argmax, so a
        # gather replaces a second full scan of the pooling windows.
        return np.take_along_axis(blocks, self._argmax[..., None], axis=-1)[..., 0]

    def backward(self, grad):
        n, h, w, c = self._shape
        p = self.p
        dx = np.zeros((n, h, w, c), dtype=grad.dtype)
        if self._degenerate:
            flat = dx.reshape(n, h * w, c)
            ni, ci = np.meshgrid(np.arange(n), np.arange(c), indexing="ij")
            flat[ni, self._argmax, ci] = grad.reshape(n, c)
            return flat.reshape(n, h, w, c)
        h_out, w_out = grad.shape[1], grad.shape[2]
        rows, cols = np.divmod(self._argmax, p)
        ni = np.arange(n)[:, None, None, None]
        hb = (np.arange(h_out) * p)[None, :, None, None]
        wb = (np.arange(w_out) * p)[None, None, :, None]
        ci = np.arange(c)[None, None, None, :]
        flat_idx = ((ni * h + hb + rows) * w + (wb + cols)) * c + ci
        dx.reshape(-1)[flat_idx.ravel()] = grad.ravel()
        return dx


class MaxPool1D(Layer):
    """Non-overlapping 1-D max pooling (trailing remainder cropped)."""

    def __init__(self, pool_size: int = 2):
        super().__init__()
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.p = int(pool_size)

    def output_shape(self, input_shape):
        length, c = input_shape
        return (max(1, length // self.p), c)

    def forward(self, x, training):
        n, length, c = x.shape
        p = self.p
        self._shape = x.shape
        if length < p:
            self._degenerate = True
            self._argmax = x.argmax(axis=1)
            return x.max(axis=1, keepdims=True)
        self._degenerate = False
        l_out = length // p
        xc = x[:, : l_out * p, :].reshape(n, l_out, p, c)
        self._argmax = xc.argmax(axis=2)
        return np.take_along_axis(xc, self._argmax[:, :, None, :], axis=2)[:, :, 0, :]

    def backward(self, grad):
        n, length, c = self._shape
        p = self.p
        dx = np.zeros((n, length, c), dtype=grad.dtype)
        if self._degenerate:
            ni, ci = np.meshgrid(np.arange(n), np.arange(c), indexing="ij")
            dx[ni, self._argmax, ci] = grad[:, 0, :]
            return dx
        l_out = grad.shape[1]
        ni = np.arange(n)[:, None, None]
        lb = (np.arange(l_out) * p)[None, :, None]
        ci = np.arange(c)[None, None, :]
        flat_idx = (ni * length + lb + self._argmax) * c + ci
        dx.reshape(-1)[flat_idx.ravel()] = grad.ravel()
        return dx
