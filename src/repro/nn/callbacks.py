"""Training callbacks: early stopping and learning-rate decay.

The paper trains its Keras models with fixed epoch budgets, but its
Fig. 7 curves show validation loss flattening long before the end — the
classic early-stopping setting. These callbacks plug into
:meth:`repro.nn.model.Sequential.fit` and reproduce the two facilities a
Keras user would reach for: ``EarlyStopping(patience=...)`` and
``StepDecay`` on the optimiser's learning rate.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Callback", "EarlyStopping", "StepDecay", "TraceEpochs"]


class Callback:
    """Base callback: hooks invoked by the training loop.

    ``on_epoch_end`` receives the epoch index, the running
    :class:`~repro.nn.model.History` and the optimiser; returning True
    stops training.
    """

    def on_train_begin(self, optimizer) -> None:
        """Called once before the first epoch."""

    def on_epoch_end(self, epoch: int, history, optimizer) -> bool:
        """Called after each epoch; return True to stop training."""
        return False


class EarlyStopping(Callback):
    """Stop when the monitored series stops improving.

    Parameters
    ----------
    monitor:
        ``"val_loss"`` (default), ``"loss"``, ``"val_accuracy"`` or
        ``"accuracy"``. Loss-like series are minimised, accuracy-like
        maximised.
    patience:
        Epochs without improvement tolerated before stopping.
    min_delta:
        Smallest change that counts as an improvement.
    """

    def __init__(
        self, monitor: str = "val_loss", patience: int = 5, min_delta: float = 0.0
    ):
        if patience < 0:
            raise ValueError("patience must be >= 0")
        if monitor not in ("loss", "val_loss", "accuracy", "val_accuracy"):
            raise ValueError(f"unknown monitor {monitor!r}")
        self.monitor = monitor
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best_: Optional[float] = None
        self.stopped_epoch_: Optional[int] = None
        self._stale = 0

    def on_train_begin(self, optimizer) -> None:
        self.best_ = None
        self.stopped_epoch_ = None
        self._stale = 0

    def on_epoch_end(self, epoch: int, history, optimizer) -> bool:
        series = getattr(history, self.monitor)
        if not series:
            return False
        value = series[-1]
        maximise = "accuracy" in self.monitor
        if self.best_ is None:
            self.best_ = value
            return False
        improved = (
            value > self.best_ + self.min_delta
            if maximise
            else value < self.best_ - self.min_delta
        )
        if improved:
            self.best_ = value
            self._stale = 0
            return False
        self._stale += 1
        if self._stale > self.patience:
            self.stopped_epoch_ = epoch
            return True
        return False


class TraceEpochs(Callback):
    """Record one observability span per training epoch.

    Each epoch becomes a ``train_epoch`` span (nested under whatever
    span — typically ``train`` — is open on the calling thread) whose
    labels carry the epoch index and the loss/accuracy series' latest
    values; the registry timer aggregates label-free so a 70-epoch fit
    stays one metrics row. Purely observational: never stops training,
    never touches the optimiser.
    """

    def __init__(self, tracer=None):
        self._tracer = tracer
        self._mark: Optional[float] = None

    def _resolve(self):
        if self._tracer is not None:
            return self._tracer
        from repro.obs import tracer

        return tracer()

    def on_train_begin(self, optimizer) -> None:
        self._mark = time.perf_counter()

    def on_epoch_end(self, epoch: int, history, optimizer) -> bool:
        now = time.perf_counter()
        duration = now - (self._mark if self._mark is not None else now)
        self._mark = now
        labels = {"epoch": epoch}
        if history.loss:
            labels["loss"] = round(history.loss[-1], 6)
        if history.val_loss:
            labels["val_loss"] = round(history.val_loss[-1], 6)
        self._resolve().record("train_epoch", duration, metric_labels={}, **labels)
        return False


class StepDecay(Callback):
    """Multiply the optimiser's learning rate every ``every`` epochs."""

    def __init__(self, factor: float = 0.5, every: int = 10, min_lr: float = 1e-6):
        if not 0.0 < factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        if every < 1:
            raise ValueError("every must be >= 1")
        self.factor = float(factor)
        self.every = int(every)
        self.min_lr = float(min_lr)

    def on_epoch_end(self, epoch: int, history, optimizer) -> bool:
        if (epoch + 1) % self.every == 0:
            optimizer.lr = max(self.min_lr, optimizer.lr * self.factor)
        return False
