"""Neural-network substrate (numpy, from scratch).

Implements everything the paper's two Keras models need: 1-D and 2-D
convolutions (im2col/GEMM, with the original kernel-offset summation
kept as a selectable reference path), max pooling, batch normalisation,
dropout, dense layers, ReLU/softmax, categorical cross-entropy,
SGD-momentum and Adam optimisers, and a
:class:`~repro.nn.model.Sequential` container with a Keras-style ``fit``
that records per-epoch training/validation loss and accuracy (the
history behind the paper's Fig. 7 curves). :mod:`repro.nn.policy`
selects the compute dtype (float64 default / float32) and the conv
kernel for the whole package. :mod:`repro.nn.quant` adds the
inference-only int8 path (post-training per-channel weight
quantisation, BatchNorm-folded fused forward) and
:mod:`repro.nn.distill` trains narrower students against teacher soft
logits for the distilled-int8 serving variant.
"""

from repro.nn.policy import (
    PrecisionPolicy,
    get_policy,
    set_policy,
    policy_scope,
    compute_dtype,
    conv_kernel,
)
from repro.nn.initializers import he_normal, glorot_uniform
from repro.nn.activations import relu, relu_grad, softmax
from repro.nn.losses import CategoricalCrossEntropy
from repro.nn.layers import (
    Layer,
    Dense,
    Conv1D,
    Conv2D,
    MaxPool1D,
    MaxPool2D,
    Flatten,
    Dropout,
    BatchNorm,
    ReLU,
)
from repro.nn.optim import SGD, Adam
from repro.nn.model import Sequential, History
from repro.nn.callbacks import Callback, EarlyStopping, StepDecay
from repro.nn.quant import (
    quantize_weights,
    dequantize_weights,
    fuse_inference,
    quantize_model,
    quantize_adapter,
    QuantizedSequential,
    QuantizedCNNClassifier,
)
from repro.nn.distill import distill_feature_cnn, fit_soft_targets

__all__ = [
    "PrecisionPolicy",
    "get_policy",
    "set_policy",
    "policy_scope",
    "compute_dtype",
    "conv_kernel",
    "he_normal",
    "glorot_uniform",
    "relu",
    "relu_grad",
    "softmax",
    "CategoricalCrossEntropy",
    "Layer",
    "Dense",
    "Conv1D",
    "Conv2D",
    "MaxPool1D",
    "MaxPool2D",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "ReLU",
    "SGD",
    "Adam",
    "Sequential",
    "History",
    "Callback",
    "EarlyStopping",
    "StepDecay",
    "quantize_weights",
    "dequantize_weights",
    "fuse_inference",
    "quantize_model",
    "quantize_adapter",
    "QuantizedSequential",
    "QuantizedCNNClassifier",
    "distill_feature_cnn",
    "fit_soft_targets",
]
