"""Neural-network substrate (numpy, from scratch).

Implements everything the paper's two Keras models need: 1-D and 2-D
convolutions (im2col), max pooling, batch normalisation, dropout, dense
layers, ReLU/softmax, categorical cross-entropy, SGD-momentum and Adam
optimisers, and a :class:`~repro.nn.model.Sequential` container with a
Keras-style ``fit`` that records per-epoch training/validation loss and
accuracy (the history behind the paper's Fig. 7 curves).
"""

from repro.nn.initializers import he_normal, glorot_uniform
from repro.nn.activations import relu, relu_grad, softmax
from repro.nn.losses import CategoricalCrossEntropy
from repro.nn.layers import (
    Layer,
    Dense,
    Conv1D,
    Conv2D,
    MaxPool1D,
    MaxPool2D,
    Flatten,
    Dropout,
    BatchNorm,
    ReLU,
)
from repro.nn.optim import SGD, Adam
from repro.nn.model import Sequential, History
from repro.nn.callbacks import Callback, EarlyStopping, StepDecay

__all__ = [
    "he_normal",
    "glorot_uniform",
    "relu",
    "relu_grad",
    "softmax",
    "CategoricalCrossEntropy",
    "Layer",
    "Dense",
    "Conv1D",
    "Conv2D",
    "MaxPool1D",
    "MaxPool2D",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "ReLU",
    "SGD",
    "Adam",
    "Sequential",
    "History",
    "Callback",
    "EarlyStopping",
    "StepDecay",
]
