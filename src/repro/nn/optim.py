"""Optimisers: SGD with momentum, and Adam."""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.9):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity: List[np.ndarray] = []

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        if not self._velocity:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v


class Adam:
    """Adam optimiser (Kingma & Ba), the Keras default the paper used."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: List[np.ndarray] = []
        self._v: List[np.ndarray] = []
        self._t = 0

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        if not self._m:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g * g
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
