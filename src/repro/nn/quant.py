"""Post-training int8 quantisation for the NN inference path.

The float32 feature CNN is the throughput ceiling of the serving stack;
this module turns a trained :class:`~repro.nn.model.Sequential` into an
inference-only int8 pipeline:

- **Weight codec** — :func:`quantize_weights` maps a float tensor to
  symmetric int8 (``[-127, 127]``) with one float32 scale per *output
  channel*; :func:`dequantize_weights` inverts it within half a scale
  step per element.
- **Fused inference** — :func:`fuse_inference` returns a
  ``training=False`` fast-path copy of a model: BatchNorm folded into
  the preceding conv/dense weights, Dropout layers removed. Predictions
  match the original inference path to float rounding.
- **Quantised layers** — :class:`QuantizedDense`,
  :class:`QuantizedConv1D` and :class:`QuantizedConv2D` run the
  int8×int8 matmul over the same im2col lowering the float GEMM kernels
  use. numpy has no int8 GEMM, so the integer operands are staged in
  float32 and multiplied through BLAS sgemm: every int8×int8 product is
  exact in float32 and the accumulation is float32 (the "int8 matmul
  with float32 accumulate" contract). Accumulation stays *integer
  exact* while the reduction depth is at most
  :data:`EXACT_ACCUM_DEPTH`; deeper reductions (none of the paper's
  layers) may round the low bits, which the tolerance-pinned fixtures
  cover. Activations are quantised dynamically **per sample**, so a
  batch answers exactly like the same rows served one by one.
- **Model quantisation** — :func:`quantize_model` fuses then quantises
  every parameterised layer into a :class:`QuantizedSequential`;
  :func:`quantize_adapter` wraps a fitted CNN adapter
  (:class:`~repro.eval.experiment.FeatureCNNClassifier` or
  :class:`~repro.eval.experiment.SpectrogramCNNClassifier`) into a
  :class:`QuantizedCNNClassifier` with the same predict API, ready for
  bundling.

The :mod:`repro.nn.policy` kernel ``"quantized"`` routes the *float*
layers through :func:`conv_forward_quantized` /
:func:`dense_forward_quantized` on the fly (weights re-quantised every
forward, so there is no staleness after further training); the
:class:`QuantizedSequential` path pre-quantises once and is what
serving deploys.
"""

from __future__ import annotations

import io
from typing import List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.activations import softmax
from repro.nn.layers import (
    BatchNorm,
    Conv1D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool1D,
    MaxPool2D,
    ReLU,
    _pad_amounts,
    _Workspace,
)
from repro.nn.losses import CategoricalCrossEntropy
from repro.nn.model import Sequential

__all__ = [
    "QMAX",
    "EXACT_ACCUM_DEPTH",
    "quantize_weights",
    "dequantize_weights",
    "quantize_activations",
    "fuse_inference",
    "QuantizedDense",
    "QuantizedConv1D",
    "QuantizedConv2D",
    "QuantizedSequential",
    "QuantizedCNNClassifier",
    "quantize_model",
    "quantize_adapter",
    "quantized_model_to_members",
    "quantized_model_from_members",
    "conv_forward_quantized",
    "dense_forward_quantized",
]

#: Symmetric int8 range: codes live in [-QMAX, QMAX]; -128 is unused so
#: that negation never overflows.
QMAX = 127

#: Largest reduction depth for which int8×int8 products accumulate
#: exactly in float32 (partial sums stay below 2**24).
EXACT_ACCUM_DEPTH = (1 << 24) // (QMAX * QMAX)


# -- weight / activation codec ----------------------------------------------


def quantize_weights(
    w: np.ndarray, axis: int = -1
) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-output-channel int8 quantisation of a weight tensor.

    ``axis`` names the output-channel axis (last for every layer in
    :mod:`repro.nn.layers`). Returns ``(q, scales)`` with ``q`` int8 in
    ``[-QMAX, QMAX]`` and ``scales`` float32, one per output channel; an
    all-zero channel gets scale 1.0 so dequantisation is always defined.
    """
    w = np.asarray(w)
    axis = axis % w.ndim
    reduce_axes = tuple(a for a in range(w.ndim) if a != axis)
    amax = np.max(np.abs(w), axis=reduce_axes) if reduce_axes else np.abs(w)
    scales = np.where(amax > 0, amax / QMAX, 1.0).astype(np.float32)
    shape = [1] * w.ndim
    shape[axis] = -1
    q = np.clip(
        np.rint(w / scales.reshape(shape).astype(w.dtype)), -QMAX, QMAX
    ).astype(np.int8)
    return q, scales


def dequantize_weights(
    q: np.ndarray, scales: np.ndarray, axis: int = -1
) -> np.ndarray:
    """Invert :func:`quantize_weights` (float32, within scale/2 per entry)."""
    q = np.asarray(q)
    axis = axis % q.ndim
    shape = [1] * q.ndim
    shape[axis] = -1
    return q.astype(np.float32) * np.asarray(scales, dtype=np.float32).reshape(
        shape
    )


def quantize_activations(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Dynamic symmetric per-sample activation quantisation.

    Returns ``(xq, scale)``: ``xq`` is float32 holding exact integer
    codes in ``[-QMAX, QMAX]`` (kept in float32 so the following BLAS
    sgemm needs no cast) and ``scale`` has shape ``(n,)`` — one scale
    per sample, so the numerics of a row never depend on its batchmates.
    """
    x = np.asarray(x, dtype=np.float32)
    if x.ndim < 1:
        raise ValueError("expected a batched activation tensor")
    amax = np.abs(x).reshape(x.shape[0], -1).max(axis=1)
    scale = np.where(amax > 0, amax / QMAX, 1.0).astype(np.float32)
    broadcast = scale.reshape((-1,) + (1,) * (x.ndim - 1))
    xq = np.clip(np.rint(x / broadcast), -QMAX, QMAX)
    return xq, scale


# -- fused (training=False) inference ----------------------------------------


def _clone_stateless(layer):
    if isinstance(layer, ReLU):
        return ReLU()
    if isinstance(layer, Flatten):
        return Flatten()
    if isinstance(layer, MaxPool1D):
        return MaxPool1D(layer.p)
    if isinstance(layer, MaxPool2D):
        return MaxPool2D(layer.p)
    raise TypeError(f"cannot fuse a model containing {type(layer).__name__}")


def _clone_param_layer(layer, W: np.ndarray, b: np.ndarray):
    """A built copy of a conv/dense layer carrying the given weights."""
    if isinstance(layer, Conv1D):
        new = Conv1D(layer.filters, layer.k, padding=layer.padding,
                     kernel=layer.kernel)
    elif isinstance(layer, Conv2D):
        new = Conv2D(layer.filters, (layer.kh, layer.kw),
                     padding=layer.padding, kernel=layer.kernel)
    elif isinstance(layer, Dense):
        new = Dense(layer.units)
    else:  # pragma: no cover - guarded by callers
        raise TypeError(f"not a parameterised layer: {type(layer).__name__}")
    new.W = np.ascontiguousarray(W)
    new.b = np.ascontiguousarray(b)
    new.params = [new.W, new.b]
    new.grads = [np.zeros_like(new.W), np.zeros_like(new.b)]
    new.built = True
    return new


def _clone_batchnorm(layer: BatchNorm) -> BatchNorm:
    new = BatchNorm(momentum=layer.momentum, eps=layer.eps)
    new.gamma = layer.gamma.copy()
    new.beta = layer.beta.copy()
    new.params = [new.gamma, new.beta]
    new.grads = [np.zeros_like(new.gamma), np.zeros_like(new.beta)]
    new.running_mean = layer.running_mean.copy()
    new.running_var = layer.running_var.copy()
    new.built = True
    return new


def fuse_inference(model: Sequential) -> Sequential:
    """An inference-only copy with BatchNorm folded and Dropout dropped.

    BatchNorm directly after a conv/dense layer becomes part of that
    layer's weights (``W' = W·s``, ``b' = s·(b − μ) + β`` with
    ``s = γ/√(σ²+ε)``); a BatchNorm with no foldable predecessor is kept
    as an inference-mode affine. The fused model shares no parameter
    arrays with the original and must not be trained further.
    """
    if not getattr(model, "_built", False):
        raise RuntimeError("model must be built/fitted before fusing")
    fused: List = []
    for layer in model.layers:
        if isinstance(layer, Dropout):
            continue  # identity at inference
        if isinstance(layer, BatchNorm):
            prev = fused[-1] if fused else None
            if isinstance(prev, (Conv1D, Conv2D, Dense)):
                s = (layer.gamma / np.sqrt(layer.running_var + layer.eps))
                s = s.astype(prev.W.dtype)
                W = prev.W * s  # broadcast over the output-channel axis
                b = s * (prev.b - layer.running_mean.astype(prev.b.dtype))
                b = b + layer.beta.astype(prev.b.dtype)
                fused[-1] = _clone_param_layer(prev, W, b)
            else:
                fused.append(_clone_batchnorm(layer))
            continue
        if isinstance(layer, (Conv1D, Conv2D, Dense)):
            fused.append(_clone_param_layer(layer, layer.W.copy(),
                                            layer.b.copy()))
            continue
        fused.append(_clone_stateless(layer))
    out = Sequential(fused, n_classes=model.n_classes, seed=model.seed)
    out._built = True
    out.input_shape_ = tuple(model.input_shape_)
    out._dtype = model._dtype
    return out


# -- quantised layers ---------------------------------------------------------


class _QuantizedLayer:
    """Shared plumbing: int8 codes + per-output-channel float32 scales."""

    def __init__(self, wq: np.ndarray, scales: np.ndarray, bias: np.ndarray):
        self.wq = np.asarray(wq, dtype=np.int8)
        self.scales = np.asarray(scales, dtype=np.float32)
        self.bias = np.asarray(bias, dtype=np.float32)
        if self.scales.shape != self.bias.shape:
            raise ValueError(
                f"scales {self.scales.shape} and bias {self.bias.shape} "
                "must both be per-output-channel"
            )
        # The GEMM operand: int8 codes staged in float32 (exact).
        self._wf = self.wq.astype(np.float32)

    def backward(self, grad):
        raise RuntimeError(
            f"{type(self).__name__} is inference-only (no backward pass)"
        )

    def _check_inference(self, training: bool) -> None:
        if training:
            raise RuntimeError(
                f"{type(self).__name__} is inference-only; pass training=False"
            )


class QuantizedDense(_QuantizedLayer):
    """Int8 fully connected layer (weights ``(d, units)`` int8)."""

    def __init__(self, wq, scales, bias):
        super().__init__(wq, scales, bias)
        if self.wq.ndim != 2:
            raise ValueError(f"expected (d, units) weights, got {self.wq.shape}")
        self._w2 = np.ascontiguousarray(self._wf)

    def forward(self, x, training=False):
        self._check_inference(training)
        xq, a = quantize_activations(x)
        acc = xq @ self._w2  # int8×int8 products, float32 accumulate
        return acc * (a[:, None] * self.scales[None, :]) + self.bias


class QuantizedConv1D(_QuantizedLayer):
    """Int8 1-D convolution (stride 1, channels-last, ``(k, c, f)`` int8).

    Lowered exactly like the float GEMM kernel: pad, gather receptive
    fields with ``sliding_window_view`` into an im2col workspace, one
    matmul, then per-sample × per-channel dequantisation plus bias.
    """

    def __init__(self, wq, scales, bias, padding: str = "same"):
        super().__init__(wq, scales, bias)
        if self.wq.ndim != 3:
            raise ValueError(f"expected (k, c, f) weights, got {self.wq.shape}")
        self.k, self.c_in, self.filters = self.wq.shape
        self.padding = padding
        self._w2 = np.ascontiguousarray(
            self._wf.reshape(self.k * self.c_in, self.filters)
        )
        self._cols_ws = _Workspace()

    def forward(self, x, training=False):
        self._check_inference(training)
        k, c, f = self.k, self.c_in, self.filters
        xq, a = quantize_activations(x)
        n = xq.shape[0]
        if k == 1:
            out = (xq.reshape(-1, c) @ self._w2).reshape(n, x.shape[1], f)
        else:
            p0, p1 = _pad_amounts(xq.shape[1], k, self.padding)
            xp = np.pad(xq, ((0, 0), (p0, p1), (0, 0))) if (p0 or p1) else xq
            l_out = xp.shape[1] - k + 1
            windows = sliding_window_view(xp, k, axis=1)  # (n, l_out, c, k)
            cols4 = self._cols_ws.get((n, l_out, k, c), np.float32)
            np.copyto(cols4, windows.transpose(0, 1, 3, 2))
            out = (cols4.reshape(n * l_out, k * c) @ self._w2).reshape(
                n, l_out, f
            )
        return out * (a[:, None, None] * self.scales) + self.bias


class QuantizedConv2D(_QuantizedLayer):
    """Int8 2-D convolution (stride 1, channels-last, ``(kh, kw, c, f)``)."""

    def __init__(self, wq, scales, bias, padding: str = "same"):
        super().__init__(wq, scales, bias)
        if self.wq.ndim != 4:
            raise ValueError(
                f"expected (kh, kw, c, f) weights, got {self.wq.shape}"
            )
        self.kh, self.kw, self.c_in, self.filters = self.wq.shape
        self.padding = padding
        self._w2 = np.ascontiguousarray(
            self._wf.reshape(self.kh * self.kw * self.c_in, self.filters)
        )
        self._cols_ws = _Workspace()

    def forward(self, x, training=False):
        self._check_inference(training)
        kh, kw, c, f = self.kh, self.kw, self.c_in, self.filters
        xq, a = quantize_activations(x)
        n = xq.shape[0]
        if kh == 1 and kw == 1:
            out = (xq.reshape(-1, c) @ self._w2).reshape(
                n, x.shape[1], x.shape[2], f
            )
        else:
            ph0, ph1 = _pad_amounts(xq.shape[1], kh, self.padding)
            pw0, pw1 = _pad_amounts(xq.shape[2], kw, self.padding)
            if ph0 or ph1 or pw0 or pw1:
                xp = np.pad(xq, ((0, 0), (ph0, ph1), (pw0, pw1), (0, 0)))
            else:
                xp = xq
            h_out = xp.shape[1] - kh + 1
            w_out = xp.shape[2] - kw + 1
            windows = sliding_window_view(xp, (kh, kw), axis=(1, 2))
            cols6 = self._cols_ws.get((n, h_out, w_out, kh, kw, c), np.float32)
            np.copyto(cols6, windows.transpose(0, 1, 2, 4, 5, 3))
            out = (
                cols6.reshape(n * h_out * w_out, kh * kw * c) @ self._w2
            ).reshape(n, h_out, w_out, f)
        return out * (a[:, None, None, None] * self.scales) + self.bias


# -- on-the-fly policy kernels ------------------------------------------------


def dense_forward_quantized(W: np.ndarray, b: np.ndarray,
                            x: np.ndarray) -> np.ndarray:
    """One quantised Dense forward for the ``"quantized"`` policy kernel.

    Weights are re-quantised on every call (O(|W|), dwarfed by the
    matmul) so the path is always consistent with the current floats.
    """
    wq, scales = quantize_weights(W, axis=-1)
    xq, a = quantize_activations(x)
    acc = xq @ wq.astype(np.float32)
    return acc * (a[:, None] * scales[None, :]) + b.astype(np.float32)


def conv_forward_quantized(layer, x: np.ndarray) -> np.ndarray:
    """One quantised conv forward for the ``"quantized"`` policy kernel."""
    wq, scales = quantize_weights(layer.W, axis=-1)
    bias = layer.b.astype(np.float32)
    if isinstance(layer, Conv1D):
        q = QuantizedConv1D(wq, scales, bias, padding=layer.padding)
    elif isinstance(layer, Conv2D):
        q = QuantizedConv2D(wq, scales, bias, padding=layer.padding)
    else:
        raise TypeError(f"no quantised kernel for {type(layer).__name__}")
    return q.forward(x, training=False)


# -- quantised model container ------------------------------------------------

_QUANT_LAYER_TYPES = {
    "qdense": QuantizedDense,
    "qconv1d": QuantizedConv1D,
    "qconv2d": QuantizedConv2D,
}


class QuantizedSequential:
    """Inference-only stack of quantised + stateless layers.

    Mirrors :meth:`Sequential.predict_proba` / ``predict`` /
    ``evaluate``; there is deliberately no ``fit``.
    """

    def __init__(self, layers: Sequence, n_classes: int,
                 input_shape: Tuple[int, ...]):
        self.layers = list(layers)
        self.n_classes = int(n_classes)
        self.input_shape_ = tuple(int(d) for d in input_shape)
        self.loss_fn = CategoricalCrossEntropy()

    def _forward_batched(self, X: np.ndarray,
                         batch_size: int = 256) -> np.ndarray:
        X = np.asarray(X, dtype=np.float32)
        chunks = []
        for start in range(0, X.shape[0], batch_size):
            out = X[start:start + batch_size]
            for layer in self.layers:
                out = layer.forward(out, False)
            chunks.append(out)
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=0)

    def predict_proba(self, X: np.ndarray, batch_size: int = 256) -> np.ndarray:
        return softmax(self._forward_batched(X, batch_size))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1)

    def evaluate(self, X: np.ndarray, y_codes: np.ndarray,
                 batch_size: int = 256) -> Tuple[float, float]:
        y_codes = np.asarray(y_codes, dtype=int)
        logits = self._forward_batched(X, batch_size)
        loss, proba = self.loss_fn.forward_codes(logits, y_codes)
        acc = float(np.mean(np.argmax(proba, axis=1) == y_codes))
        return loss, acc

    def quantization_summary(self) -> List[dict]:
        """Per-quantised-layer scale statistics (manifest metadata)."""
        summary = []
        for i, layer in enumerate(self.layers):
            if not isinstance(layer, _QuantizedLayer):
                continue
            scales = layer.scales
            summary.append({
                "layer": i,
                "type": type(layer).__name__,
                "weight_shape": list(layer.wq.shape),
                "channels": int(scales.size),
                "scale_min": float(scales.min()),
                "scale_max": float(scales.max()),
                "scale_mean": float(scales.mean()),
            })
        return summary


def quantize_model(model: Sequential) -> QuantizedSequential:
    """Fuse then quantise every parameterised layer of a trained model."""
    fused = fuse_inference(model)
    qlayers: List = []
    for layer in fused.layers:
        if isinstance(layer, Dense):
            wq, scales = quantize_weights(layer.W, axis=-1)
            qlayers.append(
                QuantizedDense(wq, scales, layer.b.astype(np.float32))
            )
        elif isinstance(layer, Conv1D):
            wq, scales = quantize_weights(layer.W, axis=-1)
            qlayers.append(
                QuantizedConv1D(wq, scales, layer.b.astype(np.float32),
                                padding=layer.padding)
            )
        elif isinstance(layer, Conv2D):
            wq, scales = quantize_weights(layer.W, axis=-1)
            qlayers.append(
                QuantizedConv2D(wq, scales, layer.b.astype(np.float32),
                                padding=layer.padding)
            )
        elif isinstance(layer, BatchNorm):
            raise NotImplementedError(
                "unfoldable BatchNorm (no conv/dense predecessor) cannot "
                "be quantised"
            )
        else:
            qlayers.append(layer)  # stateless clone owned by the fused copy
    return QuantizedSequential(
        qlayers, n_classes=model.n_classes, input_shape=model.input_shape_
    )


# -- serialisation ------------------------------------------------------------


def quantized_model_to_members(q: QuantizedSequential) -> Tuple[dict, bytes]:
    """Serialise to ``(config dict, weights-npz bytes)`` (bundle members)."""
    specs: List[dict] = []
    arrays = {}
    for i, layer in enumerate(q.layers):
        if isinstance(layer, QuantizedDense):
            specs.append({"type": "qdense"})
        elif isinstance(layer, QuantizedConv1D):
            specs.append({"type": "qconv1d", "padding": layer.padding})
        elif isinstance(layer, QuantizedConv2D):
            specs.append({"type": "qconv2d", "padding": layer.padding})
        elif isinstance(layer, ReLU):
            specs.append({"type": "relu"})
            continue
        elif isinstance(layer, Flatten):
            specs.append({"type": "flatten"})
            continue
        elif isinstance(layer, MaxPool1D):
            specs.append({"type": "maxpool1d", "pool": layer.p})
            continue
        elif isinstance(layer, MaxPool2D):
            specs.append({"type": "maxpool2d", "pool": layer.p})
            continue
        else:
            raise TypeError(
                f"cannot serialise layer {type(layer).__name__}"
            )
        arrays[f"layer{i}_wq"] = layer.wq
        arrays[f"layer{i}_scales"] = layer.scales
        arrays[f"layer{i}_bias"] = layer.bias
    config = {
        "n_classes": q.n_classes,
        "input_shape": list(q.input_shape_),
        "layers": specs,
    }
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return config, buffer.getvalue()


def quantized_model_from_members(config: dict, weights: bytes,
                                 source: str = "<bytes>") -> QuantizedSequential:
    """Rebuild a :class:`QuantizedSequential` from its bundle members."""
    specs = list(config["layers"])
    layers: List = []
    with np.load(io.BytesIO(weights)) as bundle:
        for i, spec in enumerate(specs):
            kind = spec.get("type")
            if kind in _QUANT_LAYER_TYPES:
                try:
                    wq = bundle[f"layer{i}_wq"]
                    scales = bundle[f"layer{i}_scales"]
                    bias = bundle[f"layer{i}_bias"]
                except KeyError as exc:
                    raise ValueError(
                        f"{source}: missing quantised arrays for layer {i}"
                    ) from exc
                cls = _QUANT_LAYER_TYPES[kind]
                if kind == "qdense":
                    layers.append(cls(wq, scales, bias))
                else:
                    layers.append(
                        cls(wq, scales, bias,
                            padding=str(spec.get("padding", "same")))
                    )
            elif kind == "relu":
                layers.append(ReLU())
            elif kind == "flatten":
                layers.append(Flatten())
            elif kind == "maxpool1d":
                layers.append(MaxPool1D(int(spec["pool"])))
            elif kind == "maxpool2d":
                layers.append(MaxPool2D(int(spec["pool"])))
            else:
                raise ValueError(f"{source}: unknown layer type {kind!r}")
    return QuantizedSequential(
        layers,
        n_classes=int(config["n_classes"]),
        input_shape=tuple(int(d) for d in config["input_shape"]),
    )


# -- adapter ------------------------------------------------------------------


class QuantizedCNNClassifier:
    """Inference-only drop-in for the float CNN adapters.

    Carries the original adapter's label inventory and preprocessing
    (the feature CNN's z-scorer, the spectrogram CNN's −0.5 centring)
    in front of a :class:`QuantizedSequential`, so it packs and serves
    like any other bundle predictor.
    """

    def __init__(self, qmodel: QuantizedSequential, classes,
                 base_kind: str, scaler=None):
        if base_kind not in ("feature_cnn", "spectrogram_cnn"):
            raise ValueError(f"unknown base CNN kind {base_kind!r}")
        if base_kind == "feature_cnn" and scaler is None:
            raise ValueError("a quantised feature CNN needs its scaler")
        self.qmodel = qmodel
        self.classes_ = np.asarray(classes)
        self.base_kind = base_kind
        self._scaler = scaler

    def _inputs(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if self.base_kind == "feature_cnn":
            return self._scaler.transform(X)[..., None]
        if X.ndim == 3:
            X = X[..., None]
        return X - 0.5

    def predict_proba(self, X) -> np.ndarray:
        return self.qmodel.predict_proba(self._inputs(X))

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X, y) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))

    def quantization_summary(self) -> List[dict]:
        return self.qmodel.quantization_summary()


def quantize_adapter(adapter) -> QuantizedCNNClassifier:
    """Quantise a fitted CNN adapter into a bundle-ready predictor."""
    from repro.eval.experiment import (
        FeatureCNNClassifier,
        SpectrogramCNNClassifier,
    )

    if isinstance(adapter, FeatureCNNClassifier):
        base_kind, scaler = "feature_cnn", adapter._scaler
    elif isinstance(adapter, SpectrogramCNNClassifier):
        base_kind, scaler = "spectrogram_cnn", None
    else:
        raise TypeError(
            f"cannot quantise {type(adapter).__name__}; expected a fitted "
            "FeatureCNNClassifier or SpectrogramCNNClassifier"
        )
    adapter._check_fitted()
    qmodel = quantize_model(adapter._model)
    return QuantizedCNNClassifier(
        qmodel, classes=adapter.classes_, base_kind=base_kind, scaler=scaler
    )
