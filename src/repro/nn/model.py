"""Sequential model container with a Keras-style training loop.

``fit`` records per-epoch training and validation loss/accuracy in a
:class:`History`, which is exactly what the paper's Fig. 7 plots.

The container is policy-aware: layers build their parameters in the
:mod:`repro.nn.policy` compute dtype (pinned per model at build time)
and inputs are cast to that dtype on entry. ``fit`` accumulates
per-layer forward/backward wall time and records it as
``layer_forward`` / ``layer_backward`` spans on the ambient
:mod:`repro.obs` tracer when training ends, so a trace of a CNN cell
shows where the epochs actually went.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.activations import softmax
from repro.nn.layers import Layer
from repro.nn.losses import CategoricalCrossEntropy
from repro.nn.optim import Adam
from repro.nn.policy import get_policy

__all__ = ["Sequential", "History", "describe_checkpoint_source"]


def describe_checkpoint_source(path) -> str:
    """Human-readable name of a checkpoint source (path or file object)."""
    if isinstance(path, (str, bytes, os.PathLike)):
        return str(path)
    name = getattr(path, "name", None)
    return str(name) if name is not None else f"<{type(path).__name__}>"


@dataclass
class History:
    """Per-epoch training curves (the data behind paper Fig. 7)."""

    loss: List[float] = field(default_factory=list)
    accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "loss": list(self.loss),
            "accuracy": list(self.accuracy),
            "val_loss": list(self.val_loss),
            "val_accuracy": list(self.val_accuracy),
        }


class Sequential:
    """A linear stack of layers trained with softmax cross-entropy.

    Parameters
    ----------
    layers:
        The layer stack (unbuilt; shapes are inferred at first fit).
    n_classes:
        Output dimensionality (the final Dense layer must produce this).
    seed:
        Weight-initialisation seed.
    """

    def __init__(self, layers: Sequence[Layer], n_classes: int, seed: int = 0):
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self.layers = list(layers)
        self.n_classes = int(n_classes)
        self.seed = int(seed)
        self.loss_fn = CategoricalCrossEntropy()
        self._built = False
        self._dtype = get_policy().compute_dtype

    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Build every layer given the per-sample input shape."""
        rng = np.random.default_rng(self.seed)
        self._dtype = get_policy().compute_dtype
        shape = tuple(input_shape)
        self.input_shape_: Tuple[int, ...] = shape
        for layer in self.layers:
            layer.build(shape, rng)
            shape = layer.output_shape(shape)
        if shape != (self.n_classes,):
            raise ValueError(
                f"model output shape {shape} != (n_classes={self.n_classes},)"
            )
        self._built = True

    def _forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training)
        return out

    def _backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def _forward_timed(self, x: np.ndarray, seconds: np.ndarray) -> np.ndarray:
        out = x
        for i, layer in enumerate(self.layers):
            t0 = time.perf_counter()
            out = layer.forward(out, True)
            seconds[i] += time.perf_counter() - t0
        return out

    def _backward_timed(self, grad: np.ndarray, seconds: np.ndarray) -> None:
        for i in range(len(self.layers) - 1, -1, -1):
            t0 = time.perf_counter()
            grad = self.layers[i].backward(grad)
            seconds[i] += time.perf_counter() - t0

    def _record_layer_spans(self, fwd_s: np.ndarray, bwd_s: np.ndarray) -> None:
        """Attach accumulated per-layer timings as spans on the tracer."""
        from repro.obs import tracer

        tr = tracer()
        for i, layer in enumerate(self.layers):
            name = f"{i}:{type(layer).__name__}"
            tr.record(
                "layer_forward", fwd_s[i], metric_labels={"layer": name}, layer=name
            )
            tr.record(
                "layer_backward", bwd_s[i], metric_labels={"layer": name}, layer=name
            )

    def _forward_batched(self, X: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Logits for ``X`` in inference mode, computed in batches."""
        if not self._built:
            raise RuntimeError("model is not built/fitted")
        X = np.asarray(X, dtype=self._dtype)
        chunks = [
            self._forward(X[start : start + batch_size], training=False)
            for start in range(0, X.shape[0], batch_size)
        ]
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=0)

    def predict_proba(self, X: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class probabilities, computed in inference mode."""
        return softmax(self._forward_batched(X, batch_size))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Argmax class codes."""
        return np.argmax(self.predict_proba(X), axis=1)

    def evaluate(
        self, X: np.ndarray, y_codes: np.ndarray, batch_size: int = 256
    ) -> Tuple[float, float]:
        """(loss, accuracy) in inference mode, via the shared loss."""
        y_codes = np.asarray(y_codes, dtype=int)
        logits = self._forward_batched(X, batch_size)
        loss, proba = self.loss_fn.forward_codes(logits, y_codes)
        acc = float(np.mean(np.argmax(proba, axis=1) == y_codes))
        return loss, acc

    def fit(
        self,
        X: np.ndarray,
        y_codes: np.ndarray,
        epochs: int = 20,
        batch_size: int = 32,
        optimizer=None,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        shuffle_seed: int = 0,
        verbose: bool = False,
        callbacks: Optional[Sequence] = None,
    ) -> History:
        """Train with minibatch gradient descent.

        ``y_codes`` are integer class codes in ``[0, n_classes)``.
        ``callbacks`` are :class:`repro.nn.callbacks.Callback` instances;
        any callback returning True from ``on_epoch_end`` stops training.
        """
        X = np.asarray(X)
        y_codes = np.asarray(y_codes, dtype=int)
        if X.shape[0] != y_codes.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} samples but y has {y_codes.shape[0]}"
            )
        if y_codes.size and (y_codes.min() < 0 or y_codes.max() >= self.n_classes):
            raise ValueError("class codes out of range")
        if not self._built:
            self.build(X.shape[1:])
        X = np.asarray(X, dtype=self._dtype)
        optimizer = optimizer or Adam()
        callbacks = list(callbacks or [])
        for callback in callbacks:
            callback.on_train_begin(optimizer)
        rng = np.random.default_rng(shuffle_seed)
        history = History()
        n = X.shape[0]
        fwd_s = np.zeros(len(self.layers))
        bwd_s = np.zeros(len(self.layers))
        try:
            for epoch in range(epochs):
                order = rng.permutation(n)
                epoch_loss = 0.0
                epoch_correct = 0
                for start in range(0, n, batch_size):
                    idx = order[start : start + batch_size]
                    codes = y_codes[idx]
                    logits = self._forward_timed(X[idx], fwd_s)
                    loss, proba = self.loss_fn.forward_codes(logits, codes)
                    epoch_loss += loss * idx.size
                    epoch_correct += int(
                        np.sum(np.argmax(proba, axis=1) == codes)
                    )
                    self._backward_timed(self.loss_fn.backward(), bwd_s)
                    params, grads = self._params_grads()
                    optimizer.step(params, grads)
                history.loss.append(epoch_loss / n)
                history.accuracy.append(epoch_correct / n)
                if validation_data is not None:
                    val_loss, val_acc = self.evaluate(*validation_data)
                    history.val_loss.append(val_loss)
                    history.val_accuracy.append(val_acc)
                if verbose:
                    msg = (
                        f"epoch {epoch + 1}/{epochs} "
                        f"loss={history.loss[-1]:.4f} acc={history.accuracy[-1]:.4f}"
                    )
                    if validation_data is not None:
                        msg += (
                            f" val_loss={history.val_loss[-1]:.4f}"
                            f" val_acc={history.val_accuracy[-1]:.4f}"
                        )
                    print(msg)
                if any(cb.on_epoch_end(epoch, history, optimizer) for cb in callbacks):
                    break
        finally:
            self._record_layer_spans(fwd_s, bwd_s)
        return history

    def _params_grads(self):
        params, grads = [], []
        for layer in self.layers:
            params.extend(layer.params)
            grads.extend(layer.grads)
        return params, grads

    # -- persistence --------------------------------------------------------
    def save_weights(self, path) -> None:
        """Persist all layer parameters (and BatchNorm statistics) to .npz."""
        if not self._built:
            raise RuntimeError("model is not built/fitted")
        arrays = {}
        for i, layer in enumerate(self.layers):
            for j, param in enumerate(layer.params):
                arrays[f"layer{i}_param{j}"] = param
            if hasattr(layer, "running_mean"):
                arrays[f"layer{i}_running_mean"] = layer.running_mean
                arrays[f"layer{i}_running_var"] = layer.running_var
        np.savez_compressed(path, **arrays)

    def load_weights(self, path, input_shape: Optional[Tuple[int, ...]] = None) -> None:
        """Restore parameters saved by :meth:`save_weights`.

        An unbuilt model needs ``input_shape`` to allocate its layers
        before loading. Every error names the checkpoint being loaded,
        so a bad artifact in a directory of checkpoints is identifiable
        from the exception alone.
        """
        if not self._built:
            if input_shape is None:
                raise RuntimeError(
                    "model is not built; pass input_shape to load_weights"
                )
            self.build(input_shape)
        source = describe_checkpoint_source(path)
        with np.load(path) as bundle:
            for i, layer in enumerate(self.layers):
                for j, param in enumerate(layer.params):
                    key = f"layer{i}_param{j}"
                    if key not in bundle:
                        raise ValueError(
                            f"checkpoint {source}: missing {key}"
                        )
                    stored = bundle[key]
                    if stored.shape != param.shape:
                        raise ValueError(
                            f"checkpoint {source}: {key}: shape "
                            f"{stored.shape} != expected {param.shape}"
                        )
                    param[...] = stored
                if hasattr(layer, "running_mean"):
                    for stat in ("running_mean", "running_var"):
                        key = f"layer{i}_{stat}"
                        if key not in bundle:
                            raise ValueError(
                                f"checkpoint {source}: missing {key}"
                            )
                        stored = bundle[key]
                        current = getattr(layer, stat)
                        if stored.shape != current.shape:
                            raise ValueError(
                                f"checkpoint {source}: {key}: shape "
                                f"{stored.shape} != expected {current.shape}"
                            )
                        setattr(layer, stat, stored.astype(current.dtype, copy=False))
