"""Sequential model container with a Keras-style training loop.

``fit`` records per-epoch training and validation loss/accuracy in a
:class:`History`, which is exactly what the paper's Fig. 7 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Layer
from repro.nn.losses import CategoricalCrossEntropy
from repro.nn.optim import Adam

__all__ = ["Sequential", "History"]


@dataclass
class History:
    """Per-epoch training curves (the data behind paper Fig. 7)."""

    loss: List[float] = field(default_factory=list)
    accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "loss": list(self.loss),
            "accuracy": list(self.accuracy),
            "val_loss": list(self.val_loss),
            "val_accuracy": list(self.val_accuracy),
        }


class Sequential:
    """A linear stack of layers trained with softmax cross-entropy.

    Parameters
    ----------
    layers:
        The layer stack (unbuilt; shapes are inferred at first fit).
    n_classes:
        Output dimensionality (the final Dense layer must produce this).
    seed:
        Weight-initialisation seed.
    """

    def __init__(self, layers: Sequence[Layer], n_classes: int, seed: int = 0):
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self.layers = list(layers)
        self.n_classes = int(n_classes)
        self.seed = int(seed)
        self.loss_fn = CategoricalCrossEntropy()
        self._built = False

    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Build every layer given the per-sample input shape."""
        rng = np.random.default_rng(self.seed)
        shape = tuple(input_shape)
        for layer in self.layers:
            layer.build(shape, rng)
            shape = layer.output_shape(shape)
        if shape != (self.n_classes,):
            raise ValueError(
                f"model output shape {shape} != (n_classes={self.n_classes},)"
            )
        self._built = True

    def _forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training)
        return out

    def _backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def _params_grads(self):
        params, grads = [], []
        for layer in self.layers:
            params.extend(layer.params)
            grads.extend(layer.grads)
        return params, grads

    def predict_proba(self, X: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class probabilities, computed in inference mode."""
        if not self._built:
            raise RuntimeError("model is not built/fitted")
        X = np.asarray(X, dtype=float)
        chunks = []
        for start in range(0, X.shape[0], batch_size):
            logits = self._forward(X[start : start + batch_size], training=False)
            z = logits - logits.max(axis=1, keepdims=True)
            e = np.exp(z)
            chunks.append(e / e.sum(axis=1, keepdims=True))
        return np.concatenate(chunks, axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Argmax class codes."""
        return np.argmax(self.predict_proba(X), axis=1)

    def evaluate(self, X: np.ndarray, y_codes: np.ndarray) -> Tuple[float, float]:
        """(loss, accuracy) in inference mode."""
        X = np.asarray(X, dtype=float)
        y_codes = np.asarray(y_codes, dtype=int)
        proba = self.predict_proba(X)
        onehot = np.zeros((y_codes.size, self.n_classes))
        onehot[np.arange(y_codes.size), y_codes] = 1.0
        eps = 1e-12
        loss = float(-np.sum(onehot * np.log(proba + eps)) / y_codes.size)
        acc = float(np.mean(np.argmax(proba, axis=1) == y_codes))
        return loss, acc

    def fit(
        self,
        X: np.ndarray,
        y_codes: np.ndarray,
        epochs: int = 20,
        batch_size: int = 32,
        optimizer=None,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        shuffle_seed: int = 0,
        verbose: bool = False,
        callbacks: Optional[Sequence] = None,
    ) -> History:
        """Train with minibatch gradient descent.

        ``y_codes`` are integer class codes in ``[0, n_classes)``.
        ``callbacks`` are :class:`repro.nn.callbacks.Callback` instances;
        any callback returning True from ``on_epoch_end`` stops training.
        """
        X = np.asarray(X, dtype=float)
        y_codes = np.asarray(y_codes, dtype=int)
        if X.shape[0] != y_codes.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} samples but y has {y_codes.shape[0]}"
            )
        if y_codes.size and (y_codes.min() < 0 or y_codes.max() >= self.n_classes):
            raise ValueError("class codes out of range")
        if not self._built:
            self.build(X.shape[1:])
        optimizer = optimizer or Adam()
        callbacks = list(callbacks or [])
        for callback in callbacks:
            callback.on_train_begin(optimizer)
        rng = np.random.default_rng(shuffle_seed)
        history = History()
        n = X.shape[0]
        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            epoch_correct = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                xb = X[idx]
                onehot = np.zeros((idx.size, self.n_classes))
                onehot[np.arange(idx.size), y_codes[idx]] = 1.0
                logits = self._forward(xb, training=True)
                loss, proba = self.loss_fn.forward(logits, onehot)
                epoch_loss += loss * idx.size
                epoch_correct += int(
                    np.sum(np.argmax(proba, axis=1) == y_codes[idx])
                )
                self._backward(self.loss_fn.backward())
                params, grads = self._params_grads()
                optimizer.step(params, grads)
            history.loss.append(epoch_loss / n)
            history.accuracy.append(epoch_correct / n)
            if validation_data is not None:
                val_loss, val_acc = self.evaluate(*validation_data)
                history.val_loss.append(val_loss)
                history.val_accuracy.append(val_acc)
            if verbose:
                msg = (
                    f"epoch {epoch + 1}/{epochs} "
                    f"loss={history.loss[-1]:.4f} acc={history.accuracy[-1]:.4f}"
                )
                if validation_data is not None:
                    msg += (
                        f" val_loss={history.val_loss[-1]:.4f}"
                        f" val_acc={history.val_accuracy[-1]:.4f}"
                    )
                print(msg)
            if any(cb.on_epoch_end(epoch, history, optimizer) for cb in callbacks):
                break
        return history

    # -- persistence --------------------------------------------------------
    def save_weights(self, path) -> None:
        """Persist all layer parameters (and BatchNorm statistics) to .npz."""
        if not self._built:
            raise RuntimeError("model is not built/fitted")
        arrays = {}
        for i, layer in enumerate(self.layers):
            for j, param in enumerate(layer.params):
                arrays[f"layer{i}_param{j}"] = param
            if hasattr(layer, "running_mean"):
                arrays[f"layer{i}_running_mean"] = layer.running_mean
                arrays[f"layer{i}_running_var"] = layer.running_var
        np.savez_compressed(path, **arrays)

    def load_weights(self, path, input_shape: Optional[Tuple[int, ...]] = None) -> None:
        """Restore parameters saved by :meth:`save_weights`.

        An unbuilt model needs ``input_shape`` to allocate its layers
        before loading.
        """
        if not self._built:
            if input_shape is None:
                raise RuntimeError(
                    "model is not built; pass input_shape to load_weights"
                )
            self.build(input_shape)
        with np.load(path) as bundle:
            for i, layer in enumerate(self.layers):
                for j, param in enumerate(layer.params):
                    key = f"layer{i}_param{j}"
                    if key not in bundle:
                        raise ValueError(f"checkpoint missing {key}")
                    stored = bundle[key]
                    if stored.shape != param.shape:
                        raise ValueError(
                            f"{key}: shape {stored.shape} != expected {param.shape}"
                        )
                    param[...] = stored
                if hasattr(layer, "running_mean"):
                    layer.running_mean = bundle[f"layer{i}_running_mean"]
                    layer.running_var = bundle[f"layer{i}_running_var"]
