"""Logits distillation: train a small student CNN against a teacher.

The serving throughput of the attack pipeline is bounded by the feature
CNN's GEMM cost, which scales roughly with ``width_scale²``. A student
at width 0.35–0.5 keeps most of the teacher's accuracy at a fraction of
the FLOPs; quantising the student afterwards (:mod:`repro.nn.quant`)
gives the ``distilled-int8`` bundle variant.

Training minimises the classic Hinton soft-target objective: the
cross-entropy between the teacher's temperature-softened distribution
``P = softmax(z_teacher / T)`` and the student's ``q = softmax(z / T)``,
scaled by ``T²`` so soft-gradient magnitudes stay comparable across
temperatures, optionally mixed with the hard-label loss. The gradient
with respect to the student logits is ``T·(q − P)/n``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.activations import softmax
from repro.nn.model import History, Sequential
from repro.nn.optim import Adam

__all__ = ["soft_targets", "fit_soft_targets", "distill_feature_cnn"]


def soft_targets(logits: np.ndarray, temperature: float) -> np.ndarray:
    """The teacher's temperature-softened class distribution."""
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    return softmax(np.asarray(logits, dtype=np.float64) / temperature)


def _soft_loss_grad(
    logits: np.ndarray, P: np.ndarray, temperature: float
) -> Tuple[float, np.ndarray]:
    """Mean ``T²·CE(P, softmax(logits/T))`` and its gradient wrt logits."""
    T = temperature
    q = softmax(logits / T)
    n = logits.shape[0]
    loss = float(-np.sum(P * np.log(np.clip(q, 1e-12, None))) * T * T / n)
    grad = (q - P) * (T / n)
    return loss, grad


def fit_soft_targets(
    model: Sequential,
    X: np.ndarray,
    P: np.ndarray,
    y_codes: Optional[np.ndarray] = None,
    epochs: int = 20,
    batch_size: int = 32,
    optimizer=None,
    temperature: float = 2.0,
    hard_weight: float = 0.1,
    shuffle_seed: int = 0,
) -> History:
    """Train ``model`` against soft targets ``P`` (teacher probabilities).

    ``P`` must be the teacher's *temperature-T* distribution for the same
    rows (see :func:`soft_targets`). When ``y_codes`` is given, the loss
    mixes in ``hard_weight`` of the ordinary hard-label cross-entropy;
    ``history.accuracy`` then tracks hard-label accuracy, otherwise
    agreement with the teacher's argmax.
    """
    X = np.asarray(X)
    P = np.asarray(P, dtype=np.float64)
    if X.shape[0] != P.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but P has {P.shape[0]}")
    if P.ndim != 2 or P.shape[1] != model.n_classes:
        raise ValueError(
            f"soft targets must be (n, {model.n_classes}), got {P.shape}"
        )
    if y_codes is None:
        hard_weight = 0.0
        targets = np.argmax(P, axis=1)
    else:
        y_codes = np.asarray(y_codes, dtype=int)
        targets = y_codes
    if not model._built:
        model.build(X.shape[1:])
    X = np.asarray(X, dtype=model._dtype)
    optimizer = optimizer or Adam()
    rng = np.random.default_rng(shuffle_seed)
    history = History()
    n = X.shape[0]
    for _epoch in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        epoch_correct = 0
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            logits = model._forward(X[idx], training=True)
            loss, grad = _soft_loss_grad(logits, P[idx], temperature)
            if hard_weight > 0.0:
                hard_loss, proba = model.loss_fn.forward_codes(
                    logits, targets[idx]
                )
                loss = (1.0 - hard_weight) * loss + hard_weight * hard_loss
                grad = (1.0 - hard_weight) * grad + hard_weight * (
                    model.loss_fn.backward()
                )
            epoch_loss += loss * idx.size
            epoch_correct += int(
                np.sum(np.argmax(logits, axis=1) == targets[idx])
            )
            model._backward(grad)
            params, grads = model._params_grads()
            optimizer.step(params, grads)
        history.loss.append(epoch_loss / n)
        history.accuracy.append(epoch_correct / n)
    return history


def distill_feature_cnn(
    teacher,
    X: np.ndarray,
    y: np.ndarray,
    width_scale: float = 0.4,
    temperature: float = 2.0,
    hard_weight: float = 0.1,
    epochs: Optional[int] = None,
    batch_size: Optional[int] = None,
    lr: Optional[float] = None,
    seed: Optional[int] = None,
):
    """Distill a fitted feature-CNN teacher into a narrower student.

    Returns a fitted :class:`~repro.eval.experiment.FeatureCNNClassifier`
    that shares the teacher's scaler and label inventory, so it packs,
    serves and quantises exactly like the teacher. ``X``/``y`` are the
    raw (unscaled) training features and labels — normally the teacher's
    own training set.
    """
    from repro.attack.models import build_feature_cnn
    from repro.eval.experiment import FeatureCNNClassifier

    if not isinstance(teacher, FeatureCNNClassifier):
        raise TypeError(
            f"expected a fitted FeatureCNNClassifier, got {type(teacher).__name__}"
        )
    teacher._check_fitted()
    if not 0.0 < width_scale <= 1.0:
        raise ValueError("width_scale must be in (0, 1]")
    epochs = teacher.epochs if epochs is None else int(epochs)
    batch_size = teacher.batch_size if batch_size is None else int(batch_size)
    lr = teacher.lr if lr is None else float(lr)
    seed = teacher.seed if seed is None else int(seed)

    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    index = {label: i for i, label in enumerate(teacher.classes_)}
    try:
        codes = np.array([index[label] for label in y], dtype=int)
    except KeyError as exc:
        raise ValueError(
            f"label {exc.args[0]!r} not in the teacher's class inventory"
        ) from exc

    Xs = teacher._scaler.transform(X)[..., None]
    teacher_logits = teacher._model._forward_batched(
        np.asarray(Xs, dtype=teacher._model._dtype)
    )
    P = soft_targets(teacher_logits, temperature)

    student_model = build_feature_cnn(
        teacher.classes_.size, width_scale=width_scale, seed=seed
    )
    history = fit_soft_targets(
        student_model,
        Xs,
        P,
        y_codes=codes,
        epochs=epochs,
        batch_size=batch_size,
        optimizer=Adam(lr=lr),
        temperature=temperature,
        hard_weight=hard_weight,
        shuffle_seed=seed,
    )

    student = FeatureCNNClassifier(
        epochs=epochs,
        batch_size=batch_size,
        width_scale=width_scale,
        validation_fraction=teacher.validation_fraction,
        lr=lr,
        seed=seed,
    )
    student.classes_ = teacher.classes_.copy()
    student._scaler = teacher._scaler
    student._model = student_model
    student.history_ = history
    return student
