"""Package-level precision and kernel policy for the NN substrate.

Two knobs steer every layer built after the policy is set:

- ``compute_dtype`` — the dtype parameters are allocated in and inputs
  are cast to (``float64`` by default, preserving the historical
  numerics; ``float32`` roughly halves memory traffic and doubles BLAS
  throughput at the cost of bitwise determinism across BLAS builds);
- ``conv_kernel`` — the convolution implementation: ``"gemm"``
  (im2col + one matrix multiply per direction, the default),
  ``"reference"`` (the original kernel-offset summation, kept as the
  numerical reference the GEMM path is parity-tested against), or
  ``"quantized"`` (inference-only int8 weight/activation matmul with
  float32 accumulate — see :mod:`repro.nn.quant`; training under this
  kernel raises).

The policy is process-wide and read at ``build``/``forward`` time;
:func:`policy_scope` scopes a change to a ``with`` block (used by the
parity tests and the kernel microbenchmarks), and the CLI exposes both
knobs as ``--nn-dtype`` / ``--nn-kernel``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Optional, Union

import numpy as np

__all__ = [
    "COMPUTE_DTYPES",
    "CONV_KERNELS",
    "PrecisionPolicy",
    "get_policy",
    "set_policy",
    "policy_scope",
    "compute_dtype",
    "conv_kernel",
]

#: Allowed compute dtypes, by CLI name.
COMPUTE_DTYPES = {"float32": np.dtype(np.float32), "float64": np.dtype(np.float64)}

#: Allowed convolution kernel implementations. "quantized" is the
#: inference-only int8 path (repro.nn.quant); it quantises weights per
#: output channel on the fly and refuses to train.
CONV_KERNELS = ("gemm", "reference", "quantized")


def _coerce_dtype(value: Union[str, np.dtype, type]) -> np.dtype:
    if isinstance(value, str) and value in COMPUTE_DTYPES:
        return COMPUTE_DTYPES[value]
    dtype = np.dtype(value)
    if dtype not in COMPUTE_DTYPES.values():
        raise ValueError(
            f"compute_dtype must be one of {sorted(COMPUTE_DTYPES)}, got {value!r}"
        )
    return dtype


@dataclass(frozen=True)
class PrecisionPolicy:
    """The active compute dtype and convolution kernel selection."""

    compute_dtype: np.dtype = np.dtype(np.float64)
    conv_kernel: str = "gemm"

    def __post_init__(self):
        object.__setattr__(self, "compute_dtype", _coerce_dtype(self.compute_dtype))
        if self.conv_kernel not in CONV_KERNELS:
            raise ValueError(
                f"conv_kernel must be one of {CONV_KERNELS}, got {self.conv_kernel!r}"
            )


#: Default: float64 numerics (bit-compatible with the seed repo's
#: training trajectories) through the fast GEMM kernels.
DEFAULT_POLICY = PrecisionPolicy()

_current = DEFAULT_POLICY


def get_policy() -> PrecisionPolicy:
    """The active process-wide policy."""
    return _current


def set_policy(
    compute_dtype: Optional[Union[str, np.dtype, type]] = None,
    conv_kernel: Optional[str] = None,
) -> PrecisionPolicy:
    """Replace selected fields of the process-wide policy; returns it.

    Pass ``None`` to keep a field as is. Affects layers built afterwards
    (parameter dtype is fixed at ``build``; the conv kernel is re-read
    every ``forward``).
    """
    global _current
    updates = {}
    if compute_dtype is not None:
        updates["compute_dtype"] = _coerce_dtype(compute_dtype)
    if conv_kernel is not None:
        updates["conv_kernel"] = conv_kernel
    _current = replace(_current, **updates)
    return _current


@contextmanager
def policy_scope(
    compute_dtype: Optional[Union[str, np.dtype, type]] = None,
    conv_kernel: Optional[str] = None,
):
    """Set policy fields for the duration of a ``with`` block."""
    previous = _current
    try:
        yield set_policy(compute_dtype=compute_dtype, conv_kernel=conv_kernel)
    finally:
        _restore(previous)


def _restore(policy: PrecisionPolicy) -> None:
    global _current
    _current = policy


def compute_dtype() -> np.dtype:
    """The active compute dtype."""
    return _current.compute_dtype


def conv_kernel() -> str:
    """The active convolution kernel implementation."""
    return _current.conv_kernel
