"""Loss functions."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.activations import softmax

__all__ = ["CategoricalCrossEntropy"]


class CategoricalCrossEntropy:
    """Softmax + categorical cross-entropy with the fused gradient.

    ``forward`` takes raw logits and one-hot targets and returns
    ``(loss, probabilities)``; ``backward`` returns dLoss/dLogits.
    """

    def forward(
        self, logits: np.ndarray, onehot: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        if logits.shape != onehot.shape:
            raise ValueError(
                f"logits shape {logits.shape} != targets shape {onehot.shape}"
            )
        proba = softmax(logits)
        eps = 1e-12
        loss = float(-np.sum(onehot * np.log(proba + eps)) / logits.shape[0])
        self._proba = proba
        self._onehot = onehot
        return loss, proba

    def backward(self) -> np.ndarray:
        return (self._proba - self._onehot) / self._proba.shape[0]
