"""Loss functions."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.activations import softmax

__all__ = ["CategoricalCrossEntropy"]


class CategoricalCrossEntropy:
    """Softmax + categorical cross-entropy with the fused gradient.

    ``forward`` takes raw logits and one-hot targets and returns
    ``(loss, probabilities)``; :meth:`forward_codes` does the same from
    integer class codes without materialising a one-hot matrix (the
    training loop's hot path); ``backward`` returns dLoss/dLogits for
    whichever forward ran last.
    """

    _EPS = 1e-12

    def forward(
        self, logits: np.ndarray, onehot: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        if logits.shape != onehot.shape:
            raise ValueError(
                f"logits shape {logits.shape} != targets shape {onehot.shape}"
            )
        proba = softmax(logits)
        loss = float(-np.sum(onehot * np.log(proba + self._EPS)) / logits.shape[0])
        self._proba = proba
        self._onehot = onehot
        self._codes = None
        return loss, proba

    def forward_codes(
        self, logits: np.ndarray, codes: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Loss and probabilities from integer class codes (no one-hot).

        Semantically identical to :meth:`forward` with
        ``onehot[i, codes[i]] = 1`` — the gradient is bitwise the same,
        the loss sums only the target log-probabilities.
        """
        codes = np.asarray(codes)
        if codes.shape != (logits.shape[0],):
            raise ValueError(
                f"codes shape {codes.shape} != ({logits.shape[0]},)"
            )
        proba = softmax(logits)
        picked = proba[np.arange(codes.size), codes]
        loss = float(-np.sum(np.log(picked + self._EPS)) / codes.size)
        self._proba = proba
        self._onehot = None
        self._codes = codes
        return loss, proba

    def backward(self) -> np.ndarray:
        n = self._proba.shape[0]
        if self._codes is not None:
            grad = self._proba.copy()
            grad[np.arange(n), self._codes] -= 1.0
            grad /= n
            return grad
        return (self._proba - self._onehot) / n
