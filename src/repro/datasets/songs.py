"""Simulated song-clip corpus for the content-ID attack.

Kinetic Song Comprehension (PAPERS.md) identifies which song is playing
from smartphone motions. This corpus models that workload: clips drawn
from the built-in song catalogue (:data:`repro.speech.music.SONGS`),
each clip a deterministic excerpt rendered by the
:class:`~repro.speech.music.MusicSynthesizer`. The track doubles as the
"speaker": ``spec.speaker_id`` is the song name, so content-ID labels
flow through the same per-task extraction as speaker-ID labels, and the
collection engine's cache keys/provenance work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import Corpus, UtteranceSpec
from repro.speech.music import SONGS, MusicSynthesizer, song_names
from repro.speech.synthesizer import SpeakerVoice

__all__ = ["SongCorpus", "build_songs"]


@dataclass(frozen=True)
class SongCorpus(Corpus):
    """A corpus of song clips; content identity is the song name.

    Every spec's ``speaker_id`` names a catalogue song and its
    ``emotion`` is the placeholder ``"neutral"`` (music carries no acted
    emotion label). Overriding :meth:`render` is enough for the batched
    data plane: ``Corpus.render_batch`` renders per spec through the
    override, keeping batched collection byte-identical.
    """

    clip_s: float = 1.6

    def render(self, spec: UtteranceSpec) -> np.ndarray:
        """Deterministically synthesise one song clip's waveform."""
        self.validate_spec(spec)
        if spec.speaker_id not in SONGS:
            raise KeyError(f"spec references unknown song {spec.speaker_id!r}")
        rng = np.random.default_rng(spec.seed)
        synth = MusicSynthesizer(fs=self.audio_fs)
        return synth.render(SONGS[spec.speaker_id], rng, duration_s=self.clip_s)

    def content_label(self, record) -> str:
        """The clip's song name (carried in the record's speaker id)."""
        return record.speaker_id

    def speaker_gender(self, speaker_id: str) -> str:
        raise ValueError("song corpus speakers are tracks; no gender labels")

    def subsample(
        self, per_class: int, seed: int = 0, stratify_speakers: bool = True
    ) -> "SongCorpus":
        """Stratified subsample with ``per_class`` clips per *song*.

        The base implementation stratifies per emotion, which collapses
        here (every clip is "neutral"); the content-ID class is the song.
        """
        if per_class < 1:
            raise ValueError("per_class must be >= 1")
        rng = np.random.default_rng(seed)
        chosen: List[UtteranceSpec] = []
        for song in sorted(self.speakers):
            pool = [s for s in self.specs if s.speaker_id == song]
            if not pool:
                continue
            take = min(per_class, len(pool))
            idx = rng.permutation(len(pool))[:take]
            chosen.extend(pool[i] for i in sorted(idx))
        return replace(self, specs=chosen)


def build_songs(
    seed: int = 3,
    clips_per_song: int = 24,
    songs: Optional[Sequence[str]] = None,
    clip_s: float = 1.6,
) -> SongCorpus:
    """Build the simulated song-clip corpus.

    Parameters
    ----------
    clips_per_song:
        Excerpts per catalogue song (the content-ID class balance).
    songs:
        Subset of :func:`repro.speech.music.song_names` (default: all).
    clip_s:
        Clip duration in seconds.
    """
    if clips_per_song < 1:
        raise ValueError("clips_per_song must be >= 1")
    names: Tuple[str, ...] = tuple(songs) if songs else song_names()
    unknown = set(names) - set(SONGS)
    if unknown:
        raise ValueError(
            f"unknown songs {sorted(unknown)}; available: {song_names()}"
        )
    # Placeholder voices keyed by song: validate_spec and speaker-keyed
    # bookkeeping work unchanged; the root frequency doubles as base F0.
    speakers = {
        name: SpeakerVoice(base_f0_hz=SONGS[name].root_hz) for name in names
    }
    specs = []
    seed_stream = np.random.default_rng(seed + 1)
    for name in names:
        for k in range(clips_per_song):
            specs.append(
                UtteranceSpec(
                    utterance_id=f"songs-{name}-{k:03d}",
                    speaker_id=name,
                    emotion="neutral",
                    seed=int(seed_stream.integers(0, 2**31 - 1)),
                )
            )
    return SongCorpus(
        name="songs",
        emotions=("neutral",),
        speakers=speakers,
        specs=specs,
        expressiveness=1.0,
        variability=0.0,
        clip_s=clip_s,
    )
