"""Simulated emotional-speech corpora with the published shapes.

Each builder reproduces the corresponding corpus's published structure —
speaker count, sex, emotion inventory and utterance count — while the
audio itself comes from :mod:`repro.speech`. Corpus-level parameters
(``expressiveness``, ``variability``) model how strongly and consistently
the actors realise each emotion: TESS (two trained actors, single carrier
phrase) is clean and exaggerated, SAVEE (four speakers) is more variable,
and CREMA-D (91 crowd-sourced actors) is the most heterogeneous. These
parameters reproduce the paper's accuracy ordering TESS ≫ CREMA-D ≈ SAVEE.
"""

from repro.datasets.base import (
    TASKS,
    Corpus,
    UtteranceSpec,
    resolve_task,
)
from repro.datasets.savee import build_savee
from repro.datasets.tess import build_tess
from repro.datasets.cremad import build_cremad
from repro.datasets.songs import SongCorpus, build_songs
from repro.datasets.registry import available_corpora, build_corpus

__all__ = [
    "TASKS",
    "Corpus",
    "SongCorpus",
    "UtteranceSpec",
    "resolve_task",
    "build_savee",
    "build_tess",
    "build_cremad",
    "build_songs",
    "available_corpora",
    "build_corpus",
]
