"""Simulated CREMA-D corpus.

The real CRowd-sourced Emotional Multimodal Actors Dataset has 7442 audio
clips from 91 actors (48 male, 43 female) over 6 emotions (no surprise):
12 sentences, with anger/disgust/fear/happy/sad produced at multiple
intensity levels and neutral once per sentence. Ninety-one heterogeneous,
crowd-rated actors make it the hardest corpus — the paper reaches ≈53–60 %.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Corpus, UtteranceSpec
from repro.speech.prosody import CREMAD_EMOTIONS
from repro.speech.synthesizer import SpeakerVoice

__all__ = ["build_cremad", "CREMAD_N_ACTORS", "CREMAD_N_CLIPS"]

CREMAD_N_ACTORS = 91
CREMAD_N_MALE = 48
CREMAD_N_CLIPS = 7442


def build_cremad(
    seed: int = 2,
    expressiveness: float = 1.30,
    variability: float = 0.09,
    n_clips: int = CREMAD_N_CLIPS,
) -> Corpus:
    """Build the simulated CREMA-D corpus (7442 clips, 91 actors, 6 emotions).

    ``n_clips`` can be reduced for fast runs; clips are assigned to
    actors and emotions round-robin so every subset stays balanced.
    """
    if n_clips < len(CREMAD_EMOTIONS):
        raise ValueError("n_clips must cover at least one clip per emotion")
    rng = np.random.default_rng(seed)
    speakers = {}
    for i in range(CREMAD_N_ACTORS):
        sid = f"A{i + 1:04d}"
        speakers[sid] = SpeakerVoice.random(
            rng, female=(i >= CREMAD_N_MALE), variability=0.14
        )
    speaker_ids = sorted(speakers)
    specs = []
    seed_stream = np.random.default_rng(seed + 1)
    for k in range(n_clips):
        emotion = CREMAD_EMOTIONS[k % len(CREMAD_EMOTIONS)]
        sid = speaker_ids[(k // len(CREMAD_EMOTIONS)) % len(speaker_ids)]
        specs.append(
            UtteranceSpec(
                utterance_id=f"cremad-{sid}-{emotion}-{k:05d}",
                speaker_id=sid,
                emotion=emotion,
                seed=int(seed_stream.integers(0, 2**31 - 1)),
                mean_syllables=5.5,
            )
        )
    corpus = Corpus(
        name="cremad",
        emotions=CREMAD_EMOTIONS,
        speakers=speakers,
        specs=specs,
        expressiveness=expressiveness,
        variability=variability,
    )
    if n_clips == CREMAD_N_CLIPS:
        assert len(corpus) == 7442, f"CREMA-D should have 7442 clips, got {len(corpus)}"
    return corpus
