"""Simulated SAVEE corpus.

The real Surrey Audio-Visual Expressed Emotion corpus has 480 utterances
from 4 native English male speakers (DC, JE, JK, KL): per speaker, 15
utterances for each of 6 emotions plus 30 neutral, over 7 emotion
categories. Acted but with only moderately exaggerated prosody and
noticeable speaker differences — the paper reaches only ≈45–54 % on it.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Corpus, UtteranceSpec
from repro.speech.prosody import EMOTIONS
from repro.speech.synthesizer import SpeakerVoice

__all__ = ["build_savee", "SAVEE_SPEAKERS"]

SAVEE_SPEAKERS = ("DC", "JE", "JK", "KL")

#: Per-speaker counts: 15 per non-neutral emotion, 30 neutral (= 120 each).
_PER_EMOTION = 15
_NEUTRAL = 30


def build_savee(
    seed: int = 0,
    expressiveness: float = 1.25,
    variability: float = 0.10,
) -> Corpus:
    """Build the simulated SAVEE corpus (480 utterances, 4 male speakers)."""
    rng = np.random.default_rng(seed)
    speakers = {
        sid: SpeakerVoice.random(rng, female=False, variability=0.12)
        for sid in SAVEE_SPEAKERS
    }
    specs = []
    seed_stream = np.random.default_rng(seed + 1)
    for sid in SAVEE_SPEAKERS:
        for emotion in EMOTIONS:
            count = _NEUTRAL if emotion == "neutral" else _PER_EMOTION
            for k in range(count):
                specs.append(
                    UtteranceSpec(
                        utterance_id=f"savee-{sid}-{emotion}-{k:02d}",
                        speaker_id=sid,
                        emotion=emotion,
                        seed=int(seed_stream.integers(0, 2**31 - 1)),
                        mean_syllables=6.0,
                    )
                )
    corpus = Corpus(
        name="savee",
        emotions=EMOTIONS,
        speakers=speakers,
        specs=specs,
        expressiveness=expressiveness,
        variability=variability,
    )
    assert len(corpus) == 480, f"SAVEE should have 480 utterances, got {len(corpus)}"
    return corpus
