"""Simulated TESS corpus.

The real Toronto Emotional Speech Set has 2800 utterances from two female
actors (aged 26 and 64) saying "Say the word ___" for 200 target words in
each of 7 emotions. Two trained voices, one carrier phrase, studio
recording: the cleanest and most separable of the three corpora — the
paper reaches ≈95 % on it.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Corpus, UtteranceSpec
from repro.speech.prosody import EMOTIONS
from repro.speech.synthesizer import SpeakerVoice

__all__ = ["build_tess", "TESS_SPEAKERS"]

TESS_SPEAKERS = ("OAF", "YAF")

_WORDS_PER_EMOTION = 200


def build_tess(
    seed: int = 1,
    expressiveness: float = 1.05,
    variability: float = 0.035,
    words_per_emotion: int = _WORDS_PER_EMOTION,
) -> Corpus:
    """Build the simulated TESS corpus (2800 utterances, 2 female speakers).

    ``words_per_emotion`` can be reduced for fast test runs; the default
    reproduces the published 2 x 7 x 200 = 2800 layout.
    """
    if words_per_emotion < 1:
        raise ValueError("words_per_emotion must be >= 1")
    rng = np.random.default_rng(seed)
    speakers = {
        sid: SpeakerVoice.random(rng, female=True, variability=0.10)
        for sid in TESS_SPEAKERS
    }
    specs = []
    seed_stream = np.random.default_rng(seed + 1)
    for sid in TESS_SPEAKERS:
        for emotion in EMOTIONS:
            for k in range(words_per_emotion):
                specs.append(
                    UtteranceSpec(
                        utterance_id=f"tess-{sid}-{emotion}-{k:03d}",
                        speaker_id=sid,
                        emotion=emotion,
                        seed=int(seed_stream.integers(0, 2**31 - 1)),
                        # "Say the word X": short fixed carrier phrase.
                        mean_syllables=4.0,
                        carrier=True,
                    )
                )
    corpus = Corpus(
        name="tess",
        emotions=EMOTIONS,
        speakers=speakers,
        specs=specs,
        expressiveness=expressiveness,
        variability=variability,
    )
    if words_per_emotion == _WORDS_PER_EMOTION:
        assert len(corpus) == 2800, f"TESS should have 2800 utterances, got {len(corpus)}"
    return corpus
