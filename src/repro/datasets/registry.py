"""Name-based corpus registry used by the pipeline and benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.datasets.base import Corpus
from repro.datasets.cremad import build_cremad
from repro.datasets.savee import build_savee
from repro.datasets.songs import build_songs
from repro.datasets.tess import build_tess

__all__ = ["available_corpora", "build_corpus", "register_corpus"]

_BUILDERS: Dict[str, Callable[..., Corpus]] = {
    "savee": build_savee,
    "tess": build_tess,
    "cremad": build_cremad,
    "songs": build_songs,
}


def available_corpora() -> Tuple[str, ...]:
    """Names of all registered corpora."""
    return tuple(sorted(_BUILDERS))


def register_corpus(name: str, builder: Callable[..., Corpus]) -> None:
    """Register a custom corpus builder (e.g. for extension experiments)."""
    key = name.lower().strip()
    if not key:
        raise ValueError("corpus name must be non-empty")
    _BUILDERS[key] = builder


def build_corpus(name: str, **kwargs) -> Corpus:
    """Build a corpus by name, forwarding builder-specific kwargs."""
    try:
        builder = _BUILDERS[name.lower().strip()]
    except KeyError:
        raise ValueError(
            f"unknown corpus {name!r}; available: {available_corpora()}"
        ) from None
    return builder(**kwargs)
