"""Corpus and utterance abstractions.

A :class:`Corpus` is a list of :class:`UtteranceSpec` records plus the
speaker voices they reference. Waveforms are rendered lazily and
deterministically from each spec's seed, so a 7442-clip corpus costs no
memory until iterated and two renders of the same spec are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.speech.prosody import emotion_profile, perturbed_profile
from repro.speech.phonemes import plan_utterance
from repro.speech.synthesizer import SpeakerVoice, Synthesizer

__all__ = [
    "GENDER_F0_SPLIT_HZ",
    "TASKS",
    "UtteranceSpec",
    "Corpus",
    "resolve_task",
]

#: Canonical attack-task inventory. One collected corpus supports several
#: label extractions: ``emotion`` (EmoLeak), ``speaker-id`` and ``gender``
#: (Spearphone / EarSpy) and ``content-id`` (Kinetic Song Comprehension;
#: corpora opt in via :meth:`Corpus.content_label`).
TASKS: Tuple[str, ...] = ("emotion", "speaker-id", "gender", "content-id")

#: Female voices have base F0 above this threshold (Hz); used to derive
#: gender labels from a corpus's speaker voices.
GENDER_F0_SPLIT_HZ = 160.0


def resolve_task(task: str) -> str:
    """Normalise an attack-task name (``speaker_id`` == ``speaker-id``)."""
    key = str(task).lower().strip().replace("_", "-")
    if key not in TASKS:
        raise ValueError(f"unknown task {task!r}; available: {TASKS}")
    return key


@dataclass(frozen=True)
class UtteranceSpec:
    """Metadata identifying one (lazily rendered) utterance.

    The seed fully determines the rendered waveform given the corpus's
    speaker voices and synthesis rate.
    """

    utterance_id: str
    speaker_id: str
    emotion: str
    seed: int
    mean_syllables: float = 5.0
    carrier: bool = False


@dataclass(frozen=True)
class Corpus:
    """An emotional-speech corpus: specs + speaker voices + realisation knobs.

    Attributes
    ----------
    name:
        Corpus name (``savee``, ``tess``, ``cremad``).
    emotions:
        Emotion label inventory (defines the class set / random-guess rate).
    speakers:
        Mapping of speaker id to that speaker's neutral voice.
    specs:
        The utterance records.
    expressiveness:
        How far actors push emotions from neutral (corpus production style).
    variability:
        Per-utterance realisation noise (crowd-sourced corpora are high).
    audio_fs:
        Synthesis sampling rate in Hz.
    """

    name: str
    emotions: Tuple[str, ...]
    speakers: Dict[str, SpeakerVoice]
    specs: List[UtteranceSpec]
    expressiveness: float = 1.0
    variability: float = 0.15
    audio_fs: float = 8000.0

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[UtteranceSpec]:
        return iter(self.specs)

    def validate_spec(self, spec: UtteranceSpec) -> None:
        """Reject a spec that references data this corpus does not hold.

        The one validator shared by the per-utterance and batched realise
        paths, so both reject bad specs with identical messages.
        """
        if spec.speaker_id not in self.speakers:
            raise KeyError(
                f"spec references unknown speaker {spec.speaker_id!r} "
                f"(corpus {self.name!r})"
            )
        if spec.emotion not in self.emotions:
            raise ValueError(
                f"spec emotion {spec.emotion!r} not in corpus inventory {self.emotions}"
            )

    def render(self, spec: UtteranceSpec) -> np.ndarray:
        """Deterministically synthesise one utterance's waveform."""
        self.validate_spec(spec)
        rng = np.random.default_rng(spec.seed)
        profile = perturbed_profile(
            emotion_profile(spec.emotion),
            rng,
            expressiveness=self.expressiveness,
            variability=self.variability,
        )
        plan = plan_utterance(
            rng, mean_syllables=spec.mean_syllables, carrier=spec.carrier
        )
        synth = Synthesizer(fs=self.audio_fs)
        return synth.render(self.speakers[spec.speaker_id], profile, rng, plan)

    def render_batch(self, specs: Sequence[UtteranceSpec]) -> List[np.ndarray]:
        """Batched :meth:`render`: one synthesizer pass over many specs.

        Each spec gets its own generator seeded exactly as in
        :meth:`render`, so every returned waveform is byte-identical to
        the per-spec path; the batch axis only changes how the formant
        cascade work is scheduled (see ``Synthesizer.render_batch``).

        A subclass that overrides :meth:`render` without overriding this
        method renders per spec through its override, keeping the
        batched pipeline's output identical to the per-utterance path.
        """
        if type(self).render is not Corpus.render:
            return [self.render(spec) for spec in specs]
        voices = []
        profiles = []
        rngs = []
        plans = []
        for spec in specs:
            self.validate_spec(spec)
            rng = np.random.default_rng(spec.seed)
            profiles.append(
                perturbed_profile(
                    emotion_profile(spec.emotion),
                    rng,
                    expressiveness=self.expressiveness,
                    variability=self.variability,
                )
            )
            plans.append(
                plan_utterance(
                    rng, mean_syllables=spec.mean_syllables, carrier=spec.carrier
                )
            )
            voices.append(self.speakers[spec.speaker_id])
            rngs.append(rng)
        synth = Synthesizer(fs=self.audio_fs)
        return synth.render_batch(voices, profiles, rngs, plans)

    def iter_rendered(self) -> Iterator[Tuple[UtteranceSpec, np.ndarray]]:
        """Yield ``(spec, waveform)`` pairs lazily."""
        for spec in self.specs:
            yield spec, self.render(spec)

    def class_counts(self) -> Dict[str, int]:
        """Number of utterances per emotion label."""
        counts = {emotion: 0 for emotion in self.emotions}
        for spec in self.specs:
            counts[spec.emotion] += 1
        return counts

    # -- per-task label extraction ------------------------------------------
    #
    # The multi-task label plane: one collected corpus can be re-labelled
    # per attack task without re-running synth→channel→detect. ``record``
    # is anything carrying ``speaker_id``/``emotion``/``utterance_id`` —
    # an :class:`UtteranceSpec` (per-utterance collection) or a
    # :class:`~repro.phone.recording.PlaybackEvent` (continuous sessions).

    def speaker_gender(self, speaker_id: str) -> str:
        """Gender label for a speaker, derived from the voice's base F0."""
        try:
            voice = self.speakers[speaker_id]
        except KeyError:
            raise KeyError(
                f"unknown speaker {speaker_id!r} (corpus {self.name!r})"
            ) from None
        return "female" if voice.base_f0_hz > GENDER_F0_SPLIT_HZ else "male"

    def content_label(self, record) -> str:
        """Content-identity label for a record (song/sentence identity).

        Speech corpora do not model content identity; the song corpus
        (:mod:`repro.datasets.songs`) overrides this.
        """
        raise ValueError(
            f"corpus {self.name!r} does not define content-id labels"
        )

    def task_label(self, record, task: str = "emotion") -> str:
        """Extract one record's label for an attack task."""
        task = resolve_task(task)
        if task == "emotion":
            return record.emotion
        if task == "speaker-id":
            return record.speaker_id
        if task == "gender":
            return self.speaker_gender(record.speaker_id)
        return self.content_label(record)

    def task_inventory(self, task: str = "emotion") -> Tuple[str, ...]:
        """The label inventory (class set) of an attack task."""
        task = resolve_task(task)
        if task == "emotion":
            return tuple(self.emotions)
        if task == "speaker-id":
            return tuple(sorted(self.speakers))
        if task == "gender":
            return tuple(sorted({self.speaker_gender(s) for s in self.speakers}))
        return tuple(sorted({self.content_label(s) for s in self.specs}))

    def subsample(
        self, per_class: int, seed: int = 0, stratify_speakers: bool = True
    ) -> "Corpus":
        """Return a stratified subsample with ``per_class`` utterances per emotion.

        Used by the benchmark harness to run the CREMA-D-scale experiments
        at tractable cost while preserving class balance.
        """
        if per_class < 1:
            raise ValueError("per_class must be >= 1")
        rng = np.random.default_rng(seed)
        chosen: List[UtteranceSpec] = []
        for emotion in self.emotions:
            pool = [s for s in self.specs if s.emotion == emotion]
            if not pool:
                continue
            take = min(per_class, len(pool))
            if stratify_speakers:
                # Round-robin across speakers before random fill for balance.
                by_speaker: Dict[str, List[UtteranceSpec]] = {}
                for s in pool:
                    by_speaker.setdefault(s.speaker_id, []).append(s)
                ordered: List[UtteranceSpec] = []
                buckets = [list(v) for v in by_speaker.values()]
                for bucket in buckets:
                    rng.shuffle(bucket)
                while buckets and len(ordered) < take:
                    for bucket in list(buckets):
                        if not bucket:
                            buckets.remove(bucket)
                            continue
                        ordered.append(bucket.pop())
                        if len(ordered) >= take:
                            break
                chosen.extend(ordered[:take])
            else:
                idx = rng.permutation(len(pool))[:take]
                chosen.extend(pool[i] for i in idx)
        return replace(self, specs=chosen)

    def filter_emotions(self, emotions: Sequence[str]) -> "Corpus":
        """Restrict the corpus to a subset of emotion labels."""
        keep = tuple(e for e in self.emotions if e in set(emotions))
        if not keep:
            raise ValueError(f"no overlap between {emotions} and {self.emotions}")
        specs = [s for s in self.specs if s.emotion in keep]
        return replace(self, emotions=keep, specs=specs)
