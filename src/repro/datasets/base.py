"""Corpus and utterance abstractions.

A :class:`Corpus` is a list of :class:`UtteranceSpec` records plus the
speaker voices they reference. Waveforms are rendered lazily and
deterministically from each spec's seed, so a 7442-clip corpus costs no
memory until iterated and two renders of the same spec are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.speech.prosody import emotion_profile, perturbed_profile
from repro.speech.phonemes import plan_utterance
from repro.speech.synthesizer import SpeakerVoice, Synthesizer

__all__ = ["UtteranceSpec", "Corpus"]


@dataclass(frozen=True)
class UtteranceSpec:
    """Metadata identifying one (lazily rendered) utterance.

    The seed fully determines the rendered waveform given the corpus's
    speaker voices and synthesis rate.
    """

    utterance_id: str
    speaker_id: str
    emotion: str
    seed: int
    mean_syllables: float = 5.0
    carrier: bool = False


@dataclass(frozen=True)
class Corpus:
    """An emotional-speech corpus: specs + speaker voices + realisation knobs.

    Attributes
    ----------
    name:
        Corpus name (``savee``, ``tess``, ``cremad``).
    emotions:
        Emotion label inventory (defines the class set / random-guess rate).
    speakers:
        Mapping of speaker id to that speaker's neutral voice.
    specs:
        The utterance records.
    expressiveness:
        How far actors push emotions from neutral (corpus production style).
    variability:
        Per-utterance realisation noise (crowd-sourced corpora are high).
    audio_fs:
        Synthesis sampling rate in Hz.
    """

    name: str
    emotions: Tuple[str, ...]
    speakers: Dict[str, SpeakerVoice]
    specs: List[UtteranceSpec]
    expressiveness: float = 1.0
    variability: float = 0.15
    audio_fs: float = 8000.0

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[UtteranceSpec]:
        return iter(self.specs)

    def render(self, spec: UtteranceSpec) -> np.ndarray:
        """Deterministically synthesise one utterance's waveform."""
        if spec.speaker_id not in self.speakers:
            raise KeyError(
                f"spec references unknown speaker {spec.speaker_id!r} "
                f"(corpus {self.name!r})"
            )
        if spec.emotion not in self.emotions:
            raise ValueError(
                f"spec emotion {spec.emotion!r} not in corpus inventory {self.emotions}"
            )
        rng = np.random.default_rng(spec.seed)
        profile = perturbed_profile(
            emotion_profile(spec.emotion),
            rng,
            expressiveness=self.expressiveness,
            variability=self.variability,
        )
        plan = plan_utterance(
            rng, mean_syllables=spec.mean_syllables, carrier=spec.carrier
        )
        synth = Synthesizer(fs=self.audio_fs)
        return synth.render(self.speakers[spec.speaker_id], profile, rng, plan)

    def render_batch(self, specs: Sequence[UtteranceSpec]) -> List[np.ndarray]:
        """Batched :meth:`render`: one synthesizer pass over many specs.

        Each spec gets its own generator seeded exactly as in
        :meth:`render`, so every returned waveform is byte-identical to
        the per-spec path; the batch axis only changes how the formant
        cascade work is scheduled (see ``Synthesizer.render_batch``).

        A subclass that overrides :meth:`render` without overriding this
        method renders per spec through its override, keeping the
        batched pipeline's output identical to the per-utterance path.
        """
        if type(self).render is not Corpus.render:
            return [self.render(spec) for spec in specs]
        voices = []
        profiles = []
        rngs = []
        plans = []
        for spec in specs:
            if spec.speaker_id not in self.speakers:
                raise KeyError(
                    f"spec references unknown speaker {spec.speaker_id!r} "
                    f"(corpus {self.name!r})"
                )
            if spec.emotion not in self.emotions:
                raise ValueError(
                    f"spec emotion {spec.emotion!r} not in corpus inventory "
                    f"{self.emotions}"
                )
            rng = np.random.default_rng(spec.seed)
            profiles.append(
                perturbed_profile(
                    emotion_profile(spec.emotion),
                    rng,
                    expressiveness=self.expressiveness,
                    variability=self.variability,
                )
            )
            plans.append(
                plan_utterance(
                    rng, mean_syllables=spec.mean_syllables, carrier=spec.carrier
                )
            )
            voices.append(self.speakers[spec.speaker_id])
            rngs.append(rng)
        synth = Synthesizer(fs=self.audio_fs)
        return synth.render_batch(voices, profiles, rngs, plans)

    def iter_rendered(self) -> Iterator[Tuple[UtteranceSpec, np.ndarray]]:
        """Yield ``(spec, waveform)`` pairs lazily."""
        for spec in self.specs:
            yield spec, self.render(spec)

    def class_counts(self) -> Dict[str, int]:
        """Number of utterances per emotion label."""
        counts = {emotion: 0 for emotion in self.emotions}
        for spec in self.specs:
            counts[spec.emotion] += 1
        return counts

    def subsample(
        self, per_class: int, seed: int = 0, stratify_speakers: bool = True
    ) -> "Corpus":
        """Return a stratified subsample with ``per_class`` utterances per emotion.

        Used by the benchmark harness to run the CREMA-D-scale experiments
        at tractable cost while preserving class balance.
        """
        if per_class < 1:
            raise ValueError("per_class must be >= 1")
        rng = np.random.default_rng(seed)
        chosen: List[UtteranceSpec] = []
        for emotion in self.emotions:
            pool = [s for s in self.specs if s.emotion == emotion]
            if not pool:
                continue
            take = min(per_class, len(pool))
            if stratify_speakers:
                # Round-robin across speakers before random fill for balance.
                by_speaker: Dict[str, List[UtteranceSpec]] = {}
                for s in pool:
                    by_speaker.setdefault(s.speaker_id, []).append(s)
                ordered: List[UtteranceSpec] = []
                buckets = [list(v) for v in by_speaker.values()]
                for bucket in buckets:
                    rng.shuffle(bucket)
                while buckets and len(ordered) < take:
                    for bucket in list(buckets):
                        if not bucket:
                            buckets.remove(bucket)
                            continue
                        ordered.append(bucket.pop())
                        if len(ordered) >= take:
                            break
                chosen.extend(ordered[:take])
            else:
                idx = rng.permutation(len(pool))[:take]
                chosen.extend(pool[i] for i in idx)
        return replace(self, specs=chosen)

    def filter_emotions(self, emotions: Sequence[str]) -> "Corpus":
        """Restrict the corpus to a subset of emotion labels."""
        keep = tuple(e for e in self.emotions if e in set(emotions))
        if not keep:
            raise ValueError(f"no overlap between {emotions} and {self.emotions}")
        specs = [s for s in self.specs if s.emotion in keep]
        return replace(self, emotions=keep, specs=specs)
