"""Speech-region detection on accelerometer traces.

"The speech region corresponds to the period when a spike in the
accelerometer data is observed" (Section III-B2). The detector:

1. removes the static (gravity) offset;
2. optionally high-passes the trace — 8 Hz in the handheld/ear-speaker
   setting to suppress hand/body motion (used for *detection only*; the
   feature path always sees the raw region);
3. computes a short-window RMS envelope;
4. estimates the noise floor from a low percentile of that envelope and
   thresholds with hysteresis;
5. merges nearby regions and drops too-short ones.

The paper reports ~90 % region-extraction rate table-top and >=45 %
for the ear speaker; :func:`detection_rate` scores a detector against a
session's ground-truth playback log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dsp.envelope import moving_rms
from repro.dsp.filters import cached_butter_highpass, highpass, sosfilt_zero_phase

__all__ = ["Region", "RegionDetector", "detection_rate"]


def _hysteresis_spans(
    envelope: np.ndarray, threshold_on: float, threshold_off: float
) -> List[Tuple[int, int]]:
    """Hysteresis thresholding as a transition walk.

    Equivalent to the per-sample loop (enter when ``value >=
    threshold_on`` while inactive, leave when ``value < threshold_off``
    while active, re-entry possible from the next sample) but walks only
    the precomputed crossing indices.
    """
    spans: List[Tuple[int, int]] = []
    on_idx = np.flatnonzero(envelope >= threshold_on)
    off_idx = np.flatnonzero(envelope < threshold_off)
    pos = 0
    while True:
        k = int(np.searchsorted(on_idx, pos))
        if k == on_idx.size:
            break
        start = int(on_idx[k])
        j = int(np.searchsorted(off_idx, start + 1))
        if j == off_idx.size:
            spans.append((start, int(envelope.size)))
            break
        end = int(off_idx[j])
        spans.append((start, end))
        pos = end + 1
    return spans


@dataclass(frozen=True)
class Region:
    """A detected speech region, in samples and seconds."""

    start: int
    end: int
    fs: float

    @property
    def start_s(self) -> float:
        return self.start / self.fs

    @property
    def end_s(self) -> float:
        return self.end / self.fs

    @property
    def duration_s(self) -> float:
        return (self.end - self.start) / self.fs

    @property
    def center_s(self) -> float:
        return 0.5 * (self.start_s + self.end_s)

    def slice(self, trace: np.ndarray) -> np.ndarray:
        """Extract this region's raw samples from a trace."""
        return trace[self.start : self.end]


class RegionDetector:
    """Energy-spike speech-region detector.

    Parameters
    ----------
    highpass_hz:
        Detection-path high-pass cutoff (None = no filter, the table-top
        configuration; 8.0 = the paper's handheld configuration).
    envelope_window_s:
        RMS envelope window.
    threshold_factor:
        Region onset threshold as a multiple of the noise floor spread
        above the floor.
    release_factor:
        Hysteresis release threshold (fraction of the onset threshold).
    min_duration_s:
        Minimum region length.
    merge_gap_s:
        Regions closer than this are merged.
    floor_percentile:
        Envelope percentile used as the noise-floor estimate.
    min_peak_ratio:
        Signal-presence gate: if the envelope's 99th percentile is below
        ``min_peak_ratio`` times its median, the trace is treated as
        containing no speech at all (a pure noise floor is unimodal and
        tight; speech bursts stretch the upper tail).
    """

    def __init__(
        self,
        highpass_hz: Optional[float] = None,
        envelope_window_s: float = 0.05,
        threshold_factor: float = 3.0,
        release_factor: float = 0.55,
        min_duration_s: float = 0.08,
        merge_gap_s: float = 0.12,
        floor_percentile: float = 25.0,
        min_peak_ratio: float = 2.0,
    ):
        if highpass_hz is not None and highpass_hz <= 0:
            raise ValueError("highpass_hz must be positive or None")
        if threshold_factor <= 0:
            raise ValueError("threshold_factor must be positive")
        if not 0 < release_factor <= 1:
            raise ValueError("release_factor must be in (0, 1]")
        self.highpass_hz = highpass_hz
        self.envelope_window_s = float(envelope_window_s)
        self.threshold_factor = float(threshold_factor)
        self.release_factor = float(release_factor)
        self.min_duration_s = float(min_duration_s)
        self.merge_gap_s = float(merge_gap_s)
        self.floor_percentile = float(floor_percentile)
        self.min_peak_ratio = float(min_peak_ratio)

    def detection_signal(self, trace: np.ndarray, fs: float) -> np.ndarray:
        """The envelope the thresholds operate on (exposed for Fig. 4)."""
        trace = np.asarray(trace, dtype=float)
        if trace.ndim != 1:
            raise ValueError(f"expected a 1-D trace, got shape {trace.shape}")
        x = trace - np.median(trace)  # remove gravity/DC
        if self.highpass_hz is not None and trace.size > 32:
            x = highpass(x, self.highpass_hz, fs, order=4)
        window = max(3, int(round(self.envelope_window_s * fs)))
        return moving_rms(x, window)

    @staticmethod
    def _otsu_threshold(log_env: np.ndarray) -> float:
        """Otsu's between-class-variance threshold on the log envelope.

        The log envelope of a recording is bimodal — a noise-floor mode
        and a speech mode — so Otsu's criterion finds the valley without
        assuming how much of the trace is speech.
        """
        lo, hi = float(log_env.min()), float(log_env.max())
        if hi - lo < 1e-9:
            return hi
        hist, edges = np.histogram(log_env, bins=64, range=(lo, hi))
        centers = 0.5 * (edges[:-1] + edges[1:])
        weights = hist / hist.sum()
        w0 = np.cumsum(weights)
        w1 = 1.0 - w0
        mu_all = np.sum(weights * centers)
        mu0_num = np.cumsum(weights * centers)
        with np.errstate(divide="ignore", invalid="ignore"):
            mu0 = mu0_num / w0
            mu1 = (mu_all - mu0_num) / w1
            between = w0 * w1 * (mu0 - mu1) ** 2
        between[~np.isfinite(between)] = 0.0
        return float(centers[int(np.argmax(between))])

    def _regions_from_envelope(
        self, envelope: np.ndarray, fs: float
    ) -> List[Region]:
        """Threshold an RMS envelope into regions (shared scalar/batched core)."""
        if envelope.size == 0:
            return []
        # One fused percentile call: numpy partitions the envelope once
        # for all four ranks, with each value bit-equal to a separate call.
        median, peak, floor, floor_hi = np.percentile(
            envelope,
            [50.0, 99.0, self.floor_percentile, self.floor_percentile + 10.0],
        )
        # Signal-presence gate: a speech-free trace has a tight, unimodal
        # envelope distribution; thresholding it would hallucinate regions.
        if peak < self.min_peak_ratio * max(median, 1e-12):
            return []
        # Noise-floor statistics from the quiet end of the envelope.
        noise_spread = max(floor_hi - floor, 1e-9)
        guard = floor + self.threshold_factor * noise_spread
        # Bimodal split between the noise and speech envelope modes.
        log_env = np.log10(np.maximum(envelope, 1e-12))
        otsu = 10.0 ** self._otsu_threshold(log_env)
        threshold_on = max(otsu, guard)
        threshold_off = max(
            floor + self.release_factor * (threshold_on - floor), floor
        )

        regions = _hysteresis_spans(envelope, threshold_on, threshold_off)

        # Merge regions separated by small gaps.
        merge_gap = int(round(self.merge_gap_s * fs))
        merged: List[Tuple[int, int]] = []
        for s, e in regions:
            if merged and s - merged[-1][1] <= merge_gap:
                merged[-1] = (merged[-1][0], e)
            else:
                merged.append((s, e))

        min_len = int(round(self.min_duration_s * fs))
        return [
            Region(start=s, end=e, fs=fs) for s, e in merged if e - s >= min_len
        ]

    def detect(self, trace: np.ndarray, fs: float) -> List[Region]:
        """Detect speech regions in an accelerometer trace."""
        if fs <= 0:
            raise ValueError("fs must be positive")
        envelope = self.detection_signal(trace, fs)
        return self._regions_from_envelope(envelope, fs)

    def _detection_signals(
        self, traces: Sequence[np.ndarray], fs: float
    ) -> List[np.ndarray]:
        """Batched :meth:`detection_signal`, byte-identical per row.

        DC removal and the optional zero-phase high-pass stay per row
        (``sosfiltfilt`` edge padding is not pad-safe; the filter design
        is cached), then the RMS envelopes of every row come from one
        cumulative sum over the padded ``x**2`` stack — a zero-padded
        row's cumsum prefix is exactly the unpadded cumsum, so the
        per-row window gathers reproduce ``moving_rms`` bit for bit.
        """
        rows = [np.asarray(t, dtype=float) for t in traces]
        for i, trace in enumerate(rows):
            if trace.ndim != 1:
                raise ValueError(f"trace {i} must be 1-D, got shape {trace.shape}")
        window = max(3, int(round(self.envelope_window_s * fs)))
        filtered: List[np.ndarray] = []
        for trace in rows:
            x = trace - np.median(trace)
            if self.highpass_hz is not None and trace.size > 32:
                sos = cached_butter_highpass(self.highpass_hz, fs, order=4)
                x = sosfilt_zero_phase(sos, x)
            filtered.append(x)
        envelopes: List[Optional[np.ndarray]] = [None] * len(rows)
        # Rows too short for the cumsum window path keep the scalar code
        # (moving_average's window-1 fallback is a straight copy).
        big = [i for i in range(len(rows)) if filtered[i].size >= 2]
        for i in range(len(rows)):
            if filtered[i].size < 2:
                envelopes[i] = moving_rms(filtered[i], window)
        if big:
            lengths = np.array([filtered[i].size for i in big], dtype=np.int64)
            stack = np.zeros((len(big), int(lengths.max())))
            for r, i in enumerate(big):
                stack[r, : lengths[r]] = filtered[i] ** 2
            csum = np.concatenate(
                [np.zeros((len(big), 1)), np.cumsum(stack, axis=-1)], axis=1
            )
            for r, i in enumerate(big):
                n = int(lengths[r])
                w = min(window, n)
                half_left = w // 2
                half_right = w - half_left - 1
                idx = np.arange(n)
                lo = np.maximum(idx - half_left, 0)
                hi = np.minimum(idx + half_right + 1, n)
                envelopes[i] = np.sqrt((csum[r, hi] - csum[r, lo]) / (hi - lo))
        return envelopes  # type: ignore[return-value]

    def detect_batch(
        self, traces: Sequence[np.ndarray], fs: float
    ) -> List[List[Region]]:
        """Batched :meth:`detect` over a ragged list of traces.

        Region boundaries are discrete, so this path always runs in
        double precision; every row's regions match the scalar call
        exactly regardless of batch composition.
        """
        if fs <= 0:
            raise ValueError("fs must be positive")
        envelopes = self._detection_signals(traces, fs)
        return [self._regions_from_envelope(env, fs) for env in envelopes]

    @classmethod
    def for_setting(cls, placement: str) -> "RegionDetector":
        """Paper-default detector for a placement.

        Table-top: no filter; handheld: 8 Hz high-pass on the detection
        path (Section III-B2) and a more permissive threshold because
        the ear-speaker signal is weak.
        """
        key = str(placement).lower()
        if "hand" in key:
            return cls(
                highpass_hz=8.0,
                threshold_factor=2.2,
                release_factor=0.6,
                min_duration_s=0.15,
                merge_gap_s=0.30,
            )
        return cls(highpass_hz=None)


def detection_rate(
    regions: Sequence[Region],
    truth_intervals: Sequence[Tuple[float, float]],
) -> float:
    """Fraction of ground-truth playback intervals hit by >=1 detection.

    An interval counts as extracted when some detected region *overlaps*
    it with positive duration, i.e. ``region.start_s < t_end`` and
    ``region.end_s > t_start`` — the paper's "extraction rate". A region
    that merely touches an interval's edge (zero-length intersection)
    does not count; a region's centre falling outside the interval is
    fine as long as the region itself overlaps it.
    """
    if not truth_intervals:
        raise ValueError("need at least one ground-truth interval")
    hits = 0
    for t_start, t_end in truth_intervals:
        for region in regions:
            if region.start_s < t_end and region.end_s > t_start:
                hits += 1
                break
    return hits / len(truth_intervals)
