"""Parallel collection engine: work items, executors, caching, stats.

The collection stage — render each utterance, transmit it through the
vibration channel, detect speech regions, extract the Table II features
and the 32x32 spectrogram image — dominates the cost of regenerating a
paper table, and the per-utterance (table-top) protocol is embarrassingly
parallel. This module turns that loop into an engine:

- **Deterministic work items**: every utterance gets its *own* RNG
  derived from ``(seed, item index)``, so the collected datasets are
  byte-identical at any worker count and under any executor.
- **Pluggable executors**: ``serial`` (the reference path), ``thread``
  and ``process``; selected by name or defaulted from ``n_jobs``.
- **Single-pass collection**: :func:`collect_datasets` produces the
  :class:`FeatureDataset` *and* the :class:`SpectrogramDataset` from one
  shared render→transmit→detect pass, instead of paying collection twice
  when a table needs both (every ``cnn_spectrogram`` row).
- **Collection cache**: :class:`CollectionCache` keys a finished pass by
  ``(corpus, device, placement, rate, seed, …)`` so a whole paper table
  performs each collection exactly once; an optional on-disk store
  persists passes across runs (see :mod:`repro.eval.io`).
- **Instrumentation**: every stage runs inside a :mod:`repro.obs` span
  (``render`` → ``transmit`` → ``detect`` → ``product`` under a
  ``collect`` pass span), so timings survive exceptions and land in the
  process-wide metrics registry with per-scenario labels.
  :class:`CollectionStats` remains the backward-compatible summary
  object: per-pass records are built from the span durations, and
  :func:`global_stats` is a thin view over the registry.

The continuous-session (handheld) protocol is inherently sequential —
the hand-motion process is one continuous waveform across the session —
so there the engine parallelises the utterance *rendering* and keeps the
transmit chain serial, preserving the exact numerics of
:func:`repro.phone.recording.record_session`.
"""

from __future__ import annotations

import copy
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attack.features import (
    FEATURE_NAMES,
    extract_features,
    extract_features_batch,
)
from repro.attack.labeling import LABELING_VERSION, label_regions, match_regions
from repro.attack.regions import Region, RegionDetector
from repro.attack.specimages import (
    region_spectrogram_image,
    region_spectrogram_images_batch,
)
from repro.batch import batch_dtype
from repro.datasets.base import Corpus, UtteranceSpec, resolve_task
from repro.dsp.filters import cached_butter_highpass, sosfilt_zero_phase
from repro.obs import MetricsRegistry, metrics, trace, tracer
from repro.parallel import EXECUTOR_NAMES, resolve_executor
from repro.parallel import run_tasks as _run_tasks_generic
from repro.phone.channel import Placement, VibrationChannel

__all__ = [
    "EXECUTOR_NAMES",
    "PIPELINES",
    "DEFAULT_PIPELINE",
    "DEFAULT_BATCH_CHUNK",
    "CollectionStats",
    "FeatureDataset",
    "SpectrogramDataset",
    "CollectionResult",
    "CollectionCache",
    "collection_key",
    "collect_datasets",
    "collect_per_utterance_products",
    "iter_region_samples",
    "default_cache",
    "global_stats",
    "reset_global_stats",
    "run_tasks",
]

#: Seconds of silence padded around each per-utterance playback so the
#: region detector sees the noise floor (matches the paper's protocol).
_UTTERANCE_PAD_S = 0.3

#: Collection pipelines: ``batched`` stacks utterances into chunks and runs
#: each stage across the batch axis (the default; byte-identical to the
#: reference under the float64 batch policy); ``per_utterance`` is the
#: original one-utterance-at-a-time reference path.
PIPELINES: Tuple[str, ...] = ("batched", "per_utterance")
DEFAULT_PIPELINE = "batched"

#: Utterances per stacked batch chunk. Chunking bounds peak memory and
#: gives the process executor work units; results are identical at any
#: chunk size.
DEFAULT_BATCH_CHUNK = 32


def _resolve_pipeline(pipeline: Optional[str]) -> str:
    name = str(pipeline or DEFAULT_PIPELINE).replace("-", "_")
    if name not in PIPELINES:
        raise ValueError(f"pipeline must be one of {PIPELINES}, got {pipeline!r}")
    return name


# ---------------------------------------------------------------------------
# Instrumentation
# ---------------------------------------------------------------------------


@dataclass
class CollectionStats:
    """Counters and stage timers for one (or many) collection passes.

    Stage timers are *summed across workers*, so with ``n_jobs > 1`` they
    can exceed ``total_s`` (which is wall time). ``cache_hits`` counts
    whole passes served from a :class:`CollectionCache`.
    """

    renders: int = 0
    transmits: int = 0
    regions_detected: int = 0
    regions_used: int = 0
    n_played: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    render_s: float = 0.0
    transmit_s: float = 0.0
    detect_s: float = 0.0
    product_s: float = 0.0
    total_s: float = 0.0
    n_jobs: int = 1
    executor: str = "serial"

    def add(self, other: "CollectionStats") -> None:
        """Accumulate another stats record into this one (in place)."""
        for name in _COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in _TIMER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        # An aggregate reports the widest pool it saw (cache-hit records
        # carry the defaults and must not mask a parallel pass).
        if other.n_jobs > self.n_jobs:
            self.n_jobs = other.n_jobs
            self.executor = other.executor

    def summary(self) -> str:
        """One-line human-readable account of the pass."""
        return (
            f"transmits={self.transmits} renders={self.renders} "
            f"regions={self.regions_used}/{self.regions_detected} "
            f"cache={self.cache_hits}h/{self.cache_misses}m "
            f"[render {self.render_s:.2f}s, transmit {self.transmit_s:.2f}s, "
            f"detect {self.detect_s:.2f}s, featurize {self.product_s:.2f}s; "
            f"wall {self.total_s:.2f}s, {self.executor} x{self.n_jobs}]"
        )

    # -- registry view ------------------------------------------------------
    def to_registry(self, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """Express this record as observability metrics.

        Counter fields become counters, stage timers become one timer
        observation each (``total_s`` under the ``collect`` timer), and
        the worker pool becomes the high-water ``engine.n_jobs`` gauge —
        so :meth:`add` on two records agrees with
        :meth:`MetricsRegistry.merge` on their registries.
        """
        registry = registry if registry is not None else MetricsRegistry()
        for name in _COUNTER_FIELDS:
            value = getattr(self, name)
            if value:
                registry.count(name, value)
        for name, timer in _TIMER_FIELDS.items():
            value = getattr(self, name)
            if value:
                registry.observe(timer, value)
        registry.gauge("engine.n_jobs", self.n_jobs, executor=self.executor)
        return registry

    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "CollectionStats":
        """Thin :class:`CollectionStats` view over a metrics registry."""
        stats = cls()
        for name in _COUNTER_FIELDS:
            setattr(stats, name, int(registry.counter_total(name)))
        for name, timer in _TIMER_FIELDS.items():
            setattr(stats, name, registry.timer_total(timer).total_s)
        pools = [
            (value, dict(labels).get("executor", "serial"))
            for (gauge, labels), value in registry.snapshot()["gauges"].items()
            if gauge == "engine.n_jobs"
        ]
        if pools:
            width, executor = max(pools, key=lambda p: (p[0], p[1]))
            stats.n_jobs = int(width)
            stats.executor = executor
        return stats


#: CollectionStats counter field -> registry counter of the same name.
_COUNTER_FIELDS: Tuple[str, ...] = (
    "renders", "transmits", "regions_detected", "regions_used",
    "n_played", "cache_hits", "cache_misses",
)

#: CollectionStats timer field -> registry/span timer name.
_TIMER_FIELDS: Dict[str, str] = {
    "render_s": "render",
    "transmit_s": "transmit",
    "detect_s": "detect",
    "product_s": "product",
    "total_s": "collect",
}


def global_stats() -> CollectionStats:
    """The process-wide collection counters.

    A view assembled from the process-wide metrics registry: counters
    come from :func:`_publish`, stage timers from the engine's spans —
    which record on exception paths too, so time spent in a failing
    pass is still accounted.
    """
    return CollectionStats.from_registry(metrics())


def reset_global_stats() -> None:
    """Zero the process-wide collection counters (the metrics registry)."""
    metrics().clear()


def _publish(stats: CollectionStats) -> None:
    """Mirror a finished pass's counters into the process-wide registry.

    Only the *counter* fields are published: stage timers already
    reached the registry through span exits (or, for process-pool runs,
    through the aggregate spans recorded by the parent), so publishing
    them again would double-count.
    """
    registry = metrics()
    for name in _COUNTER_FIELDS:
        value = getattr(stats, name)
        if value:
            registry.count(name, value)
    registry.gauge("engine.n_jobs", stats.n_jobs, executor=stats.executor)


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------


@dataclass
class FeatureDataset:
    """Extracted Table II features with labels and provenance."""

    X: np.ndarray
    y: np.ndarray
    feature_names: Tuple[str, ...] = FEATURE_NAMES
    fs: float = 0.0
    n_played: int = 0
    stats: Optional[CollectionStats] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.X.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"X has {self.X.shape[0]} rows but y has {self.y.shape[0]}"
            )

    @property
    def extraction_rate(self) -> float:
        """Fraction of played utterances that yielded a usable region."""
        return self.X.shape[0] / self.n_played if self.n_played else 0.0


@dataclass
class SpectrogramDataset:
    """Region spectrogram images with labels."""

    images: np.ndarray  # (n, size, size, 1)
    y: np.ndarray
    fs: float = 0.0
    n_played: int = 0
    stats: Optional[CollectionStats] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.images.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"images has {self.images.shape[0]} rows but y has {self.y.shape[0]}"
            )

    @property
    def extraction_rate(self) -> float:
        return self.images.shape[0] / self.n_played if self.n_played else 0.0


@dataclass
class CollectionResult:
    """Both datasets from one shared render→transmit→detect pass."""

    features: FeatureDataset
    spectrograms: SpectrogramDataset
    stats: CollectionStats

    def __iter__(self):
        yield self.features
        yield self.spectrograms


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------

# Per-worker context for the process executor; installed once per worker
# via the pool initializer so the corpus/channel are pickled once, not
# once per work item.
_WORKER_CONTEXT: Optional["_PassConfig"] = None


def _init_worker(config: "_PassConfig") -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = config


def _process_entry(index_and_spec: Tuple[int, UtteranceSpec]):
    index, spec = index_and_spec
    return _run_work_item(_WORKER_CONTEXT, index, spec)


def run_tasks(
    fn: Callable,
    items: Sequence,
    n_jobs: int = 1,
    executor: Optional[str] = None,
) -> List:
    """Run ``fn`` over ``items`` with the chosen executor, preserving order.

    Thin wrapper over :func:`repro.parallel.run_tasks` that keeps the
    engine's historical restriction: the ``process`` executor runs
    through :func:`collect_datasets` (which ships the pass config via a
    pool initializer), not through this helper.
    """
    if _resolve_executor(n_jobs, executor) == "process":
        raise ValueError(
            "the process executor runs through collect_datasets(); "
            "run_tasks() only supports 'serial' and 'thread'"
        )
    return _run_tasks_generic(fn, items, n_jobs=n_jobs, executor=executor)


#: Executor-name resolution now lives in :mod:`repro.parallel` (shared
#: with the training/evaluation engine); kept under the old name for the
#: engine's internal call sites.
_resolve_executor = resolve_executor


# ---------------------------------------------------------------------------
# Work items (per-utterance protocol)
# ---------------------------------------------------------------------------


@dataclass
class _PassConfig:
    """Everything a worker needs to process one utterance work item."""

    corpus: Corpus
    channel: VibrationChannel
    detector: RegionDetector
    seed: int
    size: int
    feature_highpass_hz: Optional[float]
    # OS-level defense postprocess applied to every sensor trace before
    # detection. The channel stored above is already the *defended*
    # channel (defense.apply ran in collect_datasets), so rate-cap
    # stages are no-ops here and the stream rate equals accel_fs.
    defense: Optional[object] = None


def _item_rng(seed: int, index: int) -> np.random.Generator:
    """The work item's own RNG: identical at any worker count."""
    return np.random.default_rng([0x454D4F, seed & 0xFFFFFFFF, index])


def _item_channel(config: _PassConfig, index: int) -> VibrationChannel:
    """A channel safe for this work item.

    Table-top transmission is stateless given an explicit RNG, so the
    shared channel can be used from any worker. Handheld transmission
    advances the motion process, so each item gets its own reseeded copy
    — which is also what makes per-utterance handheld collection
    deterministic under parallelism.
    """
    if config.channel.placement is not Placement.HANDHELD:
        return config.channel
    channel = copy.deepcopy(config.channel)
    channel.reseed(int(config.seed & 0xFFFFFF) * 1000003 + index)
    return channel


def _transmit_and_detect(config: _PassConfig, index: int, spec: UtteranceSpec):
    """Render→transmit→detect one utterance work item.

    Returns ``(trace, best_region|None, stats)``; the region is None when
    the detector missed the utterance (the paper's dropped ~10 %).
    """
    stats = CollectionStats()
    rng = _item_rng(config.seed, index)
    corpus, detector = config.corpus, config.detector

    with trace("render") as span:
        audio = corpus.render(spec)
    stats.renders += 1
    stats.render_s += span.duration_s

    # Pad with silence so the detector sees the noise floor.
    pad = np.zeros(int(_UTTERANCE_PAD_S * corpus.audio_fs))
    audio = np.concatenate([pad, audio, pad])

    channel = _item_channel(config, index)
    with trace("transmit") as span:
        signal = channel.transmit(audio, corpus.audio_fs, rng)
    stats.transmits += 1
    stats.transmit_s += span.duration_s

    if config.defense is not None:
        signal = config.defense.postprocess(signal, channel.accel_fs)

    with trace("detect") as span:
        regions = detector.detect(signal, channel.accel_fs)
    stats.detect_s += span.duration_s
    stats.regions_detected += len(regions)
    if not regions:
        return signal, None, stats

    # One utterance => take the most energetic region.
    best = max(
        regions,
        key=lambda r: float(np.sum((r.slice(signal) - np.mean(r.slice(signal))) ** 2)),
    )
    stats.regions_used += 1
    return signal, best, stats


def _run_work_item(config: _PassConfig, index: int, spec: UtteranceSpec):
    """One utterance through the full pipeline.

    Returns ``(index, label|None, features|None, image|None, stats)``.
    """
    signal, best, stats = _transmit_and_detect(config, index, spec)
    if best is None:
        return index, None, None, None, stats

    with trace("product") as span:
        features = _feature_row(
            signal, best, config.channel.accel_fs, config.feature_highpass_hz
        )
        image = _image_product(signal, best, config.size)
    stats.product_s += span.duration_s
    return index, spec.emotion, features, image, stats


def _feature_row(
    signal: np.ndarray,
    region: Region,
    fs: float,
    feature_highpass_hz: Optional[float],
) -> Optional[np.ndarray]:
    """Table II feature vector for one region (None if too short)."""
    samples = region.slice(signal)
    if samples.size < 4:
        return None
    if feature_highpass_hz is not None and samples.size > 32:
        from repro.dsp.filters import highpass

        samples = highpass(samples, feature_highpass_hz, fs)
    return extract_features(samples, fs)


def _image_product(
    signal: np.ndarray, region: Region, size: int
) -> Optional[np.ndarray]:
    """Spectrogram image for one region (None if too short)."""
    if region.end - region.start < 8:
        return None
    return region_spectrogram_image(signal, region, size=size)


def _collect_per_utterance(
    config: _PassConfig,
    specs: List[UtteranceSpec],
    n_jobs: int,
    executor: str,
) -> Tuple[List, CollectionStats]:
    """Fan the per-utterance work items out over the chosen executor."""
    stats = CollectionStats(n_jobs=max(1, int(n_jobs)), executor=executor)
    indexed = list(enumerate(specs))
    ran_in_pool = executor == "process" and len(indexed) > 1 and n_jobs > 1
    if ran_in_pool:
        with ProcessPoolExecutor(
            max_workers=max(1, int(n_jobs)),
            initializer=_init_worker,
            initargs=(config,),
        ) as pool:
            results = list(pool.map(_process_entry, indexed, chunksize=4))
    else:
        def run_one(pair):
            return _run_work_item(config, pair[0], pair[1])

        results = run_tasks(
            run_one,
            indexed,
            n_jobs=n_jobs,
            executor="serial" if executor == "process" else executor,
        )
    products = []
    for result in results:
        index, label, features, image, item_stats = result
        stats.add(item_stats)
        if label is not None:
            products.append((index, label, features, image))
    if ran_in_pool:
        # Worker-process spans die with their workers; reconstruct the
        # stage timings as aggregate spans so the parent's trace and
        # registry still account for them (exactly once).
        tr = tracer()
        for field_name, span_name in _TIMER_FIELDS.items():
            if span_name == "collect":
                continue
            tr.record(
                span_name,
                getattr(stats, field_name),
                aggregated="worker-sum",
                n_jobs=stats.n_jobs,
            )
    return products, stats


# ---------------------------------------------------------------------------
# Batched pipeline (stacked utterance chunks)
# ---------------------------------------------------------------------------


def _process_batch_entry(items: List[Tuple[int, UtteranceSpec]]):
    return _run_batch_chunk(_WORKER_CONTEXT, items)


def _run_batch_chunk_fast(config: _PassConfig, items: Sequence[Tuple[int, UtteranceSpec]]):
    """One stacked chunk through every batched stage.

    Raises on any per-row pathology (NaN audio poisoning the shared
    detector statistics, a corpus that rejects a spec, …);
    :func:`_run_batch_chunk` catches and degrades to per-row isolation.
    """
    stats = CollectionStats()
    corpus, detector = config.corpus, config.detector
    indices = [index for index, _ in items]
    specs = [spec for _, spec in items]
    rngs = [_item_rng(config.seed, index) for index in indices]
    n = len(items)

    render_batch = getattr(corpus, "render_batch", None)
    with trace("render", n=n) as span:
        if render_batch is not None:
            audios = render_batch(specs)
        else:
            audios = [corpus.render(spec) for spec in specs]
    stats.renders += n
    stats.render_s += span.duration_s

    # Pad with silence so the detector sees the noise floor.
    pad = np.zeros(int(_UTTERANCE_PAD_S * corpus.audio_fs))
    audios = [np.concatenate([pad, audio, pad]) for audio in audios]

    with trace("transmit", n=n) as span:
        if config.channel.placement is Placement.HANDHELD:
            # Handheld motion is stateful: per-item reseeded clones keep
            # the chunked run identical to the per-utterance reference.
            signals = [
                _item_channel(config, index).transmit(audio, corpus.audio_fs, rng)
                for index, audio, rng in zip(indices, audios, rngs)
            ]
        else:
            signals = config.channel.transmit_batch(audios, corpus.audio_fs, rngs)
    stats.transmits += n
    stats.transmit_s += span.duration_s

    fs = config.channel.accel_fs
    if config.defense is not None:
        # Per-row postprocess keeps the batched path byte-identical to
        # the per-utterance reference (the defense sees exactly the same
        # unpadded trace either way).
        signals = [config.defense.postprocess(signal, fs) for signal in signals]
    detect_batch = getattr(detector, "detect_batch", None)
    with trace("detect", n=n) as span:
        if detect_batch is not None:
            regions_list = detect_batch(signals, fs)
        else:
            regions_list = [detector.detect(signal, fs) for signal in signals]
    stats.detect_s += span.duration_s

    bests: List[Optional[Region]] = []
    for signal, regions in zip(signals, regions_list):
        stats.regions_detected += len(regions)
        if not regions:
            bests.append(None)
            continue
        best = max(
            regions,
            key=lambda r: float(
                np.sum((r.slice(signal) - np.mean(r.slice(signal))) ** 2)
            ),
        )
        stats.regions_used += 1
        bests.append(best)

    dtype = batch_dtype()
    with trace("product", n=n) as span:
        hit = [k for k in range(n) if bests[k] is not None]
        feat_rows, feat_pos = [], []
        for k in hit:
            samples = bests[k].slice(signals[k])
            if samples.size < 4:
                continue
            if config.feature_highpass_hz is not None and samples.size > 32:
                sos = cached_butter_highpass(config.feature_highpass_hz, fs, order=4)
                samples = sosfilt_zero_phase(sos, samples)
            feat_rows.append(samples)
            feat_pos.append(k)
        features_by_row: Dict[int, np.ndarray] = {}
        if feat_rows:
            matrix = extract_features_batch(feat_rows, fs, dtype=dtype)
            for row_index, k in enumerate(feat_pos):
                features_by_row[k] = matrix[row_index]
        img_pos = [k for k in hit if bests[k].end - bests[k].start >= 8]
        images_by_row: Dict[int, np.ndarray] = {}
        if img_pos:
            images = region_spectrogram_images_batch(
                [signals[k] for k in img_pos],
                [bests[k] for k in img_pos],
                size=config.size,
                dtype=dtype,
            )
            for k, image in zip(img_pos, images):
                images_by_row[k] = image
    stats.product_s += span.duration_s

    rows: List[Tuple[int, Optional[str], Optional[np.ndarray], Optional[np.ndarray]]] = [
        (index, None, None, None) for index in indices
    ]
    for k in hit:
        rows[k] = (
            indices[k],
            specs[k].emotion,
            features_by_row.get(k),
            images_by_row.get(k),
        )
    return rows, stats


def _run_batch_chunk(config: _PassConfig, items: Sequence[Tuple[int, UtteranceSpec]]):
    """One chunk through the fast path, degrading to per-row isolation.

    If the stacked fast path raises — one poisoned utterance must not
    take down its batchmates — the chunk re-runs row by row through the
    per-utterance reference path; only the offending rows are dropped
    (counted under ``batch.rows_isolated``), every healthy row keeps its
    byte-identical product.
    """
    try:
        return _run_batch_chunk_fast(config, items)
    except Exception:
        metrics().count("batch.chunk_fallbacks")
    stats = CollectionStats()
    rows = []
    for index, spec in items:
        try:
            row_index, label, features, image, item_stats = _run_work_item(
                config, index, spec
            )
        except Exception:
            metrics().count("batch.rows_isolated")
            rows.append((index, None, None, None))
            continue
        stats.add(item_stats)
        rows.append((row_index, label, features, image))
    return rows, stats


def _collect_batched(
    config: _PassConfig,
    specs: List[UtteranceSpec],
    n_jobs: int,
    executor: str,
    batch_chunk: int,
) -> Tuple[List, CollectionStats]:
    """Fan stacked utterance chunks out over the chosen executor."""
    stats = CollectionStats(n_jobs=max(1, int(n_jobs)), executor=executor)
    indexed = list(enumerate(specs))
    chunk = max(1, int(batch_chunk))
    chunks = [indexed[i : i + chunk] for i in range(0, len(indexed), chunk)]
    ran_in_pool = executor == "process" and len(chunks) > 1 and n_jobs > 1
    if ran_in_pool:
        with ProcessPoolExecutor(
            max_workers=max(1, int(n_jobs)),
            initializer=_init_worker,
            initargs=(config,),
        ) as pool:
            outs = list(pool.map(_process_batch_entry, chunks, chunksize=1))
    else:
        def run_chunk(chunk_items):
            return _run_batch_chunk(config, chunk_items)

        outs = run_tasks(
            run_chunk,
            chunks,
            n_jobs=n_jobs,
            executor="serial" if executor == "process" else executor,
        )
    products = []
    for rows, chunk_stats in outs:
        stats.add(chunk_stats)
        for index, label, features, image in rows:
            if label is not None:
                products.append((index, label, features, image))
    if ran_in_pool:
        # Worker-process spans die with their workers; reconstruct the
        # stage timings as aggregate spans (exactly once), as the
        # per-utterance pool path does.
        tr = tracer()
        for field_name, span_name in _TIMER_FIELDS.items():
            if span_name == "collect":
                continue
            tr.record(
                span_name,
                getattr(stats, field_name),
                aggregated="worker-sum",
                n_jobs=stats.n_jobs,
            )
    return products, stats


def collect_per_utterance_products(
    corpus: Corpus,
    channel: VibrationChannel,
    specs: Optional[Sequence[UtteranceSpec]] = None,
    detector: Optional[RegionDetector] = None,
    seed: int = 0,
    size: int = 32,
    feature_highpass_hz: Optional[float] = None,
    n_jobs: int = 1,
    executor: Optional[str] = None,
) -> Tuple[List[Tuple[int, str, Optional[np.ndarray], Optional[np.ndarray]]], CollectionStats]:
    """Per-utterance work items with spec provenance.

    Returns ``(products, stats)`` where each product is
    ``(spec_index, label, features|None, image|None)`` — the building
    block for consumers that need row→utterance alignment (e.g. the
    Spearphone speaker/gender baseline).
    """
    detector = detector or _default_detector(channel)
    specs = list(specs if specs is not None else corpus.specs)
    executor_name = _resolve_executor(n_jobs, executor)
    config = _PassConfig(
        corpus=corpus,
        channel=channel,
        detector=detector,
        seed=int(seed),
        size=int(size),
        feature_highpass_hz=feature_highpass_hz,
    )
    with trace(
        "collect",
        corpus=corpus.name,
        device=channel.device.name,
        placement=channel.placement.value,
        executor=executor_name,
        n_jobs=max(1, int(n_jobs)),
        api="products",
    ) as span:
        products, stats = _collect_per_utterance(
            config, specs, n_jobs, executor_name
        )
        stats.n_played = len(specs)
        stats.total_s = span.elapsed()
        _publish(stats)
    return products, stats


def iter_region_samples(
    corpus: Corpus,
    channel: VibrationChannel,
    specs: Optional[Sequence[UtteranceSpec]] = None,
    detector: Optional[RegionDetector] = None,
    continuous: Optional[bool] = None,
    seed: int = 0,
):
    """Yield ``(label, region, trace)`` triples for every usable region.

    Serial generator over the engine's deterministic work items — the
    raw-material path for consumers that need region *samples* rather
    than finished features/images (e.g. data augmentation).
    """
    detector = detector or _default_detector(channel)
    if continuous is None:
        continuous = channel.placement is Placement.HANDHELD
    specs = list(specs if specs is not None else corpus.specs)

    if continuous:
        from repro.phone.recording import record_session

        session = record_session(corpus, channel, specs=specs, seed=seed)
        regions = detector.detect(session.trace, session.fs)
        for region, label in label_regions(regions, session.events):
            yield label, region, session.trace
        return

    config = _PassConfig(
        corpus=corpus,
        channel=channel,
        detector=detector,
        seed=int(seed),
        size=32,
        feature_highpass_hz=None,
    )
    for index, spec in enumerate(specs):
        signal, best, _stats = _transmit_and_detect(config, index, spec)
        if best is not None:
            yield spec.emotion, best, signal


# ---------------------------------------------------------------------------
# Continuous-session protocol
# ---------------------------------------------------------------------------


def _collect_continuous(
    config: _PassConfig,
    specs: List[UtteranceSpec],
    n_jobs: int,
    executor: str,
) -> Tuple[List, CollectionStats]:
    """One continuous recording session, labelled from the playback log.

    The transmit chain is inherently serial (the hand-motion process is
    continuous across the session), so parallelism is applied to the
    utterance rendering only; the session numerics are identical to a
    fully serial run.
    """
    from repro.phone.recording import record_session

    stats = CollectionStats(n_jobs=max(1, int(n_jobs)), executor=executor)

    # Pre-render in parallel; the session then looks waveforms up.
    render_executor = "serial" if executor == "process" else executor
    with trace("render", n=len(specs), metric_labels={}) as span:
        waves = run_tasks(
            config.corpus.render, specs, n_jobs=n_jobs, executor=render_executor
        )
    rendered: Dict[UtteranceSpec, np.ndarray] = dict(zip(specs, waves))
    stats.renders += len(specs)
    stats.render_s += span.duration_s

    with trace("transmit", continuous=True, metric_labels={}) as span:
        session = record_session(
            config.corpus,
            config.channel,
            specs=specs,
            seed=config.seed,
            renderer=rendered.__getitem__,
        )
    # record_session transmits a leading gap, then wave+gap per utterance.
    stats.transmits += 1 + 2 * len(specs)
    stats.transmit_s += span.duration_s

    session_trace = session.trace
    if config.defense is not None:
        # The whole recorded session passes through the OS boundary once;
        # the defended channel's rate already satisfies any cap, so the
        # stream rate is unchanged (see _PassConfig.defense).
        session_trace = config.defense.postprocess(session_trace, session.fs)

    with trace("detect", metric_labels={}) as span:
        regions = config.detector.detect(session_trace, session.fs)
    stats.detect_s += span.duration_s
    stats.regions_detected += len(regions)

    with trace("product", metric_labels={}) as span:
        products = []
        # Product rows carry the matched playback *event* (not just its
        # emotion string) so a cached pass can be re-labelled for any
        # task — the event records speaker/utterance identity too.
        for region, event in match_regions(regions, session.events):
            stats.regions_used += 1
            features = _feature_row(
                session_trace, region, session.fs, config.feature_highpass_hz
            )
            image = _image_product(session_trace, region, config.size)
            products.append((-1, event, features, image))
    stats.product_s += span.duration_s
    return products, stats


# ---------------------------------------------------------------------------
# Collection cache
# ---------------------------------------------------------------------------


def collection_key(
    corpus: Corpus,
    channel: VibrationChannel,
    specs: Sequence[UtteranceSpec],
    detector: RegionDetector,
    continuous: bool,
    seed: int,
    size: int = 32,
    feature_highpass_hz: Optional[float] = None,
    batch_dtype: Optional[str] = None,
    task: str = "emotion",
    defense=None,
) -> str:
    """Stable key for one collection pass.

    Readable prefix ``corpus-device-placement-rate-seed`` plus a digest
    over everything else that changes the numerics (spec list, device
    profile, detector configuration, sensor, environment, image size,
    feature-path filter, batch-policy compute dtype). Executor choice,
    worker count, pipeline and chunk size are deliberately excluded:
    they do not change the result. ``batch_dtype=None`` normalises to
    ``"float64"`` — the golden batched pipeline is byte-identical to the
    per-utterance reference, so the two share cache entries; a float32
    hot-path pass keys separately.

    The label ``task`` only affects which labels are attached, never the
    physics, so the default emotion task keys exactly as before this
    parameter existed — warm emotion entries (in memory and on disk)
    stay valid. Non-emotion tasks key separately, fingerprinting
    ``(task, LABELING_VERSION)`` so a labeling-policy bump invalidates
    only re-labelled entries.

    A defended pass fingerprints the whole defense stack — class and
    every constructor parameter, *including noise seeds* — so defended
    runs that differ only in an injected-noise seed never share an
    entry. ``defense=None`` keys exactly as before this parameter
    existed.
    """
    import hashlib
    import re

    task_name = resolve_task(task)
    parts = [
        corpus.name,
        corpus.audio_fs,
        corpus.expressiveness,
        corpus.variability,
        tuple(
            (s.utterance_id, s.speaker_id, s.emotion, s.seed,
             s.mean_syllables, s.carrier)
            for s in specs
        ),
        repr(channel.device),
        channel.mode.value,
        channel.placement.value,
        channel.accel_fs,
        channel.sensor,
        repr(channel.environment),
        tuple(sorted((k, v) for k, v in vars(detector).items())),
        bool(continuous),
        int(seed),
        int(size),
        feature_highpass_hz,
        str(batch_dtype) if batch_dtype is not None else "float64",
    ]
    infix = ""
    if task_name != "emotion":
        parts.append((task_name, LABELING_VERSION))
        infix = f"{task_name}-"
    if defense is not None:
        parts.append(("defense", defense.fingerprint()))
        label = re.sub(r"[^A-Za-z0-9_.+-]", "_", getattr(defense, "name", "defended"))
        infix = f"{label[:48]}-{infix}"
    digest = hashlib.sha256(repr(tuple(parts)).encode()).hexdigest()[:16]
    rate = f"{channel.accel_fs:g}"
    return (
        f"{corpus.name}-{channel.device.name}-{channel.placement.value}"
        f"-{rate}hz-s{int(seed)}-{infix}{digest}"
    )


class CollectionCache:
    """Registry of finished collection passes.

    In-memory by default; pass ``cache_dir`` to also persist each pass as
    an ``.npz`` bundle (via :mod:`repro.eval.io`) that later processes —
    or later runs — can reload instead of re-collecting.

    Alongside finished (already-labelled) results the cache keeps a
    memory-only *products* layer keyed by the task-independent base key:
    the raw ``(index, record, features, image)`` rows of a physical
    pass. A request for the same corpus under a different label task is
    served by re-labelling those rows — zero extra collection cost.
    """

    def __init__(self, cache_dir=None):
        self._entries: Dict[str, CollectionResult] = {}
        self._products: Dict[str, Tuple[List, int]] = {}
        self._lock = threading.Lock()
        self.cache_dir = None
        if cache_dir is not None:
            from pathlib import Path

            self.cache_dir = Path(cache_dir)
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries or self._disk_path(key) is not None

    def _disk_path(self, key: str):
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.npz"
        return path if path.exists() else None

    def lookup(self, key: str) -> Optional[CollectionResult]:
        """Return the cached pass for ``key``, or None."""
        with self._lock:
            result = self._entries.get(key)
        if result is not None:
            return result
        path = self._disk_path(key)
        if path is not None:
            from repro.eval.io import load_collection

            result = load_collection(path)
            with self._lock:
                self._entries[key] = result
            return result
        return None

    def store(self, key: str, result: CollectionResult) -> None:
        """Register a finished pass under ``key`` (and on disk if enabled)."""
        with self._lock:
            self._entries[key] = result
        if self.cache_dir is not None:
            from repro.eval.io import save_collection

            save_collection(result, self.cache_dir / f"{key}.npz")

    def store_products(self, base_key: str, products: List, n_played: int) -> None:
        """Keep a pass's raw product rows for later re-labelling.

        Memory-only by design: rows reference live record objects
        (specs indices / playback events) that the ``.npz`` bundle
        format does not carry.
        """
        with self._lock:
            self._products[base_key] = (list(products), int(n_played))

    def lookup_products(self, base_key: str) -> Optional[Tuple[List, int]]:
        """Raw ``(products, n_played)`` of a finished pass, or None."""
        with self._lock:
            return self._products.get(base_key)

    def clear(self) -> None:
        """Drop every in-memory entry (on-disk bundles are kept)."""
        with self._lock:
            self._entries.clear()
            self._products.clear()
        self.hits = 0
        self.misses = 0


#: The module-default cache shared by the suite, benchmarks and CLI.
DEFAULT_CACHE = CollectionCache()


def default_cache() -> CollectionCache:
    """The shared module-level collection cache."""
    return DEFAULT_CACHE


# ---------------------------------------------------------------------------
# The one-call collection API
# ---------------------------------------------------------------------------


def _default_detector(channel: VibrationChannel) -> RegionDetector:
    return RegionDetector.for_setting(channel.placement.value)


def _task_labelled_rows(
    products: Sequence[Tuple],
    specs: Sequence[UtteranceSpec],
    corpus: Corpus,
    task: str,
) -> List[Tuple[str, Optional[np.ndarray], Optional[np.ndarray]]]:
    """Attach the task's label to each product row.

    Per-utterance/batched rows carry ``index >= 0`` into ``specs`` and
    an emotion-string payload; continuous rows carry ``index == -1`` and
    the matched :class:`~repro.phone.recording.PlaybackEvent` as
    payload. Either record type exposes ``speaker_id``/``emotion``, so
    :meth:`Corpus.task_label` covers both.
    """
    labelled = []
    for index, payload, features, image in products:
        if task == "emotion":
            label = payload if isinstance(payload, str) else payload.emotion
        else:
            record = specs[index] if index >= 0 else payload
            label = corpus.task_label(record, task)
        labelled.append((label, features, image))
    return labelled


def _assemble_result(
    labelled: Sequence[Tuple[str, Optional[np.ndarray], Optional[np.ndarray]]],
    fs: float,
    n_played: int,
    size: int,
    stats: CollectionStats,
) -> CollectionResult:
    """Build both datasets from labelled product rows."""
    rows = [(label, f) for label, f, _ in labelled if f is not None]
    X = np.vstack([f for _, f in rows]) if rows else np.empty((0, len(FEATURE_NAMES)))
    features = FeatureDataset(
        X=X,
        y=np.array([label for label, _ in rows]),
        fs=fs,
        n_played=n_played,
        stats=stats,
    )
    shots = [(label, img) for label, _, img in labelled if img is not None]
    stack = (
        np.stack([img for _, img in shots])[..., None]
        if shots
        else np.empty((0, size, size, 1))
    )
    spectrograms = SpectrogramDataset(
        images=stack,
        y=np.array([label for label, _ in shots]),
        fs=fs,
        n_played=n_played,
        stats=stats,
    )
    return CollectionResult(features=features, spectrograms=spectrograms, stats=stats)


def collect_datasets(
    corpus: Corpus,
    channel: VibrationChannel,
    specs: Optional[Sequence[UtteranceSpec]] = None,
    detector: Optional[RegionDetector] = None,
    continuous: Optional[bool] = None,
    seed: int = 0,
    size: int = 32,
    feature_highpass_hz: Optional[float] = None,
    n_jobs: int = 1,
    executor: Optional[str] = None,
    cache: Optional[CollectionCache] = None,
    pipeline: Optional[str] = None,
    batch_chunk: Optional[int] = None,
    task: str = "emotion",
    defense=None,
) -> CollectionResult:
    """Collect the feature *and* spectrogram datasets in one shared pass.

    Parameters
    ----------
    n_jobs:
        Worker count for the per-utterance protocol (and the rendering
        stage of the continuous protocol). Results are identical at any
        value.
    executor:
        ``"serial"``, ``"thread"`` or ``"process"``; None picks serial
        for ``n_jobs <= 1`` and threads otherwise.
    cache:
        Optional :class:`CollectionCache`; a hit skips the pass entirely
        and returns the registered result object.
    pipeline:
        ``"batched"`` (default) stacks utterances into chunks and runs
        every stage across the batch axis; ``"per_utterance"`` is the
        one-at-a-time reference path. Under the golden float64 batch
        policy the two are byte-identical; the continuous (handheld
        session) protocol ignores this knob.
    batch_chunk:
        Utterances per stacked chunk for the batched pipeline
        (default :data:`DEFAULT_BATCH_CHUNK`). Results are identical at
        any chunk size.
    task:
        Which label to attach to each collected region — one of
        :data:`repro.datasets.base.TASKS` (``emotion``, ``speaker-id``,
        ``gender``, ``content-id``). The physics of the pass is
        task-independent: with a ``cache``, a second task over the same
        corpus re-labels the cached product rows instead of re-running
        render→transmit→detect.
    defense:
        Optional :class:`repro.attack.defense.Defense` (or stack). Its
        ``apply`` reconfigures the channel before collection and its
        ``postprocess`` transforms every sensor trace before detection —
        the attacker only ever sees the defended stream. The defense
        fingerprint (parameters and seeds included) is folded into the
        cache key; relabel-from-cache still works across tasks *within*
        one defended configuration.
    """
    if defense is not None:
        channel = defense.apply(channel)
    detector = detector or _default_detector(channel)
    if continuous is None:
        continuous = channel.placement is Placement.HANDHELD
    specs = list(specs if specs is not None else corpus.specs)
    executor_name = _resolve_executor(n_jobs, executor)
    pipeline_name = _resolve_pipeline(pipeline)
    task_name = resolve_task(task)

    # Only the batched per-utterance pipeline honours the batch policy;
    # every other path computes in float64.
    active_dtype = (
        batch_dtype() if (pipeline_name == "batched" and not continuous)
        else np.dtype(np.float64)
    )

    key = base_key = None
    if cache is not None:
        base_key = collection_key(
            corpus, channel, specs, detector, continuous, seed, size,
            feature_highpass_hz, batch_dtype=str(active_dtype),
            defense=defense,
        )
        key = base_key if task_name == "emotion" else collection_key(
            corpus, channel, specs, detector, continuous, seed, size,
            feature_highpass_hz, batch_dtype=str(active_dtype), task=task_name,
            defense=defense,
        )
        hit = cache.lookup(key)
        if hit is not None:
            cache.hits += 1
            _publish(CollectionStats(cache_hits=1))
            if hit.stats is not None:
                hit.stats.cache_hits += 1
            return hit
        # The task key missed, but a pass under another task may have
        # left its raw products behind: re-label instead of re-collect.
        cached_products = cache.lookup_products(base_key)
        if cached_products is not None:
            products, n_played = cached_products
            cache.hits += 1
            metrics().count("cache.relabel_hits")
            _publish(CollectionStats(cache_hits=1))
            stats = CollectionStats(n_played=n_played, cache_hits=1)
            result = _assemble_result(
                _task_labelled_rows(products, specs, corpus, task_name),
                channel.accel_fs,
                n_played,
                int(size),
                stats,
            )
            cache.store(key, result)
            return result
        cache.misses += 1

    config = _PassConfig(
        corpus=corpus,
        channel=channel,
        detector=detector,
        seed=int(seed),
        size=int(size),
        feature_highpass_hz=feature_highpass_hz,
        defense=defense,
    )
    with trace(
        "collect",
        corpus=corpus.name,
        device=channel.device.name,
        placement=channel.placement.value,
        executor=executor_name,
        n_jobs=max(1, int(n_jobs)),
        pipeline="continuous" if continuous else pipeline_name,
    ) as pass_span:
        if continuous:
            products, stats = _collect_continuous(
                config, specs, n_jobs, executor_name
            )
        elif pipeline_name == "batched":
            products, stats = _collect_batched(
                config,
                specs,
                n_jobs,
                executor_name,
                batch_chunk if batch_chunk is not None else DEFAULT_BATCH_CHUNK,
            )
        else:
            products, stats = _collect_per_utterance(
                config, specs, n_jobs, executor_name
            )
        stats.n_played = len(specs)
        stats.cache_misses = 1 if cache is not None else 0
        stats.total_s = pass_span.elapsed()
        _publish(stats)

    result = _assemble_result(
        _task_labelled_rows(products, specs, corpus, task_name),
        channel.accel_fs,
        len(specs),
        int(size),
        stats,
    )
    if cache is not None and key is not None:
        cache.store_products(base_key, products, len(specs))
        cache.store(key, result)
    return result


def _rebuild_result(
    X: np.ndarray,
    y_features: np.ndarray,
    images: np.ndarray,
    y_images: np.ndarray,
    fs: float,
    n_played: int,
) -> CollectionResult:
    """Reassemble a CollectionResult from persisted arrays (see eval.io)."""
    stats = CollectionStats(n_played=n_played)
    features = FeatureDataset(
        X=X, y=y_features, fs=fs, n_played=n_played, stats=stats
    )
    spectrograms = SpectrogramDataset(
        images=images, y=y_images, fs=fs, n_played=n_played, stats=stats
    )
    return CollectionResult(features=features, spectrograms=spectrograms, stats=stats)
