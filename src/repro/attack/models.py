"""The paper's two CNN architectures (Section IV-C2 and IV-D2).

**Spectrogram CNN** (image classifier): three convolutional layers — 128
filters with a (1,1) kernel, 128 filters, then 64 filters — each followed
by ReLU, dropout 0.2 and (2,2) max pooling; then flatten, two
32-neuron fully connected layers (dropout 0.25 after the second) and a
softmax output.

**Feature CNN** (time/frequency-domain classifier): five 1-D
convolutional layers over the z-scored 24-feature vector — 256, 256
(dropout 0.25 + pool 2 after the second), 128 with batch normalisation
(dropout 0.25 + pool 8 after), 64, 64 — all zero-padded ("same"), then
flatten and a softmax fully connected output layer.

``width_scale`` shrinks every filter bank proportionally for fast CI
runs; 1.0 reproduces the paper's layer sizes exactly.

Both builders are policy-aware: layers build their parameters in the
:mod:`repro.nn.policy` compute dtype (float64 by default, float32 via
``set_policy``/``--nn-dtype``) and the convolutions run through the
policy's kernel selection — the im2col/GEMM path by default, or the
original kernel-offset reference path for parity checks. See
``benchmarks/test_nn_kernels.py`` for measured epoch-time speedups.
"""

from __future__ import annotations

from repro.nn.layers import (
    BatchNorm,
    Conv1D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool1D,
    MaxPool2D,
    ReLU,
)
from repro.nn.model import Sequential

__all__ = ["build_spectrogram_cnn", "build_feature_cnn"]


def _scaled(width: int, scale: float) -> int:
    return max(4, int(round(width * scale)))


def build_spectrogram_cnn(
    n_classes: int, width_scale: float = 1.0, seed: int = 0
) -> Sequential:
    """The paper's spectrogram image classifier for 32x32x1 inputs."""
    if n_classes < 2:
        raise ValueError("n_classes must be >= 2")
    if width_scale <= 0:
        raise ValueError("width_scale must be positive")
    s = width_scale
    layers = [
        Conv2D(_scaled(128, s), (1, 1), padding="same"),
        ReLU(),
        Dropout(0.2, seed=seed + 1),
        MaxPool2D(2),
        Conv2D(_scaled(128, s), (3, 3), padding="same"),
        ReLU(),
        Dropout(0.2, seed=seed + 2),
        MaxPool2D(2),
        Conv2D(_scaled(64, s), (3, 3), padding="same"),
        ReLU(),
        Dropout(0.2, seed=seed + 3),
        MaxPool2D(2),
        Flatten(),
        Dense(32),
        ReLU(),
        Dense(32),
        ReLU(),
        Dropout(0.25, seed=seed + 4),
        Dense(n_classes),
    ]
    return Sequential(layers, n_classes=n_classes, seed=seed)


def build_feature_cnn(
    n_classes: int, width_scale: float = 1.0, seed: int = 0
) -> Sequential:
    """The paper's 1-D CNN over the 24 time/frequency features.

    Input shape per sample: ``(24, 1)`` (z-scored feature vector as a
    length-24 single-channel sequence).
    """
    if n_classes < 2:
        raise ValueError("n_classes must be >= 2")
    if width_scale <= 0:
        raise ValueError("width_scale must be positive")
    s = width_scale
    layers = [
        Conv1D(_scaled(256, s), 3, padding="same"),
        ReLU(),
        Conv1D(_scaled(256, s), 3, padding="same"),
        ReLU(),
        Dropout(0.25, seed=seed + 1),
        MaxPool1D(2),
        Conv1D(_scaled(128, s), 3, padding="same"),
        BatchNorm(),
        ReLU(),
        Dropout(0.25, seed=seed + 2),
        MaxPool1D(8),
        Conv1D(_scaled(64, s), 3, padding="same"),
        ReLU(),
        Conv1D(_scaled(64, s), 3, padding="same"),
        ReLU(),
        Flatten(),
        Dense(n_classes),
    ]
    return Sequential(layers, n_classes=n_classes, seed=seed)
