"""Label assignment from playback logs, per attack task.

The collection procedure groups all audio of one emotion together and
records playback times; the analysis tools then "automatically assign
labels to the spectrograms of each speech region based on the recorded
playback times" (Section III-B3). A region is labelled with the event
whose playback interval contains the region's centre; regions falling in
gaps (false detections) are dropped.

When ``tolerance_s > 0`` the expanded playback intervals of adjacent
events can overlap, so a region centre may fall inside several
intervals. Matching is deterministic: the event whose interval *centre*
is nearest wins; an exact distance tie between events that would carry
the same label resolves to the earlier event; an exact tie between
events with *conflicting* labels is truly ambiguous — the region is
dropped and counted under the ``labeling.rows_ambiguous`` metric.

The multi-task label plane rides on the same matching: a matched
:class:`~repro.phone.recording.PlaybackEvent` carries the utterance's
speaker and identity, so one playback log labels regions for any task in
:data:`~repro.datasets.base.TASKS` (see :func:`label_regions_for_task`).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.attack.regions import Region
from repro.datasets.base import TASKS, resolve_task
from repro.obs import metrics
from repro.phone.recording import PlaybackEvent

__all__ = [
    "LABELING_VERSION",
    "TASKS",
    "label_regions",
    "label_regions_for_task",
    "match_regions",
    "resolve_task",
]

#: Version of the label-assignment semantics. Folded into collection
#: cache keys for non-emotion tasks so cached datasets invalidate when
#: label derivation changes; the emotion task keeps its historical keys.
LABELING_VERSION = 1


def _match_one(
    center: float,
    events: Sequence[PlaybackEvent],
    tolerance_s: float,
    label_of: Callable[[PlaybackEvent], str],
):
    """Match one region centre to a playback event, or None.

    Implements the deterministic ambiguity policy described in the
    module docstring. Returns the matched event, or None for regions in
    gaps or truly ambiguous (equidistant, conflicting-label) regions —
    the latter counted under ``labeling.rows_ambiguous``.
    """
    candidates = [
        event
        for event in events
        if event.start_s - tolerance_s <= center < event.end_s + tolerance_s
    ]
    if not candidates:
        return None
    if len(candidates) == 1:
        return candidates[0]
    # Overlapping expanded intervals: nearest interval centre wins.
    distances = [
        abs(center - 0.5 * (event.start_s + event.end_s)) for event in candidates
    ]
    best = min(distances)
    nearest = [
        event for event, dist in zip(candidates, distances) if dist == best
    ]
    if len(nearest) == 1:
        return nearest[0]
    # Exact distance tie. Same label on every tied event -> the earlier
    # event (deterministic, label unchanged); conflicting labels -> the
    # region is truly ambiguous and dropped.
    if len({label_of(event) for event in nearest}) == 1:
        return min(nearest, key=lambda event: event.start_s)
    metrics().count("labeling.rows_ambiguous")
    return None


def match_regions(
    regions: Sequence[Region],
    events: Sequence[PlaybackEvent],
    tolerance_s: float = 0.05,
    label_of: Callable[[PlaybackEvent], str] = lambda event: event.emotion,
) -> List[Tuple[Region, PlaybackEvent]]:
    """Pair detected regions with their playback events.

    Parameters
    ----------
    tolerance_s:
        Slack added around each playback interval (sensor/pipeline delay).
    label_of:
        Label under which ambiguity is judged: equidistant events whose
        labels agree resolve to the earlier event, conflicting ones drop
        the region (counted as ``labeling.rows_ambiguous``).

    Returns
    -------
    List of ``(region, event)`` pairs; unmatched regions are omitted.
    """
    if tolerance_s < 0:
        raise ValueError("tolerance_s must be non-negative")
    matched: List[Tuple[Region, PlaybackEvent]] = []
    for region in regions:
        event = _match_one(region.center_s, events, tolerance_s, label_of)
        if event is not None:
            matched.append((region, event))
    return matched


def label_regions(
    regions: Sequence[Region],
    events: Sequence[PlaybackEvent],
    tolerance_s: float = 0.05,
) -> List[Tuple[Region, str]]:
    """Pair detected regions with emotion labels from the playback log.

    Returns ``(region, emotion)`` pairs; unlabellable regions (gaps,
    truly ambiguous overlaps) are omitted. See :func:`match_regions` for
    the matching policy.
    """
    return [
        (region, event.emotion)
        for region, event in match_regions(regions, events, tolerance_s)
    ]


def label_regions_for_task(
    regions: Sequence[Region],
    events: Sequence[PlaybackEvent],
    corpus,
    task: str = "emotion",
    tolerance_s: float = 0.05,
) -> List[Tuple[Region, str]]:
    """Pair detected regions with per-task labels from the playback log.

    The matched event carries ``speaker_id``/``emotion``/``utterance_id``,
    so label extraction goes through :meth:`repro.datasets.base.Corpus.task_label`
    — speaker-ID and gender heads label from the same playback log that
    the emotion attack uses, at zero extra collection cost.
    """
    task = resolve_task(task)

    def label_of(event: PlaybackEvent) -> str:
        return corpus.task_label(event, task)

    return [
        (region, label_of(event))
        for region, event in match_regions(
            regions, events, tolerance_s, label_of=label_of
        )
    ]
