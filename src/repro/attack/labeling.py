"""Label assignment from playback logs.

The collection procedure groups all audio of one emotion together and
records playback times; the analysis tools then "automatically assign
labels to the spectrograms of each speech region based on the recorded
playback times" (Section III-B3). A region is labelled with the emotion
whose playback interval contains the region's centre; regions falling in
gaps (false detections) are dropped.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.attack.regions import Region
from repro.phone.recording import PlaybackEvent

__all__ = ["label_regions"]


def label_regions(
    regions: Sequence[Region],
    events: Sequence[PlaybackEvent],
    tolerance_s: float = 0.05,
) -> List[Tuple[Region, str]]:
    """Pair detected regions with emotion labels from the playback log.

    Parameters
    ----------
    tolerance_s:
        Slack added around each playback interval (sensor/pipeline delay).

    Returns
    -------
    List of ``(region, emotion)`` pairs; unlabellable regions are omitted.
    """
    if tolerance_s < 0:
        raise ValueError("tolerance_s must be non-negative")
    labelled: List[Tuple[Region, str]] = []
    for region in regions:
        center = region.center_s
        label: Optional[str] = None
        for event in events:
            if event.start_s - tolerance_s <= center < event.end_s + tolerance_s:
                label = event.emotion
                break
        if label is not None:
            labelled.append((region, label))
    return labelled
