"""Spectrogram-image generation for detected regions.

Each identified speech region becomes a normalised 32x32 log-spectrogram
image (paper Section IV-C1: spectrograms are resized to 32x32 before the
CNN). Like the feature path, the spectrogram path works on the raw,
unfiltered region samples.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.attack.regions import Region
from repro.dsp.spectrogram import spectrogram_image

__all__ = ["region_spectrogram_image", "regions_to_images"]


def region_spectrogram_image(
    trace: np.ndarray, region: Region, size: int = 32
) -> np.ndarray:
    """Normalised ``size x size`` spectrogram image of one region."""
    samples = region.slice(np.asarray(trace, dtype=float))
    if samples.size < 8:
        raise ValueError(f"region too short for a spectrogram: {samples.size} samples")
    samples = samples - samples.mean()  # drop gravity offset
    return spectrogram_image(samples, region.fs, size=size)


def regions_to_images(
    trace: np.ndarray, regions: Sequence[Region], size: int = 32
) -> List[np.ndarray]:
    """Spectrogram images for all regions long enough to transform."""
    images = []
    for region in regions:
        if region.end - region.start >= 8:
            images.append(region_spectrogram_image(trace, region, size))
    return images
