"""Spectrogram-image generation for detected regions.

Each identified speech region becomes a normalised 32x32 log-spectrogram
image (paper Section IV-C1: spectrograms are resized to 32x32 before the
CNN). Like the feature path, the spectrogram path works on the raw,
unfiltered region samples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.attack.regions import Region
from repro.dsp.spectrogram import spectrogram_image, spectrogram_image_batch

__all__ = [
    "region_spectrogram_image",
    "region_spectrogram_images_batch",
    "regions_to_images",
]


def region_spectrogram_image(
    trace: np.ndarray, region: Region, size: int = 32
) -> np.ndarray:
    """Normalised ``size x size`` spectrogram image of one region."""
    samples = region.slice(np.asarray(trace, dtype=float))
    if samples.size < 8:
        raise ValueError(f"region too short for a spectrogram: {samples.size} samples")
    samples = samples - samples.mean()  # drop gravity offset
    return spectrogram_image(samples, region.fs, size=size)


def region_spectrogram_images_batch(
    traces: Sequence[np.ndarray],
    regions: Sequence[Region],
    size: int = 32,
    dtype: Optional[Union[str, np.dtype, type]] = None,
) -> List[np.ndarray]:
    """Batched :func:`region_spectrogram_image` over (trace, region) pairs.

    Region slices are mean-subtracted per row and handed to
    :func:`repro.dsp.spectrogram.spectrogram_image_batch`, which shares
    one FFT across rows with the same effective frame geometry. Image
    values do not depend on the sampling rate (it only labels the
    frequency axis), so mixed-rate regions batch together safely.
    """
    if len(traces) != len(regions):
        raise ValueError("traces and regions must have the same length")
    rows = []
    for i, (trace, region) in enumerate(zip(traces, regions)):
        samples = region.slice(np.asarray(trace, dtype=float))
        if samples.size < 8:
            raise ValueError(
                f"region {i} too short for a spectrogram: {samples.size} samples"
            )
        rows.append(samples - samples.mean())
    fs = float(regions[0].fs) if regions else 1.0
    return spectrogram_image_batch(rows, fs, size=size, dtype=dtype)


def regions_to_images(
    trace: np.ndarray, regions: Sequence[Region], size: int = 32
) -> List[np.ndarray]:
    """Spectrogram images for all regions long enough to transform."""
    images = []
    for region in regions:
        if region.end - region.start >= 8:
            images.append(region_spectrogram_image(trace, region, size))
    return images
