"""Spearphone-style baseline: gender and speaker identification.

EmoLeak's closest prior work (Anand et al., "Spearphone", cited as [17])
demonstrated that loudspeaker-induced accelerometer vibration reveals
the *speaker's gender and identity*. The paper positions EmoLeak as the
first to extract *emotion* from the same channel; this module implements
the baseline task so the two attacks can be compared on an identical
substrate — and so the vibration channel can be validated against the
prior work's findings (gender separates almost perfectly; speaker ID is
easy for small speaker sets).

The baseline reuses the EmoLeak collection pipeline (same regions, same
Table II features) and relabels the data by speaker attributes, which is
exactly how Spearphone's classifier consumed its features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attack.engine import collect_per_utterance_products
from repro.attack.features import FEATURE_NAMES
from repro.attack.pipeline import FeatureDataset
from repro.attack.regions import RegionDetector
from repro.datasets.base import GENDER_F0_SPLIT_HZ, Corpus, UtteranceSpec
from repro.phone.channel import VibrationChannel

__all__ = ["SpearphoneBaseline", "collect_speaker_dataset"]

#: Backward-compatible alias; the split lives with the task-label plane
#: (:data:`repro.datasets.base.GENDER_F0_SPLIT_HZ`) so the baseline and
#: the engine's gender task agree by construction.
_GENDER_F0_SPLIT = GENDER_F0_SPLIT_HZ


def collect_speaker_dataset(
    corpus: Corpus,
    channel: VibrationChannel,
    specs: Optional[Sequence[UtteranceSpec]] = None,
    detector: Optional[RegionDetector] = None,
    continuous: Optional[bool] = None,
    seed: int = 0,
    n_jobs: int = 1,
    executor: Optional[str] = None,
) -> Tuple[FeatureDataset, np.ndarray, np.ndarray]:
    """Collect features labelled with speaker id and gender.

    Returns ``(dataset, speaker_ids, genders)`` where ``dataset.y`` holds
    the emotion labels (as usual) and the two extra arrays align with its
    rows. Requires per-utterance collection so rows map to utterances;
    continuous sessions label regions by playback emotion group only.
    """
    rows: List[np.ndarray] = []
    emotions: List[str] = []
    speaker_ids: List[str] = []
    specs = list(specs if specs is not None else corpus.specs)
    # The engine's per-utterance work items carry spec provenance, so
    # every feature row maps back to its speaker.
    products, _ = collect_per_utterance_products(
        corpus,
        channel,
        specs=specs,
        detector=detector,
        seed=seed,
        n_jobs=n_jobs,
        executor=executor,
    )
    for index, label, features, _image in products:
        if features is None:
            continue
        rows.append(features)
        emotions.append(label)
        speaker_ids.append(specs[index].speaker_id)
    X = np.vstack(rows) if rows else np.empty((0, len(FEATURE_NAMES)))
    dataset = FeatureDataset(
        X=X, y=np.array(emotions), fs=channel.accel_fs, n_played=len(specs)
    )
    genders = np.array([corpus.speaker_gender(sid) for sid in speaker_ids])
    return dataset, np.array(speaker_ids), genders


@dataclass
class SpearphoneBaseline:
    """The prior-work attack: classify speaker attributes from vibration.

    Parameters
    ----------
    channel:
        The vibration channel (Spearphone's setting is loudspeaker /
        table-top, same as EmoLeak's strongest configuration).
    seed:
        Collection seed.
    """

    channel: VibrationChannel
    seed: int = 0

    def collect(
        self, corpus: Corpus, specs: Optional[Sequence[UtteranceSpec]] = None
    ) -> Tuple[FeatureDataset, np.ndarray, np.ndarray]:
        """Collect ``(features, speaker_ids, genders)`` for a corpus."""
        return collect_speaker_dataset(
            corpus, self.channel, specs=specs, seed=self.seed
        )

    def gender_accuracy(self, corpus: Corpus, classifier, test_fraction=0.2):
        """Train/evaluate gender identification; returns accuracy."""
        from repro.ml.metrics import accuracy_score
        from repro.ml.preprocessing import clean_features, train_test_split

        dataset, _, genders = self.collect(corpus)
        X, y, mask = clean_features(dataset.X, genders)
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_fraction, self.seed
        )
        model = classifier.clone()
        model.fit(X_train, y_train)
        return accuracy_score(y_test, model.predict(X_test))

    def speaker_accuracy(self, corpus: Corpus, classifier, test_fraction=0.2):
        """Train/evaluate speaker identification; returns accuracy."""
        from repro.ml.metrics import accuracy_score
        from repro.ml.preprocessing import clean_features, train_test_split

        dataset, speaker_ids, _ = self.collect(corpus)
        X, y, mask = clean_features(dataset.X, speaker_ids)
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_fraction, self.seed
        )
        model = classifier.clone()
        model.fit(X_train, y_train)
        return accuracy_score(y_test, model.predict(X_test))
