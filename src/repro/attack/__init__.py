"""EmoLeak attack core.

The paper's contribution: from a zero-permission accelerometer trace
recorded while speech plays through a phone speaker, recover the
speaker's emotional state.

Pipeline stages (paper Section III-B):

1. :mod:`repro.attack.regions` — speech-region detection on the
   accelerometer stream (energy-spike thresholding; an 8 Hz high-pass is
   applied on the detection path only in the handheld setting).
2. :mod:`repro.attack.features` — the 24 time/frequency-domain features
   of Table II, extracted from each *unfiltered* region.
3. :mod:`repro.attack.specimages` — 32x32 log-spectrogram images of each
   region for the CNN image classifier.
4. :mod:`repro.attack.labeling` — label assignment from recorded
   playback times (Section IV-B1).
5. :mod:`repro.attack.models` — the paper's two CNN architectures.
6. :mod:`repro.attack.pipeline` — :class:`EmoLeakAttack`, the end-to-end
   orchestration, plus dataset-collection helpers.
7. :mod:`repro.attack.scenarios` — canonical evaluation scenarios
   (dataset x device x speaker mode x placement).
"""

from repro.attack.regions import RegionDetector, Region, detection_rate
from repro.attack.features import FEATURE_NAMES, TIME_FEATURES, FREQ_FEATURES, extract_features
from repro.attack.specimages import region_spectrogram_image
from repro.attack.labeling import label_regions
from repro.attack.models import build_spectrogram_cnn, build_feature_cnn
from repro.attack.engine import (
    CollectionCache,
    CollectionResult,
    CollectionStats,
    collect_datasets,
    default_cache,
    global_stats,
    reset_global_stats,
)
from repro.attack.pipeline import (
    EmoLeakAttack,
    FeatureDataset,
    SpectrogramDataset,
    collect_feature_dataset,
    collect_spectrogram_dataset,
)
from repro.attack.scenarios import Scenario, SCENARIOS, get_scenario
from repro.attack.spearphone import SpearphoneBaseline, collect_speaker_dataset
from repro.attack.augmentation import RegionAugmenter, augment_region, augmented_feature_dataset
from repro.attack.realtime import StreamingDetector, StreamingAttack, StreamedRegion
from repro.attack.defense import (
    Defense,
    RateLimitDefense,
    SensorDampingDefense,
    LowPassObfuscationDefense,
    NoiseInjectionDefense,
    QuantizationDefense,
    ComposedDefense,
    evaluate_defense,
)
from repro.attack.privacy_gate import (
    DefenseAxes,
    DefenseConfig,
    GateScorer,
    LeakageCell,
    LeakageReport,
    leakage_score,
)

__all__ = [
    "RegionDetector",
    "Region",
    "detection_rate",
    "FEATURE_NAMES",
    "TIME_FEATURES",
    "FREQ_FEATURES",
    "extract_features",
    "region_spectrogram_image",
    "label_regions",
    "build_spectrogram_cnn",
    "build_feature_cnn",
    "EmoLeakAttack",
    "FeatureDataset",
    "SpectrogramDataset",
    "CollectionCache",
    "CollectionResult",
    "CollectionStats",
    "collect_datasets",
    "collect_feature_dataset",
    "collect_spectrogram_dataset",
    "default_cache",
    "global_stats",
    "reset_global_stats",
    "Scenario",
    "SCENARIOS",
    "get_scenario",
    "SpearphoneBaseline",
    "collect_speaker_dataset",
    "RegionAugmenter",
    "augment_region",
    "augmented_feature_dataset",
    "Defense",
    "RateLimitDefense",
    "SensorDampingDefense",
    "LowPassObfuscationDefense",
    "NoiseInjectionDefense",
    "QuantizationDefense",
    "ComposedDefense",
    "evaluate_defense",
    "DefenseAxes",
    "DefenseConfig",
    "GateScorer",
    "LeakageCell",
    "LeakageReport",
    "leakage_score",
    "StreamingDetector",
    "StreamingAttack",
    "StreamedRegion",
]
