"""Mitigation mechanisms (paper Section VI-B), as composable defenses.

The paper recommends: stricter sampling-rate limits with explicit user
permission, relocating the motion sensor away from the speakers, and
vibration-absorbing sensor mounting. Each is modelled as a defense that
transforms a :class:`~repro.phone.channel.VibrationChannel` scenario (or
post-processes its output stream, as an OS-level mitigation would), so
defense efficacy can be measured with the unchanged attack pipeline.

``evaluate_defense`` runs the attack against a defended channel and
reports residual accuracy — the number a platform security team would
want for each candidate mitigation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, is_dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.attack.pipeline import EmoLeakAttack
from repro.dsp.filters import lowpass
from repro.phone.channel import VibrationChannel

__all__ = [
    "Defense",
    "RateLimitDefense",
    "SensorDampingDefense",
    "LowPassObfuscationDefense",
    "NoiseInjectionDefense",
    "QuantizationDefense",
    "ComposedDefense",
    "evaluate_defense",
]


class Defense:
    """Base defense: produce the defended channel for a scenario."""

    name: str = "none"

    def apply(self, channel: VibrationChannel) -> VibrationChannel:
        """Return a defended copy of ``channel`` (never mutates it)."""
        raise NotImplementedError

    def postprocess(self, trace: np.ndarray, fs: float) -> np.ndarray:
        """Optional OS-level transform of the sensor stream."""
        return trace

    def stream_stride(self, fs: float) -> int:
        """Decimation stride this defense forces on a stream at ``fs``.

        Non-trivial only for rate caps applied at the OS boundary (a
        stream arriving faster than the cap is sample-dropped). When the
        defense instead reconfigured the sensor via :meth:`apply`, the
        incoming rate already satisfies the cap and the stride is 1.
        """
        return 1

    def stream_fs(self, fs: float) -> float:
        """Effective stream rate after this defense's postprocess."""
        return fs / self.stream_stride(fs)

    def fingerprint(self) -> tuple:
        """Stable identity of this defense for cache keys.

        Covers the class and every constructor parameter — including RNG
        seeds — so two defended collections share a cache entry only when
        their defended numerics are actually identical.
        """
        if is_dataclass(self):
            params = tuple((f.name, getattr(self, f.name)) for f in fields(self))
        else:
            params = ()
        return (type(self).__name__, params)


@dataclass
class RateLimitDefense(Defense):
    """Cap the sensor output rate (the Android-12 mechanism).

    The paper measured that the deployed 200 Hz cap degrades but does
    not defeat the attack; stricter caps push further.
    """

    max_rate_hz: float = 200.0

    def __post_init__(self):
        if self.max_rate_hz <= 0:
            raise ValueError("max_rate_hz must be positive")
        self.name = f"rate_limit_{self.max_rate_hz:g}hz"

    def apply(self, channel: VibrationChannel) -> VibrationChannel:
        rate = min(self.max_rate_hz, channel.accel_fs)
        return VibrationChannel(
            device=channel.device,
            mode=channel.mode,
            placement=channel.placement,
            sample_rate=rate,
            sensor=channel.sensor,
            environment=channel.environment,
            seed=channel.seed,
        )

    def stream_stride(self, fs: float) -> int:
        # OS-boundary enforcement: a stream arriving above the cap is
        # decimated by an integer stride (sample dropping, no resample).
        # After apply() has reconfigured the sensor this is a no-op.
        return max(1, int(np.ceil(fs / self.max_rate_hz)))


@dataclass
class SensorDampingDefense(Defense):
    """Vibration-absorbing sensor mounting / relocation (hardware).

    Modelled as an attenuation of the speaker-to-IMU conductive path.
    """

    attenuation_db: float = 26.0

    def __post_init__(self):
        if self.attenuation_db < 0:
            raise ValueError("attenuation_db must be non-negative")
        self.name = f"damping_{self.attenuation_db:g}db"

    def apply(self, channel: VibrationChannel) -> VibrationChannel:
        factor = 10.0 ** (-self.attenuation_db / 20.0)
        device = replace(
            channel.device,
            loud_gain=channel.device.loud_gain * factor,
            ear_gain=channel.device.ear_gain * factor,
        )
        return VibrationChannel(
            device=device,
            mode=channel.mode,
            placement=channel.placement,
            sample_rate=channel.sample_rate,
            sensor=channel.sensor,
            environment=channel.environment,
            seed=channel.seed,
        )


@dataclass
class LowPassObfuscationDefense(Defense):
    """OS-side low-pass on sensor data handed to background apps.

    Legitimate motion uses (step counting, orientation) live below a few
    tens of hertz; speech-correlated content sits above. A software
    low-pass preserves utility while stripping the side channel.
    """

    cutoff_hz: float = 20.0

    def __post_init__(self):
        if self.cutoff_hz <= 0:
            raise ValueError("cutoff_hz must be positive")
        self.name = f"lowpass_{self.cutoff_hz:g}hz"

    def apply(self, channel: VibrationChannel) -> VibrationChannel:
        return channel

    def postprocess(self, trace: np.ndarray, fs: float) -> np.ndarray:
        if trace.size < 64 or self.cutoff_hz >= 0.45 * fs:
            return trace
        return lowpass(trace, self.cutoff_hz, fs, order=4)


@dataclass
class NoiseInjectionDefense(Defense):
    """OS-side masking noise added to background-app sensor streams."""

    noise_rms: float = 0.05
    seed: int = 0

    def __post_init__(self):
        if self.noise_rms < 0:
            raise ValueError("noise_rms must be non-negative")
        self.name = f"noise_{self.noise_rms:g}"

    def apply(self, channel: VibrationChannel) -> VibrationChannel:
        return channel

    def postprocess(self, trace: np.ndarray, fs: float) -> np.ndarray:
        if self.noise_rms == 0:
            return trace
        # The noise stream is derived from (seed, trace content), not a
        # consumed instance RNG: the same trace always gets the same
        # mask regardless of call order, worker thread, or pipeline
        # (batched vs per-utterance), while different seeds still
        # produce genuinely different defended streams.
        payload = np.ascontiguousarray(np.asarray(trace, dtype=np.float64))
        digest = hashlib.sha256(payload.tobytes()).digest()
        words = np.frombuffer(digest[:16], dtype=np.uint32)
        rng = np.random.default_rng(
            [0x4E4F4953, self.seed & 0xFFFFFFFF, *words.tolist()]
        )
        return trace + rng.normal(0.0, self.noise_rms, trace.size)


@dataclass
class QuantizationDefense(Defense):
    """OS-side coarse re-quantisation of background-app sensor streams.

    The hardware already quantises at the accelerometer's native LSB
    (~0.0012 m/s²); this defense rounds the delivered stream to a much
    coarser step, burying speech-band micro-vibrations below the
    quantisation floor while step-scale motion survives.
    """

    lsb: float = 0.005

    def __post_init__(self):
        if self.lsb < 0:
            raise ValueError("lsb must be non-negative")
        self.name = f"quant_{self.lsb:g}"

    def apply(self, channel: VibrationChannel) -> VibrationChannel:
        return channel

    def postprocess(self, trace: np.ndarray, fs: float) -> np.ndarray:
        if self.lsb == 0:
            return trace
        return np.round(trace / self.lsb) * self.lsb


@dataclass
class ComposedDefense(Defense):
    """An ordered stack of defenses applied as one unit.

    ``apply`` folds every stage's channel transform left to right;
    ``postprocess`` runs every stage's stream transform in the same
    order, threading the effective sample rate through rate-cap stages
    (a cap decimates the stream, so a low-pass placed *after* it sees
    the reduced rate — order is physically significant: anti-aliased
    filter-then-decimate differs from aliasing decimate-then-filter).

    An empty stack is the identity defense.
    """

    parts: Tuple[Defense, ...] = ()

    def __post_init__(self):
        self.parts = tuple(self.parts)
        self.name = "+".join(p.name for p in self.parts) or "none"

    def apply(self, channel: VibrationChannel) -> VibrationChannel:
        for part in self.parts:
            channel = part.apply(channel)
        return channel

    def postprocess(self, trace: np.ndarray, fs: float) -> np.ndarray:
        for part in self.parts:
            stride = part.stream_stride(fs)
            if stride > 1:
                trace = np.ascontiguousarray(trace[::stride])
                fs = fs / stride
            trace = part.postprocess(trace, fs)
        return trace

    def stream_stride(self, fs: float) -> int:
        # Composed stages may decimate at different points; expose the
        # aggregate rate change through stream_fs instead.
        return 1

    def stream_fs(self, fs: float) -> float:
        for part in self.parts:
            fs = part.stream_fs(fs)
        return fs

    def fingerprint(self) -> tuple:
        return (type(self).__name__, tuple(p.fingerprint() for p in self.parts))


def evaluate_defense(
    defense: Optional[Defense],
    corpus,
    channel: VibrationChannel,
    classifier: str = "random_forest",
    seed: int = 0,
    fast: bool = True,
):
    """Attack a defended channel; returns (accuracy, extraction_rate).

    ``defense=None`` measures the undefended baseline. An accuracy of
    1/n_classes is returned when the defense suppresses so many regions
    that no experiment can run (total denial counts as chance-level).
    """
    defended = defense.apply(channel) if defense is not None else channel
    has_postprocess = (
        defense is not None
        and type(defense).postprocess is not Defense.postprocess
    )
    if not has_postprocess:
        features = EmoLeakAttack(defended, seed=seed).collect_features(corpus)
    else:
        # OS-level post-processing transforms the *whole stream* before
        # the attacker sees it — detection must run on the transformed
        # trace, not just the feature extraction.
        from repro.attack.features import FEATURE_NAMES, extract_features
        from repro.attack.pipeline import FeatureDataset
        from repro.attack.regions import RegionDetector

        detector = RegionDetector.for_setting(defended.placement.value)
        defended.reseed(seed)
        rng = np.random.default_rng(seed + 29)
        rows, labels = [], []
        for spec in corpus.specs:
            audio = corpus.render(spec)
            pad = np.zeros(int(0.3 * corpus.audio_fs))
            trace = defended.transmit(
                np.concatenate([pad, audio, pad]), corpus.audio_fs, rng
            )
            trace = defense.postprocess(trace, defended.accel_fs)
            regions = detector.detect(trace, defended.accel_fs)
            if not regions:
                continue
            best = max(regions, key=lambda r: r.end - r.start)
            samples = best.slice(trace)
            if samples.size >= 4:
                rows.append(extract_features(samples, defended.accel_fs))
                labels.append(spec.emotion)
        features = FeatureDataset(
            X=np.vstack(rows) if rows else np.empty((0, len(FEATURE_NAMES))),
            y=np.array(labels),
            fs=defended.accel_fs,
            n_played=len(corpus.specs),
        )
    n_classes = len(set(corpus.emotions))
    if features.X.shape[0] < 5 * n_classes:
        return 1.0 / n_classes, features.extraction_rate
    # Imported here: repro.eval.experiment imports repro.attack at module
    # load, so a top-level import would be circular.
    from repro.eval.experiment import run_feature_experiment

    result = run_feature_experiment(features, classifier, seed=seed, fast=fast)
    return result.accuracy, features.extraction_rate
