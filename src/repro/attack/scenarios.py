"""Canonical evaluation scenarios (dataset x device x mode x placement x task).

One entry per experimental cell family in the paper's Section V, so the
benchmarks, examples and tests all construct identical configurations.
Beyond the paper's emotion cells, sibling attacks over the same channel
are first-class scenarios distinguished by ``task``: speaker-ID and
gender (Spearphone / EarSpy) and song content-ID (Kinetic Song
Comprehension) — see :data:`repro.datasets.base.TASKS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.datasets.base import resolve_task
from repro.phone.channel import Placement, SpeakerMode, VibrationChannel

__all__ = ["Scenario", "SCENARIOS", "get_scenario"]


@dataclass(frozen=True)
class Scenario:
    """A named (dataset, device, mode, placement, task) configuration."""

    name: str
    dataset: str
    device: str
    mode: SpeakerMode
    placement: Placement
    paper_table: str
    task: str = "emotion"

    def __post_init__(self) -> None:
        object.__setattr__(self, "task", resolve_task(self.task))

    def channel(self, sample_rate: Optional[float] = None, seed: int = 0) -> VibrationChannel:
        """Instantiate the vibration channel for this scenario."""
        return VibrationChannel(
            device=self.device,
            mode=self.mode,
            placement=self.placement,
            sample_rate=sample_rate,
            seed=seed,
        )


def _loud(name: str, dataset: str, device: str, table: str) -> Scenario:
    return Scenario(
        name=name,
        dataset=dataset,
        device=device,
        mode=SpeakerMode.LOUDSPEAKER,
        placement=Placement.TABLE_TOP,
        paper_table=table,
    )


def _ear(name: str, dataset: str, device: str, table: str) -> Scenario:
    return Scenario(
        name=name,
        dataset=dataset,
        device=device,
        mode=SpeakerMode.EAR_SPEAKER,
        placement=Placement.HANDHELD,
        paper_table=table,
    )


SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        # Table III: SAVEE, loudspeaker.
        _loud("savee-loud-oneplus7t", "savee", "oneplus7t", "Table III"),
        _loud("savee-loud-pixel5", "savee", "pixel5", "Table III"),
        # Table IV: CREMA-D, loudspeaker.
        _loud("cremad-loud-galaxys10", "cremad", "galaxys10", "Table IV"),
        # Table V: TESS, loudspeaker, five devices.
        _loud("tess-loud-oneplus7t", "tess", "oneplus7t", "Table V"),
        _loud("tess-loud-galaxys10", "tess", "galaxys10", "Table V"),
        _loud("tess-loud-pixel5", "tess", "pixel5", "Table V"),
        _loud("tess-loud-galaxys21", "tess", "galaxys21", "Table V"),
        _loud("tess-loud-galaxys21ultra", "tess", "galaxys21ultra", "Table V"),
        # Table VI: ear speaker, handheld.
        _ear("savee-ear-oneplus7t", "savee", "oneplus7t", "Table VI"),
        _ear("savee-ear-oneplus9", "savee", "oneplus9", "Table VI"),
        _ear("tess-ear-oneplus7t", "tess", "oneplus7t", "Table VI"),
        # Sibling attacks over the same channel (multi-task heads).
        # Speaker-ID on SAVEE (4 speakers, chance 25%); gender on CREMA-D
        # (the only mixed-sex corpus); content-ID on the song catalogue.
        Scenario(
            name="savee-speaker-oneplus7t",
            dataset="savee",
            device="oneplus7t",
            mode=SpeakerMode.LOUDSPEAKER,
            placement=Placement.TABLE_TOP,
            paper_table="Attacks",
            task="speaker-id",
        ),
        Scenario(
            name="cremad-gender-galaxys10",
            dataset="cremad",
            device="galaxys10",
            mode=SpeakerMode.LOUDSPEAKER,
            placement=Placement.TABLE_TOP,
            paper_table="Attacks",
            task="gender",
        ),
        Scenario(
            name="songs-content-oneplus7t",
            dataset="songs",
            device="oneplus7t",
            mode=SpeakerMode.LOUDSPEAKER,
            placement=Placement.TABLE_TOP,
            paper_table="Attacks",
            task="content-id",
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a canonical scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
