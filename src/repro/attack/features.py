"""The Table II time/frequency-domain feature set.

Twelve time-domain features — Min, Max, Mean, Standard Deviation,
Variance, Range, CV, Skewness, Kurtosis, Quantile25, Quantile50,
MeanCrossingRate — computed on the *raw* region samples (no filtering;
Table I shows even a 1 Hz high-pass destroys their information), and
twelve frequency-domain features — Energy, Entropy, Frequency Ratio,
Irregularity K, Irregularity J, Sharpness, Smoothness, SpecCentroid,
SpecStdDev, SpecCrest, SpecSkewness, SpecKurt — computed on the region's
magnitude spectrum.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "TIME_FEATURES",
    "FREQ_FEATURES",
    "FEATURE_NAMES",
    "extract_time_features",
    "extract_freq_features",
    "extract_features",
    "extract_features_batch",
]

TIME_FEATURES: Tuple[str, ...] = (
    "min",
    "max",
    "mean",
    "std",
    "variance",
    "range",
    "cv",
    "skewness",
    "kurtosis",
    "quantile25",
    "quantile50",
    "mean_crossing_rate",
)

FREQ_FEATURES: Tuple[str, ...] = (
    "energy",
    "entropy",
    "frequency_ratio",
    "irregularity_k",
    "irregularity_j",
    "sharpness",
    "smoothness",
    "spec_centroid",
    "spec_std",
    "spec_crest",
    "spec_skewness",
    "spec_kurtosis",
)

FEATURE_NAMES: Tuple[str, ...] = TIME_FEATURES + FREQ_FEATURES


def _skewness(x: np.ndarray) -> float:
    mu = x.mean()
    sigma = x.std()
    # Relative threshold: a constant 9.81 m/s^2 trace has sigma ~1e-15
    # from float rounding, which must not produce garbage moments.
    if sigma <= 1e-10 * max(1.0, abs(mu)):
        return 0.0
    return float(np.mean(((x - mu) / sigma) ** 3))


def _kurtosis(x: np.ndarray) -> float:
    mu = x.mean()
    sigma = x.std()
    if sigma <= 1e-10 * max(1.0, abs(mu)):
        return 0.0
    return float(np.mean(((x - mu) / sigma) ** 4))


def extract_time_features(region: np.ndarray) -> Dict[str, float]:
    """Time-domain features of a raw region (gravity offset included)."""
    x = np.asarray(region, dtype=float)
    if x.ndim != 1 or x.size < 2:
        raise ValueError("region must be a 1-D array with >= 2 samples")
    mean = float(x.mean())
    std = float(x.std())
    crossings = np.sum(np.diff(np.signbit(x - mean)) != 0)
    # Zero-mean regions (gravity-compensated or axis-differenced traces)
    # get cv = 0.0: a NaN here would silently drop the whole row in
    # clean_features and shrink the training set.
    cv = std / abs(mean) if abs(mean) > 1e-12 else 0.0
    # Fused quantile call: one partition serves both ranks, each value
    # bit-equal to a separate np.quantile call.
    q25, q50 = np.quantile(x, [0.25, 0.50])
    return {
        "min": float(x.min()),
        "max": float(x.max()),
        "mean": mean,
        "std": std,
        "variance": float(x.var()),
        "range": float(x.max() - x.min()),
        "cv": float(cv),
        "skewness": _skewness(x),
        "kurtosis": _kurtosis(x),
        "quantile25": float(q25),
        "quantile50": float(q50),
        "mean_crossing_rate": float(crossings / (x.size - 1)),
    }


def extract_freq_features(region: np.ndarray, fs: float) -> Dict[str, float]:
    """Frequency-domain features of a region's magnitude spectrum.

    The DC bin is excluded so the gravity offset doesn't dominate
    spectral statistics.
    """
    x = np.asarray(region, dtype=float)
    if x.ndim != 1 or x.size < 4:
        raise ValueError("region must be a 1-D array with >= 4 samples")
    if fs <= 0:
        raise ValueError("fs must be positive")
    spectrum = np.abs(np.fft.rfft(x - x.mean()))
    freqs = np.fft.rfftfreq(x.size, d=1.0 / fs)
    spectrum = spectrum[1:]
    freqs = freqs[1:]
    power = spectrum**2
    total_power = power.sum()
    if total_power < 1e-24:
        # Silent region: all spectral statistics degenerate to 0.
        return {name: 0.0 for name in FREQ_FEATURES}

    p_norm = power / total_power
    centroid = float(np.sum(freqs * p_norm))
    spread = float(np.sqrt(np.sum(((freqs - centroid) ** 2) * p_norm)))
    entropy = float(
        np.clip(
            -np.sum(p_norm * np.log2(p_norm + 1e-15)) / np.log2(p_norm.size),
            0.0,
            1.0,
        )
    )

    # Frequency ratio: energy above fs/8 over energy below (voiced speech
    # vibration concentrates low; noise spreads high).
    split = fs / 8.0
    high = power[freqs >= split].sum()
    low = power[freqs < split].sum()
    # An empty/silent low band means "no low-frequency energy to compare
    # against"; report 0.0 rather than a NaN sentinel that would get the
    # row dropped downstream.
    freq_ratio = float(high / low) if low > 1e-24 else 0.0

    # Irregularity K (Krimphoff): deviation from the 3-point local mean.
    if spectrum.size >= 3:
        local_mean = (spectrum[:-2] + spectrum[1:-1] + spectrum[2:]) / 3.0
        irregularity_k = float(np.sum(np.abs(spectrum[1:-1] - local_mean)))
    else:
        irregularity_k = 0.0

    # Irregularity J (Jensen): normalised squared successive differences.
    irregularity_j = float(
        np.sum(np.diff(spectrum) ** 2) / np.sum(spectrum**2)
    )

    # Sharpness: high-frequency-weighted centroid (Zwicker-style weight
    # approximated with a soft exponential emphasis).
    weight = 1.0 + np.exp((freqs / freqs[-1] - 0.75) * 4.0)
    sharpness = float(np.sum(freqs * weight * p_norm) / np.sum(weight * p_norm))

    # Smoothness (McAdams): mean absolute deviation of log-spectrum from
    # its 3-point local mean.
    log_spec = 20.0 * np.log10(spectrum + 1e-12)
    if log_spec.size >= 3:
        local = (log_spec[:-2] + log_spec[1:-1] + log_spec[2:]) / 3.0
        smoothness = float(np.mean(np.abs(log_spec[1:-1] - local)))
    else:
        smoothness = 0.0

    crest = float(power.max() / power.mean())
    if spread > 1e-12:
        z = (freqs - centroid) / spread
        spec_skew = float(np.sum((z**3) * p_norm))
        spec_kurt = float(np.sum((z**4) * p_norm))
    else:
        spec_skew = 0.0
        spec_kurt = 0.0

    return {
        "energy": float(np.sum(x**2)),
        "entropy": entropy,
        "frequency_ratio": freq_ratio,
        "irregularity_k": irregularity_k,
        "irregularity_j": irregularity_j,
        "sharpness": sharpness,
        "smoothness": smoothness,
        "spec_centroid": centroid,
        "spec_std": spread,
        "spec_crest": crest,
        "spec_skewness": spec_skew,
        "spec_kurtosis": spec_kurt,
    }


def extract_features(region: np.ndarray, fs: float) -> np.ndarray:
    """Full 24-dimensional Table II feature vector, ordered FEATURE_NAMES."""
    values = extract_time_features(region)
    values.update(extract_freq_features(region, fs))
    return np.array([values[name] for name in FEATURE_NAMES], dtype=float)


def _time_features_block(X: np.ndarray) -> np.ndarray:
    """Vectorized :func:`extract_time_features` over equal-length rows."""
    n = X.shape[1]
    mean = X.mean(axis=-1)
    std = X.std(axis=-1)
    xmin = X.min(axis=-1)
    xmax = X.max(axis=-1)
    crossings = np.sum(
        np.diff(np.signbit(X - mean[:, None]), axis=-1) != 0, axis=-1
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        cv = np.where(np.abs(mean) > 1e-12, std / np.abs(mean), 0.0)
        moments_ok = std > 1e-10 * np.maximum(1.0, np.abs(mean))
        z = (X - mean[:, None]) / std[:, None]
        skew = np.where(moments_ok, np.mean(z**3, axis=-1), 0.0)
        kurt = np.where(moments_ok, np.mean(z**4, axis=-1), 0.0)
    quantiles = np.quantile(X, [0.25, 0.50], axis=-1)
    return np.column_stack(
        [
            xmin,
            xmax,
            mean,
            std,
            X.var(axis=-1),
            xmax - xmin,
            cv,
            skew,
            kurt,
            quantiles[0],
            quantiles[1],
            crossings / (n - 1),
        ]
    )


def _freq_features_block(X: np.ndarray, fs: float) -> np.ndarray:
    """Vectorized :func:`extract_freq_features` over equal-length rows."""
    n = X.shape[1]
    mean = X.mean(axis=-1)
    spectrum = np.abs(np.fft.rfft(X - mean[:, None], axis=-1))[:, 1:]
    freqs = np.fft.rfftfreq(n, d=1.0 / fs)[1:]
    power = spectrum**2
    total_power = power.sum(axis=-1)
    silent = total_power < 1e-24
    with np.errstate(divide="ignore", invalid="ignore"):
        p_norm = power / total_power[:, None]
        centroid = np.sum(freqs * p_norm, axis=-1)
        spread = np.sqrt(np.sum(((freqs - centroid[:, None]) ** 2) * p_norm, axis=-1))
        entropy = np.clip(
            -np.sum(p_norm * np.log2(p_norm + 1e-15), axis=-1)
            / np.log2(p_norm.shape[1]),
            0.0,
            1.0,
        )
        split = fs / 8.0
        # Masked selection on axis 1 yields an F-ordered view whose row
        # sums use a different reduction tree; restore C order so each
        # row matches the scalar path's contiguous masked copy.
        high = np.ascontiguousarray(power[:, freqs >= split]).sum(axis=-1)
        low = np.ascontiguousarray(power[:, freqs < split]).sum(axis=-1)
        freq_ratio = np.where(low > 1e-24, high / low, 0.0)
        if spectrum.shape[1] >= 3:
            local_mean = (spectrum[:, :-2] + spectrum[:, 1:-1] + spectrum[:, 2:]) / 3.0
            irregularity_k = np.sum(np.abs(spectrum[:, 1:-1] - local_mean), axis=-1)
        else:
            irregularity_k = np.zeros(X.shape[0])
        irregularity_j = np.sum(np.diff(spectrum, axis=-1) ** 2, axis=-1) / np.sum(
            spectrum**2, axis=-1
        )
        weight = 1.0 + np.exp((freqs / freqs[-1] - 0.75) * 4.0)
        sharpness = np.sum(freqs * weight * p_norm, axis=-1) / np.sum(
            weight * p_norm, axis=-1
        )
        log_spec = 20.0 * np.log10(spectrum + 1e-12)
        if log_spec.shape[1] >= 3:
            local = (log_spec[:, :-2] + log_spec[:, 1:-1] + log_spec[:, 2:]) / 3.0
            smoothness = np.mean(np.abs(log_spec[:, 1:-1] - local), axis=-1)
        else:
            smoothness = np.zeros(X.shape[0])
        crest = power.max(axis=-1) / power.mean(axis=-1)
        spread_ok = spread > 1e-12
        zf = (freqs - centroid[:, None]) / spread[:, None]
        spec_skew = np.where(spread_ok, np.sum((zf**3) * p_norm, axis=-1), 0.0)
        spec_kurt = np.where(spread_ok, np.sum((zf**4) * p_norm, axis=-1), 0.0)
    block = np.column_stack(
        [
            np.sum(X**2, axis=-1),
            entropy,
            freq_ratio,
            irregularity_k,
            irregularity_j,
            sharpness,
            smoothness,
            centroid,
            spread,
            crest,
            spec_skew,
            spec_kurt,
        ]
    )
    # Silent regions degenerate every spectral statistic (energy included,
    # matching the scalar early return).
    block[silent, :] = 0.0
    return block


def extract_features_batch(
    regions: Sequence[np.ndarray],
    fs: float,
    dtype: Optional[Union[str, np.dtype, type]] = None,
) -> np.ndarray:
    """Batched :func:`extract_features` over a ragged list of regions.

    Rows are bucketed by exact length: equal-length rows stack into one
    contiguous matrix whose ``axis=-1`` reductions use the same pairwise
    summation tree as the per-row calls, so the default float64 ``dtype``
    is byte-identical to the scalar path for every row regardless of
    batch composition. ``float32`` is the hot path — buckets are cast
    before computation and results stored single-precision,
    tolerance-close to float64.

    Returns an ``(n_regions, 24)`` matrix ordered by ``FEATURE_NAMES``.
    """
    if fs <= 0:
        raise ValueError("fs must be positive")
    out_dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
    rows = [np.asarray(r, dtype=float) for r in regions]
    for i, row in enumerate(rows):
        if row.ndim != 1 or row.size < 4:
            raise ValueError(f"region {i} must be a 1-D array with >= 4 samples")
    out = np.empty((len(rows), len(FEATURE_NAMES)), dtype=out_dtype)
    buckets: Dict[int, list] = {}
    for i, row in enumerate(rows):
        buckets.setdefault(row.size, []).append(i)
    for _, idxs in buckets.items():
        X = np.stack([rows[i] for i in idxs])
        if out_dtype == np.dtype(np.float32):
            X = X.astype(np.float32)
        block = np.concatenate(
            [_time_features_block(X), _freq_features_block(X, fs)], axis=1
        )
        out[idxs] = block.astype(out_dtype, copy=False)
    return out
