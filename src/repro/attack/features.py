"""The Table II time/frequency-domain feature set.

Twelve time-domain features — Min, Max, Mean, Standard Deviation,
Variance, Range, CV, Skewness, Kurtosis, Quantile25, Quantile50,
MeanCrossingRate — computed on the *raw* region samples (no filtering;
Table I shows even a 1 Hz high-pass destroys their information), and
twelve frequency-domain features — Energy, Entropy, Frequency Ratio,
Irregularity K, Irregularity J, Sharpness, Smoothness, SpecCentroid,
SpecStdDev, SpecCrest, SpecSkewness, SpecKurt — computed on the region's
magnitude spectrum.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = [
    "TIME_FEATURES",
    "FREQ_FEATURES",
    "FEATURE_NAMES",
    "extract_time_features",
    "extract_freq_features",
    "extract_features",
]

TIME_FEATURES: Tuple[str, ...] = (
    "min",
    "max",
    "mean",
    "std",
    "variance",
    "range",
    "cv",
    "skewness",
    "kurtosis",
    "quantile25",
    "quantile50",
    "mean_crossing_rate",
)

FREQ_FEATURES: Tuple[str, ...] = (
    "energy",
    "entropy",
    "frequency_ratio",
    "irregularity_k",
    "irregularity_j",
    "sharpness",
    "smoothness",
    "spec_centroid",
    "spec_std",
    "spec_crest",
    "spec_skewness",
    "spec_kurtosis",
)

FEATURE_NAMES: Tuple[str, ...] = TIME_FEATURES + FREQ_FEATURES


def _skewness(x: np.ndarray) -> float:
    mu = x.mean()
    sigma = x.std()
    # Relative threshold: a constant 9.81 m/s^2 trace has sigma ~1e-15
    # from float rounding, which must not produce garbage moments.
    if sigma <= 1e-10 * max(1.0, abs(mu)):
        return 0.0
    return float(np.mean(((x - mu) / sigma) ** 3))


def _kurtosis(x: np.ndarray) -> float:
    mu = x.mean()
    sigma = x.std()
    if sigma <= 1e-10 * max(1.0, abs(mu)):
        return 0.0
    return float(np.mean(((x - mu) / sigma) ** 4))


def extract_time_features(region: np.ndarray) -> Dict[str, float]:
    """Time-domain features of a raw region (gravity offset included)."""
    x = np.asarray(region, dtype=float)
    if x.ndim != 1 or x.size < 2:
        raise ValueError("region must be a 1-D array with >= 2 samples")
    mean = float(x.mean())
    std = float(x.std())
    crossings = np.sum(np.diff(np.signbit(x - mean)) != 0)
    # Zero-mean regions (gravity-compensated or axis-differenced traces)
    # get cv = 0.0: a NaN here would silently drop the whole row in
    # clean_features and shrink the training set.
    cv = std / abs(mean) if abs(mean) > 1e-12 else 0.0
    return {
        "min": float(x.min()),
        "max": float(x.max()),
        "mean": mean,
        "std": std,
        "variance": float(x.var()),
        "range": float(x.max() - x.min()),
        "cv": float(cv),
        "skewness": _skewness(x),
        "kurtosis": _kurtosis(x),
        "quantile25": float(np.quantile(x, 0.25)),
        "quantile50": float(np.quantile(x, 0.50)),
        "mean_crossing_rate": float(crossings / (x.size - 1)),
    }


def extract_freq_features(region: np.ndarray, fs: float) -> Dict[str, float]:
    """Frequency-domain features of a region's magnitude spectrum.

    The DC bin is excluded so the gravity offset doesn't dominate
    spectral statistics.
    """
    x = np.asarray(region, dtype=float)
    if x.ndim != 1 or x.size < 4:
        raise ValueError("region must be a 1-D array with >= 4 samples")
    if fs <= 0:
        raise ValueError("fs must be positive")
    spectrum = np.abs(np.fft.rfft(x - x.mean()))
    freqs = np.fft.rfftfreq(x.size, d=1.0 / fs)
    spectrum = spectrum[1:]
    freqs = freqs[1:]
    power = spectrum**2
    total_power = power.sum()
    if total_power < 1e-24:
        # Silent region: all spectral statistics degenerate to 0.
        return {name: 0.0 for name in FREQ_FEATURES}

    p_norm = power / total_power
    centroid = float(np.sum(freqs * p_norm))
    spread = float(np.sqrt(np.sum(((freqs - centroid) ** 2) * p_norm)))
    entropy = float(
        np.clip(
            -np.sum(p_norm * np.log2(p_norm + 1e-15)) / np.log2(p_norm.size),
            0.0,
            1.0,
        )
    )

    # Frequency ratio: energy above fs/8 over energy below (voiced speech
    # vibration concentrates low; noise spreads high).
    split = fs / 8.0
    high = power[freqs >= split].sum()
    low = power[freqs < split].sum()
    # An empty/silent low band means "no low-frequency energy to compare
    # against"; report 0.0 rather than a NaN sentinel that would get the
    # row dropped downstream.
    freq_ratio = float(high / low) if low > 1e-24 else 0.0

    # Irregularity K (Krimphoff): deviation from the 3-point local mean.
    if spectrum.size >= 3:
        local_mean = (spectrum[:-2] + spectrum[1:-1] + spectrum[2:]) / 3.0
        irregularity_k = float(np.sum(np.abs(spectrum[1:-1] - local_mean)))
    else:
        irregularity_k = 0.0

    # Irregularity J (Jensen): normalised squared successive differences.
    irregularity_j = float(
        np.sum(np.diff(spectrum) ** 2) / np.sum(spectrum**2)
    )

    # Sharpness: high-frequency-weighted centroid (Zwicker-style weight
    # approximated with a soft exponential emphasis).
    weight = 1.0 + np.exp((freqs / freqs[-1] - 0.75) * 4.0)
    sharpness = float(np.sum(freqs * weight * p_norm) / np.sum(weight * p_norm))

    # Smoothness (McAdams): mean absolute deviation of log-spectrum from
    # its 3-point local mean.
    log_spec = 20.0 * np.log10(spectrum + 1e-12)
    if log_spec.size >= 3:
        local = (log_spec[:-2] + log_spec[1:-1] + log_spec[2:]) / 3.0
        smoothness = float(np.mean(np.abs(log_spec[1:-1] - local)))
    else:
        smoothness = 0.0

    crest = float(power.max() / power.mean())
    if spread > 1e-12:
        z = (freqs - centroid) / spread
        spec_skew = float(np.sum((z**3) * p_norm))
        spec_kurt = float(np.sum((z**4) * p_norm))
    else:
        spec_skew = 0.0
        spec_kurt = 0.0

    return {
        "energy": float(np.sum(x**2)),
        "entropy": entropy,
        "frequency_ratio": freq_ratio,
        "irregularity_k": irregularity_k,
        "irregularity_j": irregularity_j,
        "sharpness": sharpness,
        "smoothness": smoothness,
        "spec_centroid": centroid,
        "spec_std": spread,
        "spec_crest": crest,
        "spec_skewness": spec_skew,
        "spec_kurtosis": spec_kurt,
    }


def extract_features(region: np.ndarray, fs: float) -> np.ndarray:
    """Full 24-dimensional Table II feature vector, ordered FEATURE_NAMES."""
    values = extract_time_features(region)
    values.update(extract_freq_features(region, fs))
    return np.array([values[name] for name in FEATURE_NAMES], dtype=float)
