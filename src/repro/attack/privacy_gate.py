"""Privacy-gate data model: defense grids, leakage reports, gate scoring.

The defense×attack grid (run by :func:`repro.eval.defense_grid.run_defense_grid`)
sweeps the full cross product of four OS-level defense axes — sampling-rate
cap × low-pass cutoff × injected-noise RMS × quantisation LSB — against the
attack's task heads in two attacker modes:

``static``
    classifier trained on *undefended* collections, evaluated on defended
    ones — the attacker a platform ships a mitigation against today;
``adaptive``
    classifier retrained on defended collections — the attacker that
    adapts to the deployed mitigation. A config is only *safe* if the
    adaptive attacker is also reduced to chance.

Every grid cell carries accuracy, margin over chance, and a **leakage
score** — the attacker's normalized advantage::

    leakage = max(0, (accuracy - chance) / (1 - chance))

so 0 means the config leaks nothing (attacker at or below chance) and 1
means the attack is unimpaired. The :class:`LeakageReport` aggregates the
grid, derives the safe-config frontier, serializes into a versioned gate
bundle (:func:`repro.serve.bundle.save_gate_bundle`), and powers the
:class:`GateScorer` serving endpoint, which answers "how much does this
sensor config leak?" for swept *and* interpolated configs — and refuses
to extrapolate beyond the swept ranges.

Axis conventions: every axis is numeric and monotone in defense strength.
"No cap" / "no filter" are expressed as values high enough to be physical
no-ops (:data:`RATE_CAP_OFF`, :data:`LOWPASS_OFF`); "no noise" / "no
re-quantisation" are ``0.0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attack.defense import (
    ComposedDefense,
    LowPassObfuscationDefense,
    NoiseInjectionDefense,
    QuantizationDefense,
    RateLimitDefense,
)

__all__ = [
    "GATE_SCHEMA",
    "RATE_CAP_OFF",
    "LOWPASS_OFF",
    "DefenseConfig",
    "DefenseAxes",
    "LeakageCell",
    "LeakageReport",
    "GateError",
    "GateRangeError",
    "GateDegradedError",
    "GateScorer",
    "leakage_score",
]

GATE_SCHEMA = "emoleak/privacy-gate/v1"

#: Rate cap high enough to be a no-op on every simulated device
#: (the fastest accelerometer profile samples below 500 Hz).
RATE_CAP_OFF = 1000.0
#: Low-pass cutoff far above any simulated Nyquist — the filter no-ops.
LOWPASS_OFF = 1000.0


def leakage_score(accuracy: float, chance: float) -> float:
    """Normalized attacker advantage in [0, 1]."""
    if chance >= 1.0:
        return 0.0
    return max(0.0, (float(accuracy) - float(chance)) / (1.0 - float(chance)))


@dataclass(frozen=True)
class DefenseConfig:
    """One point on the 4-axis defense grid."""

    rate_cap_hz: float = RATE_CAP_OFF
    lowpass_hz: float = LOWPASS_OFF
    noise_rms: float = 0.0
    quant_lsb: float = 0.0

    @property
    def key(self) -> Tuple[float, float, float, float]:
        return (
            float(self.rate_cap_hz),
            float(self.lowpass_hz),
            float(self.noise_rms),
            float(self.quant_lsb),
        )

    @property
    def name(self) -> str:
        return (
            f"cap{self.rate_cap_hz:g}-lpf{self.lowpass_hz:g}"
            f"-noise{self.noise_rms:g}-lsb{self.quant_lsb:g}"
        )

    def build(self, noise_seed: int = 0) -> ComposedDefense:
        """The composable defense stack realising this config.

        All four stages are always present (no-op values included) so
        every grid cell fingerprints with the same stack structure.
        """
        return ComposedDefense((
            RateLimitDefense(max_rate_hz=float(self.rate_cap_hz)),
            LowPassObfuscationDefense(cutoff_hz=float(self.lowpass_hz)),
            NoiseInjectionDefense(noise_rms=float(self.noise_rms), seed=noise_seed),
            QuantizationDefense(lsb=float(self.quant_lsb)),
        ))

    def to_dict(self) -> dict:
        return {
            "rate_cap_hz": float(self.rate_cap_hz),
            "lowpass_hz": float(self.lowpass_hz),
            "noise_rms": float(self.noise_rms),
            "quant_lsb": float(self.quant_lsb),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DefenseConfig":
        return cls(
            rate_cap_hz=float(payload["rate_cap_hz"]),
            lowpass_hz=float(payload["lowpass_hz"]),
            noise_rms=float(payload["noise_rms"]),
            quant_lsb=float(payload["quant_lsb"]),
        )


_AXIS_FIELDS = ("rate_caps_hz", "lowpass_hz", "noise_rms", "quant_lsb")


@dataclass(frozen=True)
class DefenseAxes:
    """The swept values per axis; the grid is their full cross product."""

    rate_caps_hz: Tuple[float, ...] = (RATE_CAP_OFF, 200.0)
    lowpass_hz: Tuple[float, ...] = (LOWPASS_OFF, 20.0)
    noise_rms: Tuple[float, ...] = (0.0,)
    quant_lsb: Tuple[float, ...] = (0.0,)

    def __post_init__(self):
        for name in _AXIS_FIELDS:
            values = tuple(sorted({float(v) for v in getattr(self, name)}))
            if not values:
                raise ValueError(f"axis {name} must sweep at least one value")
            object.__setattr__(self, name, values)

    def configs(self) -> List[DefenseConfig]:
        return [
            DefenseConfig(cap, lpf, noise, lsb)
            for cap, lpf, noise, lsb in product(
                self.rate_caps_hz, self.lowpass_hz, self.noise_rms, self.quant_lsb
            )
        ]

    def to_dict(self) -> dict:
        return {name: list(getattr(self, name)) for name in _AXIS_FIELDS}

    @classmethod
    def from_dict(cls, payload: dict) -> "DefenseAxes":
        return cls(**{name: tuple(payload[name]) for name in _AXIS_FIELDS})


@dataclass
class LeakageCell:
    """One (config, task, mode, classifier) cell of the grid.

    ``status`` is one of:

    - ``"ok"`` — the experiment ran; accuracy/margin/leakage are real.
    - ``"denied"`` — the defense suppressed so much signal that no
      experiment could run (too few usable samples). Total denial is the
      defender's best case and scores chance-level: leakage 0.
    - ``"degraded"`` — the cell *failed* (collection or training raised);
      ``error`` carries the message and the scores are untrustworthy.
      Degraded cells never count toward the safe frontier.
    """

    config: DefenseConfig
    task: str
    mode: str
    classifier: str
    status: str = "ok"
    accuracy: float = 0.0
    chance: float = 0.0
    n_classes: int = 0
    n_test: int = 0
    extraction_rate: float = 0.0
    error: Optional[str] = None

    @property
    def margin(self) -> float:
        return float(self.accuracy) - float(self.chance)

    @property
    def leakage(self) -> float:
        return leakage_score(self.accuracy, self.chance)

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "task": self.task,
            "mode": self.mode,
            "classifier": self.classifier,
            "status": self.status,
            "accuracy": float(self.accuracy),
            "chance": float(self.chance),
            "n_classes": int(self.n_classes),
            "n_test": int(self.n_test),
            "extraction_rate": float(self.extraction_rate),
            "margin": self.margin,
            "leakage": self.leakage,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LeakageCell":
        return cls(
            config=DefenseConfig.from_dict(payload["config"]),
            task=payload["task"],
            mode=payload["mode"],
            classifier=payload["classifier"],
            status=payload["status"],
            accuracy=float(payload["accuracy"]),
            chance=float(payload["chance"]),
            n_classes=int(payload["n_classes"]),
            n_test=int(payload.get("n_test", 0)),
            extraction_rate=float(payload.get("extraction_rate", 0.0)),
            error=payload.get("error"),
        )


@dataclass
class LeakageReport:
    """The finished defense×attack grid, ready to pack into a gate bundle."""

    axes: DefenseAxes
    scenarios: Dict[str, str]  # task -> scenario name
    tasks: Tuple[str, ...]
    modes: Tuple[str, ...]
    classifiers: Tuple[str, ...]
    seed: int
    noise_seed: int
    subsample: Optional[int]
    cells: List[LeakageCell] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def cells_for(
        self,
        config: Optional[DefenseConfig] = None,
        task: Optional[str] = None,
        mode: Optional[str] = None,
    ) -> List[LeakageCell]:
        out = []
        for cell in self.cells:
            if config is not None and cell.config.key != config.key:
                continue
            if task is not None and cell.task != task:
                continue
            if mode is not None and cell.mode != mode:
                continue
            out.append(cell)
        return out

    def summary(
        self, config: DefenseConfig, task: str, mode: str
    ) -> Optional[dict]:
        """Best-attacker view of one (config, task, mode): the cell with
        the highest accuracy over all classifiers. ``None`` when every
        classifier cell for the point is degraded."""
        cells = [
            c for c in self.cells_for(config, task, mode) if c.status != "degraded"
        ]
        if not cells:
            return None
        best = max(cells, key=lambda c: float(c.accuracy))
        return {
            "config": config.to_dict(),
            "task": task,
            "mode": mode,
            "classifier": best.classifier,
            "status": best.status,
            "accuracy": float(best.accuracy),
            "chance": float(best.chance),
            "margin": best.margin,
            "leakage": best.leakage,
        }

    def degraded_cells(self) -> List[LeakageCell]:
        return [c for c in self.cells if c.status == "degraded"]

    def safe_frontier(
        self, threshold: float = 0.05, mode: str = "adaptive"
    ) -> List[DefenseConfig]:
        """Configs where the *adaptive* attacker stays within ``threshold``
        of chance on every task — the deployable mitigation set. A config
        with any degraded (or missing) task cell is never called safe."""
        frontier = []
        for config in self.axes.configs():
            verdicts = []
            for task in self.tasks:
                summary = self.summary(config, task, mode)
                verdicts.append(
                    summary is not None and summary["margin"] <= threshold
                )
            if verdicts and all(verdicts):
                frontier.append(config)
        return frontier

    def to_payload(self) -> dict:
        return {
            "schema": GATE_SCHEMA,
            "axes": self.axes.to_dict(),
            "scenarios": dict(self.scenarios),
            "tasks": list(self.tasks),
            "modes": list(self.modes),
            "classifiers": list(self.classifiers),
            "seed": int(self.seed),
            "noise_seed": int(self.noise_seed),
            "subsample": self.subsample,
            "cells": [cell.to_dict() for cell in self.cells],
            "frontier": {
                "threshold": 0.05,
                "mode": "adaptive",
                "configs": [c.to_dict() for c in self.safe_frontier()],
            },
            "meta": dict(self.meta),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LeakageReport":
        schema = payload.get("schema")
        if schema != GATE_SCHEMA:
            raise ValueError(
                f"unsupported gate schema {schema!r} (expected {GATE_SCHEMA!r})"
            )
        return cls(
            axes=DefenseAxes.from_dict(payload["axes"]),
            scenarios=dict(payload["scenarios"]),
            tasks=tuple(payload["tasks"]),
            modes=tuple(payload["modes"]),
            classifiers=tuple(payload["classifiers"]),
            seed=int(payload["seed"]),
            noise_seed=int(payload["noise_seed"]),
            subsample=payload.get("subsample"),
            cells=[LeakageCell.from_dict(c) for c in payload["cells"]],
            meta=dict(payload.get("meta", {})),
        )


class GateError(ValueError):
    """Base error for gate scoring."""


class GateRangeError(GateError):
    """Query outside the swept axis ranges — extrapolation refused."""


class GateDegradedError(GateError):
    """A grid cell the query depends on is degraded."""


class GateScorer:
    """Answer leakage queries from a finished :class:`LeakageReport`.

    Swept configs return their grid cell exactly; configs between grid
    points are multilinearly interpolated across the (up to) 16
    surrounding corners. Queries outside any swept axis range raise
    :class:`GateRangeError` — the grid carries no evidence out there.
    """

    def __init__(self, report: LeakageReport):
        self.report = report

    def _bracket(
        self, axis: str, values: Sequence[float], query: float
    ) -> List[Tuple[float, float]]:
        """``[(value, weight), ...]`` of the 1–2 bracketing grid values."""
        lo, hi = values[0], values[-1]
        if query < lo or query > hi:
            raise GateRangeError(
                f"{axis}={query:g} outside swept range [{lo:g}, {hi:g}]; "
                "extrapolation refused"
            )
        for value in values:
            if query == value:
                return [(value, 1.0)]
        below = max(v for v in values if v < query)
        above = min(v for v in values if v > query)
        t = (query - below) / (above - below)
        return [(below, 1.0 - t), (above, t)]

    def score(
        self,
        rate_cap_hz: float,
        lowpass_hz: float,
        noise_rms: float,
        quant_lsb: float,
        task: Optional[str] = None,
        mode: str = "adaptive",
    ) -> dict:
        report = self.report
        if task is None:
            task = report.tasks[0]
        if task not in report.tasks:
            raise GateError(
                f"task {task!r} not in gate grid (swept: {list(report.tasks)})"
            )
        if mode not in report.modes:
            raise GateError(
                f"mode {mode!r} not in gate grid (swept: {list(report.modes)})"
            )
        axes = report.axes
        brackets = [
            self._bracket("rate_cap_hz", axes.rate_caps_hz, float(rate_cap_hz)),
            self._bracket("lowpass_hz", axes.lowpass_hz, float(lowpass_hz)),
            self._bracket("noise_rms", axes.noise_rms, float(noise_rms)),
            self._bracket("quant_lsb", axes.quant_lsb, float(quant_lsb)),
        ]
        accuracy = margin = leakage = chance = 0.0
        corners = []
        for (cap, w1), (lpf, w2), (noise, w3), (lsb, w4) in product(*brackets):
            weight = w1 * w2 * w3 * w4
            if weight == 0.0:
                continue
            corner = DefenseConfig(cap, lpf, noise, lsb)
            summary = report.summary(corner, task, mode)
            if summary is None:
                raise GateDegradedError(
                    f"grid cell {corner.name} ({task}/{mode}) is degraded; "
                    "cannot score queries that depend on it"
                )
            accuracy += weight * summary["accuracy"]
            margin += weight * summary["margin"]
            leakage += weight * summary["leakage"]
            chance += weight * summary["chance"]
            corners.append({"config": corner.to_dict(), "weight": weight})
        return {
            "config": DefenseConfig(
                float(rate_cap_hz), float(lowpass_hz),
                float(noise_rms), float(quant_lsb),
            ).to_dict(),
            "task": task,
            "mode": mode,
            "accuracy": accuracy,
            "chance": chance,
            "margin": margin,
            "leakage": leakage,
            "exact": len(corners) == 1,
            "n_corners": len(corners),
        }
