"""Streaming (online) attack front end.

The paper's malicious app records the accelerometer continuously in the
background and ships data to the adversary. A real implementation cannot
buffer hours of samples: it must detect speech regions *online*, with
bounded memory, and emit per-region features as they complete. This
module provides that front end:

- :class:`StreamingDetector` consumes arbitrary-size sample chunks,
  maintains a running noise-floor estimate and an envelope with O(window)
  state, and emits completed :class:`~repro.attack.regions.Region`-like
  segments (with their raw samples) as playback proceeds;
- :class:`StreamingAttack` stacks feature extraction and an optional
  pre-trained classifier on top, yielding ``(features, prediction)``
  events — the full on-device attack loop.

The offline :class:`~repro.attack.regions.RegionDetector` remains the
reference implementation; the streaming detector trades its Otsu
bimodal threshold for an exponentially tracked floor, the standard
online substitute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.attack.features import extract_features

__all__ = ["StreamedRegion", "StreamingDetector", "StreamingAttack"]


@dataclass(frozen=True)
class StreamedRegion:
    """A completed speech region emitted by the streaming detector.

    ``start`` / ``end`` are absolute sample indices since the start of
    the stream; ``samples`` are the raw sensor values of the region.
    """

    start: int
    end: int
    fs: float
    samples: np.ndarray

    @property
    def start_s(self) -> float:
        return self.start / self.fs

    @property
    def end_s(self) -> float:
        return self.end / self.fs

    @property
    def duration_s(self) -> float:
        return (self.end - self.start) / self.fs


class StreamingDetector:
    """Online energy-spike region detector with bounded memory.

    Parameters
    ----------
    fs:
        Sensor stream rate.
    envelope_window_s:
        Running-RMS window.
    threshold_factor:
        Onset threshold as a multiple of the tracked noise floor.
    release_factor:
        Hysteresis release as a fraction of the onset threshold.
    min_duration_s / max_duration_s:
        Emitted region length bounds (overlong regions are force-closed,
        bounding the per-region buffer).
    floor_alpha:
        Exponential smoothing constant of the noise-floor tracker
        (updated only outside detected regions).
    warmup_s:
        Initial period during which the detector only learns the noise
        floor and never triggers (a real app observes the idle sensor
        before any call starts).
    """

    def __init__(
        self,
        fs: float,
        envelope_window_s: float = 0.05,
        threshold_factor: float = 4.0,
        release_factor: float = 0.5,
        min_duration_s: float = 0.08,
        max_duration_s: float = 5.0,
        floor_alpha: float = 0.01,
        warmup_s: float = 0.25,
    ):
        if fs <= 0:
            raise ValueError("fs must be positive")
        if threshold_factor <= 1.0:
            raise ValueError("threshold_factor must exceed 1")
        if not 0.0 < release_factor <= 1.0:
            raise ValueError("release_factor must be in (0, 1]")
        self.fs = float(fs)
        self.window = max(3, int(envelope_window_s * fs))
        self.threshold_factor = float(threshold_factor)
        self.release_factor = float(release_factor)
        self.min_samples = int(min_duration_s * fs)
        self.max_samples = int(max_duration_s * fs)
        self.floor_alpha = float(floor_alpha)
        self.warmup = max(self.window, int(warmup_s * fs))
        # State: ring buffer of squared deviations for the running RMS,
        # a gravity/DC tracker, the noise-floor estimate, region buffer.
        self._sq_ring = np.zeros(self.window)
        self._ring_pos = 0
        self._ring_filled = 0
        self._dc = None
        self._floor: Optional[float] = None
        self._position = 0
        self._active: Optional[List[float]] = None
        self._active_start = 0

    @property
    def position(self) -> int:
        """Absolute number of samples consumed so far."""
        return self._position

    def process(self, chunk: np.ndarray) -> List[StreamedRegion]:
        """Consume a chunk of samples; return regions completed within it."""
        chunk = np.asarray(chunk, dtype=float)
        if chunk.ndim != 1:
            raise ValueError(f"expected a 1-D chunk, got shape {chunk.shape}")
        completed: List[StreamedRegion] = []
        for value in chunk:
            if self._dc is None:
                self._dc = value
            # Slow DC tracker (gravity, drift) so the envelope sees the
            # vibration component only.
            self._dc += 0.001 * (value - self._dc)
            deviation = value - self._dc
            self._sq_ring[self._ring_pos] = deviation * deviation
            self._ring_pos = (self._ring_pos + 1) % self.window
            self._ring_filled = min(self._ring_filled + 1, self.window)
            envelope = float(
                np.sqrt(self._sq_ring[: self._ring_filled].mean())
            )
            in_warmup = self._position < self.warmup
            if self._floor is None:
                if self._ring_filled == self.window:
                    self._floor = max(envelope, 1e-9)
                self._position += 1
                continue
            if in_warmup:
                # Learn the idle noise floor; never trigger yet.
                self._floor += 0.05 * (envelope - self._floor)
                self._position += 1
                continue
            on = self.threshold_factor * self._floor
            off = max(
                self._floor,
                self._floor
                + self.release_factor * (on - self._floor),
            )
            if self._active is None:
                if envelope >= on:
                    self._active = []
                    self._active_start = self._position
                else:
                    # Track the floor only when idle.
                    self._floor += self.floor_alpha * (envelope - self._floor)
            if self._active is not None:
                self._active.append(value)
                closing = envelope < off
                too_long = len(self._active) >= self.max_samples
                if closing or too_long:
                    if len(self._active) >= self.min_samples:
                        completed.append(
                            StreamedRegion(
                                start=self._active_start,
                                end=self._position + 1,
                                fs=self.fs,
                                samples=np.asarray(self._active),
                            )
                        )
                    self._active = None
            self._position += 1
        return completed

    def flush(self) -> List[StreamedRegion]:
        """Close any in-progress region at end of stream."""
        if self._active is not None and len(self._active) >= self.min_samples:
            region = StreamedRegion(
                start=self._active_start,
                end=self._position,
                fs=self.fs,
                samples=np.asarray(self._active),
            )
            self._active = None
            return [region]
        self._active = None
        return []


@dataclass
class StreamingAttack:
    """On-device attack loop: stream in, (features, prediction) out.

    Parameters
    ----------
    detector:
        A configured :class:`StreamingDetector`.
    classifier:
        Optional pre-trained classifier (any :mod:`repro.ml` model or
        CNN adapter); when present, each region is classified.
    """

    detector: StreamingDetector
    classifier: Optional[object] = None
    events: List[Tuple[StreamedRegion, np.ndarray, Optional[str]]] = field(
        default_factory=list
    )

    def process(self, chunk: np.ndarray):
        """Consume a chunk; return newly completed attack events.

        Each event is ``(region, feature_vector, predicted_emotion)``
        with the prediction None when no classifier is attached.
        """
        new_events = []
        for region in self.detector.process(chunk):
            if region.samples.size < 4:
                continue
            features = extract_features(region.samples, self.detector.fs)
            prediction = None
            if self.classifier is not None:
                row = np.nan_to_num(features[None, :], nan=0.0)
                prediction = str(self.classifier.predict(row)[0])
            event = (region, features, prediction)
            self.events.append(event)
            new_events.append(event)
        return new_events

    def finish(self):
        """Flush the detector and return any trailing events."""
        trailing = []
        for region in self.detector.flush():
            if region.samples.size < 4:
                continue
            features = extract_features(region.samples, self.detector.fs)
            prediction = None
            if self.classifier is not None:
                row = np.nan_to_num(features[None, :], nan=0.0)
                prediction = str(self.classifier.predict(row)[0])
            event = (region, features, prediction)
            self.events.append(event)
            trailing.append(event)
        return trailing
