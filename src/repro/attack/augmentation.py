"""Attacker-side data augmentation (extension).

The paper's attacker "can record multiple conversations or multimedia
audio files over multiple days to gather more comprehensive training
data" — i.e. training-set size and diversity is the attacker's main
lever. When recordings are scarce, standard side-channel practice is to
augment the captured traces. This module implements the augmentations
that are valid for accelerometer regions:

- ``jitter``: add sensor-noise-scale white noise (simulates re-recording
  with a different noise realisation);
- ``scale``: small random gain (volume / coupling variation);
- ``shift``: circular time shift (ADC phase / detection-boundary slack);
- ``crop``: random sub-window (detection-boundary variation).

:func:`augment_features` works at the feature level directly, expanding
a :class:`~repro.attack.pipeline.FeatureDataset` by re-extracting from
perturbed copies of nothing — it perturbs the region *samples*, so it
needs the raw regions; use :class:`RegionAugmenter` during collection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.attack.features import FEATURE_NAMES, extract_features
from repro.attack.pipeline import FeatureDataset

__all__ = ["RegionAugmenter", "augment_region", "augmented_feature_dataset"]


def augment_region(
    samples: np.ndarray,
    rng: np.random.Generator,
    noise_rms: float = 0.003,
    scale_sigma: float = 0.05,
    max_shift_fraction: float = 0.1,
    crop_fraction: float = 0.1,
) -> np.ndarray:
    """One augmented copy of a raw accelerometer region.

    The gravity offset (region mean) is preserved: noise, gain and
    cropping act on the vibration component only, as physical
    re-recordings would.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size < 8:
        raise ValueError("region must be 1-D with >= 8 samples")
    offset = samples.mean()
    x = samples - offset
    # Gain variation.
    x = x * float(rng.lognormal(0.0, scale_sigma))
    # Circular shift.
    max_shift = int(max_shift_fraction * x.size)
    if max_shift > 0:
        x = np.roll(x, int(rng.integers(-max_shift, max_shift + 1)))
    # Random crop (keep at least (1 - crop_fraction) of the region).
    crop = int(crop_fraction * x.size)
    if crop > 0:
        start = int(rng.integers(0, crop + 1))
        end = x.size - int(rng.integers(0, crop - start + 1))
        x = x[start:end]
    # Fresh noise realisation.
    if noise_rms > 0:
        x = x + rng.normal(0.0, noise_rms, x.size)
    return x + offset


@dataclass
class RegionAugmenter:
    """Expand a set of raw regions into augmented feature rows.

    Parameters
    ----------
    copies:
        Augmented copies per original region (the original is kept too).
    noise_rms / scale_sigma / max_shift_fraction / crop_fraction:
        Forwarded to :func:`augment_region`.
    seed:
        Augmentation seed.
    """

    copies: int = 2
    noise_rms: float = 0.003
    scale_sigma: float = 0.05
    max_shift_fraction: float = 0.1
    crop_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.copies < 0:
            raise ValueError("copies must be >= 0")

    def expand(
        self, regions: List[np.ndarray], labels: List[str], fs: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Feature matrix and labels for originals plus augmented copies."""
        if len(regions) != len(labels):
            raise ValueError("regions and labels must align")
        rng = np.random.default_rng(self.seed)
        rows, out_labels = [], []
        for samples, label in zip(regions, labels):
            samples = np.asarray(samples, dtype=float)
            if samples.size < 8:
                continue
            rows.append(extract_features(samples, fs))
            out_labels.append(label)
            for _ in range(self.copies):
                augmented = augment_region(
                    samples,
                    rng,
                    noise_rms=self.noise_rms,
                    scale_sigma=self.scale_sigma,
                    max_shift_fraction=self.max_shift_fraction,
                    crop_fraction=self.crop_fraction,
                )
                rows.append(extract_features(augmented, fs))
                out_labels.append(label)
        if not rows:
            return np.empty((0, len(FEATURE_NAMES))), np.array([])
        return np.vstack(rows), np.array(out_labels)


def augmented_feature_dataset(
    corpus,
    channel,
    augmenter: RegionAugmenter,
    specs=None,
    detector=None,
    seed: int = 0,
) -> FeatureDataset:
    """Collect regions through a channel and expand them with augmentation."""
    from repro.attack.engine import iter_region_samples

    regions, labels = [], []
    specs_list = list(specs if specs is not None else corpus.specs)
    for label, region, trace in iter_region_samples(
        corpus, channel, specs_list, detector, continuous=None, seed=seed
    ):
        regions.append(region.slice(trace))
        labels.append(label)
    X, y = augmenter.expand(regions, labels, channel.accel_fs)
    return FeatureDataset(X=X, y=y, fs=channel.accel_fs, n_played=len(specs_list))
