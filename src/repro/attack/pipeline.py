"""End-to-end EmoLeak attack orchestration.

Two collection procedures mirror the paper's settings:

- **Per-utterance (table-top / loudspeaker)**: each corpus utterance is
  played and its accelerometer trace analysed individually; utterances
  whose speech region the detector misses are dropped (the paper's ~90 %
  extraction rate).
- **Continuous session (handheld / ear speaker)**: the whole corpus
  subset is played as one continuous recording grouped by emotion, the
  detector runs on the full trace, and regions are labelled from the
  playback log (the paper's >=45 % extraction rate).

Both produce a :class:`FeatureDataset` (Table II features) and/or a
:class:`SpectrogramDataset` (32x32 images) ready for the classifiers.

The heavy lifting lives in :mod:`repro.attack.engine`: deterministic
per-utterance work items, serial/thread/process executors (``n_jobs``),
a single shared render→transmit→detect pass for both dataset kinds, and
the collection cache. This module keeps the stable user-facing API.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.attack.engine import (
    CollectionCache,
    CollectionResult,
    CollectionStats,
    FeatureDataset,
    SpectrogramDataset,
    _default_detector,
    collect_datasets,
)
from repro.attack.regions import RegionDetector
from repro.datasets.base import Corpus, UtteranceSpec
from repro.phone.channel import VibrationChannel

__all__ = [
    "FeatureDataset",
    "SpectrogramDataset",
    "CollectionResult",
    "CollectionStats",
    "collect_datasets",
    "collect_feature_dataset",
    "collect_spectrogram_dataset",
    "EmoLeakAttack",
]


def collect_feature_dataset(
    corpus: Corpus,
    channel: VibrationChannel,
    specs: Optional[Sequence[UtteranceSpec]] = None,
    detector: Optional[RegionDetector] = None,
    continuous: Optional[bool] = None,
    seed: int = 0,
    feature_highpass_hz: Optional[float] = None,
    n_jobs: int = 1,
    executor: Optional[str] = None,
    cache: Optional[CollectionCache] = None,
    pipeline: Optional[str] = None,
    batch_chunk: Optional[int] = None,
    task: str = "emotion",
) -> FeatureDataset:
    """Run the attack's collection + feature-extraction stages.

    ``feature_highpass_hz`` applies a high-pass on the *feature path*
    before extraction — the paper's Table I ablation, which shows that
    even a 1 Hz filter destroys the raw time-domain feature information.
    The paper's actual attack never filters the feature path.

    ``n_jobs``/``executor`` select the engine's parallel collection path;
    results are identical at any worker count (see
    :mod:`repro.attack.engine`).
    """
    return collect_datasets(
        corpus,
        channel,
        specs=specs,
        detector=detector,
        continuous=continuous,
        seed=seed,
        feature_highpass_hz=feature_highpass_hz,
        n_jobs=n_jobs,
        executor=executor,
        cache=cache,
        pipeline=pipeline,
        batch_chunk=batch_chunk,
        task=task,
    ).features


def collect_spectrogram_dataset(
    corpus: Corpus,
    channel: VibrationChannel,
    specs: Optional[Sequence[UtteranceSpec]] = None,
    detector: Optional[RegionDetector] = None,
    continuous: Optional[bool] = None,
    size: int = 32,
    seed: int = 0,
    n_jobs: int = 1,
    executor: Optional[str] = None,
    cache: Optional[CollectionCache] = None,
    pipeline: Optional[str] = None,
    batch_chunk: Optional[int] = None,
    task: str = "emotion",
) -> SpectrogramDataset:
    """Run the attack's collection + spectrogram-image stages."""
    return collect_datasets(
        corpus,
        channel,
        specs=specs,
        detector=detector,
        continuous=continuous,
        seed=seed,
        size=size,
        n_jobs=n_jobs,
        executor=executor,
        cache=cache,
        pipeline=pipeline,
        batch_chunk=batch_chunk,
        task=task,
    ).spectrograms


class EmoLeakAttack:
    """High-level attack object: scenario in, labelled datasets out.

    Example
    -------
    >>> from repro.datasets import build_tess
    >>> from repro.phone import VibrationChannel
    >>> corpus = build_tess(words_per_emotion=5)
    >>> channel = VibrationChannel("oneplus7t")
    >>> attack = EmoLeakAttack(channel)
    >>> features = attack.collect_features(corpus)
    >>> features.X.shape[1]
    24

    ``n_jobs``/``executor`` fan the collection out over the engine's
    worker pool; ``cache`` registers every pass in a
    :class:`~repro.attack.engine.CollectionCache` so repeated collections
    of the same scenario are free. ``pipeline``/``batch_chunk`` select
    between the batched data plane (the default) and the per-utterance
    reference path — byte-identical under the golden float64 batch
    policy.
    """

    def __init__(
        self,
        channel: VibrationChannel,
        detector: Optional[RegionDetector] = None,
        seed: int = 0,
        n_jobs: int = 1,
        executor: Optional[str] = None,
        cache: Optional[CollectionCache] = None,
        pipeline: Optional[str] = None,
        batch_chunk: Optional[int] = None,
        task: str = "emotion",
    ):
        self.channel = channel
        self.detector = detector or _default_detector(channel)
        self.seed = int(seed)
        self.n_jobs = int(n_jobs)
        self.executor = executor
        self.cache = cache
        self.pipeline = pipeline
        self.batch_chunk = batch_chunk
        self.task = task

    def collect_features(
        self,
        corpus: Corpus,
        specs: Optional[Sequence[UtteranceSpec]] = None,
        continuous: Optional[bool] = None,
    ) -> FeatureDataset:
        """Collect the Table II feature dataset for this scenario."""
        return collect_feature_dataset(
            corpus,
            self.channel,
            specs=specs,
            detector=self.detector,
            continuous=continuous,
            seed=self.seed,
            n_jobs=self.n_jobs,
            executor=self.executor,
            cache=self.cache,
            pipeline=self.pipeline,
            batch_chunk=self.batch_chunk,
            task=self.task,
        )

    def collect_spectrograms(
        self,
        corpus: Corpus,
        specs: Optional[Sequence[UtteranceSpec]] = None,
        continuous: Optional[bool] = None,
        size: int = 32,
    ) -> SpectrogramDataset:
        """Collect the spectrogram-image dataset for this scenario."""
        return collect_spectrogram_dataset(
            corpus,
            self.channel,
            specs=specs,
            detector=self.detector,
            continuous=continuous,
            size=size,
            seed=self.seed,
            n_jobs=self.n_jobs,
            executor=self.executor,
            cache=self.cache,
            pipeline=self.pipeline,
            batch_chunk=self.batch_chunk,
            task=self.task,
        )

    def collect_datasets(
        self,
        corpus: Corpus,
        specs: Optional[Sequence[UtteranceSpec]] = None,
        continuous: Optional[bool] = None,
        size: int = 32,
    ) -> CollectionResult:
        """Collect both datasets from one shared transmit/detect pass."""
        return collect_datasets(
            corpus,
            self.channel,
            specs=specs,
            detector=self.detector,
            continuous=continuous,
            seed=self.seed,
            size=size,
            n_jobs=self.n_jobs,
            executor=self.executor,
            cache=self.cache,
            pipeline=self.pipeline,
            batch_chunk=self.batch_chunk,
            task=self.task,
        )
