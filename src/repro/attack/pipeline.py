"""End-to-end EmoLeak attack orchestration.

Two collection procedures mirror the paper's settings:

- **Per-utterance (table-top / loudspeaker)**: each corpus utterance is
  played and its accelerometer trace analysed individually; utterances
  whose speech region the detector misses are dropped (the paper's ~90 %
  extraction rate).
- **Continuous session (handheld / ear speaker)**: the whole corpus
  subset is played as one continuous recording grouped by emotion, the
  detector runs on the full trace, and regions are labelled from the
  playback log (the paper's >=45 % extraction rate).

Both produce a :class:`FeatureDataset` (Table II features) and/or a
:class:`SpectrogramDataset` (32x32 images) ready for the classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attack.features import FEATURE_NAMES, extract_features
from repro.attack.labeling import label_regions
from repro.attack.regions import RegionDetector
from repro.attack.specimages import region_spectrogram_image
from repro.datasets.base import Corpus, UtteranceSpec
from repro.phone.channel import Placement, VibrationChannel
from repro.phone.recording import record_session

__all__ = [
    "FeatureDataset",
    "SpectrogramDataset",
    "collect_feature_dataset",
    "collect_spectrogram_dataset",
    "EmoLeakAttack",
]


@dataclass
class FeatureDataset:
    """Extracted Table II features with labels and provenance."""

    X: np.ndarray
    y: np.ndarray
    feature_names: Tuple[str, ...] = FEATURE_NAMES
    fs: float = 0.0
    n_played: int = 0

    def __post_init__(self) -> None:
        if self.X.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"X has {self.X.shape[0]} rows but y has {self.y.shape[0]}"
            )

    @property
    def extraction_rate(self) -> float:
        """Fraction of played utterances that yielded a usable region."""
        return self.X.shape[0] / self.n_played if self.n_played else 0.0


@dataclass
class SpectrogramDataset:
    """Region spectrogram images with labels."""

    images: np.ndarray  # (n, size, size, 1)
    y: np.ndarray
    fs: float = 0.0
    n_played: int = 0

    def __post_init__(self) -> None:
        if self.images.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"images has {self.images.shape[0]} rows but y has {self.y.shape[0]}"
            )

    @property
    def extraction_rate(self) -> float:
        return self.images.shape[0] / self.n_played if self.n_played else 0.0


def _default_detector(channel: VibrationChannel) -> RegionDetector:
    return RegionDetector.for_setting(channel.placement.value)


def _iter_region_samples(
    corpus: Corpus,
    channel: VibrationChannel,
    specs: Optional[Sequence[UtteranceSpec]],
    detector: Optional[RegionDetector],
    continuous: Optional[bool],
    seed: int,
):
    """Yield ``(label, region, trace)`` triples for every usable region."""
    detector = detector or _default_detector(channel)
    if continuous is None:
        continuous = channel.placement is Placement.HANDHELD
    specs = list(specs if specs is not None else corpus.specs)

    if continuous:
        session = record_session(corpus, channel, specs=specs, seed=seed)
        regions = detector.detect(session.trace, session.fs)
        for region, label in label_regions(regions, session.events):
            yield label, region, session.trace
        return

    channel.reseed(seed)
    rng = np.random.default_rng(seed + 29)
    for spec in specs:
        audio = corpus.render(spec)
        # Pad with silence so the detector sees the noise floor.
        pad = np.zeros(int(0.3 * corpus.audio_fs))
        audio = np.concatenate([pad, audio, pad])
        trace = channel.transmit(audio, corpus.audio_fs, rng)
        regions = detector.detect(trace, channel.accel_fs)
        if not regions:
            continue
        # One utterance => take the most energetic region.
        best = max(
            regions,
            key=lambda r: float(np.sum((r.slice(trace) - np.mean(r.slice(trace))) ** 2)),
        )
        yield spec.emotion, best, trace


def collect_feature_dataset(
    corpus: Corpus,
    channel: VibrationChannel,
    specs: Sequence[UtteranceSpec] = None,
    detector: RegionDetector = None,
    continuous: bool = None,
    seed: int = 0,
    feature_highpass_hz: float = None,
) -> FeatureDataset:
    """Run the attack's collection + feature-extraction stages.

    ``feature_highpass_hz`` applies a high-pass on the *feature path*
    before extraction — the paper's Table I ablation, which shows that
    even a 1 Hz filter destroys the raw time-domain feature information.
    The paper's actual attack never filters the feature path.
    """
    rows: List[np.ndarray] = []
    labels: List[str] = []
    n_played = len(specs if specs is not None else corpus.specs)
    for label, region, trace in _iter_region_samples(
        corpus, channel, specs, detector, continuous, seed
    ):
        samples = region.slice(trace)
        if samples.size < 4:
            continue
        if feature_highpass_hz is not None and samples.size > 32:
            from repro.dsp.filters import highpass

            samples = highpass(samples, feature_highpass_hz, channel.accel_fs)
        rows.append(extract_features(samples, channel.accel_fs))
        labels.append(label)
    X = np.vstack(rows) if rows else np.empty((0, len(FEATURE_NAMES)))
    return FeatureDataset(
        X=X,
        y=np.array(labels),
        fs=channel.accel_fs,
        n_played=n_played,
    )


def collect_spectrogram_dataset(
    corpus: Corpus,
    channel: VibrationChannel,
    specs: Sequence[UtteranceSpec] = None,
    detector: RegionDetector = None,
    continuous: bool = None,
    size: int = 32,
    seed: int = 0,
) -> SpectrogramDataset:
    """Run the attack's collection + spectrogram-image stages."""
    images: List[np.ndarray] = []
    labels: List[str] = []
    n_played = len(specs if specs is not None else corpus.specs)
    for label, region, trace in _iter_region_samples(
        corpus, channel, specs, detector, continuous, seed
    ):
        if region.end - region.start < 8:
            continue
        images.append(region_spectrogram_image(trace, region, size=size))
        labels.append(label)
    stack = (
        np.stack(images)[..., None] if images else np.empty((0, size, size, 1))
    )
    return SpectrogramDataset(
        images=stack,
        y=np.array(labels),
        fs=channel.accel_fs,
        n_played=n_played,
    )


class EmoLeakAttack:
    """High-level attack object: scenario in, labelled datasets out.

    Example
    -------
    >>> from repro.datasets import build_tess
    >>> from repro.phone import VibrationChannel
    >>> corpus = build_tess(words_per_emotion=5)
    >>> channel = VibrationChannel("oneplus7t")
    >>> attack = EmoLeakAttack(channel)
    >>> features = attack.collect_features(corpus)
    >>> features.X.shape[1]
    24
    """

    def __init__(
        self,
        channel: VibrationChannel,
        detector: RegionDetector = None,
        seed: int = 0,
    ):
        self.channel = channel
        self.detector = detector or _default_detector(channel)
        self.seed = int(seed)

    def collect_features(
        self,
        corpus: Corpus,
        specs: Sequence[UtteranceSpec] = None,
        continuous: bool = None,
    ) -> FeatureDataset:
        """Collect the Table II feature dataset for this scenario."""
        return collect_feature_dataset(
            corpus,
            self.channel,
            specs=specs,
            detector=self.detector,
            continuous=continuous,
            seed=self.seed,
        )

    def collect_spectrograms(
        self,
        corpus: Corpus,
        specs: Sequence[UtteranceSpec] = None,
        continuous: bool = None,
        size: int = 32,
    ) -> SpectrogramDataset:
        """Collect the spectrogram-image dataset for this scenario."""
        return collect_spectrogram_dataset(
            corpus,
            self.channel,
            specs=specs,
            detector=self.detector,
            continuous=continuous,
            size=size,
            seed=self.seed,
        )
