"""Periodic-source music synthesis for the content-ID attack.

Kinetic Song Comprehension (PAPERS.md) identifies *played songs* from
phone motions: music reaching the accelerometer through the chassis is
the same side channel as speech, with a periodic source instead of a
glottal one. This module models a song as a beat-locked harmonic stack
plus percussive transients:

- **Harmonic stack**: a chord of partials at the song's root frequency
  (scaled by the chord's semitone intervals), each partial with a
  geometric amplitude rolloff set by the song's brightness.
- **Beat lock**: the stack's amplitude envelope pumps on the beat grid
  derived from the tempo, so the energy periodicity that survives the
  vibration channel encodes the tempo — the strongest song fingerprint
  at accelerometer rates.
- **Percussive transients**: short noise bursts with sharp exponential
  decay on the song's rhythm pattern (kick/snare-like accents).

:class:`MusicSynthesizer` mirrors the :class:`~repro.speech.synthesizer.
Synthesizer` contract — ``render`` per clip and ``render_batch`` over
many clips with per-clip generators — so the song corpus drops into the
collection engine's data plane (``Corpus.render_batch`` falls back to
per-spec rendering for corpora that override ``render``, keeping the
batched pipeline byte-identical to the per-utterance reference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SongSpec", "SONGS", "MusicSynthesizer", "song_names"]


@dataclass(frozen=True)
class SongSpec:
    """A song's identity-bearing parameters.

    Attributes
    ----------
    name:
        Canonical song identifier (the content-ID label).
    tempo_bpm:
        Beat rate; the dominant low-frequency periodicity.
    root_hz:
        Root frequency of the harmonic stack.
    chord:
        Semitone offsets of the chord tones stacked on the root.
    brightness:
        Geometric rolloff of partial amplitudes in (0, 1); higher keeps
        more energy in upper partials.
    pattern:
        Percussion accents per beat subdivision over one bar of four
        beats at two subdivisions each (8 slots); 0 = silent slot.
    swing:
        Beat-envelope asymmetry in [0, 0.5): how quickly the pumped
        envelope decays after each beat.
    """

    name: str
    tempo_bpm: float
    root_hz: float
    chord: Tuple[int, ...] = (0, 4, 7)
    brightness: float = 0.55
    pattern: Tuple[float, ...] = (1.0, 0.0, 0.6, 0.0, 0.9, 0.0, 0.6, 0.3)
    swing: float = 0.25

    def __post_init__(self) -> None:
        if self.tempo_bpm <= 0:
            raise ValueError("tempo_bpm must be positive")
        if self.root_hz <= 0:
            raise ValueError("root_hz must be positive")
        if not 0.0 < self.brightness < 1.0:
            raise ValueError("brightness must be in (0, 1)")
        if len(self.pattern) != 8:
            raise ValueError("pattern must have 8 subdivision slots")


#: Built-in catalogue: eight songs with distinct tempo/harmony/rhythm
#: fingerprints, spanning the pop/rock/electronic tempo range.
SONGS: Dict[str, SongSpec] = {
    song.name: song
    for song in (
        SongSpec("ballad-62", 62.0, 98.0, (0, 3, 7), 0.45,
                 (1.0, 0.0, 0.0, 0.0, 0.7, 0.0, 0.0, 0.0), 0.18),
        SongSpec("groove-84", 84.0, 110.0, (0, 4, 7, 10), 0.55,
                 (1.0, 0.0, 0.5, 0.4, 0.9, 0.0, 0.5, 0.0), 0.30),
        SongSpec("pop-100", 100.0, 130.8, (0, 4, 7), 0.60,
                 (1.0, 0.0, 0.7, 0.0, 1.0, 0.0, 0.7, 0.0), 0.25),
        SongSpec("anthem-112", 112.0, 146.8, (0, 5, 7), 0.50,
                 (1.0, 0.3, 0.6, 0.3, 0.9, 0.3, 0.6, 0.3), 0.22),
        SongSpec("rock-126", 126.0, 164.8, (0, 7, 12), 0.65,
                 (1.0, 0.0, 0.8, 0.0, 1.0, 0.5, 0.8, 0.0), 0.28),
        SongSpec("dance-128", 128.0, 87.3, (0, 3, 7, 12), 0.70,
                 (1.0, 0.5, 1.0, 0.5, 1.0, 0.5, 1.0, 0.5), 0.35),
        SongSpec("dnb-150", 150.0, 73.4, (0, 3, 10), 0.75,
                 (1.0, 0.0, 0.4, 0.9, 0.2, 0.8, 0.4, 0.0), 0.40),
        SongSpec("punk-168", 168.0, 196.0, (0, 5, 12), 0.68,
                 (1.0, 0.6, 1.0, 0.6, 1.0, 0.6, 1.0, 0.6), 0.32),
    )
}


def song_names() -> Tuple[str, ...]:
    """Canonical names of the built-in song catalogue."""
    return tuple(sorted(SONGS))


class MusicSynthesizer:
    """Render song clips at a fixed audio sampling rate."""

    def __init__(self, fs: float = 8000.0):
        if fs < 2000:
            raise ValueError("synthesis sampling rate must be >= 2000 Hz")
        self.fs = float(fs)

    def _beat_envelope(
        self, n: int, beat_len: float, swing: float, phase: float
    ) -> np.ndarray:
        """Beat-locked pumping envelope: exp decay restarted every beat."""
        t = np.arange(n, dtype=float) + phase * beat_len
        beat_pos = np.mod(t, beat_len) / beat_len
        decay = 3.0 + 9.0 * swing
        return 0.25 + 0.75 * np.exp(-decay * beat_pos)

    def render(
        self,
        song: SongSpec,
        rng: np.random.Generator,
        duration_s: float = 1.6,
        start_beat: Optional[float] = None,
    ) -> np.ndarray:
        """Render one clip of a song to a waveform in [-1, 1].

        Each clip starts at a (random or given) position in the bar and
        carries small per-clip detune/level perturbations, so clips of
        one song vary like excerpts of one recording while the tempo,
        harmony and rhythm fingerprints stay fixed.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        fs = self.fs
        n = int(round(duration_s * fs))
        beat_len = fs * 60.0 / song.tempo_bpm
        if start_beat is None:
            start_beat = float(rng.uniform(0.0, 8.0))
        detune = float(rng.lognormal(0.0, 0.004))
        level_jitter = float(rng.lognormal(0.0, 0.05))

        # Harmonic stack: chord tones x partials, beat-locked amplitude.
        t = np.arange(n, dtype=float)
        phase0 = start_beat * beat_len
        stack = np.zeros(n)
        nyquist = 0.45 * fs
        for semitone in song.chord:
            tone_hz = song.root_hz * detune * 2.0 ** (semitone / 12.0)
            partial = 1
            amp = 1.0
            while partial * tone_hz < nyquist and amp > 0.02:
                freq = partial * tone_hz
                # Fixed per-(tone, partial) phase offset keeps the clip a
                # deterministic function of (song, start position).
                phi = 2.0 * np.pi * freq * (t + phase0) / fs
                stack += amp * np.sin(phi + 0.7 * partial + 0.3 * semitone)
                amp *= song.brightness
                partial += 1
        envelope = self._beat_envelope(n, beat_len, song.swing, start_beat)
        stack *= envelope

        # Percussive transients on the 8-slot bar grid.
        percussion = np.zeros(n)
        slot_len = beat_len / 2.0
        decay_len = max(8, int(0.02 * fs))
        kick = np.exp(-np.arange(decay_len) / (0.004 * fs))
        first_slot = int(np.floor(phase0 / slot_len))
        slot = first_slot
        while (slot + 1) * slot_len - phase0 < n + slot_len:
            accent = song.pattern[slot % len(song.pattern)]
            slot_start = int(round(slot * slot_len - phase0))
            slot += 1
            if accent <= 0.0 or slot_start + 1 >= n:
                continue
            if slot_start < 0:
                continue
            burst = rng.normal(0.0, 1.0, decay_len) * kick
            stop = min(n, slot_start + decay_len)
            percussion[slot_start:stop] += accent * burst[: stop - slot_start]

        wave = stack + 2.2 * percussion
        # Level: normalise to a stable clip RMS with per-clip jitter.
        rms = np.sqrt(np.mean(wave**2))
        if rms > 0:
            wave = wave * (10 ** (-20.0 / 20.0) / rms) * level_jitter
        return np.clip(wave, -1.0, 1.0)

    def render_batch(
        self,
        songs: Sequence[SongSpec],
        rngs: Sequence[np.random.Generator],
        durations_s: Optional[Sequence[float]] = None,
    ) -> List[np.ndarray]:
        """Render many clips, each with its own generator.

        Mirrors ``Synthesizer.render_batch``'s contract: per-item RNG
        streams match the per-clip path exactly, so batched collection
        stays byte-identical to the reference.
        """
        if len(songs) != len(rngs):
            raise ValueError("songs and rngs must have the same length")
        if durations_s is None:
            durations_s = [1.6] * len(songs)
        elif len(durations_s) != len(songs):
            raise ValueError("durations_s must match the number of songs")
        return [
            self.render(song, rng, duration_s=duration)
            for song, rng, duration in zip(songs, rngs, durations_s)
        ]
