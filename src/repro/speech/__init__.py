"""Parametric emotional-speech synthesis substrate.

The paper plays recorded actor speech from the SAVEE, TESS and CREMA-D
corpora through smartphone speakers. Those corpora are audio data we do
not have offline, so this package synthesises emotional speech with a
classic source-filter model whose prosodic controls (fundamental
frequency level and range, intensity, speaking rate, jitter, shimmer,
spectral tilt, breathiness) are conditioned on emotion following the
affective-speech literature the paper's feature set targets. The
synthetic utterances carry emotion in exactly the acoustic dimensions the
EmoLeak features measure, so the attack pipeline downstream is exercised
on the same kind of structure as with the real corpora.
"""

from repro.speech.prosody import (
    EMOTIONS,
    CREMAD_EMOTIONS,
    ProsodyProfile,
    emotion_profile,
    perturbed_profile,
)
from repro.speech.glottal import glottal_source
from repro.speech.formants import VOWELS, formant_filter, vowel_formants
from repro.speech.music import SONGS, MusicSynthesizer, SongSpec, song_names
from repro.speech.phonemes import Syllable, UtterancePlan, plan_utterance
from repro.speech.synthesizer import SpeakerVoice, Synthesizer

__all__ = [
    "SONGS",
    "MusicSynthesizer",
    "SongSpec",
    "song_names",
    "EMOTIONS",
    "CREMAD_EMOTIONS",
    "ProsodyProfile",
    "emotion_profile",
    "perturbed_profile",
    "glottal_source",
    "VOWELS",
    "formant_filter",
    "vowel_formants",
    "Syllable",
    "UtterancePlan",
    "plan_utterance",
    "SpeakerVoice",
    "Synthesizer",
]
