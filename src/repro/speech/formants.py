"""Vocal-tract formant filtering.

A cascade of second-order resonators shapes the glottal source into
vowel-like spectra. Formant targets come from standard vowel tables and
are scaled per speaker to model vocal-tract length differences (female
voices in TESS vs male voices in SAVEE).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy.signal import lfilter

__all__ = ["VOWELS", "vowel_formants", "formant_filter", "formant_filter_batch"]

#: First three formant frequencies (Hz) for a reference adult male voice.
VOWELS = {
    "a": (730.0, 1090.0, 2440.0),
    "e": (530.0, 1840.0, 2480.0),
    "i": (270.0, 2290.0, 3010.0),
    "o": (570.0, 840.0, 2410.0),
    "u": (300.0, 870.0, 2240.0),
    "ae": (660.0, 1720.0, 2410.0),
    "uh": (520.0, 1190.0, 2390.0),
}

#: Typical formant bandwidths (Hz).
_BANDWIDTHS = (80.0, 100.0, 140.0)


def vowel_formants(vowel: str, tract_scale: float = 1.0) -> Tuple[float, ...]:
    """Formant frequencies for ``vowel``, scaled by vocal-tract factor.

    ``tract_scale`` > 1 shortens the tract (raises formants), as for
    female or child voices.
    """
    try:
        base = VOWELS[vowel]
    except KeyError:
        raise ValueError(f"unknown vowel {vowel!r}; known: {sorted(VOWELS)}") from None
    return tuple(f * tract_scale for f in base)


def _resonator_coefficients(freq: float, bandwidth: float, fs: float):
    """Second-order resonator (two-pole) coefficients for lfilter."""
    freq = min(freq, 0.45 * fs)
    r = np.exp(-np.pi * bandwidth / fs)
    theta = 2.0 * np.pi * freq / fs
    a = [1.0, -2.0 * r * np.cos(theta), r * r]
    # Unit gain at the resonance peak (approximately).
    b = [1.0 - r]
    return b, a


def formant_filter(
    source: np.ndarray,
    formants: Sequence[float],
    fs: float,
    bandwidths: Sequence[float] = _BANDWIDTHS,
) -> np.ndarray:
    """Run a source signal through a cascade of formant resonators."""
    source = np.asarray(source, dtype=float)
    if source.ndim != 1:
        raise ValueError(f"expected a 1-D source, got shape {source.shape}")
    out = source
    for i, freq in enumerate(formants):
        bw = bandwidths[i] if i < len(bandwidths) else bandwidths[-1]
        b, a = _resonator_coefficients(freq, bw, fs)
        out = lfilter(b, a, out)
    peak = np.max(np.abs(out))
    if peak > 0:
        out = out / peak
    return out


def formant_filter_batch(
    sources: Sequence[np.ndarray],
    formants_list: Sequence[Sequence[float]],
    fs: float,
    bandwidths: Sequence[float] = _BANDWIDTHS,
) -> list:
    """Batched :func:`formant_filter`, byte-identical per row.

    Rows sharing the same formant targets are zero-padded into one stack
    and run through the resonator cascade with a single ``lfilter`` call
    per formant. The cascade is causal, so each padded row's valid
    prefix is bitwise what the 1-D call produces; the peak used for
    normalization is taken over that prefix only (the filter keeps
    ringing into the padding, which must not influence the result).
    """
    sources = [np.asarray(s, dtype=float) for s in sources]
    if len(sources) != len(formants_list):
        raise ValueError("sources and formants_list must have the same length")
    for i, src in enumerate(sources):
        if src.ndim != 1:
            raise ValueError(f"source {i} must be 1-D, got shape {src.shape}")
    out_rows: list = [None] * len(sources)
    groups: dict = {}
    for idx, formants in enumerate(formants_list):
        groups.setdefault(tuple(formants), []).append(idx)
    for formants, idxs in groups.items():
        lengths = [sources[i].size for i in idxs]
        stack = np.zeros((len(idxs), max(lengths) if lengths else 0))
        for r, i in enumerate(idxs):
            stack[r, : lengths[r]] = sources[i]
        out = stack
        for j, freq in enumerate(formants):
            bw = bandwidths[j] if j < len(bandwidths) else bandwidths[-1]
            b, a = _resonator_coefficients(freq, bw, fs)
            out = lfilter(b, a, out, axis=-1)
        for r, i in enumerate(idxs):
            row = out[r, : lengths[r]]
            peak = np.max(np.abs(row)) if row.size else 0.0
            out_rows[i] = row / peak if peak > 0 else row.copy()
    return out_rows
