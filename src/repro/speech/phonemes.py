"""Utterance planning: syllable sequences with durations and stress.

The corpora the paper plays are short carrier sentences ("Say the word
*back*", per-word TESS items, scripted SAVEE/CREMA-D sentences). We model
an utterance as a sequence of syllables, each a vowel nucleus with an
optional unvoiced (noise-burst) onset, plus inter-syllable pauses. The
emotion's rate/pause modifiers stretch or compress the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.speech.formants import VOWELS

__all__ = ["Syllable", "UtterancePlan", "plan_utterance"]


@dataclass(frozen=True)
class Syllable:
    """One syllable of an utterance plan.

    Attributes
    ----------
    vowel:
        Vowel key into :data:`repro.speech.formants.VOWELS`.
    duration_s:
        Voiced-nucleus duration in seconds (before rate scaling).
    stress:
        Relative prominence in [0.5, 2]; scales local energy and F0.
    onset_noise_s:
        Duration of the unvoiced fricative-like onset, seconds (0 = none).
    """

    vowel: str
    duration_s: float
    stress: float = 1.0
    onset_noise_s: float = 0.03


@dataclass(frozen=True)
class UtterancePlan:
    """A planned utterance: syllables plus pause durations between them."""

    syllables: List[Syllable] = field(default_factory=list)
    pauses_s: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.pauses_s) != max(0, len(self.syllables) - 1):
            raise ValueError(
                "pauses_s must have exactly len(syllables) - 1 entries "
                f"(got {len(self.pauses_s)} for {len(self.syllables)} syllables)"
            )

    @property
    def duration_s(self) -> float:
        """Nominal duration before rate scaling."""
        total = sum(s.duration_s + s.onset_noise_s for s in self.syllables)
        return total + sum(self.pauses_s)


def plan_utterance(
    rng: np.random.Generator,
    n_syllables: Optional[int] = None,
    mean_syllables: float = 5.0,
    carrier: bool = False,
) -> UtterancePlan:
    """Draw an utterance plan.

    With ``carrier=False`` (free speech, SAVEE/CREMA-D style) the
    syllable count is Poisson-ish around ``mean_syllables`` (min 2) and
    every syllable's vowel, duration and stress vary. With
    ``carrier=True`` (TESS's fixed "Say the word ___" frame) the plan is
    a fixed template whose final — target-word — syllable is the only
    strongly variable one, which is what makes the real TESS corpus so
    low-variance.
    """
    vowel_keys = sorted(VOWELS)
    if carrier:
        count = n_syllables if n_syllables is not None else 4
        if count < 2:
            raise ValueError("a carrier plan needs >= 2 syllables")
        syllables = []
        for i in range(count - 1):
            # Fixed carrier syllables: same vowels, stable durations.
            syllables.append(
                Syllable(
                    vowel=vowel_keys[i % len(vowel_keys)],
                    duration_s=0.14,
                    stress=1.0,
                    onset_noise_s=0.025,
                )
            )
        # Variable target word.
        syllables.append(
            Syllable(
                vowel=vowel_keys[int(rng.integers(len(vowel_keys)))],
                duration_s=float(rng.uniform(0.16, 0.22)),
                stress=float(rng.uniform(1.1, 1.3)),
                onset_noise_s=float(rng.uniform(0.02, 0.04)),
            )
        )
        pauses = [0.05] * (count - 1)
        return UtterancePlan(syllables=syllables, pauses_s=pauses)

    if n_syllables is None:
        n_syllables = max(2, int(rng.poisson(mean_syllables)))
    if n_syllables < 1:
        raise ValueError("n_syllables must be >= 1")
    syllables = []
    for _ in range(n_syllables):
        syllables.append(
            Syllable(
                vowel=vowel_keys[int(rng.integers(len(vowel_keys)))],
                duration_s=float(rng.uniform(0.10, 0.24)),
                stress=float(rng.uniform(0.7, 1.4)),
                onset_noise_s=float(rng.uniform(0.01, 0.05)),
            )
        )
    pauses = [float(rng.uniform(0.02, 0.09)) for _ in range(n_syllables - 1)]
    return UtterancePlan(syllables=syllables, pauses_s=pauses)
