"""Glottal source generation for the source-filter synthesizer.

Voiced excitation is a quasi-periodic pulse train whose instantaneous
period follows a supplied F0 contour, with cycle-level jitter (period
perturbation), shimmer (amplitude perturbation), a spectral-tilt low-pass
shaping the pulse, and additive aspiration noise for breathiness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["glottal_source", "rosenberg_pulse"]


def rosenberg_pulse(length: int, open_quotient: float = 0.6) -> np.ndarray:
    """One Rosenberg-style glottal flow-derivative pulse of ``length`` samples.

    A raised-cosine opening phase followed by a sharp closing spike —
    enough structure to give a realistic harmonic rolloff.
    """
    if length < 2:
        return np.array([1.0])
    open_quotient = float(np.clip(open_quotient, 0.2, 0.9))
    n_open = max(1, int(length * open_quotient))
    n_close = max(1, length - n_open)
    opening = 0.5 * (1.0 - np.cos(np.pi * np.arange(n_open) / n_open))
    closing = np.cos(0.5 * np.pi * np.arange(n_close) / n_close)
    pulse = np.concatenate([opening, closing])[:length]
    # Flow derivative: differentiate to get the excitation spike at closure.
    deriv = np.diff(pulse, prepend=0.0)
    peak = np.max(np.abs(deriv))
    return deriv / peak if peak > 0 else deriv


def glottal_source(
    f0_contour: np.ndarray,
    fs: float,
    rng: np.random.Generator,
    jitter: float = 0.01,
    shimmer: float = 0.04,
    tilt_db_per_octave: float = -12.0,
    breathiness: float = 0.08,
) -> np.ndarray:
    """Generate a glottal excitation following an F0 contour.

    Parameters
    ----------
    f0_contour:
        Per-sample fundamental frequency in Hz (values <= 0 mean unvoiced;
        those samples receive only aspiration noise).
    fs:
        Sampling rate in Hz.
    jitter / shimmer:
        Relative per-cycle perturbations of period and amplitude.
    tilt_db_per_octave:
        Spectral tilt applied with a one-pole low-pass whose strength is
        mapped from the tilt value (-18 = dark voice, -6 = bright voice).
    breathiness:
        Aspiration-noise mix in [0, 1].
    """
    f0_contour = np.asarray(f0_contour, dtype=float)
    if f0_contour.ndim != 1:
        raise ValueError(f"expected a 1-D F0 contour, got shape {f0_contour.shape}")
    n = f0_contour.size
    out = np.zeros(n)
    if n == 0:
        return out

    # Place glottal pulses by integrating instantaneous frequency.
    position = 0
    while position < n:
        f0 = f0_contour[position]
        if f0 <= 0:
            position += max(1, int(fs * 0.005))
            continue
        period = fs / f0
        period *= 1.0 + rng.normal(0.0, jitter)
        period = max(2.0, period)
        cycle_len = int(round(period))
        amplitude = 1.0 + rng.normal(0.0, shimmer)
        pulse = rosenberg_pulse(min(cycle_len, n - position))
        out[position : position + pulse.size] += amplitude * pulse
        position += cycle_len

    # Spectral tilt: one-pole low-pass, pole radius mapped from tilt.
    # -6 dB/oct (bright) -> weak pole, -18 dB/oct (dark) -> strong pole.
    tilt = float(np.clip(tilt_db_per_octave, -24.0, -3.0))
    pole = np.clip((-tilt - 3.0) / 21.0, 0.0, 0.95)
    if pole > 1e-3:
        from scipy.signal import lfilter

        out = lfilter([1.0 - pole], [1.0, -pole], out)

    # Aspiration noise, modulated by voicing so pauses stay quiet.
    voiced = (f0_contour > 0).astype(float)
    noise = rng.normal(0.0, 1.0, n) * (0.15 + 0.85 * voiced)
    rms_voice = np.sqrt(np.mean(out**2)) or 1.0
    rms_noise = np.sqrt(np.mean(noise**2)) or 1.0
    mix = float(np.clip(breathiness, 0.0, 1.0))
    out = (1.0 - mix) * out + mix * noise * (rms_voice / rms_noise)
    return out
