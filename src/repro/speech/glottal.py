"""Glottal source generation for the source-filter synthesizer.

Voiced excitation is a quasi-periodic pulse train whose instantaneous
period follows a supplied F0 contour, with cycle-level jitter (period
perturbation), shimmer (amplitude perturbation), a spectral-tilt low-pass
shaping the pulse, and additive aspiration noise for breathiness.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "glottal_source",
    "glottal_source_banked",
    "glottal_source_deferred",
    "glottal_finish_batch",
    "rosenberg_pulse",
]


def rosenberg_pulse(length: int, open_quotient: float = 0.6) -> np.ndarray:
    """One Rosenberg-style glottal flow-derivative pulse of ``length`` samples.

    A raised-cosine opening phase followed by a sharp closing spike —
    enough structure to give a realistic harmonic rolloff.
    """
    if length < 2:
        return np.array([1.0])
    open_quotient = float(np.clip(open_quotient, 0.2, 0.9))
    n_open = max(1, int(length * open_quotient))
    n_close = max(1, length - n_open)
    opening = 0.5 * (1.0 - np.cos(np.pi * np.arange(n_open) / n_open))
    closing = np.cos(0.5 * np.pi * np.arange(n_close) / n_close)
    pulse = np.concatenate([opening, closing])[:length]
    # Flow derivative: differentiate to get the excitation spike at closure.
    deriv = np.diff(pulse, prepend=0.0)
    peak = np.max(np.abs(deriv))
    return deriv / peak if peak > 0 else deriv


#: Memoized read-only Rosenberg pulses keyed by length (default open
#: quotient only). Pulse shapes are deterministic functions of their
#: length, so the bank is shared process-wide; the lock makes concurrent
#: misses from the thread executor build each pulse exactly once.
_PULSE_BANK: Dict[int, np.ndarray] = {}
_PULSE_BANK_LOCK = threading.Lock()


def _banked_pulse(length: int) -> np.ndarray:
    pulse = _PULSE_BANK.get(length)
    if pulse is None:
        with _PULSE_BANK_LOCK:
            pulse = _PULSE_BANK.get(length)
            if pulse is None:
                pulse = rosenberg_pulse(length)
                pulse.setflags(write=False)
                _PULSE_BANK[length] = pulse
    return pulse


def glottal_source(
    f0_contour: np.ndarray,
    fs: float,
    rng: np.random.Generator,
    jitter: float = 0.01,
    shimmer: float = 0.04,
    tilt_db_per_octave: float = -12.0,
    breathiness: float = 0.08,
) -> np.ndarray:
    """Generate a glottal excitation following an F0 contour.

    Parameters
    ----------
    f0_contour:
        Per-sample fundamental frequency in Hz (values <= 0 mean unvoiced;
        those samples receive only aspiration noise).
    fs:
        Sampling rate in Hz.
    jitter / shimmer:
        Relative per-cycle perturbations of period and amplitude.
    tilt_db_per_octave:
        Spectral tilt applied with a one-pole low-pass whose strength is
        mapped from the tilt value (-18 = dark voice, -6 = bright voice).
    breathiness:
        Aspiration-noise mix in [0, 1].
    """
    f0_contour = np.asarray(f0_contour, dtype=float)
    if f0_contour.ndim != 1:
        raise ValueError(f"expected a 1-D F0 contour, got shape {f0_contour.shape}")
    n = f0_contour.size
    out = np.zeros(n)
    if n == 0:
        return out

    # Place glottal pulses by integrating instantaneous frequency.
    position = 0
    while position < n:
        f0 = f0_contour[position]
        if f0 <= 0:
            position += max(1, int(fs * 0.005))
            continue
        period = fs / f0
        period *= 1.0 + rng.normal(0.0, jitter)
        period = max(2.0, period)
        cycle_len = int(round(period))
        amplitude = 1.0 + rng.normal(0.0, shimmer)
        pulse = rosenberg_pulse(min(cycle_len, n - position))
        out[position : position + pulse.size] += amplitude * pulse
        position += cycle_len

    # Spectral tilt: one-pole low-pass, pole radius mapped from tilt.
    # -6 dB/oct (bright) -> weak pole, -18 dB/oct (dark) -> strong pole.
    tilt = float(np.clip(tilt_db_per_octave, -24.0, -3.0))
    pole = np.clip((-tilt - 3.0) / 21.0, 0.0, 0.95)
    if pole > 1e-3:
        from scipy.signal import lfilter

        out = lfilter([1.0 - pole], [1.0, -pole], out)

    # Aspiration noise, modulated by voicing so pauses stay quiet.
    voiced = (f0_contour > 0).astype(float)
    noise = rng.normal(0.0, 1.0, n) * (0.15 + 0.85 * voiced)
    rms_voice = np.sqrt(np.mean(out**2)) or 1.0
    rms_noise = np.sqrt(np.mean(noise**2)) or 1.0
    mix = float(np.clip(breathiness, 0.0, 1.0))
    out = (1.0 - mix) * out + mix * noise * (rms_voice / rms_noise)
    return out


def _flush_run(
    out: np.ndarray, start: int, length: int, amps: Sequence[float]
) -> None:
    """Place a run of equal-length, abutting glottal cycles.

    Pulses in a run tile ``out[start : start + len(amps) * length]``
    without overlap, so one broadcast multiply-add into the reshaped
    view performs exactly the reference's per-cycle
    ``out[p : p + length] += amplitude * pulse`` onto zeros.
    """
    pulse = _PULSE_BANK.get(length)
    if pulse is None:
        pulse = _banked_pulse(length)
    m = len(amps)
    if m == 1:
        view = out[start : start + length]
        np.add(view, pulse * amps[0], out=view)
    else:
        view = out[start : start + m * length].reshape(m, length)
        np.add(view, np.array(amps)[:, None] * pulse, out=view)


class _DeferredGlottal:
    """One syllable's glottal work after the RNG phase, before the tail.

    ``out`` holds the raw pulse train and ``noise`` the unscaled
    aspiration draw; the RNG-free spectral tilt and noise mix run later
    in :func:`glottal_finish_batch`, stacked across many syllables.
    ``noise is None`` marks a degenerate (empty) syllable that is
    already final.
    """

    __slots__ = ("out", "noise", "f0", "tilt_db_per_octave", "breathiness")

    def __init__(self, out, noise, f0, tilt_db_per_octave, breathiness):
        self.out = out
        self.noise = noise
        self.f0 = f0
        self.tilt_db_per_octave = tilt_db_per_octave
        self.breathiness = breathiness


def glottal_source_deferred(
    f0_contour: np.ndarray,
    fs: float,
    rng: np.random.Generator,
    jitter: float = 0.01,
    shimmer: float = 0.04,
    tilt_db_per_octave: float = -12.0,
    breathiness: float = 0.08,
) -> _DeferredGlottal:
    """RNG phase of :func:`glottal_source_banked`.

    Consumes the generator exactly as the reference does (cycle draws,
    stream advance, aspiration draw) and places the pulse train, but
    leaves the RNG-free tail — spectral tilt and the breathiness mix —
    to :func:`glottal_finish_batch`, which runs it stacked over many
    syllables at once.
    """
    f0_contour = np.asarray(f0_contour, dtype=float)
    if f0_contour.ndim != 1:
        raise ValueError(f"expected a 1-D F0 contour, got shape {f0_contour.shape}")
    n = f0_contour.size
    out = np.zeros(n)
    if n == 0:
        return _DeferredGlottal(out, None, f0_contour, tilt_db_per_octave, breathiness)

    # Upper bound on per-cycle draws: two per cycle at the highest F0.
    max_f0 = float(f0_contour.max(initial=0.0))
    block = 2 * (int(n * max(max_f0, 1.0) / fs) + 8)
    state0 = rng.bit_generator.state
    # The cycle walk runs in plain Python floats: IEEE-754 arithmetic is
    # the same either way, and dodging per-element numpy scalars makes
    # the loop several times faster.
    z = rng.standard_normal(block).tolist()
    z_len = block
    used = 0
    # Sparse scalar reads: the walk touches one contour sample per cycle,
    # so item() beats materialising the whole contour as a Python list.
    f0_at = f0_contour.item
    fs_f = float(fs)
    jitter_f = float(jitter)
    shimmer_f = float(shimmer)
    unvoiced_step = max(1, int(fs_f * 0.005))

    # Consecutive cycles that land on the same rounded period form a
    # "run": their pulses abut exactly (the next cycle starts where the
    # previous one ends), so a whole run places with one broadcast
    # multiply-add into a reshaped view instead of one numpy call pair
    # per cycle. Each row still computes 0.0 + amplitude * pulse, so
    # the result is bitwise the reference's slice-adds onto zeros.
    run_start = 0
    run_len = 0
    run_amps: List[float] = []
    position = 0
    while position < n:
        f0 = f0_at(position)
        if f0 <= 0:
            if run_amps:
                _flush_run(out, run_start, run_len, run_amps)
                run_amps = []
                run_len = 0
            position += unvoiced_step
            continue
        if used + 2 > z_len:
            # Exhausted the block (pathological contour): rewind and
            # redraw a bigger one — stream-equivalent by construction.
            rng.bit_generator.state = state0
            block *= 2
            z = rng.standard_normal(block).tolist()
            z_len = block
        period = fs_f / f0
        # 1.0 + x absorbs the sign of a zero, so `jitter * z` matches
        # normal(0.0, jitter) = 0.0 + jitter*z bit for bit.
        period *= 1.0 + jitter_f * z[used]
        used += 1
        if period < 2.0:
            period = 2.0
        step = int(round(period))
        amplitude = 1.0 + shimmer_f * z[used]
        used += 1
        length = n - position
        if step < length:
            length = step
        if length == run_len and position == run_start + len(run_amps) * run_len:
            run_amps.append(amplitude)
        else:
            if run_amps:
                _flush_run(out, run_start, run_len, run_amps)
            run_start = position
            run_len = length
            run_amps = [amplitude]
        position += step
    if run_amps:
        _flush_run(out, run_start, run_len, run_amps)

    # Leave the generator exactly where the reference's scalar draws
    # would have left it.
    rng.bit_generator.state = state0
    if used:
        rng.standard_normal(used)

    noise = rng.normal(0.0, 1.0, n)
    return _DeferredGlottal(out, noise, f0_contour, tilt_db_per_octave, breathiness)


def glottal_finish_batch(works: Sequence[_DeferredGlottal]) -> List[np.ndarray]:
    """RNG-free tail of the banked glottal source, over many syllables.

    The spectral-tilt one-pole filter runs once per distinct pole over a
    padded stack of that pole's rows (end-padding is harmless to a
    causal filter), collapsing one ``lfilter`` call per syllable into one
    per emotion profile. The aspiration mix stays per row: it is a
    handful of elementwise passes whose stacked form would spend more on
    padded copies than it saves in call overhead. Every returned row is
    byte-identical to :func:`glottal_source` finishing that syllable
    alone.
    """
    from scipy.signal import lfilter

    live = [i for i, w in enumerate(works) if w.noise is not None]
    results: List[np.ndarray] = [w.out for w in works]
    if not live:
        return results

    # Spectral tilt, one filter call per distinct pole.
    by_pole: Dict[float, List[int]] = {}
    for i in live:
        tilt = float(np.clip(works[i].tilt_db_per_octave, -24.0, -3.0))
        pole = float(np.clip((-tilt - 3.0) / 21.0, 0.0, 0.95))
        if pole > 1e-3:
            by_pole.setdefault(pole, []).append(i)
    tilted: Dict[int, np.ndarray] = {}
    for pole, idxs in by_pole.items():
        b = [1.0 - pole]
        a = [1.0, -pole]
        if len(idxs) == 1:
            i = idxs[0]
            tilted[i] = lfilter(b, a, works[i].out)
        else:
            sizes = [works[i].out.size for i in idxs]
            stack = np.zeros((len(idxs), max(sizes)))
            for r, i in enumerate(idxs):
                stack[r, : sizes[r]] = works[i].out
            stack = lfilter(b, a, stack, axis=-1)
            for r, i in enumerate(idxs):
                tilted[i] = stack[r, : sizes[r]]

    for i in live:
        w = works[i]
        out = tilted.get(i, w.out)
        voiced = (w.f0 > 0).astype(float)
        noise = w.noise * (0.15 + 0.85 * voiced)
        rms_voice = np.sqrt(np.mean(out**2)) or 1.0
        rms_noise = np.sqrt(np.mean(noise**2)) or 1.0
        mix = float(np.clip(w.breathiness, 0.0, 1.0))
        results[i] = (1.0 - mix) * out + mix * noise * (rms_voice / rms_noise)
    return results


def glottal_source_banked(
    f0_contour: np.ndarray,
    fs: float,
    rng: np.random.Generator,
    jitter: float = 0.01,
    shimmer: float = 0.04,
    tilt_db_per_octave: float = -12.0,
    breathiness: float = 0.08,
) -> np.ndarray:
    """Fast :func:`glottal_source` used by the batched data plane.

    Byte-identical output *and* byte-identical RNG-stream consumption:

    - per-cycle pulses come from the process-wide memoized pulse bank
      instead of being rebuilt (``rosenberg_pulse`` is a pure function
      of length, and pulses never overlap, so slice-adds are exact);
    - the per-cycle ``rng.normal(0.0, s)`` draws are served from one
      block ``standard_normal`` draw (``loc + scale * z`` is how
      ``Generator.normal`` is defined), then the generator state is
      rewound and advanced by exactly the number of scalars the
      reference loop would have consumed — so every draw *after* this
      call sees the same stream.

    Composes :func:`glottal_source_deferred` (the RNG phase) with
    :func:`glottal_finish_batch` (the RNG-free tail); batched callers
    use the two phases directly to stack the tail across syllables.
    ``glottal_source`` itself is kept untouched as the golden reference
    this implementation is parity-tested against.
    """
    work = glottal_source_deferred(
        f0_contour,
        fs,
        rng,
        jitter=jitter,
        shimmer=shimmer,
        tilt_db_per_octave=tilt_db_per_octave,
        breathiness=breathiness,
    )
    return glottal_finish_batch([work])[0]
