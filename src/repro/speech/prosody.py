"""Emotion-conditioned prosody profiles.

Each emotion maps to a :class:`ProsodyProfile` describing how it bends the
speaker's neutral delivery. The directions follow the affective-speech
literature (e.g. Scherer's vocal-affect summaries) that underpins the
feature families in the paper's Table II:

- **anger**: raised F0, wide F0 range, loud, fast, tense voice (low
  jitter/shimmer), flat spectral tilt (bright), sharp energy attacks.
- **happiness**: raised F0, wide range, loud-ish, fast, bright.
- **fear**: high F0, narrow range, fast, breathy/irregular, quieter.
- **sadness**: lowered F0, narrow range, quiet, slow, steep tilt (dark).
- **disgust**: slightly lowered F0, slow, creaky (high jitter).
- **surprise / pleasant surprise**: very high F0, very wide range, fast
  onsets.
- **neutral**: the reference delivery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EMOTIONS",
    "CREMAD_EMOTIONS",
    "ProsodyProfile",
    "emotion_profile",
    "perturbed_profile",
]

#: Canonical seven-emotion set used by SAVEE and TESS (the paper's
#: 14.28 % random-guess settings). CREMA-D drops "surprise".
EMOTIONS = ("angry", "disgust", "fear", "happy", "neutral", "surprise", "sad")

#: Six-emotion set of CREMA-D (random guess 16.67 %).
CREMAD_EMOTIONS = ("angry", "disgust", "fear", "happy", "neutral", "sad")


@dataclass(frozen=True)
class ProsodyProfile:
    """Multiplicative/additive modifiers applied to a neutral delivery.

    Attributes
    ----------
    f0_scale:
        Multiplier on the speaker's base fundamental frequency.
    f0_range_scale:
        Multiplier on the F0 excursion (intonation contour depth).
    energy_db:
        Intensity offset in dB relative to neutral.
    rate_scale:
        Multiplier on speaking rate (>1 = faster, shorter syllables).
    jitter:
        Cycle-to-cycle relative F0 perturbation (voice roughness).
    shimmer:
        Cycle-to-cycle relative amplitude perturbation.
    tilt_db_per_octave:
        Glottal spectral tilt; less negative = brighter/tenser voice.
    breathiness:
        Aspiration-noise mix in the glottal source, [0, 1].
    attack_sharpness:
        Multiplier on syllable-onset steepness (anger/surprise hit hard).
    pause_scale:
        Multiplier on inter-syllable pause durations.
    """

    f0_scale: float = 1.0
    f0_range_scale: float = 1.0
    energy_db: float = 0.0
    rate_scale: float = 1.0
    jitter: float = 0.01
    shimmer: float = 0.04
    tilt_db_per_octave: float = -12.0
    breathiness: float = 0.08
    attack_sharpness: float = 1.0
    pause_scale: float = 1.0


_PROFILES = {
    "neutral": ProsodyProfile(),
    "angry": ProsodyProfile(
        f0_scale=1.32,
        f0_range_scale=1.8,
        energy_db=8.0,
        rate_scale=1.25,
        jitter=0.012,
        shimmer=0.05,
        tilt_db_per_octave=-6.0,
        breathiness=0.04,
        attack_sharpness=2.2,
        pause_scale=0.7,
    ),
    "happy": ProsodyProfile(
        f0_scale=1.25,
        f0_range_scale=1.6,
        energy_db=4.5,
        rate_scale=1.12,
        jitter=0.012,
        shimmer=0.045,
        tilt_db_per_octave=-9.0,
        breathiness=0.07,
        attack_sharpness=1.4,
        pause_scale=0.85,
    ),
    "fear": ProsodyProfile(
        f0_scale=1.40,
        f0_range_scale=0.75,
        energy_db=-1.5,
        rate_scale=1.30,
        jitter=0.030,
        shimmer=0.09,
        tilt_db_per_octave=-11.0,
        breathiness=0.22,
        attack_sharpness=1.1,
        pause_scale=1.1,
    ),
    "sad": ProsodyProfile(
        f0_scale=0.84,
        f0_range_scale=0.55,
        energy_db=-6.0,
        rate_scale=0.78,
        jitter=0.020,
        shimmer=0.07,
        tilt_db_per_octave=-16.0,
        breathiness=0.18,
        attack_sharpness=0.6,
        pause_scale=1.5,
    ),
    "disgust": ProsodyProfile(
        f0_scale=0.92,
        f0_range_scale=0.85,
        energy_db=-2.0,
        rate_scale=0.85,
        jitter=0.035,
        shimmer=0.10,
        tilt_db_per_octave=-13.0,
        breathiness=0.12,
        attack_sharpness=0.8,
        pause_scale=1.25,
    ),
    "surprise": ProsodyProfile(
        f0_scale=1.50,
        f0_range_scale=2.2,
        energy_db=5.5,
        rate_scale=1.18,
        jitter=0.015,
        shimmer=0.05,
        tilt_db_per_octave=-8.0,
        breathiness=0.08,
        attack_sharpness=1.9,
        pause_scale=0.9,
    ),
}

# TESS labels its surprise class "pleasant surprise"; acoustically we treat
# it as the surprise profile.
_ALIASES = {"pleasant_surprise": "surprise", "ps": "surprise", "anger": "angry",
            "happiness": "happy", "sadness": "sad"}


def emotion_profile(emotion: str) -> ProsodyProfile:
    """Return the canonical prosody profile for an emotion label."""
    key = emotion.lower().strip()
    key = _ALIASES.get(key, key)
    try:
        return _PROFILES[key]
    except KeyError:
        raise ValueError(
            f"unknown emotion {emotion!r}; known: {sorted(_PROFILES)}"
        ) from None


def perturbed_profile(
    profile: ProsodyProfile,
    rng: np.random.Generator,
    expressiveness: float = 1.0,
    variability: float = 0.1,
) -> ProsodyProfile:
    """Draw a per-utterance realisation of an emotion profile.

    Parameters
    ----------
    profile:
        The canonical emotion profile.
    expressiveness:
        Scales how far the emotion pulls parameters away from neutral
        (1 = as tabulated; acted corpora like TESS are near or above 1,
        crowd-sourced corpora like CREMA-D are noticeably below).
    variability:
        Relative standard deviation of the per-utterance multiplicative
        noise on each parameter. Higher values blur class boundaries.
    """
    neutral = _PROFILES["neutral"]

    def _blend(value: float, base: float) -> float:
        return base + (value - base) * expressiveness

    def _noisy(value: float, positive: bool = True) -> float:
        factor = float(rng.lognormal(mean=0.0, sigma=variability))
        out = value * factor
        return max(out, 1e-4) if positive else out

    return ProsodyProfile(
        f0_scale=_noisy(_blend(profile.f0_scale, neutral.f0_scale)),
        f0_range_scale=_noisy(_blend(profile.f0_range_scale, neutral.f0_range_scale)),
        energy_db=_blend(profile.energy_db, neutral.energy_db)
        + rng.normal(0.0, 3.0 * variability),
        rate_scale=_noisy(_blend(profile.rate_scale, neutral.rate_scale)),
        jitter=_noisy(_blend(profile.jitter, neutral.jitter)),
        shimmer=_noisy(_blend(profile.shimmer, neutral.shimmer)),
        tilt_db_per_octave=_blend(profile.tilt_db_per_octave, neutral.tilt_db_per_octave)
        + rng.normal(0.0, 2.0 * variability),
        breathiness=float(
            np.clip(_noisy(_blend(profile.breathiness, neutral.breathiness)), 0.0, 0.8)
        ),
        attack_sharpness=_noisy(_blend(profile.attack_sharpness, neutral.attack_sharpness)),
        pause_scale=_noisy(_blend(profile.pause_scale, neutral.pause_scale)),
    )


def profile_names() -> tuple:
    """All canonical emotion labels (internal ordering)."""
    return tuple(sorted(_PROFILES))
