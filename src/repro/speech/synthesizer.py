"""Source-filter utterance renderer.

:class:`Synthesizer` combines a speaker voice, an utterance plan and an
emotion prosody profile into a waveform: per-syllable F0 contours drive
the glottal source, formant resonators shape the spectrum, and an energy
envelope with emotion-dependent attack sharpness modulates intensity.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.speech.formants import formant_filter, formant_filter_batch, vowel_formants
from repro.speech.glottal import (
    glottal_finish_batch,
    glottal_source,
    glottal_source_deferred,
)
from repro.speech.phonemes import UtterancePlan, plan_utterance
from repro.speech.prosody import ProsodyProfile

__all__ = ["SpeakerVoice", "Synthesizer"]


#: Memoized read-only envelope ramps keyed by (start, stop, n, power).
#: ``np.linspace(start, stop, n)`` is exactly ``arange(n) * delta + start``
#: with the endpoint pinned, so the cached ramps are byte-identical to the
#: linspace calls they replace; syllable lengths repeat heavily across a
#: corpus, which makes the cache hit rate high. The cache is bounded LRU:
#: corpora whose segment lengths do not repeat (the music corpus's
#: beat-grid clips, long multi-corpus runs) would otherwise grow a
#: module-global dict without limit. Eviction only ever forces a rebuild,
#: and rebuilds are deterministic, so capping cannot change any value.
#: Races between executor threads at worst rebuild the same array.
_RAMP_CACHE: "OrderedDict[Tuple[float, float, int, Optional[float]], np.ndarray]" = (
    OrderedDict()
)

#: Upper bound on cached ramps. Each entry is one float64 array of a
#: syllable's length (~10^2-10^3 samples), so the cap bounds the cache to
#: a few tens of MB in the worst case while keeping the hit rate of
#: repeating syllable lengths intact.
_RAMP_CACHE_MAX = 4096


def _cached_ramp(
    start: float, stop: float, n: int, power: Optional[float] = None
) -> np.ndarray:
    key = (start, stop, n, power)
    ramp = _RAMP_CACHE.get(key)
    if ramp is None:
        if n == 1:
            ramp = np.array([float(start)])
        else:
            ramp = np.arange(n) * ((stop - start) / (n - 1)) + start
            ramp[-1] = stop
        if power is not None:
            ramp **= power
        ramp.setflags(write=False)
        _RAMP_CACHE[key] = ramp
        if len(_RAMP_CACHE) > _RAMP_CACHE_MAX:
            # Evict least-recently-used entries down to the cap. Guarded
            # against a concurrent pop leaving the dict empty mid-loop.
            while len(_RAMP_CACHE) > _RAMP_CACHE_MAX:
                try:
                    _RAMP_CACHE.popitem(last=False)
                except KeyError:  # pragma: no cover - concurrent eviction
                    break
    else:
        # LRU touch; a concurrent eviction between get and move is benign.
        try:
            _RAMP_CACHE.move_to_end(key)
        except KeyError:  # pragma: no cover - concurrent eviction
            pass
    return ramp


@dataclass(frozen=True)
class SpeakerVoice:
    """A speaker's neutral voice characteristics.

    Attributes
    ----------
    base_f0_hz:
        Neutral mean fundamental frequency (≈110 Hz male, ≈210 Hz female).
    f0_excursion_hz:
        Neutral depth of the intonation contour.
    tract_scale:
        Vocal-tract length factor (>1 raises formants; female ≈ 1.15).
    loudness_db:
        Speaker-level intensity offset.
    """

    base_f0_hz: float = 120.0
    f0_excursion_hz: float = 25.0
    tract_scale: float = 1.0
    loudness_db: float = 0.0

    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        female: bool = False,
        variability: float = 0.08,
    ) -> "SpeakerVoice":
        """Draw a random speaker voice of the given sex."""
        base = 205.0 if female else 118.0
        return cls(
            base_f0_hz=float(base * rng.lognormal(0.0, variability)),
            f0_excursion_hz=float(25.0 * rng.lognormal(0.0, variability)),
            tract_scale=float((1.16 if female else 1.0) * rng.lognormal(0.0, 0.04)),
            loudness_db=float(rng.normal(0.0, 1.5)),
        )


class Synthesizer:
    """Render emotional utterances at a fixed audio sampling rate."""

    def __init__(self, fs: float = 8000.0):
        if fs < 2000:
            raise ValueError("synthesis sampling rate must be >= 2000 Hz")
        self.fs = float(fs)

    def _f0_contour(
        self,
        n: int,
        voice: SpeakerVoice,
        profile: ProsodyProfile,
        stress: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Declination + accent-shaped F0 contour for one syllable."""
        base = voice.base_f0_hz * profile.f0_scale * (0.9 + 0.2 * stress)
        excursion = (
            voice.f0_excursion_hz * profile.f0_range_scale * stress
        )
        # Bitwise-equal fast path for linspace(0, 1, n, endpoint=False).
        t = np.arange(n) * (1.0 / n)
        # Rise-fall accent with a random peak position plus declination.
        peak = rng.uniform(0.25, 0.5)
        accent = np.exp(-0.5 * ((t - peak) / 0.25) ** 2)
        declination = 1.0 - 0.15 * t
        contour = base * declination + excursion * accent
        return np.maximum(contour, 40.0)

    def render(
        self,
        voice: SpeakerVoice,
        profile: ProsodyProfile,
        rng: np.random.Generator,
        plan: Optional[UtterancePlan] = None,
    ) -> np.ndarray:
        """Render one utterance to a waveform in [-1, 1].

        The emotion profile's rate/pause scales stretch the plan, its
        energy offset sets overall level, and its attack sharpness shapes
        syllable onsets — the envelope cues that survive the vibration
        channel.
        """
        if plan is None:
            plan = plan_utterance(rng)
        fs = self.fs
        rate = max(profile.rate_scale, 1e-3)
        pieces = []
        for i, syllable in enumerate(plan.syllables):
            # Unvoiced onset burst.
            n_onset = int(round(syllable.onset_noise_s / rate * fs))
            if n_onset > 0:
                burst = rng.normal(0.0, 0.25, n_onset)
                burst *= _cached_ramp(1.0, 0.2, n_onset)
                pieces.append(burst)
            # Voiced nucleus.
            n_voiced = max(8, int(round(syllable.duration_s / rate * fs)))
            f0 = self._f0_contour(n_voiced, voice, profile, syllable.stress, rng)
            source = glottal_source(
                f0,
                fs,
                rng,
                jitter=profile.jitter,
                shimmer=profile.shimmer,
                tilt_db_per_octave=profile.tilt_db_per_octave,
                breathiness=profile.breathiness,
            )
            formants = vowel_formants(syllable.vowel, voice.tract_scale)
            voiced = formant_filter(source, formants, fs)
            # Attack/decay envelope: sharp attacks for anger/surprise.
            attack_frac = float(np.clip(0.18 / max(profile.attack_sharpness, 0.2), 0.02, 0.45))
            n_attack = max(1, int(n_voiced * attack_frac))
            n_decay = max(1, int(n_voiced * 0.25))
            envelope = np.ones(n_voiced)
            envelope[:n_attack] = _cached_ramp(0.0, 1.0, n_attack, power=0.7)
            envelope[-n_decay:] *= _cached_ramp(1.0, 0.1, n_decay)
            voiced = voiced * envelope * syllable.stress
            pieces.append(voiced)
            # Pause.
            if i < len(plan.pauses_s):
                n_pause = int(round(plan.pauses_s[i] * profile.pause_scale / rate * fs))
                if n_pause > 0:
                    pieces.append(np.zeros(n_pause))
        wave = np.concatenate(pieces) if pieces else np.zeros(int(0.1 * fs))
        # Level: neutral reference scaled by emotion + speaker offsets.
        rms = np.sqrt(np.mean(wave**2))
        if rms > 0:
            target_db = -20.0 + profile.energy_db + voice.loudness_db
            wave = wave * (10 ** (target_db / 20.0) / rms)
        return np.clip(wave, -1.0, 1.0)

    def render_batch(
        self,
        voices: Sequence[SpeakerVoice],
        profiles: Sequence[ProsodyProfile],
        rngs: Sequence[np.random.Generator],
        plans: Optional[Sequence[Optional[UtterancePlan]]] = None,
    ) -> List[np.ndarray]:
        """Render many utterances at once, byte-identical to :meth:`render`.

        Each utterance keeps its own generator, so per-item RNG streams
        match the serial path exactly. The win comes from restructuring
        the work: the RNG-ordered draws (onset bursts, F0 contours, the
        banked glottal source) run in a tight first phase, then *all*
        syllables across the whole batch go through the formant cascade
        as padded stacks grouped by formant targets
        (:func:`repro.speech.formants.formant_filter_batch`), and a final
        phase applies envelopes, concatenation and leveling per item.
        """
        n_items = len(voices)
        if not (len(profiles) == len(rngs) == n_items):
            raise ValueError("voices, profiles and rngs must have the same length")
        if plans is None:
            plans = [None] * n_items
        elif len(plans) != n_items:
            raise ValueError("plans must match the number of voices")
        fs = self.fs

        # Phase 1: per-item planning + glottal sources, serial per item so
        # each generator is consumed in exactly the order render() uses.
        item_pieces = []  # per item: [("arr", waveform) | ("syll", flat index)]
        glottal_works: list = []
        syll_formants: List[tuple] = []
        syll_meta: List[tuple] = []  # (n_voiced, stress, attack_sharpness)
        for voice, profile, rng, plan in zip(voices, profiles, rngs, plans):
            if plan is None:
                plan = plan_utterance(rng)
            rate = max(profile.rate_scale, 1e-3)
            pieces = []
            for i, syllable in enumerate(plan.syllables):
                n_onset = int(round(syllable.onset_noise_s / rate * fs))
                if n_onset > 0:
                    burst = rng.normal(0.0, 0.25, n_onset)
                    burst *= _cached_ramp(1.0, 0.2, n_onset)
                    pieces.append(("arr", burst))
                n_voiced = max(8, int(round(syllable.duration_s / rate * fs)))
                f0 = self._f0_contour(n_voiced, voice, profile, syllable.stress, rng)
                work = glottal_source_deferred(
                    f0,
                    fs,
                    rng,
                    jitter=profile.jitter,
                    shimmer=profile.shimmer,
                    tilt_db_per_octave=profile.tilt_db_per_octave,
                    breathiness=profile.breathiness,
                )
                pieces.append(("syll", len(glottal_works)))
                glottal_works.append(work)
                syll_formants.append(vowel_formants(syllable.vowel, voice.tract_scale))
                syll_meta.append((n_voiced, syllable.stress, profile.attack_sharpness))
                if i < len(plan.pauses_s):
                    n_pause = int(
                        round(plan.pauses_s[i] * profile.pause_scale / rate * fs)
                    )
                    if n_pause > 0:
                        pieces.append(("arr", np.zeros(n_pause)))
            item_pieces.append((pieces, profile, voice))

        # Phase 2: finish the RNG-free glottal tail (spectral tilt +
        # breathiness mix) for every syllable at once, then run one
        # formant cascade pass over the whole batch.
        syll_sources = glottal_finish_batch(glottal_works)
        filtered = (
            formant_filter_batch(syll_sources, syll_formants, fs)
            if syll_sources
            else []
        )

        # Phase 3: envelopes, concatenation, leveling — RNG-free.
        waves: List[np.ndarray] = []
        for pieces, profile, voice in item_pieces:
            arrs = []
            for kind, payload in pieces:
                if kind == "arr":
                    arrs.append(payload)
                else:
                    n_voiced, stress, attack_sharpness = syll_meta[payload]
                    attack_frac = float(
                        np.clip(0.18 / max(attack_sharpness, 0.2), 0.02, 0.45)
                    )
                    n_attack = max(1, int(n_voiced * attack_frac))
                    n_decay = max(1, int(n_voiced * 0.25))
                    envelope = np.ones(n_voiced)
                    envelope[:n_attack] = _cached_ramp(0.0, 1.0, n_attack, power=0.7)
                    envelope[-n_decay:] *= _cached_ramp(1.0, 0.1, n_decay)
                    arrs.append(filtered[payload] * envelope * stress)
            wave = np.concatenate(arrs) if arrs else np.zeros(int(0.1 * fs))
            rms = np.sqrt(np.mean(wave**2))
            if rms > 0:
                target_db = -20.0 + profile.energy_db + voice.loudness_db
                wave = wave * (10 ** (target_db / 20.0) / rms)
            waves.append(np.clip(wave, -1.0, 1.0))
        return waves
