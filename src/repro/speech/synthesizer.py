"""Source-filter utterance renderer.

:class:`Synthesizer` combines a speaker voice, an utterance plan and an
emotion prosody profile into a waveform: per-syllable F0 contours drive
the glottal source, formant resonators shape the spectrum, and an energy
envelope with emotion-dependent attack sharpness modulates intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.speech.formants import formant_filter, vowel_formants
from repro.speech.glottal import glottal_source
from repro.speech.phonemes import UtterancePlan, plan_utterance
from repro.speech.prosody import ProsodyProfile

__all__ = ["SpeakerVoice", "Synthesizer"]


@dataclass(frozen=True)
class SpeakerVoice:
    """A speaker's neutral voice characteristics.

    Attributes
    ----------
    base_f0_hz:
        Neutral mean fundamental frequency (≈110 Hz male, ≈210 Hz female).
    f0_excursion_hz:
        Neutral depth of the intonation contour.
    tract_scale:
        Vocal-tract length factor (>1 raises formants; female ≈ 1.15).
    loudness_db:
        Speaker-level intensity offset.
    """

    base_f0_hz: float = 120.0
    f0_excursion_hz: float = 25.0
    tract_scale: float = 1.0
    loudness_db: float = 0.0

    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        female: bool = False,
        variability: float = 0.08,
    ) -> "SpeakerVoice":
        """Draw a random speaker voice of the given sex."""
        base = 205.0 if female else 118.0
        return cls(
            base_f0_hz=float(base * rng.lognormal(0.0, variability)),
            f0_excursion_hz=float(25.0 * rng.lognormal(0.0, variability)),
            tract_scale=float((1.16 if female else 1.0) * rng.lognormal(0.0, 0.04)),
            loudness_db=float(rng.normal(0.0, 1.5)),
        )


class Synthesizer:
    """Render emotional utterances at a fixed audio sampling rate."""

    def __init__(self, fs: float = 8000.0):
        if fs < 2000:
            raise ValueError("synthesis sampling rate must be >= 2000 Hz")
        self.fs = float(fs)

    def _f0_contour(
        self,
        n: int,
        voice: SpeakerVoice,
        profile: ProsodyProfile,
        stress: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Declination + accent-shaped F0 contour for one syllable."""
        base = voice.base_f0_hz * profile.f0_scale * (0.9 + 0.2 * stress)
        excursion = (
            voice.f0_excursion_hz * profile.f0_range_scale * stress
        )
        t = np.linspace(0.0, 1.0, n, endpoint=False)
        # Rise-fall accent with a random peak position plus declination.
        peak = rng.uniform(0.25, 0.5)
        accent = np.exp(-0.5 * ((t - peak) / 0.25) ** 2)
        declination = 1.0 - 0.15 * t
        contour = base * declination + excursion * accent
        return np.maximum(contour, 40.0)

    def render(
        self,
        voice: SpeakerVoice,
        profile: ProsodyProfile,
        rng: np.random.Generator,
        plan: Optional[UtterancePlan] = None,
    ) -> np.ndarray:
        """Render one utterance to a waveform in [-1, 1].

        The emotion profile's rate/pause scales stretch the plan, its
        energy offset sets overall level, and its attack sharpness shapes
        syllable onsets — the envelope cues that survive the vibration
        channel.
        """
        if plan is None:
            plan = plan_utterance(rng)
        fs = self.fs
        rate = max(profile.rate_scale, 1e-3)
        pieces = []
        for i, syllable in enumerate(plan.syllables):
            # Unvoiced onset burst.
            n_onset = int(round(syllable.onset_noise_s / rate * fs))
            if n_onset > 0:
                burst = rng.normal(0.0, 0.25, n_onset)
                burst *= np.linspace(1.0, 0.2, n_onset)
                pieces.append(burst)
            # Voiced nucleus.
            n_voiced = max(8, int(round(syllable.duration_s / rate * fs)))
            f0 = self._f0_contour(n_voiced, voice, profile, syllable.stress, rng)
            source = glottal_source(
                f0,
                fs,
                rng,
                jitter=profile.jitter,
                shimmer=profile.shimmer,
                tilt_db_per_octave=profile.tilt_db_per_octave,
                breathiness=profile.breathiness,
            )
            formants = vowel_formants(syllable.vowel, voice.tract_scale)
            voiced = formant_filter(source, formants, fs)
            # Attack/decay envelope: sharp attacks for anger/surprise.
            attack_frac = float(np.clip(0.18 / max(profile.attack_sharpness, 0.2), 0.02, 0.45))
            n_attack = max(1, int(n_voiced * attack_frac))
            n_decay = max(1, int(n_voiced * 0.25))
            envelope = np.ones(n_voiced)
            envelope[:n_attack] = np.linspace(0.0, 1.0, n_attack) ** 0.7
            envelope[-n_decay:] *= np.linspace(1.0, 0.1, n_decay)
            voiced = voiced * envelope * syllable.stress
            pieces.append(voiced)
            # Pause.
            if i < len(plan.pauses_s):
                n_pause = int(round(plan.pauses_s[i] * profile.pause_scale / rate * fs))
                if n_pause > 0:
                    pieces.append(np.zeros(n_pause))
        wave = np.concatenate(pieces) if pieces else np.zeros(int(0.1 * fs))
        # Level: neutral reference scaled by emotion + speaker offsets.
        rms = np.sqrt(np.mean(wave**2))
        if rms > 0:
            target_db = -20.0 + profile.energy_db + voice.loudness_db
            wave = wave * (10 ** (target_db / 20.0) / rms)
        return np.clip(wave, -1.0, 1.0)
