"""Labelled metrics registry: counters, gauges and timers.

One :class:`MetricsRegistry` accumulates every measurement of a run.
Metrics are keyed by ``(name, labels)`` so the same instrument can be
sliced per scenario, per executor, per classifier — the question PR 1's
single process-global counter object could not answer.

Merge semantics are chosen so that :meth:`MetricsRegistry.merge` forms a
commutative monoid (associative, commutative, empty registry as
identity), which is what makes the registry safe to combine across
threads and worker processes in any order:

- **counters** add,
- **timers** add totals/counts and take the max of maxima,
- **gauges** take the maximum (high-water merge).

Instances are picklable (the lock is dropped and re-created), so a
process-pool worker can fill a private registry and ship it back to the
parent for merging.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["MetricKey", "MetricsRegistry", "TimerStat", "metric_key"]

#: Canonical metric key: ``(name, sorted (label, value) pairs)``.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def metric_key(name: str, labels: Dict[str, Any]) -> MetricKey:
    """Canonicalise ``(name, labels)`` into a hashable registry key."""
    return (str(name), tuple(sorted((str(k), str(v)) for k, v in labels.items())))


@dataclass
class TimerStat:
    """Aggregate of one timer's observations."""

    total_s: float = 0.0
    count: int = 0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        self.total_s += seconds
        self.count += 1
        if seconds > self.max_s:
            self.max_s = seconds

    def merge(self, other: "TimerStat") -> None:
        self.total_s += other.total_s
        self.count += other.count
        if other.max_s > self.max_s:
            self.max_s = other.max_s

    def copy(self) -> "TimerStat":
        return TimerStat(self.total_s, self.count, self.max_s)


class MetricsRegistry:
    """Thread-safe store of labelled counters, gauges and timers."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._timers: Dict[MetricKey, TimerStat] = {}

    # -- pickling (process-pool workers ship registries back) ---------------
    def __getstate__(self):
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {k: v.copy() for k, v in self._timers.items()},
            }

    def __setstate__(self, state):
        self._lock = threading.Lock()
        self._counters = dict(state["counters"])
        self._gauges = dict(state["gauges"])
        self._timers = {k: v.copy() for k, v in state["timers"].items()}

    # -- instruments --------------------------------------------------------
    def count(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` to the counter ``name`` for this label set."""
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Record a gauge level (merge keeps the high-water mark)."""
        key = metric_key(name, labels)
        with self._lock:
            current = self._gauges.get(key)
            if current is None or value > current:
                self._gauges[key] = value

    def observe(self, name: str, seconds: float, **labels) -> None:
        """Record one timer observation of ``seconds``."""
        key = metric_key(name, labels)
        with self._lock:
            stat = self._timers.get(key)
            if stat is None:
                stat = self._timers[key] = TimerStat()
            stat.observe(seconds)

    # -- accessors ----------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        """The counter's value for one exact label set (0 if absent)."""
        with self._lock:
            return self._counters.get(metric_key(name, labels), 0)

    def counter_total(self, name: str) -> float:
        """The counter summed over every label set."""
        with self._lock:
            return sum(v for (n, _), v in self._counters.items() if n == name)

    def counter_group(self, name: str, label: str) -> Dict[str, float]:
        """The counter summed per value of one label (e.g. per tenant).

        Label sets that do not carry ``label`` are ignored, so
        ``counter_group("frontend.requests", "tenant")`` answers exactly
        the multi-tenant question: how much did each tenant submit?
        """
        grouped: Dict[str, float] = {}
        with self._lock:
            for (n, labels), value in self._counters.items():
                if n != name:
                    continue
                for k, v in labels:
                    if k == label:
                        grouped[v] = grouped.get(v, 0) + value
                        break
        return grouped

    def gauge_value(self, name: str, **labels) -> Optional[float]:
        """The gauge level for one exact label set (None if absent)."""
        with self._lock:
            return self._gauges.get(metric_key(name, labels))

    def gauge_max(self, name: str) -> Optional[float]:
        """The highest level of the gauge across every label set."""
        with self._lock:
            values = [v for (n, _), v in self._gauges.items() if n == name]
        return max(values) if values else None

    def timer(self, name: str, **labels) -> TimerStat:
        """The timer aggregate for one exact label set (empty if absent)."""
        with self._lock:
            stat = self._timers.get(metric_key(name, labels))
            return stat.copy() if stat is not None else TimerStat()

    def timer_total(self, name: str) -> TimerStat:
        """The timer aggregated over every label set."""
        merged = TimerStat()
        with self._lock:
            for (n, _), stat in self._timers.items():
                if n == name:
                    merged.merge(stat)
        return merged

    def timer_names(self) -> List[str]:
        with self._lock:
            return sorted({n for n, _ in self._timers})

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._gauges) + len(self._timers)

    def is_empty(self) -> bool:
        return len(self) == 0

    # -- combination --------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place (and return self).

        Associative and commutative, with the empty registry as identity
        — registries filled concurrently can be combined in any order.
        """
        snapshot = other.snapshot()
        with self._lock:
            for key, value in snapshot["counters"].items():
                self._counters[key] = self._counters.get(key, 0) + value
            for key, value in snapshot["gauges"].items():
                current = self._gauges.get(key)
                if current is None or value > current:
                    self._gauges[key] = value
            for key, stat in snapshot["timers"].items():
                mine = self._timers.get(key)
                if mine is None:
                    self._timers[key] = stat.copy()
                else:
                    mine.merge(stat)
        return self

    def copy(self) -> "MetricsRegistry":
        clone = MetricsRegistry()
        return clone.merge(self)

    def snapshot(self) -> Dict[str, Dict]:
        """Point-in-time copy of every metric (plain dicts)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {k: v.copy() for k, v in self._timers.items()},
            }

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    # -- rendering ----------------------------------------------------------
    def _rows(self) -> Iterator[Tuple[str, str, str]]:
        snap = self.snapshot()
        for (name, labels), stat in sorted(
            snap["timers"].items(), key=lambda kv: -kv[1].total_s
        ):
            yield (
                _format_name(name, labels),
                "timer",
                f"n={stat.count} total={stat.total_s:.3f}s "
                f"mean={stat.mean_s * 1e3:.1f}ms max={stat.max_s * 1e3:.1f}ms",
            )
        for (name, labels), value in sorted(snap["counters"].items()):
            yield (_format_name(name, labels), "counter", f"{value:g}")
        for (name, labels), value in sorted(snap["gauges"].items()):
            yield (_format_name(name, labels), "gauge", f"{value:g}")

    def render_table(self) -> str:
        """Human-readable per-stage table (timers first, by total time)."""
        rows = list(self._rows())
        if not rows:
            return "(no metrics recorded)"
        width = max(len(r[0]) for r in rows)
        lines = [f"{'metric':<{width}}  {'kind':<7}  value"]
        lines.extend(f"{n:<{width}}  {k:<7}  {v}" for n, k, v in rows)
        return "\n".join(lines)


def _format_name(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"
