"""Process-wide observability runtime: the default tracer and registry.

Every layer of the pipeline (engine, eval suite, training loop,
cross-validation) emits spans through :func:`trace` and counters
through :func:`metrics`. The CLI's ``--trace-out`` / ``--metrics``
flags export exactly this state at the end of a run; tests reset it
with :func:`reset_observability`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = ["metrics", "tracer", "trace", "reset_observability"]

_REGISTRY = MetricsRegistry()
_TRACER = Tracer(registry=_REGISTRY)


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY


def tracer() -> Tracer:
    """The process-wide tracer (bound to :func:`metrics`)."""
    return _TRACER


@contextmanager
def trace(name: str, metric_labels: Optional[Dict[str, Any]] = None, **labels):
    """Open a span on the process-wide tracer (see :meth:`Tracer.span`)."""
    with _TRACER.span(name, metric_labels=metric_labels, **labels) as span:
        yield span


def reset_observability() -> None:
    """Clear the process-wide trace and metrics (for tests and the CLI)."""
    _TRACER.clear()
    _REGISTRY.clear()
