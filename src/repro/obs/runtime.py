"""Process-wide observability runtime: the default tracer and registry.

Every layer of the pipeline (engine, eval suite, training loop,
cross-validation) emits spans through :func:`trace` and counters
through :func:`metrics`. The CLI's ``--trace-out`` / ``--metrics``
flags export exactly this state at the end of a run; tests reset it
with :func:`reset_observability`.

Worker capture
--------------

Spans nest through a per-thread stack, so a span opened on a worker
thread (or in a worker process) cannot land under the span that
dispatched the work. :func:`capture_observability` solves this for both
executors the same way: it redirects the *current thread's*
:func:`trace`/:func:`metrics` into a private tracer and registry, the
worker ships the finished :class:`WorkerTrace` back as a plain (and
picklable) value, and the dispatcher folds it into the process-wide
state with :func:`merge_worker_trace` — spans re-parented under the
dispatching span, metrics merged with their original labels.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = [
    "metrics",
    "tracer",
    "trace",
    "reset_observability",
    "WorkerTrace",
    "capture_observability",
    "merge_worker_trace",
]

_REGISTRY = MetricsRegistry()
_TRACER = Tracer(registry=_REGISTRY)

#: Per-thread override installed by :func:`capture_observability`.
_ACTIVE = threading.local()


def metrics() -> MetricsRegistry:
    """The current thread's metrics registry (process-wide by default)."""
    override = getattr(_ACTIVE, "registry", None)
    return override if override is not None else _REGISTRY


def tracer() -> Tracer:
    """The current thread's tracer (process-wide by default)."""
    override = getattr(_ACTIVE, "tracer", None)
    return override if override is not None else _TRACER


@contextmanager
def trace(name: str, metric_labels: Optional[Dict[str, Any]] = None, **labels):
    """Open a span on the current tracer (see :meth:`Tracer.span`)."""
    with tracer().span(name, metric_labels=metric_labels, **labels) as span:
        yield span


@dataclass
class WorkerTrace:
    """One worker's finished spans and metrics, ready to ship back.

    Picklable (spans carry only plain values, the registry re-creates
    its lock), so it crosses process boundaries intact.
    """

    roots: List[Span] = field(default_factory=list)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)


@contextmanager
def capture_observability():
    """Capture this thread's spans/metrics into a private :class:`WorkerTrace`.

    Inside the block, :func:`trace` and :func:`metrics` on *this thread*
    hit a fresh tracer and registry; on exit the yielded
    :class:`WorkerTrace` holds the finished root spans and the filled
    registry (even when the block raises — close your spans with the
    usual ``with trace(...)`` nesting and they are preserved on the
    error path too). Re-entrant: a capture inside a capture restores the
    outer one on exit.
    """
    capture = WorkerTrace()
    local_tracer = Tracer(registry=capture.registry)
    previous = (
        getattr(_ACTIVE, "tracer", None),
        getattr(_ACTIVE, "registry", None),
    )
    _ACTIVE.tracer, _ACTIVE.registry = local_tracer, capture.registry
    try:
        yield capture
    finally:
        _ACTIVE.tracer, _ACTIVE.registry = previous
        capture.roots = local_tracer.roots()


def merge_worker_trace(capture: WorkerTrace, parent: Optional[Span] = None) -> None:
    """Fold a worker's :class:`WorkerTrace` into the current state.

    Spans are adopted (fresh ids) under ``parent`` — or as new roots —
    on the current tracer; the worker registry merges into the current
    registry, so timer observations keep the exact labels the worker
    recorded them with and are counted exactly once.
    """
    metrics().merge(capture.registry)
    tr = tracer()
    for root in capture.roots:
        tr.adopt(root, parent=parent)


def reset_observability() -> None:
    """Clear the process-wide trace and metrics (for tests and the CLI)."""
    _TRACER.clear()
    _REGISTRY.clear()
