"""Observability: span tracing and a labelled metrics registry.

``trace("transmit", scenario=...)`` times a stage as a nested,
exception-safe span; :func:`metrics` accumulates labelled counters,
gauges and timers that merge safely across threads and worker
processes. See :mod:`repro.obs.tracer` and :mod:`repro.obs.metrics`.
"""

from repro.obs.metrics import MetricsRegistry, TimerStat, metric_key
from repro.obs.runtime import (
    WorkerTrace,
    capture_observability,
    merge_worker_trace,
    metrics,
    reset_observability,
    trace,
    tracer,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "MetricsRegistry",
    "TimerStat",
    "metric_key",
    "Span",
    "Tracer",
    "WorkerTrace",
    "capture_observability",
    "merge_worker_trace",
    "metrics",
    "tracer",
    "trace",
    "reset_observability",
]
