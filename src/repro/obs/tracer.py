"""Span-based tracer: nested, exception-safe timing with JSONL export.

A :class:`Span` times one named stage of work; spans nest through a
per-thread stack, so ``trace("cell")`` around a classifier run contains
the ``train`` and ``evaluate`` spans it caused, and an exception inside
a span still records its elapsed time (with ``status="error"``) before
propagating. Finished spans feed their duration into a bound
:class:`~repro.obs.metrics.MetricsRegistry` as a labelled timer, which
is how the per-stage metrics table and the trace stay consistent.

Export formats:

- :meth:`Tracer.export_jsonl` — one JSON object per span (flat records
  with ``span_id``/``parent_id``), machine-readable;
- :meth:`Tracer.render_tree` — a human summary that groups sibling
  spans by name (``render x14  total 0.52s``).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "Tracer"]

_SPAN_IDS = itertools.count(1)


@dataclass
class Span:
    """One timed, named, labelled stage of work."""

    name: str
    labels: Dict[str, Any] = field(default_factory=dict)
    span_id: int = 0
    parent_id: Optional[int] = None
    start_wall: float = 0.0
    duration_s: float = 0.0
    status: str = "ok"
    error: Optional[str] = None
    children: List["Span"] = field(default_factory=list)
    _t0: Optional[float] = field(default=None, repr=False, compare=False)

    def elapsed(self) -> float:
        """Seconds since the span opened (final duration once closed)."""
        if self._t0 is not None:
            return time.perf_counter() - self._t0
        return self.duration_s

    def walk(self) -> Iterator["Span"]:
        """This span then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_record(self) -> Dict[str, Any]:
        """The span's flat JSONL record (children linked by parent_id)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "labels": {k: _jsonable(v) for k, v in self.labels.items()},
            "start": self.start_wall,
            "duration_s": self.duration_s,
            "status": self.status,
            "error": self.error,
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Tracer:
    """Collects spans; one per-thread stack provides the nesting.

    Parameters
    ----------
    registry:
        Optional :class:`MetricsRegistry`; every finished span records a
        timer observation named after the span (label ``status`` plus
        the span's own metric labels).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry
        self._lock = threading.Lock()
        self._roots: List[Span] = []
        self._local = threading.local()

    # -- span lifecycle -----------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, metric_labels: Optional[Dict[str, Any]] = None, **labels):
        """Open a span; exception-safe (errors still record elapsed time).

        ``metric_labels`` overrides the labels attached to the registry
        timer (pass ``{}`` to keep high-cardinality labels — fold/epoch
        indices — out of the metrics while keeping them on the trace).
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(
            name=str(name),
            labels=dict(labels),
            span_id=next(_SPAN_IDS),
            parent_id=parent.span_id if parent else None,
            start_wall=time.time(),
        )
        span._t0 = time.perf_counter()
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.duration_s = time.perf_counter() - span._t0
            span._t0 = None
            stack.pop()
            self._attach(span, parent)
            self._observe(span, metric_labels)

    def record(
        self,
        name: str,
        duration_s: float,
        metric_labels: Optional[Dict[str, Any]] = None,
        **labels,
    ) -> Span:
        """Register an externally timed, already-finished span.

        Attached under the innermost open span of the calling thread —
        the hook for callers that measure a stage themselves (e.g. the
        per-epoch training callback).
        """
        parent = self.current()
        span = Span(
            name=str(name),
            labels=dict(labels),
            span_id=next(_SPAN_IDS),
            parent_id=parent.span_id if parent else None,
            start_wall=time.time() - float(duration_s),
            duration_s=float(duration_s),
        )
        self._attach(span, parent)
        self._observe(span, metric_labels)
        return span

    def adopt(self, span: Span, parent: Optional[Span] = None) -> Span:
        """Attach an externally finished span *tree* (e.g. from a worker).

        Worker threads and processes record their spans on private
        tracers (see :func:`repro.obs.runtime.capture_observability`);
        adopting re-parents the finished tree under ``parent`` (or as a
        new root) with fresh span ids, so ids minted by a worker process
        cannot collide with local ones. Timer observations are *not*
        re-recorded — merge the worker's registry instead, which keeps
        the original metric labels intact.
        """
        self._reid(span, parent.span_id if parent is not None else None)
        self._attach(span, parent)
        return span

    def _reid(self, span: Span, parent_id: Optional[int]) -> None:
        span.span_id = next(_SPAN_IDS)
        span.parent_id = parent_id
        for child in span.children:
            self._reid(child, span.span_id)

    def _attach(self, span: Span, parent: Optional[Span]) -> None:
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    def _observe(self, span: Span, metric_labels: Optional[Dict[str, Any]]) -> None:
        if self.registry is None:
            return
        labels = dict(span.labels if metric_labels is None else metric_labels)
        labels["status"] = span.status
        self.registry.observe(span.name, span.duration_s, **labels)

    # -- inspection ---------------------------------------------------------
    def roots(self) -> List[Span]:
        """Snapshot of the finished top-level spans."""
        with self._lock:
            return list(self._roots)

    def spans(self) -> Iterator[Span]:
        """Every finished span, depth-first from each root."""
        for root in self.roots():
            yield from root.walk()

    def find(self, name: str) -> List[Span]:
        """Every finished span with this name."""
        return [s for s in self.spans() if s.name == name]

    def span_names(self) -> List[str]:
        return sorted({s.name for s in self.spans()})

    def clear(self) -> None:
        """Drop finished spans (open spans on any thread are unaffected)."""
        with self._lock:
            self._roots.clear()

    # -- export -------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The whole trace as JSON Lines (one flat record per span)."""
        return "\n".join(json.dumps(s.to_record()) for s in self.spans())

    def export_jsonl(self, path) -> int:
        """Write the trace to ``path``; returns the number of spans."""
        records = self.to_jsonl()
        with open(path, "w") as fh:
            if records:
                fh.write(records + "\n")
        return records.count("\n") + 1 if records else 0

    def render_tree(self, max_depth: int = 6) -> str:
        """Human summary: sibling spans grouped by name at each level."""
        lines: List[str] = []
        self._render_level(self.roots(), 0, max_depth, lines)
        return "\n".join(lines) if lines else "(no spans recorded)"

    def _render_level(
        self, spans: List[Span], depth: int, max_depth: int, lines: List[str]
    ) -> None:
        if not spans or depth >= max_depth:
            return
        groups: Dict[str, List[Span]] = {}
        for span in spans:
            groups.setdefault(span.name, []).append(span)
        indent = "  " * depth
        for name, members in groups.items():
            total = sum(s.duration_s for s in members)
            errors = sum(1 for s in members if s.status != "ok")
            if len(members) == 1:
                span = members[0]
                extra = "".join(f" {k}={v}" for k, v in span.labels.items())
                line = f"{indent}{name}{extra}  {span.duration_s:.3f}s"
            else:
                longest = max(s.duration_s for s in members)
                line = (
                    f"{indent}{name} x{len(members)}  total {total:.3f}s  "
                    f"max {longest:.3f}s"
                )
            if errors:
                line += f"  [{errors} error{'s' if errors > 1 else ''}]"
            lines.append(line)
            children = [c for s in members for c in s.children]
            self._render_level(children, depth + 1, max_depth, lines)
