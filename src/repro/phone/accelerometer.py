"""MEMS accelerometer ADC model.

The sensor front end is where the side channel becomes a data stream:

- the proof mass tracks chassis vibration to several kilohertz, but the
  output data rate is only a few hundred hertz and there is **no acoustic
  anti-aliasing filter**, so speech-band vibration folds into the output
  band (:func:`repro.dsp.resample.sample_and_decimate`);
- a gravity component rides on the sensitive (Z) axis;
- thermal-mechanical noise sets the resolution floor;
- the digital output is quantised to the sensor's LSB and clipped at its
  full-scale range.

Android 12's privacy cap is expressed by constructing the sensor with
``fs=200`` (ablation A1 / paper Section VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dsp.resample import sample_and_decimate

__all__ = ["Accelerometer"]

GRAVITY = 9.80665


@dataclass(frozen=True)
class Accelerometer:
    """Accelerometer output model (single sensitive axis).

    Attributes
    ----------
    fs:
        Output data rate in Hz (the Physics Toolbox default on the
        paper's phones is ≈400–500 Hz; Android 12 caps background apps
        at 200 Hz).
    noise_rms:
        RMS of the white sensor-noise floor, m/s^2.
    lsb:
        Quantisation step, m/s^2 (typical MEMS parts: ~0.0012 for a
        16-bit ±4 g range).
    full_scale:
        Clipping range, m/s^2 (±4 g default).
    include_gravity:
        Add the 1 g static offset on the sensitive axis (the paper's raw
        Z-axis traces sit near -9.8 / +9.8 m/s^2, Fig. 3b/4a).
    """

    fs: float = 420.0
    noise_rms: float = 0.0035
    lsb: float = 0.0012
    full_scale: float = 4.0 * GRAVITY
    include_gravity: bool = True

    def __post_init__(self) -> None:
        if self.fs <= 0:
            raise ValueError("sampling rate must be positive")
        if self.noise_rms < 0 or self.lsb < 0:
            raise ValueError("noise_rms and lsb must be non-negative")

    def sample(
        self,
        vibration: np.ndarray,
        fs_in: float,
        rng: np.random.Generator,
        slow_component: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Digitise a high-rate vibration waveform.

        Parameters
        ----------
        vibration:
            Chassis acceleration at the sensor site, sampled at ``fs_in``.
        slow_component:
            Optional additional low-frequency acceleration (hand motion,
            envelope-coupled drift) at the same rate, added *before*
            sampling.
        """
        vibration = np.asarray(vibration, dtype=float)
        if vibration.ndim != 1:
            raise ValueError(f"expected a 1-D signal, got shape {vibration.shape}")
        total = vibration
        if slow_component is not None:
            slow_component = np.asarray(slow_component, dtype=float)
            if slow_component.shape != vibration.shape:
                raise ValueError(
                    "slow_component shape "
                    f"{slow_component.shape} != vibration shape {vibration.shape}"
                )
            total = total + slow_component
        phase = float(rng.uniform(0.0, 1.0))
        sampled = sample_and_decimate(total, fs_in, self.fs, phase=phase)
        if self.include_gravity:
            sampled = sampled + GRAVITY
        if self.noise_rms > 0:
            sampled = sampled + rng.normal(0.0, self.noise_rms, sampled.size)
        if self.lsb > 0:
            sampled = np.round(sampled / self.lsb) * self.lsb
        return np.clip(sampled, -self.full_scale, self.full_scale)
