"""Handheld motion noise and envelope-coupled drift.

Two low-frequency processes distinguish the handheld/ear-speaker setting
from table-top:

1. **Hand/body motion** — physiological tremor (2-8 Hz) plus postural
   sway (0.1-1.5 Hz), essentially all below 8 Hz. This is why the paper
   applies an 8 Hz high-pass *only on the region-detection path* in the
   handheld setting (Fig. 4), and why table-top data needs no filter.

2. **Envelope-coupled drift** — with the phone pressed against the head,
   sustained speaker drive couples into very slow chassis orientation /
   pressure changes roughly proportional to the speech intensity
   envelope. This sub-1 Hz component is what gives the raw time-domain
   features (min/mean/max/CV) their information in Table I, and why even
   a 1 Hz high-pass destroys that information.

:class:`HandheldMotion` holds the configuration;
:class:`MotionProcess` is the stateful realisation. A session is
transmitted chunk-by-chunk (utterance at a time), so the process keeps
absolute time and filter state across chunks — the noise is one
continuous waveform, not independent per-chunk draws (which would put
discontinuity energy above 8 Hz at every chunk boundary).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import lfilter

from repro.dsp.envelope import moving_rms

__all__ = ["HandheldMotion", "MotionProcess"]


@dataclass(frozen=True)
class HandheldMotion:
    """Handheld-setting low-frequency acceleration parameters.

    Attributes
    ----------
    tremor_rms:
        RMS of physiological tremor (2-7.5 Hz band), m/s^2.
    sway_rms:
        RMS of postural sway / slow arm drift (0.1-1.5 Hz band), m/s^2.
    envelope_coupling:
        Gain from the speaker drive-force envelope to sub-1 Hz chassis
        drift, m/s^2 per unit force envelope. At ear-speaker drive
        levels (force envelope ~0.01) the default yields ~0.05-0.1 m/s^2
        of loudness-proportional drift — comparable to postural sway but,
        unlike sway, *correlated with the speech intensity*, which is
        what gives the raw min/mean/max features their Table I
        information.
    """

    tremor_rms: float = 0.025
    sway_rms: float = 0.03
    envelope_coupling: float = 18.0


class MotionProcess:
    """A continuous realisation of the handheld motion processes.

    Band-limited noise is a sum of random-phase sinusoids with
    frequencies drawn inside the band — zero out-of-band energy by
    construction, so the 8 Hz detection high-pass removes it exactly
    (filtering white noise into a 2-8 Hz band at an 8 kHz rate is
    numerically hopeless on short chunks). Absolute time advances across
    :meth:`advance` calls so consecutive chunks join smoothly, and the
    drift smoother keeps its one-pole filter state between chunks.
    """

    _N_COMPONENTS = 32

    def __init__(self, config: HandheldMotion, rng: np.random.Generator):
        self.config = config
        self._t_samples = 0
        self._tremor = self._draw_components(rng, 2.0, 7.5, config.tremor_rms)
        self._sway = self._draw_components(rng, 0.1, 1.5, config.sway_rms)
        self._drift_state = None  # lfilter zi for the one-pole smoother

    def _draw_components(self, rng, low_hz, high_hz, rms):
        freqs = rng.uniform(low_hz, high_hz, self._N_COMPONENTS)
        phases = rng.uniform(0.0, 2.0 * np.pi, self._N_COMPONENTS)
        amp = rms * np.sqrt(2.0 / self._N_COMPONENTS)
        return freqs, phases, amp

    def _tone_sum(self, components, t: np.ndarray) -> np.ndarray:
        freqs, phases, amp = components
        out = np.zeros(t.size)
        for f, phi in zip(freqs, phases):
            out += np.cos(2.0 * np.pi * f * t + phi)
        return amp * out

    def advance(self, n: int, fs: float) -> np.ndarray:
        """Next ``n`` samples of hand/body motion acceleration."""
        if n <= 0:
            return np.zeros(0)
        t = (self._t_samples + np.arange(n)) / fs
        self._t_samples += n
        out = np.zeros(n)
        if self.config.tremor_rms > 0:
            out += self._tone_sum(self._tremor, t)
        if self.config.sway_rms > 0:
            out += self._tone_sum(self._sway, t)
        return out

    def drift(self, force: np.ndarray, fs: float) -> np.ndarray:
        """Sub-1 Hz drift proportional to the drive-force envelope.

        A fast moving-RMS envelope is smoothed by a one-pole low-pass
        (~0.4 Hz) whose state persists across chunks, so the drift is
        continuous over a whole recording session.
        """
        force = np.asarray(force, dtype=float)
        if force.size == 0 or self.config.envelope_coupling == 0:
            return np.zeros(force.size)
        fast = moving_rms(force - force.mean(), max(3, int(0.25 * fs)))
        pole = np.exp(-2.0 * np.pi * 0.4 / fs)
        b, a = [1.0 - pole], [1.0, -pole]
        if self._drift_state is None:
            self._drift_state = np.array([fast[0] * pole])
        slow, self._drift_state = lfilter(b, a, fast, zi=self._drift_state)
        return self.config.envelope_coupling * np.maximum(slow, 0.0)
