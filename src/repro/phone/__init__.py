"""Smartphone vibration-channel substrate.

Models the physical path the EmoLeak attack exploits: audio driven
through a phone speaker shakes the chassis/motherboard, and the
zero-permission accelerometer — whose MEMS proof mass responds far above
its output data rate — records an aliased, noisy, low-rate projection of
that vibration.

Components:

- :mod:`repro.phone.speaker` — loudspeaker vs ear-speaker drive models
  (level, low-frequency rolloff, mild compressive nonlinearity).
- :mod:`repro.phone.chassis` — conductive surface transfer (structural
  resonance band-pass + attenuation).
- :mod:`repro.phone.accelerometer` — the ADC: anti-alias-free sampling,
  gravity offset, noise floor, quantisation, full-scale clipping; the
  Android-12 200 Hz cap is a constructor parameter (ablation A1).
- :mod:`repro.phone.motion` — handheld hand-tremor / body-sway noise and
  the slow envelope-coupled drift that carries the sub-1 Hz emotional
  level cues (Table I).
- :mod:`repro.phone.devices` — per-device profiles for the six phones in
  the paper's evaluation.
- :mod:`repro.phone.channel` — the end-to-end
  :class:`~repro.phone.channel.VibrationChannel`.
- :mod:`repro.phone.recording` — continuous playback sessions with
  emotion playback logs (the labelling mechanism of Section IV-B1).
"""

from repro.phone.speaker import SpeakerModel, loudspeaker_model, ear_speaker_model
from repro.phone.chassis import ChassisTransfer
from repro.phone.accelerometer import Accelerometer
from repro.phone.gyroscope import Gyroscope
from repro.phone.triaxial import TriaxialAccelerometer
from repro.phone.environment import EnvironmentNoise, ENVIRONMENTS, get_environment
from repro.phone.motion import HandheldMotion, MotionProcess
from repro.phone.devices import DeviceProfile, DEVICES, get_device
from repro.phone.channel import VibrationChannel, SpeakerMode, Placement
from repro.phone.recording import PlaybackEvent, RecordingSession, record_session

__all__ = [
    "SpeakerModel",
    "loudspeaker_model",
    "ear_speaker_model",
    "ChassisTransfer",
    "Accelerometer",
    "Gyroscope",
    "TriaxialAccelerometer",
    "EnvironmentNoise",
    "ENVIRONMENTS",
    "get_environment",
    "HandheldMotion",
    "MotionProcess",
    "DeviceProfile",
    "DEVICES",
    "get_device",
    "VibrationChannel",
    "SpeakerMode",
    "Placement",
    "PlaybackEvent",
    "RecordingSession",
    "record_session",
]
