"""End-to-end vibration channel: audio waveform in, accelerometer trace out.

:class:`VibrationChannel` composes the speaker drive, chassis transfer,
handheld motion processes and the accelerometer ADC according to the
scenario (device x speaker mode x placement), mirroring the paper's four
data-collection configurations:

- **loudspeaker / table-top** (Tables III-V): strong drive, no body
  motion, no filtering needed anywhere;
- **ear speaker / handheld** (Table VI): ~25 dB weaker drive, hand/body
  motion below 8 Hz, plus the sub-1 Hz envelope-coupled drift that
  carries the Table I raw-feature information.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.phone.accelerometer import Accelerometer
from repro.phone.chassis import ChassisTransfer
from repro.phone.devices import DeviceProfile, get_device
from repro.phone.motion import HandheldMotion, MotionProcess
from repro.phone.speaker import SpeakerModel, ear_speaker_model, loudspeaker_model

__all__ = ["SpeakerMode", "Placement", "VibrationChannel"]


class SpeakerMode(str, enum.Enum):
    """Which speaker plays the audio."""

    LOUDSPEAKER = "loudspeaker"
    EAR_SPEAKER = "ear_speaker"


class Placement(str, enum.Enum):
    """How the phone is held during collection."""

    TABLE_TOP = "table_top"
    HANDHELD = "handheld"


@dataclass
class VibrationChannel:
    """Audio-to-accelerometer simulation for one scenario.

    Parameters
    ----------
    device:
        Device profile or canonical name.
    mode:
        Loudspeaker or ear speaker.
    placement:
        Table-top or handheld (the paper pairs loudspeaker with table-top
        and ear speaker with handheld; other pairings are allowed for
        ablations).
    sample_rate:
        Override of the accelerometer output rate (e.g. 200 for the
        Android-12 cap ablation). ``None`` uses the device default.
    sensor:
        ``"accelerometer"`` (the paper's choice) or ``"gyroscope"``
        (the weaker alternative, for the Section III-B1 sensor-choice
        ablation).
    environment:
        Optional ambient-environment name (``quiet_room``,
        ``busy_office``, ``vehicle``) or an
        :class:`~repro.phone.environment.EnvironmentNoise` instance —
        the paper's future-work "various environments" extension.
        ``None`` means an ideal vibration-free surface.
    seed:
        Seed for the channel's noise processes.
    """

    device: DeviceProfile
    mode: SpeakerMode = SpeakerMode.LOUDSPEAKER
    placement: Placement = Placement.TABLE_TOP
    sample_rate: Optional[float] = None
    sensor: str = "accelerometer"
    environment: Optional[object] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.device, str):
            self.device = get_device(self.device)
        self.mode = SpeakerMode(self.mode)
        self.placement = Placement(self.placement)
        if self.mode is SpeakerMode.LOUDSPEAKER:
            self._speaker: SpeakerModel = loudspeaker_model(self.device.loud_gain)
        else:
            self._speaker = ear_speaker_model(self.device.ear_gain)
        self._chassis = ChassisTransfer(
            resonance_hz=self.device.resonance_hz,
            q_factor=self.device.q_factor,
        )
        fs_out = float(self.sample_rate or self.device.accel_fs)
        if self.sensor == "accelerometer":
            self._accel = Accelerometer(fs=fs_out, noise_rms=self.device.noise_rms)
        elif self.sensor == "gyroscope":
            from repro.phone.gyroscope import Gyroscope

            self._accel = Gyroscope(fs=fs_out)
        else:
            raise ValueError(
                f"sensor must be 'accelerometer' or 'gyroscope', got {self.sensor!r}"
            )
        if isinstance(self.environment, str):
            from repro.phone.environment import get_environment

            self.environment = get_environment(self.environment)
        self._motion_config = HandheldMotion()
        self._rng = np.random.default_rng(self.seed)
        self._motion = MotionProcess(
            self._motion_config, np.random.default_rng(self.seed + 101)
        )

    @property
    def accel_fs(self) -> float:
        """Accelerometer output rate of this channel, Hz."""
        return self._accel.fs

    def reseed(self, seed: int) -> None:
        """Reset the channel noise RNG and motion process (new session)."""
        self._rng = np.random.default_rng(seed)
        self._motion = MotionProcess(
            self._motion_config, np.random.default_rng(seed + 101)
        )

    def transmit(
        self,
        audio: np.ndarray,
        audio_fs: float,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Play ``audio`` through the scenario and return the accel trace.

        Returns the sensitive-axis accelerometer samples at
        :attr:`accel_fs`, gravity offset included.
        """
        audio = np.asarray(audio, dtype=float)
        if audio.ndim != 1:
            raise ValueError(f"expected a 1-D audio signal, got shape {audio.shape}")
        if rng is None:
            rng = self._rng
        force = self._speaker.drive(audio, audio_fs)
        vibration = self._chassis.transfer(force, audio_fs)
        slow = np.zeros_like(vibration)
        if self.placement is Placement.HANDHELD:
            slow = slow + self._motion.advance(vibration.size, audio_fs)
            # Envelope-coupled drift scales with the *drive* level so the
            # louder an emotional delivery, the larger the slow offset.
            slow = slow + self._motion.drift(force, audio_fs)
        if self.environment is not None:
            slow = slow + self.environment.noise(vibration.size, audio_fs, rng)
        return self._accel.sample(vibration, audio_fs, rng, slow_component=slow)
