"""End-to-end vibration channel: audio waveform in, accelerometer trace out.

:class:`VibrationChannel` composes the speaker drive, chassis transfer,
handheld motion processes and the accelerometer ADC according to the
scenario (device x speaker mode x placement), mirroring the paper's four
data-collection configurations:

- **loudspeaker / table-top** (Tables III-V): strong drive, no body
  motion, no filtering needed anywhere;
- **ear speaker / handheld** (Table VI): ~25 dB weaker drive, hand/body
  motion below 8 Hz, plus the sub-1 Hz envelope-coupled drift that
  carries the Table I raw-feature information.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy.signal import lfilter

from repro.dsp.filters import (
    _length_buckets,
    cached_butter_highpass,
    sosfilt_zero_phase_batch,
)
from repro.phone.accelerometer import Accelerometer
from repro.phone.chassis import ChassisTransfer
from repro.phone.devices import DeviceProfile, get_device
from repro.phone.motion import HandheldMotion, MotionProcess
from repro.phone.speaker import SpeakerModel, ear_speaker_model, loudspeaker_model

__all__ = ["SpeakerMode", "Placement", "VibrationChannel"]


class SpeakerMode(str, enum.Enum):
    """Which speaker plays the audio."""

    LOUDSPEAKER = "loudspeaker"
    EAR_SPEAKER = "ear_speaker"


class Placement(str, enum.Enum):
    """How the phone is held during collection."""

    TABLE_TOP = "table_top"
    HANDHELD = "handheld"


@dataclass
class VibrationChannel:
    """Audio-to-accelerometer simulation for one scenario.

    Parameters
    ----------
    device:
        Device profile or canonical name.
    mode:
        Loudspeaker or ear speaker.
    placement:
        Table-top or handheld (the paper pairs loudspeaker with table-top
        and ear speaker with handheld; other pairings are allowed for
        ablations).
    sample_rate:
        Override of the accelerometer output rate (e.g. 200 for the
        Android-12 cap ablation). ``None`` uses the device default.
    sensor:
        ``"accelerometer"`` (the paper's choice) or ``"gyroscope"``
        (the weaker alternative, for the Section III-B1 sensor-choice
        ablation).
    environment:
        Optional ambient-environment name (``quiet_room``,
        ``busy_office``, ``vehicle``) or an
        :class:`~repro.phone.environment.EnvironmentNoise` instance —
        the paper's future-work "various environments" extension.
        ``None`` means an ideal vibration-free surface.
    seed:
        Seed for the channel's noise processes.
    """

    device: DeviceProfile
    mode: SpeakerMode = SpeakerMode.LOUDSPEAKER
    placement: Placement = Placement.TABLE_TOP
    sample_rate: Optional[float] = None
    sensor: str = "accelerometer"
    environment: Optional[object] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.device, str):
            self.device = get_device(self.device)
        self.mode = SpeakerMode(self.mode)
        self.placement = Placement(self.placement)
        if self.mode is SpeakerMode.LOUDSPEAKER:
            self._speaker: SpeakerModel = loudspeaker_model(self.device.loud_gain)
        else:
            self._speaker = ear_speaker_model(self.device.ear_gain)
        self._chassis = ChassisTransfer(
            resonance_hz=self.device.resonance_hz,
            q_factor=self.device.q_factor,
        )
        fs_out = float(self.sample_rate or self.device.accel_fs)
        if self.sensor == "accelerometer":
            self._accel = Accelerometer(fs=fs_out, noise_rms=self.device.noise_rms)
        elif self.sensor == "gyroscope":
            from repro.phone.gyroscope import Gyroscope

            self._accel = Gyroscope(fs=fs_out)
        else:
            raise ValueError(
                f"sensor must be 'accelerometer' or 'gyroscope', got {self.sensor!r}"
            )
        if isinstance(self.environment, str):
            from repro.phone.environment import get_environment

            self.environment = get_environment(self.environment)
        self._motion_config = HandheldMotion()
        self._rng = np.random.default_rng(self.seed)
        self._motion = MotionProcess(
            self._motion_config, np.random.default_rng(self.seed + 101)
        )

    @property
    def accel_fs(self) -> float:
        """Accelerometer output rate of this channel, Hz."""
        return self._accel.fs

    def reseed(self, seed: int) -> None:
        """Reset the channel noise RNG and motion process (new session)."""
        self._rng = np.random.default_rng(seed)
        self._motion = MotionProcess(
            self._motion_config, np.random.default_rng(seed + 101)
        )

    def transmit(
        self,
        audio: np.ndarray,
        audio_fs: float,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Play ``audio`` through the scenario and return the accel trace.

        Returns the sensitive-axis accelerometer samples at
        :attr:`accel_fs`, gravity offset included.
        """
        audio = np.asarray(audio, dtype=float)
        if audio.ndim != 1:
            raise ValueError(f"expected a 1-D audio signal, got shape {audio.shape}")
        if rng is None:
            rng = self._rng
        force = self._speaker.drive(audio, audio_fs)
        vibration = self._chassis.transfer(force, audio_fs)
        slow = np.zeros_like(vibration)
        if self.placement is Placement.HANDHELD:
            slow = slow + self._motion.advance(vibration.size, audio_fs)
            # Envelope-coupled drift scales with the *drive* level so the
            # louder an emotional delivery, the larger the slow offset.
            slow = slow + self._motion.drift(force, audio_fs)
        if self.environment is not None:
            slow = slow + self.environment.noise(vibration.size, audio_fs, rng)
        return self._accel.sample(vibration, audio_fs, rng, slow_component=slow)

    def transmit_batch(
        self,
        audios: Sequence[np.ndarray],
        audio_fs: float,
        rngs: Sequence[np.random.Generator],
    ) -> List[np.ndarray]:
        """Batched :meth:`transmit`, byte-identical per row.

        Each row keeps its own generator (matching the engine's
        per-utterance RNG derivation), the speaker rolloff runs as two
        stacked causal passes over all rows
        (:func:`repro.dsp.filters.sosfilt_zero_phase_batch`), and the
        compression nonlinearity plus the causal chassis biquad run once
        over the padded stack. The sensor front end stays per row
        because it draws from the row's generator.

        Handheld placement is rejected: the motion process is stateful
        across calls, so the engine routes those rows through per-row
        :meth:`transmit` on cloned channels instead.
        """
        if self.placement is Placement.HANDHELD:
            raise ValueError(
                "transmit_batch does not support handheld placement; "
                "use per-row transmit() on cloned channels"
            )
        if len(audios) != len(rngs):
            raise ValueError("audios and rngs must have the same length")
        audios = [np.asarray(a, dtype=float) for a in audios]
        for i, audio in enumerate(audios):
            if audio.ndim != 1:
                raise ValueError(f"audio {i} must be 1-D, got shape {audio.shape}")
        traces: List[Optional[np.ndarray]] = [None] * len(audios)
        work = [i for i in range(len(audios)) if audios[i].size > 0]
        for i in range(len(audios)):
            if audios[i].size == 0:
                traces[i] = self.transmit(audios[i], audio_fs, rngs[i])
        if not work:
            return traces  # type: ignore[return-value]

        lengths = [audios[i].size for i in work]
        speaker = self._speaker
        if 0 < speaker.rolloff_hz < 0.45 * audio_fs:
            sos = cached_butter_highpass(speaker.rolloff_hz, audio_fs, order=2)
            rolled = sosfilt_zero_phase_batch(sos, [audios[i] for i in work])
        else:
            rolled = [audios[i] for i in work]

        chassis = self._chassis
        f0 = min(chassis.resonance_hz, 0.45 * audio_fs)
        w0 = 2.0 * np.pi * f0 / audio_fs
        q = max(chassis.q_factor, 0.3)
        alpha = np.sin(w0) / (2.0 * q)
        b = np.array([alpha, 0.0, -alpha])
        a = np.array([1.0 + alpha, -2.0 * np.cos(w0), 1.0 - alpha])

        # Stack rows in length buckets: the compression tanh and the
        # chassis biquad cost per padded sample, so near-equal rows
        # share a stack while outliers get their own.
        vib_rows: List[Optional[np.ndarray]] = [None] * len(work)
        for bucket in _length_buckets(lengths):
            stack = np.zeros((len(bucket), lengths[bucket[-1]]))
            for s, r in enumerate(bucket):
                stack[s, : lengths[r]] = rolled[r]
            if speaker.compression > 0:
                knee = max(1e-6, 1.0 - speaker.compression)
                stack = np.tanh(stack / knee) * knee
            force = speaker.drive_gain * stack
            resonant = lfilter(b / a[0], a / a[0], force, axis=-1)
            vibration = chassis.attenuation * (0.6 * resonant + 0.4 * force)
            for s, r in enumerate(bucket):
                vib_rows[r] = vibration[s, : lengths[r]]

        for r, i in enumerate(work):
            vib = vib_rows[r]
            rng = rngs[i]
            slow = np.zeros_like(vib)
            if self.environment is not None:
                slow = slow + self.environment.noise(vib.size, audio_fs, rng)
            traces[i] = self._accel.sample(vib, audio_fs, rng, slow_component=slow)
        return traces  # type: ignore[return-value]
