"""Chassis / motherboard vibration transfer.

The speaker and the IMU share the motherboard, which acts as the
conductive medium (Spearphone's observation, reused by EmoLeak). We model
the structural path as a resonant band-pass — phone chassis have a main
bending-mode resonance in the hundreds of hertz to low kilohertz — plus a
broadband attenuation set by the speaker-to-sensor distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import lfilter

__all__ = ["ChassisTransfer"]


@dataclass(frozen=True)
class ChassisTransfer:
    """Structural transfer from speaker force to accelerometer-site motion.

    Attributes
    ----------
    resonance_hz:
        Main chassis bending-mode frequency.
    q_factor:
        Resonance sharpness (higher = more peaked).
    attenuation:
        Broadband linear attenuation along the conductive path.
    """

    resonance_hz: float = 900.0
    q_factor: float = 4.0
    attenuation: float = 1.0

    def transfer(self, force: np.ndarray, fs: float) -> np.ndarray:
        """Apply the structural response to a force waveform."""
        force = np.asarray(force, dtype=float)
        if force.ndim != 1:
            raise ValueError(f"expected a 1-D force signal, got shape {force.shape}")
        if force.size == 0:
            return force.copy()
        f0 = min(self.resonance_hz, 0.45 * fs)
        w0 = 2.0 * np.pi * f0 / fs
        q = max(self.q_factor, 0.3)
        alpha = np.sin(w0) / (2.0 * q)
        # RBJ band-pass (constant peak gain) biquad.
        b = np.array([alpha, 0.0, -alpha])
        a = np.array([1.0 + alpha, -2.0 * np.cos(w0), 1.0 - alpha])
        resonant = lfilter(b / a[0], a / a[0], force)
        # The chassis also transmits some broadband (non-resonant) motion.
        return self.attenuation * (0.6 * resonant + 0.4 * force)
