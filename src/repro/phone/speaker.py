"""Speaker drive models.

A micro-speaker converts the audio waveform into force on the chassis.
The model captures the three properties that matter for the side channel:

- **drive level**: loudspeakers at max volume (the paper's table-top
  setting) push far more energy than ear speakers at conversation level
  (36–40 dB SPL classic earpieces, 42–46 dB for the stereo-capable ear
  speakers the paper exploits);
- **low-frequency rolloff**: micro-speakers radiate poorly below a few
  hundred hertz (2nd-order high-pass at the driver resonance);
- **compressive nonlinearity** at high drive, which spreads spectral
  content — one of the reasons aliased accelerometer spectra stay
  informative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import highpass

__all__ = ["SpeakerModel", "loudspeaker_model", "ear_speaker_model"]


@dataclass(frozen=True)
class SpeakerModel:
    """Parametric speaker drive model.

    Attributes
    ----------
    drive_gain:
        Linear gain from audio amplitude to chassis force (arbitrary
        acceleration-equivalent units).
    rolloff_hz:
        Driver resonance; response falls off 2nd-order below this.
    compression:
        Soft-clipping knee in [0, 1); 0 disables the nonlinearity.
    """

    drive_gain: float
    rolloff_hz: float = 350.0
    compression: float = 0.15

    def drive(self, audio: np.ndarray, fs: float) -> np.ndarray:
        """Convert an audio waveform into a chassis force waveform."""
        audio = np.asarray(audio, dtype=float)
        if audio.ndim != 1:
            raise ValueError(f"expected a 1-D audio signal, got shape {audio.shape}")
        if audio.size == 0:
            return audio.copy()
        shaped = audio
        if 0 < self.rolloff_hz < 0.45 * fs:
            shaped = highpass(shaped, self.rolloff_hz, fs, order=2)
        if self.compression > 0:
            knee = max(1e-6, 1.0 - self.compression)
            shaped = np.tanh(shaped / knee) * knee
        return self.drive_gain * shaped


def loudspeaker_model(gain: float = 1.0) -> SpeakerModel:
    """Bottom loudspeaker at maximum media volume (table-top setting)."""
    return SpeakerModel(drive_gain=gain, rolloff_hz=300.0, compression=0.25)


def ear_speaker_model(gain: float = 0.05) -> SpeakerModel:
    """Top ear speaker at conversation volume (handheld setting).

    Roughly 25 dB below the loudspeaker drive; stereo-capable ear
    speakers (OnePlus 7T/9 style) get device-profile gains above the
    classic-earpiece default.
    """
    return SpeakerModel(drive_gain=gain, rolloff_hz=450.0, compression=0.05)
