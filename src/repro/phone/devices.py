"""Per-device profiles for the six phones in the paper's evaluation.

The paper's cross-device accuracy spread comes from differences in
speaker power, speaker-to-IMU coupling and sensor quality. Profile
parameters are chosen to reproduce the published ordering: on TESS /
loudspeaker, OnePlus 7T ≈ 95 % > Galaxy S21 ≈ 88 % > S21 Ultra ≈ 86 % ≈
S10 ≈ 85 % > Pixel 5 ≈ 83 %; on the ear speaker, the stereo-capable
OnePlus 7T and OnePlus 9 are the exploitable devices (42–46 dB SPL ear
speakers vs 36–40 dB classic earpieces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["DeviceProfile", "DEVICES", "get_device"]


@dataclass(frozen=True)
class DeviceProfile:
    """Physical parameters of one smartphone model.

    Attributes
    ----------
    name:
        Canonical device key.
    display_name / android_version:
        As listed in the paper's Section V-A.
    accel_fs:
        Default accelerometer output rate in Hz (uncapped app).
    loud_gain:
        Loudspeaker drive gain at max volume (coupling included).
    ear_gain:
        Ear-speaker drive gain at conversation volume.
    resonance_hz / q_factor:
        Chassis transfer parameters.
    noise_rms:
        Accelerometer noise floor, m/s^2.
    stereo_ear_speaker:
        True for devices whose ear speaker doubles as a media speaker.
    """

    name: str
    display_name: str
    android_version: str
    accel_fs: float
    loud_gain: float
    ear_gain: float
    resonance_hz: float
    q_factor: float
    noise_rms: float
    stereo_ear_speaker: bool


DEVICES: Dict[str, DeviceProfile] = {
    profile.name: profile
    for profile in (
        DeviceProfile(
            name="oneplus7t",
            display_name="OnePlus 7T",
            android_version="11.0",
            accel_fs=420.0,
            loud_gain=1.30,
            ear_gain=0.24,
            resonance_hz=850.0,
            q_factor=4.5,
            noise_rms=0.0030,
            stereo_ear_speaker=True,
        ),
        DeviceProfile(
            name="oneplus9",
            display_name="OnePlus 9",
            android_version="13.0",
            accel_fs=420.0,
            loud_gain=1.15,
            ear_gain=0.26,
            resonance_hz=880.0,
            q_factor=4.2,
            noise_rms=0.0032,
            stereo_ear_speaker=True,
        ),
        DeviceProfile(
            name="pixel5",
            display_name="Google Pixel 5",
            android_version="13.0",
            accel_fs=410.0,
            loud_gain=0.62,
            ear_gain=0.10,
            resonance_hz=980.0,
            q_factor=3.5,
            noise_rms=0.0065,
            stereo_ear_speaker=True,
        ),
        DeviceProfile(
            name="galaxys10",
            display_name="Samsung Galaxy S10",
            android_version="12.0",
            accel_fs=500.0,
            loud_gain=0.60,
            ear_gain=0.11,
            resonance_hz=920.0,
            q_factor=3.8,
            noise_rms=0.0085,
            stereo_ear_speaker=True,
        ),
        DeviceProfile(
            name="galaxys21",
            display_name="Samsung Galaxy S21",
            android_version="13.0",
            accel_fs=500.0,
            loud_gain=0.92,
            ear_gain=0.12,
            resonance_hz=900.0,
            q_factor=4.0,
            noise_rms=0.0040,
            stereo_ear_speaker=True,
        ),
        DeviceProfile(
            name="galaxys21ultra",
            display_name="Samsung Galaxy S21 Ultra",
            android_version="13.0",
            accel_fs=500.0,
            loud_gain=0.74,
            ear_gain=0.12,
            resonance_hz=870.0,
            q_factor=4.0,
            noise_rms=0.0056,
            stereo_ear_speaker=True,
        ),
    )
}

_ALIASES = {
    "oneplus 7t": "oneplus7t",
    "oneplus 9": "oneplus9",
    "pixel 5": "pixel5",
    "google pixel 5": "pixel5",
    "galaxy s10": "galaxys10",
    "samsung galaxy s10": "galaxys10",
    "galaxy s21": "galaxys21",
    "samsung galaxy s21": "galaxys21",
    "galaxy s21 ultra": "galaxys21ultra",
    "samsung galaxy s21 ultra": "galaxys21ultra",
}


def get_device(name: str) -> DeviceProfile:
    """Look up a device profile by canonical name or common alias."""
    key = name.lower().strip()
    key = _ALIASES.get(key, key)
    try:
        return DEVICES[key]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; available: {sorted(DEVICES)}"
        ) from None


def device_names() -> Tuple[str, ...]:
    """Canonical names of all modelled devices."""
    return tuple(sorted(DEVICES))
