"""Tri-axial accelerometer (extension).

The paper's analysis uses the Z axis (Fig. 3b/4 are "Acceleration
(Z Axis)"), which on a table-top phone is normal to the chassis and
receives the strongest speaker coupling. Prior work (AccelEve) fuses all
three axes. This extension models the full sensor: the X/Y in-plane axes
see the same vibration through weaker coupling coefficients and carry
gravity only in their orientation projection (zero when the phone lies
flat), enabling an axis-fusion ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.phone.accelerometer import GRAVITY, Accelerometer

__all__ = ["TriaxialAccelerometer"]


@dataclass(frozen=True)
class TriaxialAccelerometer:
    """Three orthogonal accelerometer axes sharing one ADC clock.

    Attributes
    ----------
    fs / noise_rms / lsb / full_scale:
        As for :class:`~repro.phone.accelerometer.Accelerometer`.
    axis_coupling:
        Per-axis coupling of chassis vibration into the sensed axis,
        ``(x, y, z)``. The flat-table default puts most energy on Z.
    gravity_axis:
        Unit projection of gravity onto each axis (flat on a table:
        all on Z).
    """

    fs: float = 420.0
    noise_rms: float = 0.0035
    lsb: float = 0.0012
    full_scale: float = 4.0 * GRAVITY
    axis_coupling: Tuple[float, float, float] = (0.25, 0.35, 1.0)
    gravity_axis: Tuple[float, float, float] = (0.0, 0.0, 1.0)

    def __post_init__(self) -> None:
        if len(self.axis_coupling) != 3 or len(self.gravity_axis) != 3:
            raise ValueError("axis_coupling and gravity_axis must have 3 entries")
        if any(c < 0 for c in self.axis_coupling):
            raise ValueError("axis couplings must be non-negative")

    def sample(
        self,
        vibration: np.ndarray,
        fs_in: float,
        rng: np.random.Generator,
        slow_component: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Digitise vibration onto three axes; returns shape ``(n, 3)``.

        All axes share one sample clock (one ADC phase draw) but have
        independent noise/quantisation, like a real MEMS part.
        """
        vibration = np.asarray(vibration, dtype=float)
        if vibration.ndim != 1:
            raise ValueError(f"expected a 1-D signal, got shape {vibration.shape}")
        phase = float(rng.uniform(0.0, 1.0))
        columns = []
        for coupling, gravity_frac in zip(self.axis_coupling, self.gravity_axis):
            axis_sensor = Accelerometer(
                fs=self.fs,
                noise_rms=self.noise_rms,
                lsb=self.lsb,
                full_scale=self.full_scale,
                include_gravity=False,
            )
            total = coupling * vibration
            if slow_component is not None:
                slow = np.asarray(slow_component, dtype=float)
                if slow.shape != vibration.shape:
                    raise ValueError(
                        f"slow_component shape {slow.shape} != "
                        f"vibration shape {vibration.shape}"
                    )
                total = total + coupling * slow
            from repro.dsp.resample import sample_and_decimate

            sampled = sample_and_decimate(total, fs_in, self.fs, phase=phase)
            sampled = sampled + gravity_frac * GRAVITY
            if self.noise_rms > 0:
                sampled = sampled + rng.normal(0.0, self.noise_rms, sampled.size)
            if self.lsb > 0:
                sampled = np.round(sampled / self.lsb) * self.lsb
            columns.append(np.clip(sampled, -self.full_scale, self.full_scale))
        length = min(c.size for c in columns)
        return np.column_stack([c[:length] for c in columns])

    def sample_batch(
        self,
        vibrations: Sequence[np.ndarray],
        fs_in: float,
        rngs: Sequence[np.random.Generator],
        slow_components: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[np.ndarray]:
        """Batched :meth:`sample`, byte-identical per row.

        Per row, the reference draws three sequential length-``m`` noise
        vectors (one per axis); a single ``(3, m)`` draw fills the same
        values in C order, so the noise for all three axes comes from one
        generator call. Decimation stays per axis — resampling a scaled
        copy is not bitwise the same as scaling a resampled one.
        """
        if len(vibrations) != len(rngs):
            raise ValueError("vibrations and rngs must have the same length")
        if slow_components is None:
            slow_components = [None] * len(vibrations)
        elif len(slow_components) != len(vibrations):
            raise ValueError("slow_components must match vibrations")
        from repro.dsp.resample import sample_and_decimate

        out: List[np.ndarray] = []
        for vibration, rng, slow_component in zip(vibrations, rngs, slow_components):
            vibration = np.asarray(vibration, dtype=float)
            if vibration.ndim != 1:
                raise ValueError(
                    f"expected a 1-D signal, got shape {vibration.shape}"
                )
            slow = None
            if slow_component is not None:
                slow = np.asarray(slow_component, dtype=float)
                if slow.shape != vibration.shape:
                    raise ValueError(
                        f"slow_component shape {slow.shape} != "
                        f"vibration shape {vibration.shape}"
                    )
            phase = float(rng.uniform(0.0, 1.0))
            axes = []
            for coupling in self.axis_coupling:
                total = coupling * vibration
                if slow is not None:
                    total = total + coupling * slow
                axes.append(sample_and_decimate(total, fs_in, self.fs, phase=phase))
            m = axes[0].size
            stack = np.stack(axes)
            stack = stack + np.asarray(self.gravity_axis)[:, None] * GRAVITY
            if self.noise_rms > 0:
                stack = stack + rng.normal(0.0, self.noise_rms, (3, m))
            if self.lsb > 0:
                stack = np.round(stack / self.lsb) * self.lsb
            stack = np.clip(stack, -self.full_scale, self.full_scale)
            out.append(np.column_stack([stack[0], stack[1], stack[2]]))
        return out
