"""Gyroscope sensor model — the accelerometer's weaker sibling.

Section III-B1 of the paper justifies using the accelerometer: prior
work (Spearphone, AccelEve/Ba et al.) found the gyroscope's audio
response to conductive speaker vibration is much weaker, because the
speaker shakes the chassis translationally and barely rotates it, and
gyroscope-based attacks (Gyrophone) relied on *shared-surface* vibration
from external speakers instead.

The model reuses the accelerometer ADC behaviour (no anti-alias filter,
quantisation, noise) but applies a rotational-coupling factor well below
unity to the vibration input, and omits the gravity offset (gyroscopes
measure angular rate, not specific force). It exists so the sensor-choice
ablation can *measure* the design rationale rather than assert it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dsp.resample import sample_and_decimate

__all__ = ["Gyroscope"]


@dataclass(frozen=True)
class Gyroscope:
    """Gyroscope output model (single axis, rad/s).

    Attributes
    ----------
    fs:
        Output data rate in Hz.
    rotational_coupling:
        Fraction of the chassis translational vibration that appears as
        angular rate (prior work measured an order of magnitude below
        the accelerometer's response; 0.04 reproduces that gap).
    noise_rms:
        White noise floor, rad/s (typical MEMS gyros: ~0.005).
    lsb:
        Quantisation step, rad/s.
    full_scale:
        Clipping range, rad/s.
    """

    fs: float = 420.0
    rotational_coupling: float = 0.04
    noise_rms: float = 0.005
    lsb: float = 0.0005
    full_scale: float = 35.0

    def __post_init__(self) -> None:
        if self.fs <= 0:
            raise ValueError("sampling rate must be positive")
        if not 0.0 <= self.rotational_coupling <= 1.0:
            raise ValueError("rotational_coupling must be in [0, 1]")
        if self.noise_rms < 0 or self.lsb < 0:
            raise ValueError("noise_rms and lsb must be non-negative")

    def sample(
        self,
        vibration: np.ndarray,
        fs_in: float,
        rng: np.random.Generator,
        slow_component: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Digitise chassis vibration into an angular-rate stream."""
        vibration = np.asarray(vibration, dtype=float)
        if vibration.ndim != 1:
            raise ValueError(f"expected a 1-D signal, got shape {vibration.shape}")
        total = self.rotational_coupling * vibration
        if slow_component is not None:
            slow_component = np.asarray(slow_component, dtype=float)
            if slow_component.shape != vibration.shape:
                raise ValueError(
                    "slow_component shape "
                    f"{slow_component.shape} != vibration shape {vibration.shape}"
                )
            total = total + self.rotational_coupling * slow_component
        phase = float(rng.uniform(0.0, 1.0))
        sampled = sample_and_decimate(total, fs_in, self.fs, phase=phase)
        if self.noise_rms > 0:
            sampled = sampled + rng.normal(0.0, self.noise_rms, sampled.size)
        if self.lsb > 0:
            sampled = np.round(sampled / self.lsb) * self.lsb
        return np.clip(sampled, -self.full_scale, self.full_scale)
