"""Ambient-environment vibration (future-work extension, paper §VI-D).

The paper's limitations note the attack "is susceptible to external
noise factors in the environment", and its future-work section calls for
testing in various environments. This module adds ambient table/building
vibration to the table-top scenario: quiet room, busy office (footfalls,
desk bumps), and vehicle (road rumble + suspension sway).

Each environment is a stationary background process (band-limited hum)
plus a Poisson train of transient bumps — the two components that matter
for the detector (bumps look like short speech regions) and for the
features (hum raises the in-band noise floor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.dsp.filters import bandpass

__all__ = ["EnvironmentNoise", "ENVIRONMENTS", "get_environment"]


@dataclass(frozen=True)
class EnvironmentNoise:
    """Ambient vibration at the phone's resting surface.

    Attributes
    ----------
    name:
        Environment key.
    hum_rms:
        RMS of the stationary background vibration, m/s^2.
    hum_low_hz / hum_high_hz:
        Band of the stationary component.
    bump_rate_hz:
        Expected transient events per second (footfalls, bumps).
    bump_amp:
        Peak amplitude of a transient, m/s^2.
    """

    name: str
    hum_rms: float
    hum_low_hz: float
    hum_high_hz: float
    bump_rate_hz: float
    bump_amp: float

    def noise(self, n: int, fs: float, rng: np.random.Generator) -> np.ndarray:
        """Generate ``n`` samples of ambient surface acceleration."""
        if n <= 0:
            return np.zeros(0)
        out = np.zeros(n)
        if self.hum_rms > 0 and n > 64:
            white = rng.normal(0.0, 1.0, n)
            high = min(self.hum_high_hz, 0.45 * fs)
            if high > self.hum_low_hz:
                hum = bandpass(white, self.hum_low_hz, high, fs, order=2)
                rms = np.sqrt(np.mean(hum**2))
                if rms > 1e-12:
                    out += hum * (self.hum_rms / rms)
        if self.bump_rate_hz > 0 and self.bump_amp > 0:
            n_bumps = rng.poisson(self.bump_rate_hz * n / fs)
            for _ in range(n_bumps):
                start = int(rng.integers(0, n))
                length = int(rng.uniform(0.01, 0.05) * fs)
                length = min(length, n - start)
                if length < 2:
                    continue
                t = np.arange(length) / fs
                ring_hz = rng.uniform(40.0, 120.0)
                bump = (
                    self.bump_amp
                    * np.exp(-t / 0.01)
                    * np.sin(2 * np.pi * ring_hz * t)
                )
                out[start : start + length] += bump
        return out


ENVIRONMENTS: Dict[str, EnvironmentNoise] = {
    env.name: env
    for env in (
        EnvironmentNoise(
            name="quiet_room",
            hum_rms=0.0008,
            hum_low_hz=5.0,
            hum_high_hz=60.0,
            bump_rate_hz=0.0,
            bump_amp=0.0,
        ),
        EnvironmentNoise(
            name="busy_office",
            hum_rms=0.004,
            hum_low_hz=5.0,
            hum_high_hz=120.0,
            bump_rate_hz=0.4,
            bump_amp=0.06,
        ),
        EnvironmentNoise(
            name="vehicle",
            hum_rms=0.03,
            hum_low_hz=4.0,
            hum_high_hz=200.0,
            bump_rate_hz=1.2,
            bump_amp=0.15,
        ),
    )
}


def get_environment(name: str) -> EnvironmentNoise:
    """Look up an ambient-environment profile by name."""
    try:
        return ENVIRONMENTS[name.lower().strip()]
    except KeyError:
        raise ValueError(
            f"unknown environment {name!r}; available: {sorted(ENVIRONMENTS)}"
        ) from None
