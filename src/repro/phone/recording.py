"""Continuous recording sessions with playback logs.

The paper collects handheld data "in one continuous recording": all
utterances of one emotion are played back-to-back, the operator notes the
start/end playback times per emotion group, and the analysis programs
label detected regions from those times (Sections III-B3, IV-B1). This
module reproduces that collection procedure for any channel scenario and
returns both the accelerometer trace and the ground-truth playback log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import Corpus, UtteranceSpec
from repro.phone.channel import VibrationChannel

__all__ = ["PlaybackEvent", "RecordingSession", "record_session"]


@dataclass(frozen=True)
class PlaybackEvent:
    """One utterance's playback interval within a session.

    Times are in seconds from the start of the recording.
    """

    utterance_id: str
    speaker_id: str
    emotion: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class RecordingSession:
    """A recorded session: accel trace + playback log + scenario metadata."""

    trace: np.ndarray
    fs: float
    events: List[PlaybackEvent]
    device_name: str
    mode: str
    placement: str

    @property
    def duration_s(self) -> float:
        return self.trace.size / self.fs

    def emotion_intervals(self) -> Dict[str, List[Tuple[float, float]]]:
        """Per-emotion list of (start, end) playback intervals."""
        intervals: Dict[str, List[Tuple[float, float]]] = {}
        for event in self.events:
            intervals.setdefault(event.emotion, []).append(
                (event.start_s, event.end_s)
            )
        return intervals

    def label_at(self, time_s: float) -> Optional[str]:
        """Emotion being played at ``time_s``, or None during gaps."""
        for event in self.events:
            if event.start_s <= time_s < event.end_s:
                return event.emotion
        return None


def record_session(
    corpus: Corpus,
    channel: VibrationChannel,
    specs: Optional[Sequence[UtteranceSpec]] = None,
    gap_s: float = 0.35,
    group_by_emotion: bool = True,
    seed: int = 0,
    renderer: Optional[Callable[[UtteranceSpec], np.ndarray]] = None,
) -> RecordingSession:
    """Play corpus utterances through a channel as one continuous session.

    Parameters
    ----------
    specs:
        Subset of the corpus to play (default: everything).
    gap_s:
        Silence between utterances (playback app gap).
    group_by_emotion:
        Play all utterances of one emotion consecutively, as the paper's
        collection procedure does so a single logged interval per emotion
        group suffices for labelling.
    renderer:
        Waveform source per spec (default ``corpus.render``). The
        collection engine passes a lookup into a pre-rendered pool so
        the rendering stage can run in parallel while the transmit chain
        stays serial.
    """
    if gap_s < 0:
        raise ValueError("gap_s must be non-negative")
    specs = list(specs if specs is not None else corpus.specs)
    if renderer is None:
        renderer = corpus.render
    if group_by_emotion:
        order = {emotion: i for i, emotion in enumerate(corpus.emotions)}
        specs.sort(key=lambda s: (order[s.emotion], s.utterance_id))

    channel.reseed(seed)
    rng = np.random.default_rng(seed + 17)
    fs_out = channel.accel_fs
    audio_fs = corpus.audio_fs
    gap_audio = np.zeros(int(round(gap_s * audio_fs)))

    # Transmit utterance-by-utterance (each padded with the inter-utterance
    # gap) so a full 2800-utterance session never materialises the whole
    # high-rate audio stream in memory. Event times are derived from the
    # accumulated accelerometer sample count so log and trace stay aligned.
    trace_pieces: List[np.ndarray] = []
    events: List[PlaybackEvent] = []
    accel_samples = 0

    def _transmit(chunk: np.ndarray) -> int:
        nonlocal accel_samples
        piece = channel.transmit(chunk, audio_fs, rng)
        trace_pieces.append(piece)
        accel_samples += piece.size
        return piece.size

    # Leading gap so the detector sees the noise floor first.
    if gap_audio.size:
        _transmit(gap_audio)

    for spec in specs:
        wave = renderer(spec)
        start_s = accel_samples / fs_out
        n_wave_accel = _transmit(wave)
        end_s = (accel_samples) / fs_out
        events.append(
            PlaybackEvent(
                utterance_id=spec.utterance_id,
                speaker_id=spec.speaker_id,
                emotion=spec.emotion,
                start_s=start_s,
                end_s=end_s,
            )
        )
        if gap_audio.size:
            _transmit(gap_audio)

    trace = np.concatenate(trace_pieces) if trace_pieces else np.zeros(1)
    return RecordingSession(
        trace=trace,
        fs=fs_out,
        events=events,
        device_name=channel.device.name,
        mode=channel.mode.value,
        placement=channel.placement.value,
    )
