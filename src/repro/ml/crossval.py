"""Stratified k-fold cross-validation.

The paper evaluates the Weka classifiers with an 80/20 split and 10-fold
cross-validation (Section IV-D1); the ear-speaker confusion matrix of
Fig. 6b is explicitly 10-fold.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.ml.base import Classifier
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.obs import trace

__all__ = ["StratifiedKFold", "cross_val_score", "cross_val_confusion"]


class StratifiedKFold:
    """Yield (train_idx, test_idx) pairs with per-class balance."""

    def __init__(self, n_splits: int = 10, seed: int = 0, shuffle: bool = True):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.seed = int(seed)
        self.shuffle = bool(shuffle)

    def split(self, y) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        n = y.shape[0]
        if n < self.n_splits:
            raise ValueError(f"cannot make {self.n_splits} folds from {n} samples")
        rng = np.random.default_rng(self.seed)
        fold_of = np.empty(n, dtype=int)
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(members)
            for pos, idx in enumerate(members):
                fold_of[idx] = pos % self.n_splits
        for fold in range(self.n_splits):
            test_mask = fold_of == fold
            if not test_mask.any():
                continue
            yield np.flatnonzero(~test_mask), np.flatnonzero(test_mask)


def cross_val_score(
    classifier: Classifier, X, y, n_splits: int = 10, seed: int = 0
) -> List[float]:
    """Per-fold accuracies of a fresh clone of ``classifier``."""
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    folds = StratifiedKFold(n_splits, seed).split(y)
    for fold, (train_idx, test_idx) in enumerate(folds):
        with trace("fold", fold=fold, metric_labels={}):
            model = classifier.clone()
            with trace("train", metric_labels={"context": "crossval"}):
                model.fit(X[train_idx], y[train_idx])
            with trace("evaluate", metric_labels={"context": "crossval"}):
                predictions = model.predict(X[test_idx])
            scores.append(accuracy_score(y[test_idx], predictions))
    return scores


def cross_val_confusion(
    classifier: Classifier, X, y, n_splits: int = 10, seed: int = 0
):
    """Pooled out-of-fold confusion matrix (the paper's Fig. 6b protocol).

    Returns ``(matrix, labels, accuracy)`` where the matrix pools every
    fold's held-out predictions.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    predictions = np.empty(y.shape, dtype=y.dtype)
    folds = StratifiedKFold(n_splits, seed).split(y)
    for fold, (train_idx, test_idx) in enumerate(folds):
        with trace("fold", fold=fold, metric_labels={}):
            model = classifier.clone()
            with trace("train", metric_labels={"context": "crossval"}):
                model.fit(X[train_idx], y[train_idx])
            with trace("evaluate", metric_labels={"context": "crossval"}):
                predictions[test_idx] = model.predict(X[test_idx])
    matrix, labels = confusion_matrix(y, predictions, labels=np.unique(y))
    return matrix, labels, accuracy_score(y, predictions)
