"""Stratified k-fold cross-validation with a parallel fold engine.

The paper evaluates the Weka classifiers with an 80/20 split and 10-fold
cross-validation (Section IV-D1); the ear-speaker confusion matrix of
Fig. 6b is explicitly 10-fold.

Folds are independent, so — mirroring the collection engine — they fan
out over the shared executor contract of :mod:`repro.parallel`:
``serial`` (the reference path), ``thread`` and ``process`` produce
*identical* per-fold results at any worker count, because each fold's
model is a fresh clone with a deterministic per-fold seed that depends
only on the fold index. Worker folds capture their ``fold`` →
``train``/``evaluate`` spans with
:func:`repro.obs.capture_observability` and the dispatcher re-parents
them under its own open span, so the trace nests identically in all
three modes.
"""

from __future__ import annotations

import warnings
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.ml.base import Classifier
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.obs import capture_observability, merge_worker_trace, trace, tracer
from repro.parallel import ExecutorPool

__all__ = ["StratifiedKFold", "cross_val_score", "cross_val_confusion"]


class StratifiedKFold:
    """Yield (train_idx, test_idx) pairs with per-class balance.

    When the class counts are too small to populate every fold (e.g. a
    two-member class under ``n_splits=10``), the empty folds are skipped
    with a :class:`RuntimeWarning` — or, with ``strict=True``, a
    :class:`ValueError` — instead of silently yielding fewer folds.
    """

    def __init__(
        self,
        n_splits: int = 10,
        seed: int = 0,
        shuffle: bool = True,
        strict: bool = False,
    ):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.seed = int(seed)
        self.shuffle = bool(shuffle)
        self.strict = bool(strict)

    def split(self, y) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        n = y.shape[0]
        if n < self.n_splits:
            raise ValueError(f"cannot make {self.n_splits} folds from {n} samples")
        rng = np.random.default_rng(self.seed)
        fold_of = np.empty(n, dtype=int)
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(members)
            for pos, idx in enumerate(members):
                fold_of[idx] = pos % self.n_splits
        occupancy = np.bincount(fold_of, minlength=self.n_splits)
        n_empty = int(np.sum(occupancy == 0))
        if n_empty:
            message = (
                f"StratifiedKFold: only {self.n_splits - n_empty} of "
                f"{self.n_splits} folds can be populated from the class "
                f"sizes at hand; the largest class has "
                f"{int(np.max(np.bincount(fold_of)))} members"
            )
            if self.strict:
                raise ValueError(message)
            warnings.warn(message, RuntimeWarning, stacklevel=2)
        for fold in range(self.n_splits):
            test_mask = fold_of == fold
            if not test_mask.any():
                continue
            yield np.flatnonzero(~test_mask), np.flatnonzero(test_mask)


# ---------------------------------------------------------------------------
# Fold engine
# ---------------------------------------------------------------------------


def _clone_for_fold(classifier: Classifier, fold: int, seed: int) -> Classifier:
    """A fresh unfitted clone with a deterministic per-fold seed.

    Classifiers that carry a ``seed``/``rng_seed`` parameter get a value
    derived only from ``(their seed, the crossval seed, fold)``, so the
    per-fold models are decorrelated yet byte-identical under any
    executor and worker count.
    """
    model = classifier.clone()
    for attr in ("seed", "rng_seed"):
        if hasattr(model, attr):
            base = int(getattr(model, attr))
            setattr(model, attr, (base * 1000003 + seed * 7919 + fold) & 0x7FFFFFFF)
    return model


def _fold_body(classifier, X, y, train_idx, test_idx, fold, seed) -> np.ndarray:
    """Train a fold clone and return its held-out predictions (traced)."""
    with trace("fold", fold=fold, metric_labels={}):
        model = _clone_for_fold(classifier, fold, seed)
        with trace("train", metric_labels={"context": "crossval"}):
            model.fit(X[train_idx], y[train_idx])
        with trace("evaluate", metric_labels={"context": "crossval"}):
            return model.predict(X[test_idx])


def _run_fold_task(task):
    """Worker entry point: one fold with captured observability.

    Module-level (hence picklable for the process executor). Exceptions
    are returned, not raised, so the fold's spans — closed with
    ``status="error"`` by the tracer — still travel back to the
    dispatcher and the trace stays balanced on the failure path.
    """
    classifier, X, y, train_idx, test_idx, fold, seed = task
    predictions = None
    error: Optional[BaseException] = None
    with capture_observability() as capture:
        try:
            predictions = _fold_body(
                classifier, X, y, train_idx, test_idx, fold, seed
            )
        except Exception as exc:
            error = exc
    return fold, predictions, capture, error


def _cross_val_folds(
    classifier: Classifier,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int,
    seed: int,
    n_jobs: int,
    executor: Optional[str],
    pool: Optional[ExecutorPool],
) -> List[Tuple[int, np.ndarray, np.ndarray]]:
    """Run every fold and return ``[(fold, test_idx, predictions), ...]``.

    Serial mode executes inline with live spans; parallel mode fans the
    folds over the pool, re-parents each fold's captured spans under the
    caller's current span, merges the worker metrics, then re-raises the
    first fold error (if any) once the trace is complete.
    """
    folds = list(StratifiedKFold(n_splits, seed).split(y))
    owns_pool = pool is None
    if pool is None:
        pool = ExecutorPool(n_jobs=n_jobs, executor=executor)
    try:
        if not pool.is_parallel:
            return [
                (fold, test_idx, _fold_body(classifier, X, y, train_idx, test_idx, fold, seed))
                for fold, (train_idx, test_idx) in enumerate(folds)
            ]
        tasks = [
            (classifier, X, y, train_idx, test_idx, fold, seed)
            for fold, (train_idx, test_idx) in enumerate(folds)
        ]
        outcomes = pool.map(_run_fold_task, tasks)
        parent = tracer().current()
        results = []
        first_error: Optional[BaseException] = None
        for (fold, (_, test_idx)), (_, predictions, capture, error) in zip(
            enumerate(folds), outcomes
        ):
            merge_worker_trace(capture, parent=parent)
            if error is not None:
                first_error = first_error if first_error is not None else error
                continue
            results.append((fold, test_idx, predictions))
        if first_error is not None:
            raise first_error
        return results
    finally:
        if owns_pool:
            pool.close()


def cross_val_score(
    classifier: Classifier,
    X,
    y,
    n_splits: int = 10,
    seed: int = 0,
    n_jobs: int = 1,
    executor: Optional[str] = None,
    pool: Optional[ExecutorPool] = None,
) -> List[float]:
    """Per-fold accuracies of a fresh clone of ``classifier``.

    ``n_jobs``/``executor`` fan the folds out over the shared executor
    contract (see :mod:`repro.parallel`); fold scores are identical at
    any worker count. Pass an existing :class:`ExecutorPool` as ``pool``
    to reuse its workers across several cross-validations.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    results = _cross_val_folds(
        classifier, X, y, n_splits, seed, n_jobs, executor, pool
    )
    return [
        accuracy_score(y[test_idx], predictions)
        for _, test_idx, predictions in results
    ]


def cross_val_confusion(
    classifier: Classifier,
    X,
    y,
    n_splits: int = 10,
    seed: int = 0,
    n_jobs: int = 1,
    executor: Optional[str] = None,
    pool: Optional[ExecutorPool] = None,
):
    """Pooled out-of-fold confusion matrix (the paper's Fig. 6b protocol).

    Returns ``(matrix, labels, accuracy)`` where the matrix pools every
    fold's held-out predictions. Parallelises exactly like
    :func:`cross_val_score`.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    predictions = np.empty(y.shape, dtype=y.dtype)
    results = _cross_val_folds(
        classifier, X, y, n_splits, seed, n_jobs, executor, pool
    )
    for _, test_idx, fold_predictions in results:
        predictions[test_idx] = fold_predictions
    matrix, labels = confusion_matrix(y, predictions, labels=np.unique(y))
    return matrix, labels, accuracy_score(y, predictions)
