"""Random-subspace ensemble (Weka ``RandomSubSpace`` analogue).

Each base learner is trained on the full sample set but a random subset
of the features (Ho's random subspace method). Weka's default base
learner is REPTree; we use a depth-capped CART, which plays the same
role.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.ml.base import Classifier, check_X, check_X_y
from repro.ml.tree import DecisionTree

__all__ = ["RandomSubspace"]


class RandomSubspace(Classifier):
    """Ensemble over random feature subspaces.

    Parameters
    ----------
    n_estimators:
        Ensemble size (Weka default 10).
    subspace_fraction:
        Fraction of features each member sees (Weka default 0.5).
    base_max_depth:
        Depth cap of the base trees.
    seed:
        Seed for subspace sampling.
    """

    def __init__(
        self,
        n_estimators: int = 10,
        subspace_fraction: float = 0.5,
        base_max_depth: Optional[int] = 8,
        seed: int = 0,
    ):
        if not 0.0 < subspace_fraction <= 1.0:
            raise ValueError("subspace_fraction must be in (0, 1]")
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.subspace_fraction = float(subspace_fraction)
        self.base_max_depth = base_max_depth
        self.seed = int(seed)
        self.members_: Optional[List[Tuple[np.ndarray, DecisionTree]]] = None

    def fit(self, X, y) -> "RandomSubspace":
        X, y = check_X_y(X, y)
        codes = self._encode_labels(y)
        d = X.shape[1]
        size = max(1, int(round(self.subspace_fraction * d)))
        rng = np.random.default_rng(self.seed)
        self.members_ = []
        for _ in range(self.n_estimators):
            features = np.sort(rng.choice(d, size=size, replace=False))
            tree = DecisionTree(
                max_depth=self.base_max_depth,
                rng_seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[:, features], codes)
            self.members_.append((features, tree))
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_X(X)
        k = self.classes_.size
        total = np.zeros((X.shape[0], k))
        for features, tree in self.members_:
            proba = tree.predict_proba(X[:, features])
            for j, code in enumerate(tree.classes_):
                total[:, int(code)] += proba[:, j]
        return total / len(self.members_)
