"""Information-gain feature ranking and selection.

Section III-B4 of the paper runs an information-gain efficacy analysis
over the Table II features ("all the features ... exhibit non-zero
information gain in both the table-top and handheld settings"), and the
related literature it cites studies feature-selection impact on speech
emotion recognition. This module provides the corresponding tooling: a
ranker over any labelled feature matrix and a Weka-style select-K
transformer usable in front of every classifier in :mod:`repro.ml`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.infogain import information_gain

__all__ = ["rank_features", "InfoGainSelector"]


def rank_features(
    X: np.ndarray,
    y: np.ndarray,
    feature_names: Optional[Sequence[str]] = None,
    n_bins: int = 10,
) -> List[Tuple[str, float]]:
    """Rank features by information gain, best first.

    Returns ``(name, gain)`` pairs; anonymous columns are named ``f<i>``.
    Non-finite entries are tolerated (they are binned separately by
    :func:`repro.ml.infogain.information_gain`).
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {X.shape}")
    if feature_names is None:
        feature_names = [f"f{i}" for i in range(X.shape[1])]
    if len(feature_names) != X.shape[1]:
        raise ValueError(
            f"{X.shape[1]} columns but {len(feature_names)} feature names"
        )
    gains = [
        (str(name), information_gain(X[:, j], y, n_bins))
        for j, name in enumerate(feature_names)
    ]
    return sorted(gains, key=lambda pair: -pair[1])


class InfoGainSelector:
    """Keep the top-K features by information gain.

    Fit on training data, then ``transform`` any matrix with the same
    columns. Exposes ``selected_indices_`` and ``ranking_`` after fit.
    """

    def __init__(self, k: int, n_bins: int = 10):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = int(k)
        self.n_bins = int(n_bins)
        self.selected_indices_: Optional[np.ndarray] = None
        self.ranking_: Optional[List[Tuple[int, float]]] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "InfoGainSelector":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"expected a 2-D feature matrix, got shape {X.shape}")
        y = np.asarray(y)
        if y.shape[0] != X.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        gains = [
            (j, information_gain(X[:, j], y, self.n_bins))
            for j in range(X.shape[1])
        ]
        self.ranking_ = sorted(gains, key=lambda pair: -pair[1])
        top = self.ranking_[: min(self.k, X.shape[1])]
        self.selected_indices_ = np.array(sorted(j for j, _ in top), dtype=int)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.selected_indices_ is None:
            raise RuntimeError("InfoGainSelector is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"expected a 2-D feature matrix, got shape {X.shape}")
        if X.shape[1] <= self.selected_indices_.max():
            raise ValueError("matrix has fewer columns than the fitted selector")
        return X[:, self.selected_indices_]

    def fit_transform(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.fit(X, y).transform(X)
