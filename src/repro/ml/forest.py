"""Random forest: bagged randomised CART trees."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.base import Classifier, check_X, check_X_y
from repro.ml.tree import DecisionTree

__all__ = ["RandomForest"]


class RandomForest(Classifier):
    """Bootstrap-aggregated decision trees with per-split feature sampling.

    Parameters
    ----------
    n_estimators:
        Number of trees (Weka's default is 100; 40 is plenty at the
        paper's feature dimensionality and keeps the harness fast).
    max_depth:
        Per-tree depth cap.
    max_features:
        Features considered per split; None = floor(sqrt(d)).
    seed:
        Seed for bootstraps and feature sampling.
    """

    def __init__(
        self,
        n_estimators: int = 40,
        max_depth: Optional[int] = None,
        max_features: Optional[int] = None,
        min_samples_leaf: int = 1,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_leaf = int(min_samples_leaf)
        self.seed = int(seed)
        self.trees_: Optional[List[DecisionTree]] = None

    def fit(self, X, y) -> "RandomForest":
        X, y = check_X_y(X, y)
        codes = self._encode_labels(y)
        n, d = X.shape
        max_features = self.max_features or max(1, int(np.sqrt(d)))
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        for t in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            # Guarantee every class appears in the bootstrap so each tree
            # predicts over the full class set.
            present = np.unique(codes[idx])
            if present.size < self.classes_.size:
                missing = np.setdiff1d(np.arange(self.classes_.size), present)
                extras = [
                    rng.choice(np.flatnonzero(codes == m)) for m in missing
                ]
                idx = np.concatenate([idx, np.array(extras, dtype=idx.dtype)])
            tree = DecisionTree(
                max_depth=self.max_depth,
                max_features=max_features,
                min_samples_leaf=self.min_samples_leaf,
                rng_seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], codes[idx])
            self.trees_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_X(X)
        k = self.classes_.size
        total = np.zeros((X.shape[0], k))
        for tree in self.trees_:
            proba = tree.predict_proba(X)
            # Map tree class codes back onto the forest's class axis
            # (codes are unique, so the fancy-indexed += is safe).
            total[:, tree.classes_.astype(int)] += proba
        return total / len(self.trees_)
