"""One-vs-rest meta-classifier (Weka's ``MultiClassClassifier``).

Weka's MultiClassClassifier default wraps a binary base learner in a
one-vs-rest scheme; its default base is Logistic, which is what the
paper's tables pair it with. Any :class:`repro.ml.base.Classifier` that
handles two classes can serve as the base.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.base import Classifier, check_X, check_X_y
from repro.ml.logistic import LogisticRegression

__all__ = ["OneVsRestClassifier"]


class OneVsRestClassifier(Classifier):
    """Train one binary classifier per class, normalise their scores.

    Parameters
    ----------
    base:
        Unfitted binary base classifier to clone per class (default:
        :class:`LogisticRegression`, matching Weka).
    """

    def __init__(self, base: Optional[Classifier] = None):
        self.base = base if base is not None else LogisticRegression()
        self.estimators_: Optional[List[Classifier]] = None

    def fit(self, X, y) -> "OneVsRestClassifier":
        X, y = check_X_y(X, y)
        self._encode_labels(y)
        self.estimators_ = []
        for label in self.classes_:
            binary_y = np.where(y == label, 1, 0)
            if np.unique(binary_y).size < 2:
                raise ValueError(f"class {label!r} covers all or none of the data")
            est = self.base.clone()
            est.fit(X, binary_y)
            self.estimators_.append(est)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_X(X)
        scores = np.column_stack(
            [
                est.predict_proba(X)[:, list(est.classes_).index(1)]
                for est in self.estimators_
            ]
        )
        total = scores.sum(axis=1, keepdims=True)
        total[total < 1e-12] = 1.0
        return scores / total
