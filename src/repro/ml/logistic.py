"""Multinomial logistic regression (the Weka ``Logistic`` analogue).

Ridge-regularised softmax regression trained by full-batch gradient
descent with Nesterov momentum and a backtracking step size. Features
are standardised internally so the default learning rate works across
feature scales.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Classifier, check_X, check_X_y
from repro.ml.preprocessing import StandardScaler

__all__ = ["LogisticRegression", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-subtraction for stability."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class LogisticRegression(Classifier):
    """Softmax regression with L2 penalty.

    Parameters
    ----------
    ridge:
        L2 penalty weight (Weka's ``-R``; applied to weights, not bias).
    max_iter:
        Gradient-descent iterations.
    lr:
        Initial learning rate (adapted by backtracking).
    tol:
        Stop when the loss improvement falls below this.
    """

    def __init__(
        self,
        ridge: float = 1e-4,
        max_iter: int = 300,
        lr: float = 0.5,
        tol: float = 1e-7,
    ):
        self.ridge = float(ridge)
        self.max_iter = int(max_iter)
        self.lr = float(lr)
        self.tol = float(tol)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None
        self._scaler: Optional[StandardScaler] = None

    def _loss_grad(self, X, onehot, W, b):
        n = X.shape[0]
        proba = softmax(X @ W + b)
        eps = 1e-12
        loss = -np.sum(onehot * np.log(proba + eps)) / n
        loss += 0.5 * self.ridge * np.sum(W * W)
        err = (proba - onehot) / n
        grad_W = X.T @ err + self.ridge * W
        grad_b = err.sum(axis=0)
        return loss, grad_W, grad_b

    def fit(self, X, y) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        codes = self._encode_labels(y)
        k = self.classes_.size
        self._scaler = StandardScaler().fit(X)
        Xs = self._scaler.transform(X)
        n, d = Xs.shape
        onehot = np.zeros((n, k))
        onehot[np.arange(n), codes] = 1.0

        W = np.zeros((d, k))
        b = np.zeros(k)
        vel_W = np.zeros_like(W)
        vel_b = np.zeros_like(b)
        lr = self.lr
        momentum = 0.9
        prev_loss = np.inf
        for _ in range(self.max_iter):
            look_W = W + momentum * vel_W
            look_b = b + momentum * vel_b
            loss, grad_W, grad_b = self._loss_grad(Xs, onehot, look_W, look_b)
            if loss > prev_loss * 1.001:
                # Diverging: the lookahead already overshot, so do NOT
                # commit this step — keep the pre-step W/b, kill the
                # momentum that caused the overshoot, and retry with a
                # halved step size from the last good iterate.
                lr *= 0.5
                vel_W = np.zeros_like(W)
                vel_b = np.zeros_like(b)
                if lr < 1e-6:
                    break
                continue
            vel_W = momentum * vel_W - lr * grad_W
            vel_b = momentum * vel_b - lr * grad_b
            W = W + vel_W
            b = b + vel_b
            if prev_loss - loss < self.tol:
                break
            prev_loss = min(prev_loss, loss)
        self.coef_ = W
        self.intercept_ = b
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_X(X)
        Xs = self._scaler.transform(X)
        return softmax(Xs @ self.coef_ + self.intercept_)
