"""Classification metrics: accuracy, confusion matrices, per-class report."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["accuracy_score", "confusion_matrix", "classification_report"]


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true, y_pred, labels: Optional[Sequence] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Confusion matrix; rows = true class, columns = predicted class.

    Returns ``(matrix, labels)`` where ``labels`` fixes the axis order.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    k = labels.size
    if k == 0 and y_true.size:
        raise ValueError(
            f"label outside the provided inventory: {y_true[0]!r}/{y_pred[0]!r}"
        )
    codes_true, bad_true = _encode(y_true, labels)
    codes_pred, bad_pred = _encode(y_pred, labels)
    bad = bad_true | bad_pred
    if bad.any():
        i = int(np.flatnonzero(bad)[0])
        raise ValueError(
            f"label outside the provided inventory: {y_true[i]!r}/{y_pred[i]!r}"
        )
    matrix = np.bincount(codes_true * k + codes_pred, minlength=k * k)
    return matrix.reshape(k, k).astype(int), labels


def _encode(values: np.ndarray, labels: np.ndarray):
    """Vectorised label -> inventory-position encoding.

    ``np.searchsorted`` against the sorted inventory replaces the old
    per-sample dict lookup. Returns ``(codes, bad_mask)`` where
    ``bad_mask`` flags values missing from the inventory.
    """
    if values.size == 0:
        return np.zeros(0, dtype=int), np.zeros(0, dtype=bool)
    order = np.argsort(labels, kind="stable")
    positions = np.searchsorted(labels[order], values)
    positions = np.minimum(positions, labels.size - 1)
    codes = order[positions]
    return codes, labels[codes] != values


def classification_report(
    y_true, y_pred, labels: Optional[Sequence] = None
) -> Dict:
    """Per-class precision/recall/F1 plus overall accuracy.

    Returns a dict ``{label: {precision, recall, f1, support}, ...,
    'accuracy': float}``.
    """
    matrix, labels = confusion_matrix(y_true, y_pred, labels)
    report: Dict = {}
    for i, label in enumerate(labels):
        tp = matrix[i, i]
        support = matrix[i].sum()
        predicted = matrix[:, i].sum()
        precision = tp / predicted if predicted else 0.0
        recall = tp / support if support else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        report[label] = {
            "precision": float(precision),
            "recall": float(recall),
            "f1": float(f1),
            "support": int(support),
        }
    report["accuracy"] = accuracy_score(y_true, y_pred)
    return report
