"""Classification metrics: accuracy, confusion matrices, per-class report."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["accuracy_score", "confusion_matrix", "classification_report"]


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true, y_pred, labels: Optional[Sequence] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Confusion matrix; rows = true class, columns = predicted class.

    Returns ``(matrix, labels)`` where ``labels`` fixes the axis order.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((labels.size, labels.size), dtype=int)
    for t, p in zip(y_true, y_pred):
        if t not in index or p not in index:
            raise ValueError(f"label outside the provided inventory: {t!r}/{p!r}")
        matrix[index[t], index[p]] += 1
    return matrix, labels


def classification_report(
    y_true, y_pred, labels: Optional[Sequence] = None
) -> Dict:
    """Per-class precision/recall/F1 plus overall accuracy.

    Returns a dict ``{label: {precision, recall, f1, support}, ...,
    'accuracy': float}``.
    """
    matrix, labels = confusion_matrix(y_true, y_pred, labels)
    report: Dict = {}
    for i, label in enumerate(labels):
        tp = matrix[i, i]
        support = matrix[i].sum()
        predicted = matrix[:, i].sum()
        precision = tp / predicted if predicted else 0.0
        recall = tp / support if support else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        report[label] = {
            "precision": float(precision),
            "recall": float(recall),
            "f1": float(f1),
            "support": int(support),
        }
    report["accuracy"] = accuracy_score(y_true, y_pred)
    return report
