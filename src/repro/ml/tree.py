"""CART decision tree with gini or entropy splits.

The building block for the ensemble classifiers (random forest, random
subspace) and the structural skeleton of the logistic model tree. Split
search is vectorised: each candidate feature's sorted prefix class
counts give every threshold's impurity in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ml.base import Classifier, check_X, check_X_y

__all__ = ["DecisionTree"]


@dataclass
class _Node:
    """One tree node; leaves carry a class-probability vector."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    proba: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.proba is not None


def _impurity_curve(sorted_codes: np.ndarray, k: int, criterion: str):
    """Impurity of (left, right) partitions for every split position.

    ``sorted_codes`` are the class codes ordered by the feature value.
    Returns an array of length n-1 where entry i is the weighted impurity
    of splitting after position i.
    """
    n = sorted_codes.size
    onehot = np.zeros((n, k))
    onehot[np.arange(n), sorted_codes] = 1.0
    left_counts = np.cumsum(onehot, axis=0)[:-1]  # counts up to position i
    total = left_counts[-1] + onehot[-1]
    right_counts = total[None, :] - left_counts
    n_left = np.arange(1, n)
    n_right = n - n_left
    p_left = left_counts / n_left[:, None]
    p_right = right_counts / n_right[:, None]
    if criterion == "gini":
        imp_left = 1.0 - np.sum(p_left**2, axis=1)
        imp_right = 1.0 - np.sum(p_right**2, axis=1)
    else:  # entropy
        eps = 1e-12
        imp_left = -np.sum(p_left * np.log2(p_left + eps), axis=1)
        imp_right = -np.sum(p_right * np.log2(p_right + eps), axis=1)
    return (n_left * imp_left + n_right * imp_right) / n


class DecisionTree(Classifier):
    """CART classifier.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (None = grow until pure/min_samples).
    min_samples_split:
        Minimum samples required to attempt a split.
    min_samples_leaf:
        Minimum samples in each child.
    criterion:
        ``gini`` or ``entropy``.
    max_features:
        Number of features to consider per split (None = all); with an
        ``rng`` this gives the randomised trees used by RandomForest.
    rng_seed:
        Seed for the feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        criterion: str = "gini",
        max_features: Optional[int] = None,
        rng_seed: int = 0,
    ):
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"criterion must be gini or entropy, got {criterion!r}")
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.criterion = criterion
        self.max_features = max_features
        self.rng_seed = int(rng_seed)
        self.root_: Optional[_Node] = None

    def _leaf(self, codes: np.ndarray, k: int) -> _Node:
        proba = np.bincount(codes, minlength=k).astype(float)
        proba /= proba.sum()
        return _Node(proba=proba)

    def _best_split(self, X, codes, k, rng):
        n, d = X.shape
        features = np.arange(d)
        if self.max_features is not None and self.max_features < d:
            features = rng.choice(d, size=self.max_features, replace=False)
        # Vectorised over candidate features: sort every column at once,
        # build the (n-1, m, k) prefix class counts in one cumsum, and
        # score all thresholds of all features together. The per-feature
        # argmin plus the final in-order scan preserve the serial
        # version's tie-breaking exactly (first position, first feature).
        m = features.size
        Xf = X[:, features]
        order = np.argsort(Xf, axis=0, kind="stable")
        values = np.take_along_axis(Xf, order, axis=0)
        sorted_codes = codes[order]
        onehot = np.zeros((n, m, k))
        onehot[np.arange(n)[:, None], np.arange(m)[None, :], sorted_codes] = 1.0
        left_counts = np.cumsum(onehot, axis=0)[:-1]
        total = left_counts[-1] + onehot[-1]
        right_counts = total[None, :, :] - left_counts
        n_left = np.arange(1, n)[:, None]
        n_right = n - n_left
        p_left = left_counts / n_left[..., None]
        p_right = right_counts / n_right[..., None]
        if self.criterion == "gini":
            imp_left = 1.0 - np.sum(p_left**2, axis=2)
            imp_right = 1.0 - np.sum(p_right**2, axis=2)
        else:  # entropy
            eps = 1e-12
            imp_left = -np.sum(p_left * np.log2(p_left + eps), axis=2)
            imp_right = -np.sum(p_right * np.log2(p_right + eps), axis=2)
        curve = (n_left * imp_left + n_right * imp_right) / n
        # Valid split positions: value changes + leaf-size constraints.
        hi = n - self.min_samples_leaf
        position = np.arange(1, n)[:, None]
        valid = values[:-1] < values[1:]
        valid &= (position >= self.min_samples_leaf) & (position <= hi)
        curve = np.where(valid, curve, np.inf)
        best_pos = np.argmin(curve, axis=0)
        best_imp = curve[best_pos, np.arange(m)]
        best = (np.inf, -1, 0.0)  # (impurity, feature, threshold)
        for j in range(m):
            if best_imp[j] < best[0]:
                i = int(best_pos[j])
                threshold = 0.5 * (values[i, j] + values[i + 1, j])
                best = (float(best_imp[j]), int(features[j]), threshold)
        return best

    def _grow(self, X, codes, k, depth, rng) -> _Node:
        n = X.shape[0]
        pure = np.unique(codes).size == 1
        too_deep = self.max_depth is not None and depth >= self.max_depth
        if pure or too_deep or n < self.min_samples_split:
            return self._leaf(codes, k)
        impurity, feature, threshold = self._best_split(X, codes, k, rng)
        if feature < 0:
            return self._leaf(codes, k)
        mask = X[:, feature] <= threshold
        if mask.all() or not mask.any():
            return self._leaf(codes, k)
        left = self._grow(X[mask], codes[mask], k, depth + 1, rng)
        right = self._grow(X[~mask], codes[~mask], k, depth + 1, rng)
        return _Node(feature=feature, threshold=threshold, left=left, right=right)

    def fit(self, X, y) -> "DecisionTree":
        X, y = check_X_y(X, y)
        codes = self._encode_labels(y)
        rng = np.random.default_rng(self.rng_seed)
        self.root_ = self._grow(X, codes, self.classes_.size, 0, rng)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_X(X)
        out = np.empty((X.shape[0], self.classes_.size))
        # Route whole index cohorts through the tree at once instead of
        # walking it per sample: each node partitions its cohort with one
        # vectorised comparison.
        stack = [(self.root_, np.arange(X.shape[0]))]
        while stack:
            node, members = stack.pop()
            if members.size == 0:
                continue
            if node.is_leaf:
                out[members] = node.proba
                continue
            mask = X[members, node.feature] <= node.threshold
            stack.append((node.left, members[mask]))
            stack.append((node.right, members[~mask]))
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        self._check_fitted()

        def _depth(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self.root_)
