"""Classical machine-learning substrate (numpy, from scratch).

The paper runs its time/frequency-domain features through Weka
classifiers: ``Logistic``, ``MultiClassClassifier``, ``trees.LMT``,
``RandomForest`` and ``RandomSubSpace``. No ML framework is available
offline, so this package implements the same algorithm families directly:

- :class:`~repro.ml.logistic.LogisticRegression` — multinomial
  ridge-regularised logistic regression (Weka ``Logistic``);
- :class:`~repro.ml.multiclass.OneVsRestClassifier` — Weka's
  ``MultiClassClassifier`` meta-scheme over binary logistic models;
- :class:`~repro.ml.tree.DecisionTree` — CART with gini/entropy splits;
- :class:`~repro.ml.lmt.LogisticModelTree` — a tree with logistic models
  at the leaves (Weka ``trees.LMT``);
- :class:`~repro.ml.forest.RandomForest` — bagged randomised trees;
- :class:`~repro.ml.subspace.RandomSubspace` — Weka ``RandomSubSpace``;
plus preprocessing (cleaning, z-score, label encoding), stratified
splitting / k-fold CV, metrics, and the entropy information-gain
analysis behind the paper's Table I.
"""

from repro.ml.base import Classifier
from repro.ml.preprocessing import (
    LabelEncoder,
    StandardScaler,
    clean_features,
    train_test_split,
)
from repro.ml.logistic import LogisticRegression
from repro.ml.multiclass import OneVsRestClassifier
from repro.ml.tree import DecisionTree
from repro.ml.lmt import LogisticModelTree
from repro.ml.forest import RandomForest
from repro.ml.subspace import RandomSubspace
from repro.ml.metrics import accuracy_score, confusion_matrix, classification_report
from repro.ml.crossval import StratifiedKFold, cross_val_score, cross_val_confusion
from repro.ml.infogain import information_gain, information_gain_table
from repro.ml.feature_selection import InfoGainSelector, rank_features
from repro.ml.persistence import save_classifier, load_classifier

__all__ = [
    "Classifier",
    "LabelEncoder",
    "StandardScaler",
    "clean_features",
    "train_test_split",
    "LogisticRegression",
    "OneVsRestClassifier",
    "DecisionTree",
    "LogisticModelTree",
    "RandomForest",
    "RandomSubspace",
    "accuracy_score",
    "confusion_matrix",
    "classification_report",
    "StratifiedKFold",
    "cross_val_score",
    "cross_val_confusion",
    "information_gain",
    "information_gain_table",
    "InfoGainSelector",
    "rank_features",
    "save_classifier",
    "load_classifier",
]
