"""Classifier persistence without pickle.

The attacker's workflow (train offline on attacker-device recordings,
deploy the model against victims) needs trained classifiers to move
between processes. Pickle is unsafe for untrusted artifacts, so the
classifiers serialise to explicit JSON documents: logistic regression as
weight matrices, trees as nested node dicts, ensembles as member lists.

``save_classifier`` / ``load_classifier`` dispatch on a ``kind`` tag and
refuse unknown kinds, so a tampered artifact cannot instantiate
arbitrary classes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.ml.forest import RandomForest
from repro.ml.logistic import LogisticRegression
from repro.ml.preprocessing import StandardScaler
from repro.ml.subspace import RandomSubspace
from repro.ml.tree import DecisionTree, _Node

__all__ = ["save_classifier", "load_classifier", "classifier_to_dict",
           "classifier_from_dict", "scaler_to_dict", "scaler_from_dict",
           "PERSISTABLE_KINDS"]

_PathLike = Union[str, Path]


def _node_to_dict(node: _Node) -> dict:
    if node.is_leaf:
        return {"proba": node.proba.tolist()}
    return {
        "feature": node.feature,
        "threshold": node.threshold,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(payload: dict) -> _Node:
    if "proba" in payload:
        return _Node(proba=np.asarray(payload["proba"], dtype=float))
    return _Node(
        feature=int(payload["feature"]),
        threshold=float(payload["threshold"]),
        left=_node_from_dict(payload["left"]),
        right=_node_from_dict(payload["right"]),
    )


def _tree_to_dict(tree: DecisionTree) -> dict:
    tree._check_fitted()
    return {
        "kind": "decision_tree",
        "classes": tree.classes_.tolist(),
        "root": _node_to_dict(tree.root_),
        "params": {
            "max_depth": tree.max_depth,
            "min_samples_split": tree.min_samples_split,
            "min_samples_leaf": tree.min_samples_leaf,
            "criterion": tree.criterion,
            "max_features": tree.max_features,
            "rng_seed": tree.rng_seed,
        },
    }


def _tree_from_dict(payload: dict) -> DecisionTree:
    tree = DecisionTree(**payload["params"])
    tree.classes_ = np.asarray(payload["classes"])
    tree.root_ = _node_from_dict(payload["root"])
    return tree


def _logistic_to_dict(model: LogisticRegression) -> dict:
    model._check_fitted()
    return {
        "kind": "logistic",
        "classes": model.classes_.tolist(),
        "coef": model.coef_.tolist(),
        "intercept": model.intercept_.tolist(),
        "scaler_mean": model._scaler.mean_.tolist(),
        "scaler_std": model._scaler.std_.tolist(),
        "params": {
            "ridge": model.ridge,
            "max_iter": model.max_iter,
            "lr": model.lr,
            "tol": model.tol,
        },
    }


def _logistic_from_dict(payload: dict) -> LogisticRegression:
    model = LogisticRegression(**payload["params"])
    model.classes_ = np.asarray(payload["classes"])
    model.coef_ = np.asarray(payload["coef"], dtype=float)
    model.intercept_ = np.asarray(payload["intercept"], dtype=float)
    scaler = StandardScaler()
    scaler.mean_ = np.asarray(payload["scaler_mean"], dtype=float)
    scaler.std_ = np.asarray(payload["scaler_std"], dtype=float)
    model._scaler = scaler
    return model


def _forest_to_dict(model: RandomForest) -> dict:
    model._check_fitted()
    return {
        "kind": "random_forest",
        "classes": model.classes_.tolist(),
        "trees": [_tree_to_dict(tree) for tree in model.trees_],
        "params": {
            "n_estimators": model.n_estimators,
            "max_depth": model.max_depth,
            "max_features": model.max_features,
            "min_samples_leaf": model.min_samples_leaf,
            "seed": model.seed,
        },
    }


def _forest_from_dict(payload: dict) -> RandomForest:
    model = RandomForest(**payload["params"])
    model.classes_ = np.asarray(payload["classes"])
    model.trees_ = [_tree_from_dict(t) for t in payload["trees"]]
    return model


def _subspace_to_dict(model: RandomSubspace) -> dict:
    model._check_fitted()
    return {
        "kind": "random_subspace",
        "classes": model.classes_.tolist(),
        "members": [
            {"features": features.tolist(), "tree": _tree_to_dict(tree)}
            for features, tree in model.members_
        ],
        "params": {
            "n_estimators": model.n_estimators,
            "subspace_fraction": model.subspace_fraction,
            "base_max_depth": model.base_max_depth,
            "seed": model.seed,
        },
    }


def _subspace_from_dict(payload: dict) -> RandomSubspace:
    model = RandomSubspace(**payload["params"])
    model.classes_ = np.asarray(payload["classes"])
    model.members_ = [
        (np.asarray(m["features"], dtype=int), _tree_from_dict(m["tree"]))
        for m in payload["members"]
    ]
    return model


_SERIALISERS = {
    LogisticRegression: _logistic_to_dict,
    DecisionTree: _tree_to_dict,
    RandomForest: _forest_to_dict,
    RandomSubspace: _subspace_to_dict,
}

_DESERIALISERS = {
    "logistic": _logistic_from_dict,
    "decision_tree": _tree_from_dict,
    "random_forest": _forest_from_dict,
    "random_subspace": _subspace_from_dict,
}

#: Every ``kind`` tag the dispatch table accepts.
PERSISTABLE_KINDS: Tuple[str, ...] = tuple(sorted(_DESERIALISERS))


def scaler_to_dict(scaler: StandardScaler) -> dict:
    """Serialise a fitted :class:`StandardScaler` to a JSON-safe dict.

    Zero-variance columns survive exactly: ``fit`` already clamps their
    stored ``std_`` to 1.0, and that clamped value is what round-trips.
    """
    if scaler.mean_ is None or scaler.std_ is None:
        raise RuntimeError("StandardScaler is not fitted")
    return {
        "kind": "standard_scaler",
        "mean": scaler.mean_.tolist(),
        "std": scaler.std_.tolist(),
    }


def scaler_from_dict(payload: dict) -> StandardScaler:
    """Rebuild a :class:`StandardScaler` from :func:`scaler_to_dict` output."""
    kind = payload.get("kind")
    if kind != "standard_scaler":
        raise ValueError(f"expected kind 'standard_scaler', got {kind!r}")
    scaler = StandardScaler()
    scaler.mean_ = np.asarray(payload["mean"], dtype=float)
    scaler.std_ = np.asarray(payload["std"], dtype=float)
    return scaler


def classifier_to_dict(model) -> dict:
    """Serialise a supported fitted classifier to a JSON-safe dict."""
    serialiser = _SERIALISERS.get(type(model))
    if serialiser is None:
        raise TypeError(
            f"cannot serialise {type(model).__name__}; supported: "
            f"{sorted(c.__name__ for c in _SERIALISERS)}"
        )
    return serialiser(model)


def classifier_from_dict(payload: dict):
    """Rebuild a classifier from :func:`classifier_to_dict` output."""
    kind = payload.get("kind")
    deserialiser = _DESERIALISERS.get(kind)
    if deserialiser is None:
        raise ValueError(f"unknown classifier kind {kind!r}")
    return deserialiser(payload)


def save_classifier(model, path: _PathLike) -> None:
    """Write a fitted classifier to a JSON file."""
    Path(path).write_text(json.dumps(classifier_to_dict(model)))


def load_classifier(path: _PathLike):
    """Load a classifier written by :func:`save_classifier`.

    Malformed or unrecognised artifacts raise a :class:`ValueError`
    naming the offending file, so a bad member inside a model bundle is
    identifiable from the exception alone.
    """
    path = Path(path)
    text = path.read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid classifier JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(
            f"{path}: expected a classifier JSON object, got "
            f"{type(payload).__name__}"
        )
    try:
        return classifier_from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"{path}: {exc}") from exc
