"""Logistic model tree (Weka ``trees.LMT`` analogue).

A shallow CART skeleton whose leaves each hold a multinomial logistic
model fitted on the training rows reaching that leaf. Small leaves fall
back to the empirical class distribution, and every leaf's logistic
output is smoothed toward that distribution — the same bias/variance
trade LMT's built-in boosting-with-early-stopping makes.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.ml.base import Classifier, check_X, check_X_y
from repro.ml.logistic import LogisticRegression
from repro.ml.tree import DecisionTree

__all__ = ["LogisticModelTree"]


class LogisticModelTree(Classifier):
    """Decision tree with logistic-regression leaf models.

    Parameters
    ----------
    max_depth:
        Depth of the structural tree (LMT trees are shallow; default 2).
    min_leaf_fraction:
        Minimum fraction of the training set a leaf must hold to get its
        own logistic model (smaller leaves use the class distribution).
    ridge:
        L2 penalty of the leaf logistic models.
    smoothing:
        Blend weight of the leaf class distribution into the logistic
        output, in [0, 1).
    """

    def __init__(
        self,
        max_depth: int = 2,
        min_leaf_fraction: float = 0.05,
        ridge: float = 1e-3,
        smoothing: float = 0.15,
    ):
        if not 0.0 <= smoothing < 1.0:
            raise ValueError("smoothing must be in [0, 1)")
        self.max_depth = int(max_depth)
        self.min_leaf_fraction = float(min_leaf_fraction)
        self.ridge = float(ridge)
        self.smoothing = float(smoothing)
        self.tree_: Optional[DecisionTree] = None
        self.leaf_models_: Optional[Dict[int, LogisticRegression]] = None
        self.leaf_priors_: Optional[Dict[int, np.ndarray]] = None

    def _leaf_ids(self, X: np.ndarray) -> np.ndarray:
        """Identify which structural leaf each row falls into."""
        ids = np.empty(X.shape[0], dtype=int)
        for i, row in enumerate(X):
            node = self.tree_.root_
            path = 0
            while not node.is_leaf:
                go_left = row[node.feature] <= node.threshold
                path = path * 2 + (1 if go_left else 2)
                node = node.left if go_left else node.right
            ids[i] = path
        return ids

    def fit(self, X, y) -> "LogisticModelTree":
        X, y = check_X_y(X, y)
        codes = self._encode_labels(y)
        k = self.classes_.size
        self.tree_ = DecisionTree(
            max_depth=self.max_depth, min_samples_leaf=max(2, X.shape[0] // 50)
        )
        self.tree_.fit(X, codes)
        leaf_ids = self._leaf_ids(X)
        min_rows = max(3 * k, int(self.min_leaf_fraction * X.shape[0]))
        self.leaf_models_ = {}
        self.leaf_priors_ = {}
        for leaf in np.unique(leaf_ids):
            members = leaf_ids == leaf
            leaf_codes = codes[members]
            prior = np.bincount(leaf_codes, minlength=k).astype(float)
            prior /= prior.sum()
            self.leaf_priors_[int(leaf)] = prior
            if members.sum() >= min_rows and np.unique(leaf_codes).size >= 2:
                model = LogisticRegression(ridge=self.ridge, max_iter=200)
                model.fit(X[members], leaf_codes)
                self.leaf_models_[int(leaf)] = model
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_X(X)
        k = self.classes_.size
        out = np.zeros((X.shape[0], k))
        leaf_ids = self._leaf_ids(X)
        fallback = np.full(k, 1.0 / k)
        for leaf in np.unique(leaf_ids):
            members = leaf_ids == leaf
            prior = self.leaf_priors_.get(int(leaf), fallback)
            model = self.leaf_models_.get(int(leaf))
            if model is None:
                out[members] = prior
                continue
            proba = model.predict_proba(X[members])
            # The leaf model may have seen fewer classes than the tree.
            full = np.zeros((proba.shape[0], k))
            for j, code in enumerate(model.classes_):
                full[:, int(code)] = proba[:, j]
            out[members] = (1.0 - self.smoothing) * full + self.smoothing * prior
        return out
