"""Common classifier interface.

Every classifier in :mod:`repro.ml` subclasses :class:`Classifier` and
implements ``fit`` / ``predict_proba``; ``predict`` and ``score`` come
for free. Labels may be arbitrary hashables — they are encoded
internally and decoded on prediction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["Classifier", "check_X_y", "check_X"]


def check_X(X) -> np.ndarray:
    """Validate a feature matrix: 2-D, finite, float."""
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {X.shape}")
    if X.shape[0] == 0:
        raise ValueError("feature matrix has no rows")
    if not np.all(np.isfinite(X)):
        raise ValueError(
            "feature matrix contains NaN/inf; run repro.ml.clean_features first"
        )
    return X


def check_X_y(X, y):
    """Validate a feature matrix with its label vector."""
    X = check_X(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"expected a 1-D label vector, got shape {y.shape}")
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} rows but y has {y.shape[0]} labels"
        )
    return X, y


class Classifier:
    """Base class: label encoding plus the predict/score conveniences."""

    classes_: Optional[np.ndarray] = None

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        """Store the class inventory and return integer-encoded labels."""
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValueError("need at least two classes to fit a classifier")
        index = {label: i for i, label in enumerate(self.classes_)}
        return np.array([index[label] for label in y], dtype=int)

    def _check_fitted(self) -> None:
        if self.classes_ is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted")

    # -- API every subclass implements -----------------------------------
    def fit(self, X, y) -> "Classifier":
        raise NotImplementedError

    def predict_proba(self, X) -> np.ndarray:
        """Class-probability matrix of shape (n_samples, n_classes)."""
        raise NotImplementedError

    # -- derived conveniences ---------------------------------------------
    def predict(self, X) -> np.ndarray:
        """Most-probable class label for each row."""
        self._check_fitted()
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X, y) -> float:
        """Mean accuracy on the given data."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    def clone(self) -> "Classifier":
        """Fresh unfitted copy with the same constructor parameters."""
        params = {
            k: v
            for k, v in self.__dict__.items()
            if not k.endswith("_") and not k.startswith("_")
        }
        return type(self)(**params)
