"""Preprocessing: cleaning, scaling, label encoding and splitting.

Mirrors the paper's preprocessing: "we clean the generated data by
removing invalid entries such as NaN and blank entries" (Section IV-D1)
and "we apply z-score normalization" before the feature CNN (IV-D2);
evaluation uses an 80/20 train/test split (IV-C1, IV-D1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import metrics

__all__ = ["clean_features", "StandardScaler", "LabelEncoder", "train_test_split"]


def clean_features(
    X: np.ndarray, y: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]:
    """Drop rows containing NaN/inf entries.

    Returns ``(X_clean, y_clean, kept_mask)``; ``y_clean`` is None when no
    labels were supplied. Every dropped row increments the labelled
    ``preprocessing.rows_dropped`` counter — silent training-set
    shrinkage (the Table II NaN-sentinel bug) is observable in the
    metrics table instead of just shifting accuracies.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {X.shape}")
    mask = np.all(np.isfinite(X), axis=1)
    dropped = int(X.shape[0] - np.count_nonzero(mask))
    if dropped:
        metrics().count(
            "preprocessing.rows_dropped", dropped, stage="clean_features",
            reason="nonfinite",
        )
    X_clean = X[mask]
    y_clean = None
    if y is not None:
        y = np.asarray(y)
        if y.shape[0] != X.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        y_clean = y[mask]
    return X_clean, y_clean, mask


class StandardScaler:
    """Per-feature z-score normalisation (constant features map to 0)."""

    def __init__(self):
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"expected a 2-D feature matrix, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std < 1e-12] = 1.0
        self.std_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.std_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class LabelEncoder:
    """Map arbitrary labels to contiguous integers and back."""

    def __init__(self):
        self.classes_: Optional[np.ndarray] = None

    def fit(self, y: Sequence) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y: Sequence) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder is not fitted")
        index = {label: i for i, label in enumerate(self.classes_)}
        try:
            return np.array([index[label] for label in np.asarray(y)], dtype=int)
        except KeyError as exc:
            raise ValueError(f"unseen label {exc.args[0]!r}") from None

    def fit_transform(self, y: Sequence) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, codes: Sequence[int]) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder is not fitted")
        codes = np.asarray(codes, dtype=int)
        if codes.size and (codes.min() < 0 or codes.max() >= self.classes_.size):
            raise ValueError("code out of range")
        return self.classes_[codes]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.2,
    seed: int = 0,
    stratify: bool = True,
):
    """Stratified random split; default 80/20 as in the paper.

    Returns ``(X_train, X_test, y_train, y_test)``.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = X.shape[0]
    test_idx: List[int] = []
    if stratify:
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            rng.shuffle(members)
            n_test = max(1, int(round(members.size * test_fraction)))
            if n_test >= members.size:
                n_test = max(1, members.size - 1)
            test_idx.extend(members[:n_test].tolist())
    else:
        order = rng.permutation(n)
        test_idx = order[: max(1, int(round(n * test_fraction)))].tolist()
    test_mask = np.zeros(n, dtype=bool)
    test_mask[test_idx] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]
