"""Entropy-based information gain of individual features.

Reproduces the analysis behind the paper's Table I (information gain of
time/frequency features with no filter vs a 1 Hz high-pass) and the
feature-efficacy check of Section III-B4 ("all features listed in Table
II exhibit non-zero information gain"). Continuous features are
discretised with equal-frequency binning before computing
``H(Y) - H(Y | bin(X))``, the same quantity Weka's InfoGainAttributeEval
reports (bits).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["entropy", "information_gain", "information_gain_table"]


def entropy(labels: np.ndarray) -> float:
    """Shannon entropy (bits) of a label vector."""
    labels = np.asarray(labels)
    if labels.size == 0:
        raise ValueError("empty label vector")
    _, counts = np.unique(labels, return_counts=True)
    p = counts / counts.sum()
    return float(-np.sum(p * np.log2(p)))


def _equal_frequency_bins(x: np.ndarray, n_bins: int) -> np.ndarray:
    """Assign each value to an equal-frequency bin index."""
    quantiles = np.quantile(x, np.linspace(0.0, 1.0, n_bins + 1)[1:-1])
    return np.searchsorted(quantiles, x, side="right")


def information_gain(x: np.ndarray, y: np.ndarray, n_bins: int = 10) -> float:
    """Information gain H(Y) - H(Y|bin(X)) in bits.

    Non-finite feature values are assigned their own bin (they carry
    whatever information their presence pattern carries), matching how a
    cleaned-vs-raw comparison would treat them.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"x has {x.shape[0]} values but y has {y.shape[0]}")
    if x.size == 0:
        raise ValueError("empty feature vector")
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2")
    finite = np.isfinite(x)
    bins = np.full(x.shape[0], n_bins, dtype=int)
    if finite.any():
        bins[finite] = _equal_frequency_bins(x[finite], n_bins)
    h_y = entropy(y)
    h_cond = 0.0
    n = y.shape[0]
    for b in np.unique(bins):
        members = bins == b
        h_cond += members.sum() / n * entropy(y[members])
    return float(max(0.0, h_y - h_cond))


def information_gain_table(
    X: np.ndarray, y: np.ndarray, feature_names: Sequence[str], n_bins: int = 10
) -> Dict[str, float]:
    """Information gain of every column of ``X``, keyed by feature name."""
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {X.shape}")
    if X.shape[1] != len(feature_names):
        raise ValueError(
            f"{X.shape[1]} columns but {len(feature_names)} feature names"
        )
    return {
        name: information_gain(X[:, j], y, n_bins)
        for j, name in enumerate(feature_names)
    }
