"""Spectrogram computation and spectrogram-image preparation.

The paper's CNN image classifier consumes 32x32 spectrogram images of each
detected speech region (Section IV-C1). :func:`spectrogram_image` performs
the full chain: STFT power, log compression, per-image normalisation and
bilinear resize to the target resolution.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dsp.stft import stft

__all__ = [
    "power_spectrogram",
    "log_spectrogram",
    "resize_image",
    "spectrogram_image",
]


def power_spectrogram(
    x: np.ndarray,
    fs: float,
    frame_length: int = 256,
    hop_length: int = 64,
    window: str = "hann",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Power spectrogram ``|STFT|^2`` with its frequency/time axes."""
    freqs, times, Z = stft(x, fs, frame_length, hop_length, window)
    return freqs, times, np.abs(Z) ** 2


def log_spectrogram(
    x: np.ndarray,
    fs: float,
    frame_length: int = 256,
    hop_length: int = 64,
    window: str = "hann",
    floor_db: float = -120.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Log-power spectrogram in dB, floored at ``floor_db``."""
    freqs, times, power = power_spectrogram(x, fs, frame_length, hop_length, window)
    ref = power.max() if power.size and power.max() > 0 else 1.0
    db = 10.0 * np.log10(np.maximum(power / ref, 10 ** (floor_db / 10.0)))
    return freqs, times, db


def resize_image(image: np.ndarray, out_shape: Tuple[int, int]) -> np.ndarray:
    """Bilinear resize of a 2-D array to ``out_shape = (rows, cols)``."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    rows_out, cols_out = out_shape
    if rows_out < 1 or cols_out < 1:
        raise ValueError(f"output shape must be positive, got {out_shape}")
    rows_in, cols_in = image.shape

    def _axis_coords(n_out: int, n_in: int) -> np.ndarray:
        if n_out == 1:
            return np.zeros(1)
        return np.linspace(0.0, n_in - 1.0, n_out)

    r = _axis_coords(rows_out, rows_in)
    c = _axis_coords(cols_out, cols_in)
    r0 = np.clip(np.floor(r).astype(int), 0, max(rows_in - 2, 0))
    c0 = np.clip(np.floor(c).astype(int), 0, max(cols_in - 2, 0))
    r1 = np.minimum(r0 + 1, rows_in - 1)
    c1 = np.minimum(c0 + 1, cols_in - 1)
    wr = (r - r0)[:, None]
    wc = (c - c0)[None, :]
    top = image[np.ix_(r0, c0)] * (1 - wc) + image[np.ix_(r0, c1)] * wc
    bottom = image[np.ix_(r1, c0)] * (1 - wc) + image[np.ix_(r1, c1)] * wc
    return top * (1 - wr) + bottom * wr


def spectrogram_image(
    x: np.ndarray,
    fs: float,
    size: int = 32,
    frame_length: int = 64,
    hop_length: int = 16,
    window: str = "hann",
) -> np.ndarray:
    """Normalised ``size x size`` log-spectrogram image of a speech region.

    The image is scaled to [0, 1] per region, matching the per-image
    preprocessing applied before the paper's CNN (resized 32x32 inputs).
    """
    x = np.asarray(x, dtype=float)
    frame_length = min(frame_length, max(8, x.size))
    hop_length = max(1, min(hop_length, frame_length // 2))
    _, _, db = log_spectrogram(x, fs, frame_length, hop_length, window)
    image = resize_image(db, (size, size))
    lo, hi = image.min(), image.max()
    if hi - lo < 1e-12:
        return np.zeros((size, size))
    return (image - lo) / (hi - lo)
