"""Spectrogram computation and spectrogram-image preparation.

The paper's CNN image classifier consumes 32x32 spectrogram images of each
detected speech region (Section IV-C1). :func:`spectrogram_image` performs
the full chain: STFT power, log compression, per-image normalisation and
bilinear resize to the target resolution.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dsp.stft import frame_signal, stft
from repro.dsp.windows import get_window

__all__ = [
    "power_spectrogram",
    "log_spectrogram",
    "resize_image",
    "spectrogram_image",
    "spectrogram_image_batch",
]


def power_spectrogram(
    x: np.ndarray,
    fs: float,
    frame_length: int = 256,
    hop_length: int = 64,
    window: str = "hann",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Power spectrogram ``|STFT|^2`` with its frequency/time axes."""
    freqs, times, Z = stft(x, fs, frame_length, hop_length, window)
    return freqs, times, np.abs(Z) ** 2


def log_spectrogram(
    x: np.ndarray,
    fs: float,
    frame_length: int = 256,
    hop_length: int = 64,
    window: str = "hann",
    floor_db: float = -120.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Log-power spectrogram in dB, floored at ``floor_db``."""
    freqs, times, power = power_spectrogram(x, fs, frame_length, hop_length, window)
    ref = power.max() if power.size and power.max() > 0 else 1.0
    db = 10.0 * np.log10(np.maximum(power / ref, 10 ** (floor_db / 10.0)))
    return freqs, times, db


def resize_image(image: np.ndarray, out_shape: Tuple[int, int]) -> np.ndarray:
    """Bilinear resize of a 2-D array to ``out_shape = (rows, cols)``."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    rows_out, cols_out = out_shape
    if rows_out < 1 or cols_out < 1:
        raise ValueError(f"output shape must be positive, got {out_shape}")
    rows_in, cols_in = image.shape

    def _axis_coords(n_out: int, n_in: int) -> np.ndarray:
        if n_out == 1:
            return np.zeros(1)
        return np.linspace(0.0, n_in - 1.0, n_out)

    r = _axis_coords(rows_out, rows_in)
    c = _axis_coords(cols_out, cols_in)
    r0 = np.clip(np.floor(r).astype(int), 0, max(rows_in - 2, 0))
    c0 = np.clip(np.floor(c).astype(int), 0, max(cols_in - 2, 0))
    r1 = np.minimum(r0 + 1, rows_in - 1)
    c1 = np.minimum(c0 + 1, cols_in - 1)
    wr = (r - r0)[:, None]
    wc = (c - c0)[None, :]
    top = image[np.ix_(r0, c0)] * (1 - wc) + image[np.ix_(r0, c1)] * wc
    bottom = image[np.ix_(r1, c0)] * (1 - wc) + image[np.ix_(r1, c1)] * wc
    return top * (1 - wr) + bottom * wr


def spectrogram_image(
    x: np.ndarray,
    fs: float,
    size: int = 32,
    frame_length: int = 64,
    hop_length: int = 16,
    window: str = "hann",
) -> np.ndarray:
    """Normalised ``size x size`` log-spectrogram image of a speech region.

    The image is scaled to [0, 1] per region, matching the per-image
    preprocessing applied before the paper's CNN (resized 32x32 inputs).
    """
    x = np.asarray(x, dtype=float)
    frame_length = min(frame_length, max(8, x.size))
    hop_length = max(1, min(hop_length, frame_length // 2))
    _, _, db = log_spectrogram(x, fs, frame_length, hop_length, window)
    image = resize_image(db, (size, size))
    lo, hi = image.min(), image.max()
    if hi - lo < 1e-12:
        return np.zeros((size, size))
    return (image - lo) / (hi - lo)


def spectrogram_image_batch(
    rows: Sequence[np.ndarray],
    fs: float,
    size: int = 32,
    frame_length: int = 64,
    hop_length: int = 16,
    window: str = "hann",
    dtype: Optional[Union[str, np.dtype, type]] = None,
) -> List[np.ndarray]:
    """Batched :func:`spectrogram_image` over variable-length regions.

    Rows are grouped by their effective ``(frame_length, hop_length)``
    (both depend on row length), each group's frames are concatenated
    into one matrix and transformed with a single ``rfft`` call, and the
    log compression / resize / normalisation run per row on the split
    results. Under the default float64 ``dtype`` every image is
    byte-identical to the per-row function; ``float32`` is the hot path —
    frames are cast before the FFT (a complex64 transform) and images are
    stored single-precision, tolerance-close to the float64 chain.
    """
    out_dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
    arrays = [np.asarray(r, dtype=float) for r in rows]
    images: List[Optional[np.ndarray]] = [None] * len(arrays)
    groups: dict = {}
    for i, x in enumerate(arrays):
        fl = min(frame_length, max(8, x.size))
        hl = max(1, min(hop_length, fl // 2))
        groups.setdefault((fl, hl), []).append(i)
    floor_power = 10 ** (-120.0 / 10.0)
    for (fl, hl), idxs in groups.items():
        frames_list = [frame_signal(arrays[i], fl, hl, pad=True) for i in idxs]
        counts = [f.shape[0] for f in frames_list]
        all_frames = np.concatenate(frames_list, axis=0)
        win = get_window(window, fl)
        if out_dtype == np.dtype(np.float32):
            all_frames = all_frames.astype(np.float32)
            win = win.astype(np.float32)
        spectrum = np.fft.rfft(all_frames * win, axis=1)
        power = np.abs(spectrum) ** 2
        offset = 0
        for k, i in enumerate(idxs):
            # (n_freqs, n_frames) orientation, as log_spectrogram returns.
            p = power[offset : offset + counts[k]].T
            offset += counts[k]
            ref = p.max() if p.size and p.max() > 0 else 1.0
            db = 10.0 * np.log10(np.maximum(p / ref, floor_power))
            image = resize_image(db, (size, size))
            lo, hi = image.min(), image.max()
            if hi - lo < 1e-12:
                images[i] = np.zeros((size, size), dtype=out_dtype)
            else:
                images[i] = ((image - lo) / (hi - lo)).astype(out_dtype, copy=False)
    return images  # type: ignore[return-value]
