"""Amplitude-envelope extraction and moving statistics.

Speech-region detection (paper Section III-B2) keys off energy spikes in
the accelerometer trace; these helpers compute the smoothed rectified
envelope and windowed RMS that the detector thresholds.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.filters import lowpass

__all__ = ["amplitude_envelope", "moving_rms", "moving_average"]


def moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge shrinking (same length as input)."""
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D signal, got shape {x.shape}")
    if window < 1:
        raise ValueError("window must be >= 1")
    if window == 1 or x.size == 0:
        return x.copy()
    window = min(window, x.size)
    # Cumulative-sum sliding window: O(n) regardless of window size.
    half_left = window // 2
    half_right = window - half_left - 1
    csum = np.concatenate([[0.0], np.cumsum(x)])
    n = x.size
    idx = np.arange(n)
    lo = np.maximum(idx - half_left, 0)
    hi = np.minimum(idx + half_right + 1, n)
    return (csum[hi] - csum[lo]) / (hi - lo)


def moving_rms(x: np.ndarray, window: int) -> np.ndarray:
    """Centered moving root-mean-square (same length as input)."""
    return np.sqrt(moving_average(np.asarray(x, dtype=float) ** 2, window))


def amplitude_envelope(
    x: np.ndarray, fs: float, cutoff_hz: float = 10.0, order: int = 2
) -> np.ndarray:
    """Rectify-and-smooth amplitude envelope.

    Full-wave rectification followed by a low-pass at ``cutoff_hz``. The
    result is clipped at zero (the low-pass can slightly undershoot).
    """
    x = np.asarray(x, dtype=float)
    rectified = np.abs(x - np.mean(x))
    if rectified.size < 16 or cutoff_hz >= 0.5 * fs:
        return moving_rms(x - np.mean(x), max(3, rectified.size // 4 or 1))
    smooth = lowpass(rectified, cutoff_hz, fs, order=order)
    return np.maximum(smooth, 0.0)
