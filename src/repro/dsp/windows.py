"""Window functions used for framing, STFT analysis and filter smoothing.

Implemented directly (rather than via :mod:`scipy.signal.windows`) so the
exact periodic/symmetric convention used by the spectrogram code is pinned
down in one place.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hann", "hamming", "blackman", "rectangular", "get_window"]


def _raised_cosine(length: int, coefficients, periodic: bool) -> np.ndarray:
    """Generalised cosine window ``sum_k a_k cos(2 pi k n / D)``."""
    if length < 1:
        raise ValueError(f"window length must be >= 1, got {length}")
    if length == 1:
        return np.ones(1)
    denom = length if periodic else length - 1
    n = np.arange(length)
    window = np.zeros(length)
    for k, a_k in enumerate(coefficients):
        window += a_k * np.cos(2.0 * np.pi * k * n / denom) * ((-1.0) ** k)
    return window


def hann(length: int, periodic: bool = True) -> np.ndarray:
    """Hann window. ``periodic=True`` gives the DFT-even variant."""
    return _raised_cosine(length, (0.5, 0.5), periodic)


def hamming(length: int, periodic: bool = True) -> np.ndarray:
    """Hamming window (0.54 / 0.46 coefficients)."""
    return _raised_cosine(length, (0.54, 0.46), periodic)


def blackman(length: int, periodic: bool = True) -> np.ndarray:
    """Blackman window (classic 0.42 / 0.5 / 0.08 coefficients)."""
    return _raised_cosine(length, (0.42, 0.5, 0.08), periodic)


def rectangular(length: int, periodic: bool = True) -> np.ndarray:
    """Rectangular (boxcar) window."""
    if length < 1:
        raise ValueError(f"window length must be >= 1, got {length}")
    return np.ones(length)


_WINDOWS = {
    "hann": hann,
    "hanning": hann,
    "hamming": hamming,
    "blackman": blackman,
    "rect": rectangular,
    "rectangular": rectangular,
    "boxcar": rectangular,
}


def get_window(name: str, length: int, periodic: bool = True) -> np.ndarray:
    """Look up a window by name.

    Parameters
    ----------
    name:
        One of ``hann``, ``hamming``, ``blackman``, ``rectangular`` (plus
        common aliases).
    length:
        Number of samples.
    periodic:
        Use the DFT-even (periodic) variant, appropriate for spectral
        analysis with overlapping frames.
    """
    try:
        factory = _WINDOWS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown window {name!r}; available: {sorted(set(_WINDOWS))}"
        ) from None
    return factory(length, periodic=periodic)
