"""Butterworth IIR filter design and zero-phase filtering.

The paper uses high-pass filters in two places: an 8 Hz high-pass on the
*speech-region detection* path for the handheld/ear-speaker setting, and a
1 Hz high-pass in the Table I information-gain ablation (which is shown to
destroy the feature information and is therefore *not* used on the feature
path). Both are expressed through the helpers here.

Design is delegated to :func:`scipy.signal.butter` in second-order-section
form for numerical stability; filtering uses :func:`scipy.signal.sosfiltfilt`
so the detection path adds no group delay (matching the offline MATLAB
analysis in the paper).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy import signal as _signal

__all__ = [
    "butter_highpass",
    "butter_lowpass",
    "butter_bandpass",
    "cached_butter_highpass",
    "sosfilt_zero_phase",
    "sosfilt_zero_phase_batch",
    "highpass",
    "lowpass",
    "bandpass",
]


def _check_cutoff(cutoff_hz: float, fs: float) -> None:
    nyquist = 0.5 * fs
    if not 0.0 < cutoff_hz < nyquist:
        raise ValueError(
            f"cutoff {cutoff_hz} Hz must lie in (0, {nyquist}) for fs={fs} Hz"
        )


def butter_highpass(cutoff_hz: float, fs: float, order: int = 4) -> np.ndarray:
    """Design a Butterworth high-pass filter, returned as SOS sections."""
    _check_cutoff(cutoff_hz, fs)
    return _signal.butter(order, cutoff_hz, btype="highpass", fs=fs, output="sos")


@lru_cache(maxsize=64)
def _cached_butter_highpass(cutoff_hz: float, fs: float, order: int) -> np.ndarray:
    sos = butter_highpass(cutoff_hz, fs, order)
    sos.setflags(write=False)
    return sos


def cached_butter_highpass(cutoff_hz: float, fs: float, order: int = 4) -> np.ndarray:
    """Memoized :func:`butter_highpass` for hot loops.

    Butterworth design is deterministic in ``(cutoff, fs, order)``, so the
    cached sections are bitwise what a fresh design returns; the batched
    collection pipeline uses this to avoid re-designing the same filter
    once per utterance. Returns a writable copy (scipy's filters require
    writable coefficient buffers).
    """
    return _cached_butter_highpass(float(cutoff_hz), float(fs), int(order)).copy()


def butter_lowpass(cutoff_hz: float, fs: float, order: int = 4) -> np.ndarray:
    """Design a Butterworth low-pass filter, returned as SOS sections."""
    _check_cutoff(cutoff_hz, fs)
    return _signal.butter(order, cutoff_hz, btype="lowpass", fs=fs, output="sos")


def butter_bandpass(
    low_hz: float, high_hz: float, fs: float, order: int = 2
) -> np.ndarray:
    """Design a Butterworth band-pass filter, returned as SOS sections."""
    _check_cutoff(low_hz, fs)
    _check_cutoff(high_hz, fs)
    if low_hz >= high_hz:
        raise ValueError(f"band edges must satisfy low < high, got {low_hz} >= {high_hz}")
    return _signal.butter(
        order, (low_hz, high_hz), btype="bandpass", fs=fs, output="sos"
    )


#: Per-coefficient-set state for the zero-phase fast path: the odd-ext
#: edge length and the steady-state initial conditions. ``sosfilt_zi``
#: solves a small linear system, which dominates ``sosfiltfilt``'s
#: per-call overhead when the same filter runs over hundreds of rows.
_ZERO_PHASE_CACHE: dict = {}


def _zero_phase_state(sos: np.ndarray):
    key = sos.tobytes()
    entry = _ZERO_PHASE_CACHE.get(key)
    if entry is None:
        n_sections = sos.shape[0]
        ntaps = 2 * n_sections + 1
        ntaps -= min(int((sos[:, 2] == 0).sum()), int((sos[:, 5] == 0).sum()))
        zi = _signal.sosfilt_zi(sos)
        zi.setflags(write=False)
        entry = (3 * ntaps, zi)
        _ZERO_PHASE_CACHE[key] = entry
    return entry


def sosfilt_zero_phase(sos: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Apply an SOS filter forwards and backwards (zero phase).

    Replicates :func:`scipy.signal.sosfiltfilt` (default odd padding)
    step for step — odd extension, steady-state ``zi`` scaled by the
    first/last sample, forward and reverse passes — so the output is
    bitwise what sosfiltfilt returns, but the expensive ``sosfilt_zi``
    solve is computed once per coefficient set instead of once per call.
    Falls back to single-pass filtering for signals too short for the
    edge padding.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D signal, got shape {x.shape}")
    pad = 3 * (sos.shape[0] * 2 + 1)
    if x.size <= pad:
        return _signal.sosfilt(sos, x)
    edge, zi = _zero_phase_state(sos)
    left = 2 * x[:1] - x[edge:0:-1]
    right = 2 * x[-1:] - x[-2 : -(edge + 2) : -1]
    ext = np.concatenate((left, x, right))
    y, _ = _signal.sosfilt(sos, ext, zi=zi * ext[:1])
    y, _ = _signal.sosfilt(sos, y[::-1], zi=zi * y[-1:])
    y = y[::-1]
    if edge > 0:
        y = y[edge:-edge]
    return y


def _length_buckets(sizes, max_ratio: float = 1.3) -> list:
    """Group indices by size so padded stacks waste bounded work.

    One stack padded to the longest row pays for every shorter row's
    padding; sorting the rows and splitting whenever a row exceeds
    ``max_ratio`` times its bucket's shortest keeps that waste under
    ~30% per bucket while still batching near-equal rows together.
    """
    order = sorted(range(len(sizes)), key=sizes.__getitem__)
    buckets = [[order[0]]]
    for i in order[1:]:
        if sizes[i] > max_ratio * sizes[buckets[-1][0]]:
            buckets.append([i])
        else:
            buckets[-1].append(i)
    return buckets


def sosfilt_zero_phase_batch(sos: np.ndarray, xs) -> list:
    """Zero-phase filter many 1-D signals with two stacked causal passes.

    Each row's output is bitwise :func:`sosfilt_zero_phase` of that row
    alone. Zero-phase filtering is not pad-safe *as a whole* (the odd
    extension and the reverse pass depend on where each signal ends),
    but each of its two constituent ``sosfilt`` passes is causal, so
    rows of different lengths can share one stacked call per direction:
    trailing zero padding never reaches back into a row's valid prefix,
    and per-row initial conditions ride along on the stacked ``zi``
    axis. This collapses ``2 * len(xs)`` filter calls into two.
    """
    xs = [np.asarray(x, dtype=float) for x in xs]
    for i, x in enumerate(xs):
        if x.ndim != 1:
            raise ValueError(f"signal {i} must be 1-D, got shape {x.shape}")
    results: list = [None] * len(xs)
    pad = 3 * (sos.shape[0] * 2 + 1)
    live = []
    for i, x in enumerate(xs):
        if x.size <= pad:
            results[i] = _signal.sosfilt(sos, x)
        else:
            live.append(i)
    if not live:
        return results
    if len(live) == 1:
        results[live[0]] = sosfilt_zero_phase(sos, xs[live[0]])
        return results

    edge, zi = _zero_phase_state(sos)
    exts = []
    for i in live:
        x = xs[i]
        left = 2 * x[:1] - x[edge:0:-1]
        right = 2 * x[-1:] - x[-2 : -(edge + 2) : -1]
        exts.append(np.concatenate((left, x, right)))
    sizes = [e.size for e in exts]
    for bucket in _length_buckets(sizes):
        width = sizes[bucket[-1]]
        k = len(bucket)
        stack = np.zeros((k, width))
        heads = np.empty(k)
        for r, j in enumerate(bucket):
            stack[r, : sizes[j]] = exts[j]
            heads[r] = exts[j][0]
        fwd, _ = _signal.sosfilt(
            sos, stack, axis=-1, zi=zi[:, None, :] * heads[None, :, None]
        )
        rev = np.zeros((k, width))
        for r, j in enumerate(bucket):
            rev[r, : sizes[j]] = fwd[r, : sizes[j]][::-1]
            heads[r] = fwd[r, sizes[j] - 1]
        bwd, _ = _signal.sosfilt(
            sos, rev, axis=-1, zi=zi[:, None, :] * heads[None, :, None]
        )
        for r, j in enumerate(bucket):
            results[live[j]] = bwd[r, : sizes[j]][::-1][edge:-edge]
    return results


def highpass(x: np.ndarray, cutoff_hz: float, fs: float, order: int = 4) -> np.ndarray:
    """Zero-phase Butterworth high-pass of a 1-D signal."""
    return sosfilt_zero_phase(butter_highpass(cutoff_hz, fs, order), x)


def lowpass(x: np.ndarray, cutoff_hz: float, fs: float, order: int = 4) -> np.ndarray:
    """Zero-phase Butterworth low-pass of a 1-D signal."""
    return sosfilt_zero_phase(butter_lowpass(cutoff_hz, fs, order), x)


def bandpass(
    x: np.ndarray, low_hz: float, high_hz: float, fs: float, order: int = 2
) -> np.ndarray:
    """Zero-phase Butterworth band-pass of a 1-D signal."""
    return sosfilt_zero_phase(butter_bandpass(low_hz, high_hz, fs, order), x)
