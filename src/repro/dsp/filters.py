"""Butterworth IIR filter design and zero-phase filtering.

The paper uses high-pass filters in two places: an 8 Hz high-pass on the
*speech-region detection* path for the handheld/ear-speaker setting, and a
1 Hz high-pass in the Table I information-gain ablation (which is shown to
destroy the feature information and is therefore *not* used on the feature
path). Both are expressed through the helpers here.

Design is delegated to :func:`scipy.signal.butter` in second-order-section
form for numerical stability; filtering uses :func:`scipy.signal.sosfiltfilt`
so the detection path adds no group delay (matching the offline MATLAB
analysis in the paper).
"""

from __future__ import annotations

import numpy as np
from scipy import signal as _signal

__all__ = [
    "butter_highpass",
    "butter_lowpass",
    "butter_bandpass",
    "sosfilt_zero_phase",
    "highpass",
    "lowpass",
    "bandpass",
]


def _check_cutoff(cutoff_hz: float, fs: float) -> None:
    nyquist = 0.5 * fs
    if not 0.0 < cutoff_hz < nyquist:
        raise ValueError(
            f"cutoff {cutoff_hz} Hz must lie in (0, {nyquist}) for fs={fs} Hz"
        )


def butter_highpass(cutoff_hz: float, fs: float, order: int = 4) -> np.ndarray:
    """Design a Butterworth high-pass filter, returned as SOS sections."""
    _check_cutoff(cutoff_hz, fs)
    return _signal.butter(order, cutoff_hz, btype="highpass", fs=fs, output="sos")


def butter_lowpass(cutoff_hz: float, fs: float, order: int = 4) -> np.ndarray:
    """Design a Butterworth low-pass filter, returned as SOS sections."""
    _check_cutoff(cutoff_hz, fs)
    return _signal.butter(order, cutoff_hz, btype="lowpass", fs=fs, output="sos")


def butter_bandpass(
    low_hz: float, high_hz: float, fs: float, order: int = 2
) -> np.ndarray:
    """Design a Butterworth band-pass filter, returned as SOS sections."""
    _check_cutoff(low_hz, fs)
    _check_cutoff(high_hz, fs)
    if low_hz >= high_hz:
        raise ValueError(f"band edges must satisfy low < high, got {low_hz} >= {high_hz}")
    return _signal.butter(
        order, (low_hz, high_hz), btype="bandpass", fs=fs, output="sos"
    )


def sosfilt_zero_phase(sos: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Apply an SOS filter forwards and backwards (zero phase).

    Falls back to single-pass filtering for signals too short for
    ``sosfiltfilt``'s edge padding.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D signal, got shape {x.shape}")
    pad = 3 * (sos.shape[0] * 2 + 1)
    if x.size <= pad:
        return _signal.sosfilt(sos, x)
    return _signal.sosfiltfilt(sos, x)


def highpass(x: np.ndarray, cutoff_hz: float, fs: float, order: int = 4) -> np.ndarray:
    """Zero-phase Butterworth high-pass of a 1-D signal."""
    return sosfilt_zero_phase(butter_highpass(cutoff_hz, fs, order), x)


def lowpass(x: np.ndarray, cutoff_hz: float, fs: float, order: int = 4) -> np.ndarray:
    """Zero-phase Butterworth low-pass of a 1-D signal."""
    return sosfilt_zero_phase(butter_lowpass(cutoff_hz, fs, order), x)


def bandpass(
    x: np.ndarray, low_hz: float, high_hz: float, fs: float, order: int = 2
) -> np.ndarray:
    """Zero-phase Butterworth band-pass of a 1-D signal."""
    return sosfilt_zero_phase(butter_bandpass(low_hz, high_hz, fs, order), x)
