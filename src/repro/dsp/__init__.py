"""Signal-processing substrate for the EmoLeak reproduction.

Everything the attack pipeline and the vibration-channel simulator need:
window functions, IIR filter design and zero-phase filtering, framing and
the short-time Fourier transform, power/log spectrograms with image
resizing, amplitude-envelope extraction, and resampling primitives
(including the anti-alias-free sample-and-decimate path that models a MEMS
accelerometer ADC).

The module is intentionally self-contained on top of numpy/scipy so the
rest of the library never reaches for ad-hoc signal code.
"""

from repro.dsp.windows import get_window, hann, hamming, blackman, rectangular
from repro.dsp.filters import (
    butter_highpass,
    butter_lowpass,
    butter_bandpass,
    sosfilt_zero_phase,
    highpass,
    lowpass,
    bandpass,
)
from repro.dsp.stft import frame_signal, stft, istft
from repro.dsp.spectrogram import (
    power_spectrogram,
    log_spectrogram,
    resize_image,
    spectrogram_image,
)
from repro.dsp.envelope import amplitude_envelope, moving_rms, moving_average
from repro.dsp.resample import (
    linear_resample,
    sample_and_decimate,
    decimate_no_antialias,
)

__all__ = [
    "get_window",
    "hann",
    "hamming",
    "blackman",
    "rectangular",
    "butter_highpass",
    "butter_lowpass",
    "butter_bandpass",
    "sosfilt_zero_phase",
    "highpass",
    "lowpass",
    "bandpass",
    "frame_signal",
    "stft",
    "istft",
    "power_spectrogram",
    "log_spectrogram",
    "resize_image",
    "spectrogram_image",
    "amplitude_envelope",
    "moving_rms",
    "moving_average",
    "linear_resample",
    "sample_and_decimate",
    "decimate_no_antialias",
]
