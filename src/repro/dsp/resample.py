"""Resampling primitives, including the aliasing accelerometer ADC path.

A MEMS accelerometer has no acoustic anti-aliasing front end: the proof
mass responds to chassis vibration well above the output data rate, so
speech-band energy *folds down* into the few-hundred-hertz sensor stream.
That aliasing is the physical mechanism EmoLeak (and Spearphone/AccelEve
before it) exploits. :func:`sample_and_decimate` models it by point
sampling the high-rate vibration waveform with no low-pass, while
:func:`linear_resample` provides a conventional interpolating resampler
for the synthesis side.
"""

from __future__ import annotations

import numpy as np

__all__ = ["linear_resample", "sample_and_decimate", "decimate_no_antialias"]


def linear_resample(x: np.ndarray, fs_in: float, fs_out: float) -> np.ndarray:
    """Linear-interpolation resampling from ``fs_in`` to ``fs_out``.

    Suitable for upsampling or modest, pre-band-limited downsampling.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D signal, got shape {x.shape}")
    if fs_in <= 0 or fs_out <= 0:
        raise ValueError("sampling rates must be positive")
    if x.size == 0:
        return x.copy()
    duration = x.size / fs_in
    n_out = max(1, int(round(duration * fs_out)))
    t_in = np.arange(x.size) / fs_in
    t_out = np.arange(n_out) / fs_out
    return np.interp(t_out, t_in, x)


def sample_and_decimate(
    x: np.ndarray, fs_in: float, fs_out: float, phase: float = 0.0
) -> np.ndarray:
    """Point-sample ``x`` at ``fs_out`` with *no* anti-alias filtering.

    Models an accelerometer ADC reading the instantaneous proof-mass
    position: energy above ``fs_out / 2`` aliases into the output band
    instead of being rejected.

    Parameters
    ----------
    phase:
        Fractional offset (in output-sample periods, ``[0, 1)``) of the
        first sample, modelling an arbitrary ADC clock phase.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D signal, got shape {x.shape}")
    if fs_in <= 0 or fs_out <= 0:
        raise ValueError("sampling rates must be positive")
    if not 0.0 <= phase < 1.0:
        raise ValueError(f"phase must be in [0, 1), got {phase}")
    if x.size == 0:
        return x.copy()
    duration = x.size / fs_in
    n_out = int(np.floor((duration - phase / fs_out) * fs_out))
    n_out = max(1, n_out)
    t_out = (np.arange(n_out) + phase) / fs_out
    t_in = np.arange(x.size) / fs_in
    # Instantaneous sampling: interpolate between the two nearest high-rate
    # samples (the high-rate grid is dense enough that this is effectively
    # point sampling of the continuous waveform).
    return np.interp(t_out, t_in, x)


def decimate_no_antialias(x: np.ndarray, factor: int) -> np.ndarray:
    """Keep every ``factor``-th sample with no filtering (pure aliasing)."""
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D signal, got shape {x.shape}")
    if factor < 1:
        raise ValueError("decimation factor must be >= 1")
    return x[::factor].copy()
