"""Framing and the short-time Fourier transform.

These are the analysis primitives behind the spectrogram images the
attack's CNN classifier consumes (paper Figs. 2 and 3) and behind the
frequency-domain half of the Table II feature set.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dsp.windows import get_window

__all__ = ["frame_signal", "stft", "istft"]


def frame_signal(
    x: np.ndarray, frame_length: int, hop_length: int, pad: bool = True
) -> np.ndarray:
    """Slice a 1-D signal into overlapping frames.

    Parameters
    ----------
    x:
        Input signal.
    frame_length:
        Samples per frame.
    hop_length:
        Samples between frame starts.
    pad:
        When true, zero-pad the tail so every sample is covered; when
        false, drop the ragged tail.

    Returns
    -------
    ndarray of shape ``(n_frames, frame_length)``.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D signal, got shape {x.shape}")
    if frame_length < 1 or hop_length < 1:
        raise ValueError("frame_length and hop_length must be positive")
    if x.size < frame_length:
        if not pad:
            return np.empty((0, frame_length))
        x = np.pad(x, (0, frame_length - x.size))
    if pad:
        n_frames = 1 + int(np.ceil((x.size - frame_length) / hop_length))
        needed = (n_frames - 1) * hop_length + frame_length
        x = np.pad(x, (0, max(0, needed - x.size)))
    else:
        n_frames = 1 + (x.size - frame_length) // hop_length
    windows = np.lib.stride_tricks.sliding_window_view(x, frame_length)
    return np.ascontiguousarray(windows[:: hop_length][:n_frames])


def stft(
    x: np.ndarray,
    fs: float,
    frame_length: int = 256,
    hop_length: int = 64,
    window: str = "hann",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Short-time Fourier transform of a real signal.

    Returns
    -------
    (frequencies, times, Z):
        ``frequencies`` in Hz (length ``frame_length // 2 + 1``),
        ``times`` in seconds (frame centres) and the complex STFT matrix
        ``Z`` of shape ``(n_freqs, n_frames)``.
    """
    frames = frame_signal(x, frame_length, hop_length, pad=True)
    win = get_window(window, frame_length)
    spectrum = np.fft.rfft(frames * win[None, :], axis=1).T
    freqs = np.fft.rfftfreq(frame_length, d=1.0 / fs)
    times = (np.arange(frames.shape[0]) * hop_length + frame_length / 2) / fs
    return freqs, times, spectrum


def istft(
    Z: np.ndarray,
    frame_length: int = 256,
    hop_length: int = 64,
    window: str = "hann",
) -> np.ndarray:
    """Inverse STFT with overlap-add synthesis (least-squares weighting)."""
    Z = np.asarray(Z)
    if Z.ndim != 2:
        raise ValueError(f"expected a 2-D STFT matrix, got shape {Z.shape}")
    n_frames = Z.shape[1]
    win = get_window(window, frame_length)
    frames = np.fft.irfft(Z.T, n=frame_length, axis=1)
    frames *= win
    length = (n_frames - 1) * hop_length + frame_length
    # Overlap-add without a per-frame Python loop: bincount accumulates
    # in element order (frame-major), matching the sequential loop's
    # summation order bit for bit.
    starts = hop_length * np.arange(n_frames)
    targets = (starts[:, None] + np.arange(frame_length)[None, :]).ravel()
    out = np.bincount(targets, weights=frames.ravel(), minlength=length)
    weight = np.bincount(
        targets,
        weights=np.broadcast_to(win**2, frames.shape).ravel(),
        minlength=length,
    )
    nonzero = weight > 1e-12
    out[nonzero] /= weight[nonzero]
    return out
