"""Framing and the short-time Fourier transform.

These are the analysis primitives behind the spectrogram images the
attack's CNN classifier consumes (paper Figs. 2 and 3) and behind the
frequency-domain half of the Table II feature set.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dsp.windows import get_window

__all__ = ["frame_signal", "stft", "istft"]


def frame_signal(
    x: np.ndarray, frame_length: int, hop_length: int, pad: bool = True
) -> np.ndarray:
    """Slice a signal into overlapping frames.

    Parameters
    ----------
    x:
        Input signal: 1-D, or 2-D ``(batch, n)`` to frame each row of a
        stacked batch identically (rows share one length; ragged batches
        are framed per row by the callers that own the lengths).
    frame_length:
        Samples per frame.
    hop_length:
        Samples between frame starts.
    pad:
        When true, zero-pad the tail so every sample is covered; when
        false, drop the ragged tail.

    Returns
    -------
    ndarray of shape ``(n_frames, frame_length)`` for 1-D input, or
    ``(batch, n_frames, frame_length)`` for 2-D input — each row framed
    exactly as the 1-D call would frame it.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim not in (1, 2):
        raise ValueError(f"expected a 1-D or 2-D signal, got shape {x.shape}")
    if frame_length < 1 or hop_length < 1:
        raise ValueError("frame_length and hop_length must be positive")
    lead = x.shape[:-1]
    n = x.shape[-1]
    if n < frame_length:
        if not pad:
            return np.empty(lead + (0, frame_length))
        x = np.pad(x, [(0, 0)] * len(lead) + [(0, frame_length - n)])
        n = x.shape[-1]
    if pad:
        n_frames = 1 + int(np.ceil((n - frame_length) / hop_length))
        needed = (n_frames - 1) * hop_length + frame_length
        if needed > n:
            x = np.pad(x, [(0, 0)] * len(lead) + [(0, needed - n)])
    else:
        n_frames = 1 + (n - frame_length) // hop_length
    windows = np.lib.stride_tricks.sliding_window_view(x, frame_length, axis=-1)
    return np.ascontiguousarray(windows[..., ::hop_length, :][..., :n_frames, :])


def stft(
    x: np.ndarray,
    fs: float,
    frame_length: int = 256,
    hop_length: int = 64,
    window: str = "hann",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Short-time Fourier transform of a real signal.

    Returns
    -------
    (frequencies, times, Z):
        ``frequencies`` in Hz (length ``frame_length // 2 + 1``),
        ``times`` in seconds (frame centres) and the complex STFT matrix
        ``Z`` of shape ``(n_freqs, n_frames)`` — or
        ``(batch, n_freqs, n_frames)`` for a 2-D ``(batch, n)`` input,
        each slice byte-identical to the corresponding 1-D transform.
    """
    frames = frame_signal(x, frame_length, hop_length, pad=True)
    win = get_window(window, frame_length)
    spectrum = np.swapaxes(np.fft.rfft(frames * win, axis=-1), -2, -1)
    freqs = np.fft.rfftfreq(frame_length, d=1.0 / fs)
    times = (np.arange(frames.shape[-2]) * hop_length + frame_length / 2) / fs
    return freqs, times, spectrum


def istft(
    Z: np.ndarray,
    frame_length: int = 256,
    hop_length: int = 64,
    window: str = "hann",
) -> np.ndarray:
    """Inverse STFT with overlap-add synthesis (least-squares weighting)."""
    Z = np.asarray(Z)
    if Z.ndim != 2:
        raise ValueError(f"expected a 2-D STFT matrix, got shape {Z.shape}")
    n_frames = Z.shape[1]
    win = get_window(window, frame_length)
    frames = np.fft.irfft(Z.T, n=frame_length, axis=1)
    frames *= win
    length = (n_frames - 1) * hop_length + frame_length
    # Overlap-add without a per-frame Python loop: bincount accumulates
    # in element order (frame-major), matching the sequential loop's
    # summation order bit for bit.
    starts = hop_length * np.arange(n_frames)
    targets = (starts[:, None] + np.arange(frame_length)[None, :]).ravel()
    out = np.bincount(targets, weights=frames.ravel(), minlength=length)
    weight = np.bincount(
        targets,
        weights=np.broadcast_to(win**2, frames.shape).ravel(),
        minlength=length,
    )
    nonzero = weight > 1e-12
    out[nonzero] /= weight[nonzero]
    return out
