"""Command-line interface: run one EmoLeak experiment cell.

Usage::

    python -m repro.cli --scenario tess-loud-oneplus7t --classifier logistic
    python -m repro.cli --list-scenarios
    python -m repro.cli --scenario savee-ear-oneplus9 --classifier cnn \
        --subsample 10 --fast
    python -m repro.cli --table V --subsample 15     # regenerate a whole table
    python -m repro.cli bundle pack --scenario tess-loud-oneplus7t \
        --classifier logistic --out model.zip        # deployable model bundle
    python -m repro.cli bundle inspect model.zip
    python -m repro.cli serve --bundle model.zip --burst 64
    python -m repro.cli serve --bundle model.zip --listen 127.0.0.1:7860
    python -m repro.cli client --connect 127.0.0.1:7860 --tenant phone-a
    python -m repro.cli gate pack --out gate.zip --subsample 8
    python -m repro.cli gate score --bundle gate.zip --rate-cap 125 \
        --lowpass 1000                               # leakage of a config

Prints the paper-vs-measured comparison line and the confusion matrix
(or, with ``--table``, the full reproduced table next to the published
values). The ``bundle``/``serve``/``client`` subcommands are the
serving layer — see :mod:`repro.serve.cli`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.attack.engine import (
    EXECUTOR_NAMES,
    CollectionCache,
    global_stats,
    reset_global_stats,
)
from repro.attack.pipeline import EmoLeakAttack
from repro.attack.scenarios import SCENARIOS, get_scenario
from repro.datasets import TASKS, build_corpus
from repro.eval.experiment import (
    CLASSIFIER_NAMES,
    run_feature_experiment,
    run_spectrogram_experiment,
)
from repro.eval.reporting import paper_comparison
from repro.eval.tables import format_confusion

__all__ = ["main", "build_parser"]

_TABLE_OF = {"Table III": "III", "Table IV": "IV", "Table V": "V", "Table VI": "VI"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run one EmoLeak evaluation cell (dataset x device x classifier).",
    )
    parser.add_argument(
        "--scenario",
        help="canonical scenario name (see --list-scenarios)",
    )
    parser.add_argument(
        "--table",
        choices=("III", "IV", "V", "VI", "ATTACKS", "DEFENSES"),
        help="regenerate a whole paper table instead of one cell "
             "(ATTACKS: the multi-attack task comparison; DEFENSES: "
             "the mitigation sweep vs the adaptive attacker)",
    )
    parser.add_argument(
        "--task",
        choices=TASKS,
        default=None,
        help="attack label to train on: emotion, speaker-id, gender or "
             "content-id (default: the scenario's own task)",
    )
    parser.add_argument(
        "--classifier",
        default="logistic",
        choices=CLASSIFIER_NAMES,
        help="classifier to evaluate (default: logistic)",
    )
    parser.add_argument(
        "--subsample",
        type=int,
        default=None,
        metavar="N",
        help="use only N utterances per emotion class",
    )
    parser.add_argument(
        "--sample-rate",
        type=float,
        default=None,
        metavar="HZ",
        help="cap the accelerometer rate (e.g. 200 for the Android-12 limit)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="experiment seed (default: 0)"
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="shrink CNNs/ensembles for a quick run",
    )
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker count for the collection engine and, with --table, "
             "the training/evaluation cell fan-out (results are "
             "identical at any value; default: 1)",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default=None,
        help="executor for collection and cell training (default: "
             "serial for --n-jobs 1, thread otherwise)",
    )
    parser.add_argument(
        "--pipeline",
        choices=("batched", "per-utterance"),
        default=None,
        help="collection data plane: batched (stacked utterance chunks, "
             "default) or per-utterance (the reference path); results "
             "are byte-identical under the default float64 batch policy",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist collection passes as .npz bundles under DIR and "
             "reuse them on later runs",
    )
    parser.add_argument(
        "--nn-dtype",
        choices=("float64", "float32"),
        default=None,
        help="CNN compute dtype (default float64, the historical "
             "numerics; float32 roughly halves training time)",
    )
    parser.add_argument(
        "--nn-kernel",
        choices=("gemm", "reference"),
        default=None,
        help="convolution kernel: gemm (im2col + single GEMM, default) "
             "or reference (the original kernel-offset summation)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the run's span trace as JSON Lines (one span per line)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the span tree and per-stage metrics table at exit",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list canonical scenarios and exit",
    )
    return parser


def _finish_observability(args) -> None:
    """Export/print the run's trace and metrics per the CLI flags."""
    from repro.obs import metrics, tracer

    if args.metrics:
        print("\n--- trace ---")
        print(tracer().render_tree())
        print("\n--- metrics ---")
        print(metrics().render_table())
    if args.trace_out:
        n_spans = tracer().export_jsonl(args.trace_out)
        print(f"\ntrace: wrote {n_spans} spans to {args.trace_out}")


def _list_scenarios() -> None:
    print(f"{'scenario':<26} {'dataset':<8} {'device':<16} {'mode':<12} "
          f"{'task':<11} paper")
    for name in sorted(SCENARIOS):
        s = SCENARIOS[name]
        print(
            f"{name:<26} {s.dataset:<8} {s.device:<16} "
            f"{s.mode.value:<12} {s.task:<11} {s.paper_table}"
        )


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("bundle", "serve", "client", "gate"):
        # Serving-layer subcommands: `repro bundle pack|inspect`,
        # `repro serve [--listen HOST:PORT]`, `repro client --connect …`,
        # `repro gate pack|score` (privacy-gate leakage scoring).
        from repro.serve.cli import main as serve_main

        return serve_main(argv)
    args = build_parser().parse_args(argv)
    if args.list_scenarios:
        _list_scenarios()
        return 0
    if args.nn_dtype or args.nn_kernel:
        from repro.nn.policy import set_policy

        set_policy(compute_dtype=args.nn_dtype, conv_kernel=args.nn_kernel)
    cache = CollectionCache(cache_dir=args.cache_dir)
    if args.table:
        from repro.eval.suite import run_table

        reset_global_stats()
        suite = run_table(
            args.table,
            subsample=args.subsample or 20,
            seed=args.seed,
            fast=True,
            n_jobs=args.n_jobs,
            executor=args.executor,
            cache=cache,
        )
        print(suite.render())
        print(f"\ncollection: {global_stats().summary()}")
        _finish_observability(args)
        return 0
    if not args.scenario:
        print("error: --scenario or --table is required "
              "(or use --list-scenarios)", file=sys.stderr)
        return 2

    scenario = get_scenario(args.scenario)
    task = args.task if args.task else scenario.task
    corpus = build_corpus(scenario.dataset)
    if args.subsample:
        corpus = corpus.subsample(per_class=args.subsample, seed=args.seed)

    channel = scenario.channel(sample_rate=args.sample_rate, seed=args.seed)
    attack = EmoLeakAttack(
        channel,
        seed=args.seed,
        n_jobs=args.n_jobs,
        executor=args.executor,
        cache=cache,
        pipeline=args.pipeline,
        task=task,
    )

    print(f"scenario  : {scenario.name} ({scenario.paper_table})")
    print(f"task      : {task}")
    print(f"corpus    : {scenario.dataset}, {len(corpus)} utterances")
    print(f"channel   : {channel.device.display_name}, {channel.mode.value}, "
          f"{channel.placement.value}, {channel.accel_fs:.0f} Hz")

    if args.classifier == "cnn_spectrogram":
        data = attack.collect_spectrograms(corpus)
        print(f"collected : {data.images.shape[0]} spectrograms "
              f"({data.extraction_rate:.0%} extraction)")
        if data.stats is not None:
            print(f"engine    : {data.stats.summary()}")
        result = run_spectrogram_experiment(data, seed=args.seed, fast=args.fast)
    else:
        data = attack.collect_features(corpus)
        print(f"collected : {data.X.shape[0]} feature vectors "
              f"({data.extraction_rate:.0%} extraction)")
        if data.stats is not None:
            print(f"engine    : {data.stats.summary()}")
        result = run_feature_experiment(
            data, args.classifier, seed=args.seed, fast=args.fast
        )

    table = _TABLE_OF.get(scenario.paper_table, scenario.paper_table)
    print()
    if task == "emotion":
        print(paper_comparison(
            table, scenario.dataset, scenario.device, args.classifier,
            result.accuracy,
        ))
    else:
        # Non-emotion tasks have no published EmoLeak number to compare
        # against; report accuracy against the random-guess rate instead.
        print(
            f"{task}: accuracy={result.accuracy:.2%} over {result.n_classes} "
            f"classes (chance {result.random_guess:.2%}, "
            f"{result.gain_over_chance:.1f}x)"
        )
    print()
    print(format_confusion(result.confusion, result.labels))
    _finish_observability(args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
