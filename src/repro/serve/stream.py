"""Stream-to-server glue: serve a raw accelerometer stream end-to-end.

:class:`StreamServingClient` reuses the on-device front end —
:class:`~repro.attack.realtime.StreamingAttack` over a
:class:`~repro.attack.realtime.StreamingDetector` — for online region
detection and Table II feature extraction, and ships each completed
region's feature vector to an :class:`~repro.serve.server.InferenceServer`
as an asynchronous request. Predictions come back as
:class:`~repro.serve.server.ServeFuture` handles, so many victim
streams can share one batched server.

:class:`RemoteClassifier` is the synchronous variant: a classifier-API
shim whose ``predict`` round-trips through the server, so any existing
code that takes a fitted classifier (``StreamingAttack`` itself, the
eval helpers) can be pointed at a served bundle unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.attack.realtime import StreamedRegion, StreamingAttack, StreamingDetector
from repro.obs import metrics
from repro.serve.server import InferenceServer, ServeFuture, ServerOverloaded

__all__ = ["StreamServingClient", "RemoteClassifier"]


class RemoteClassifier:
    """Classifier-API shim that predicts through an inference server.

    Implements just enough of the :class:`repro.ml.base.Classifier`
    surface (``predict`` / ``predict_proba``) for drop-in use where a
    fitted model is expected. Each call blocks on the server, so this is
    the convenience path; use :class:`StreamServingClient` for
    throughput.
    """

    def __init__(
        self,
        server: InferenceServer,
        model: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ):
        self.server = server
        self.model = model
        self.timeout_s = timeout_s

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        labels = []
        for row in X:
            result = self.server.predict(
                row, model=self.model, timeout_s=self.timeout_s
            )
            if not result.ok:
                raise RuntimeError(
                    f"serve request {result.request_id} failed: {result.error}"
                )
            labels.append(result.label)
        return np.asarray(labels)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        rows = []
        for row in X:
            result = self.server.predict(
                row, model=self.model, timeout_s=self.timeout_s
            )
            if not result.ok:
                raise RuntimeError(
                    f"serve request {result.request_id} failed: {result.error}"
                )
            rows.append(result.proba)
        return np.vstack(rows)


@dataclass
class StreamServingClient:
    """Feed accelerometer chunks in; get served prediction futures out.

    Wraps a classifier-less :class:`StreamingAttack` (region detection +
    feature extraction stay on-device, exactly the paper's split) and
    submits each completed region's features to the server. ``pending``
    accumulates every ``(region, features, future)`` triple.

    An overloaded server is a back-off signal, not a failure: a
    :class:`ServerOverloaded` rejection is retried up to ``max_retries``
    times with capped exponential backoff seeded by the server's own
    ``retry_after_s`` estimate (``backoffs`` counts the sleeps taken).
    """

    server: InferenceServer
    detector: StreamingDetector
    model: Optional[str] = None
    timeout_s: Optional[float] = None
    max_retries: int = 5
    backoff_cap_s: float = 0.5
    backoffs: int = 0
    pending: List[Tuple[StreamedRegion, np.ndarray, ServeFuture]] = field(
        default_factory=list
    )

    def __post_init__(self):
        self._attack = StreamingAttack(self.detector, classifier=None)

    def _submit_with_backoff(self, features: np.ndarray) -> ServeFuture:
        """Submit one feature vector, honouring overload retry hints."""
        for attempt in range(self.max_retries + 1):
            try:
                return self.server.submit_features(
                    features, model=self.model, timeout_s=self.timeout_s
                )
            except ServerOverloaded as exc:
                if attempt >= self.max_retries:
                    raise
                hint = exc.retry_after_s if exc.retry_after_s else 0.01
                delay = min(hint * (2.0 ** attempt), self.backoff_cap_s)
                self.backoffs += 1
                metrics().count("serve.client_backoff")
                time.sleep(delay)
        raise AssertionError("unreachable: retry loop returns or raises")

    def _submit_events(self, events) -> List[Tuple[StreamedRegion, np.ndarray, ServeFuture]]:
        submitted = []
        for region, features, _ in events:
            future = self._submit_with_backoff(np.nan_to_num(features, nan=0.0))
            triple = (region, features, future)
            self.pending.append(triple)
            submitted.append(triple)
        return submitted

    def process(self, chunk: np.ndarray):
        """Consume a chunk; return newly submitted (region, features, future)s."""
        return self._submit_events(self._attack.process(chunk))

    def finish(self):
        """Flush the detector and submit any trailing regions."""
        return self._submit_events(self._attack.finish())

    def results(self, timeout_s: float = 30.0):
        """Block until every pending request resolves; returns the triples.

        Each returned triple is ``(region, features, ServeResult)``.
        """
        return [
            (region, features, future.result(timeout=timeout_s))
            for region, features, future in self.pending
        ]
