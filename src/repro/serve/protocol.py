"""Length-prefixed wire protocol for the serving front-end.

Every message on the wire is one **frame**::

    +----------------+------+-------------------------------------------+
    | u32 big-endian | kind | body                                      |
    | body length    | byte |                                           |
    +----------------+------+-------------------------------------------+

with two body kinds:

- ``KIND_JSON`` (``0x01``) — the body is one UTF-8 JSON object;
- ``KIND_TENSOR`` (``0x02``) — a u32 header length, a UTF-8 JSON header
  whose ``_tensor`` entry records dtype and shape, then the raw
  little-endian array bytes. Raw accelerometer windows ride this kind so
  a float window never round-trips through decimal text.

:func:`encode_message` builds a frame from ``(dict, optional ndarray)``;
:class:`FrameDecoder` is the incremental inverse — feed it arbitrary
byte chunks (half a frame, three frames and a torn fourth, one byte at a
time) and it yields each completed message exactly once. Anything
malformed — an oversized or zero-length frame, an unknown kind byte, a
body that is not valid JSON, a tensor header that lies about its size or
names a non-float dtype — raises :class:`ProtocolError`; the connection
that sent it is the only thing that needs to die.

Message vocabulary (the ``op`` field):

- ``predict`` request: ``id``, ``tenant``, ``lane`` (``realtime`` |
  ``backfill``), ``kind`` (``features`` | ``window``), ``payload`` (or a
  tensor body), optional ``fs``, ``model``, ``timeout_s``;
- ``result`` response: ``id``, ``status`` (``ok``/``error``/``timeout``),
  ``label``, ``proba``, ``model``, ``used``, ``latency_s``;
- ``shed`` response: ``id``, ``status="shed"``, ``reason``,
  ``retry_after_s`` — an explicit back-off hint, never a dropped request;
- ``ping`` / ``pong`` for liveness, ``error`` for protocol-level
  failures just before the server closes the offending connection.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "KIND_JSON",
    "KIND_TENSOR",
    "LANES",
    "FrameDecoder",
    "ProtocolError",
    "encode_message",
]

#: Frames above this are rejected before the body is buffered.
DEFAULT_MAX_FRAME_BYTES = 4 << 20

KIND_JSON = 0x01
KIND_TENSOR = 0x02

#: Priority lanes the front-end schedules between.
LANES = ("realtime", "backfill")

#: Tensor dtypes a peer may ship; anything else (notably object dtypes)
#: is rejected before ``np.frombuffer`` ever sees the bytes.
_TENSOR_DTYPES = ("<f4", "<f8")

_LEN = struct.Struct("!I")


class ProtocolError(ValueError):
    """The peer sent bytes that are not a well-formed frame."""


def encode_message(message: Dict[str, Any], tensor: Optional[np.ndarray] = None) -> bytes:
    """Serialise one message (plus an optional tensor payload) to a frame."""
    if tensor is None:
        body = bytes([KIND_JSON]) + _json_bytes(message)
    else:
        tensor = np.ascontiguousarray(tensor)
        dtype = "<f4" if tensor.dtype == np.float32 else "<f8"
        tensor = tensor.astype(np.dtype(dtype), copy=False)
        header = dict(message)
        header["_tensor"] = {"dtype": dtype, "shape": list(tensor.shape)}
        header_bytes = _json_bytes(header)
        prefix = bytes([KIND_TENSOR]) + _LEN.pack(len(header_bytes))
        body = prefix + header_bytes + tensor.tobytes()
    return _LEN.pack(len(body)) + body


def _json_bytes(message: Dict[str, Any]) -> bytes:
    try:
        return json.dumps(message, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-serialisable: {exc}") from None


class FrameDecoder:
    """Incremental frame parser: bytes in, complete messages out.

    One decoder per connection. :meth:`feed` buffers whatever arrived
    and returns every message completed by it; a torn frame stays
    buffered until its remaining bytes show up. A malformed frame
    raises :class:`ProtocolError` and poisons the decoder (the
    connection cannot be resynchronised after garbage).
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()
        self._poisoned = False

    def feed(self, data: bytes) -> List[Tuple[Dict[str, Any], Optional[np.ndarray]]]:
        """Buffer ``data``; return the messages it completed, in order."""
        if self._poisoned:
            raise ProtocolError("decoder already failed; close the connection")
        self._buffer.extend(data)
        try:
            return list(self._drain())
        except ProtocolError:
            self._poisoned = True
            raise

    def pending_bytes(self) -> int:
        return len(self._buffer)

    def _drain(self) -> Iterator[Tuple[Dict[str, Any], Optional[np.ndarray]]]:
        while len(self._buffer) >= _LEN.size:
            (body_len,) = _LEN.unpack_from(self._buffer)
            if body_len < 1:
                raise ProtocolError("zero-length frame")
            if body_len > self.max_frame_bytes:
                raise ProtocolError(
                    f"frame of {body_len} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            if len(self._buffer) < _LEN.size + body_len:
                return  # torn frame: wait for the rest
            body = bytes(self._buffer[_LEN.size : _LEN.size + body_len])
            del self._buffer[: _LEN.size + body_len]
            yield _decode_body(body)


def _decode_body(body: bytes) -> Tuple[Dict[str, Any], Optional[np.ndarray]]:
    kind = body[0]
    if kind == KIND_JSON:
        return _parse_json(body[1:]), None
    if kind == KIND_TENSOR:
        return _decode_tensor_body(body[1:])
    raise ProtocolError(f"unknown frame kind byte 0x{kind:02x}")


def _decode_tensor_body(rest: bytes) -> Tuple[Dict[str, Any], np.ndarray]:
    if len(rest) < _LEN.size:
        raise ProtocolError("tensor frame truncated before its header length")
    (header_len,) = _LEN.unpack_from(rest)
    if header_len < 2 or _LEN.size + header_len > len(rest):
        raise ProtocolError("tensor header length does not fit its frame")
    header = _parse_json(rest[_LEN.size : _LEN.size + header_len])
    spec = header.pop("_tensor", None)
    if not isinstance(spec, dict):
        raise ProtocolError("tensor frame missing its _tensor header entry")
    dtype = spec.get("dtype")
    shape = spec.get("shape")
    if dtype not in _TENSOR_DTYPES:
        raise ProtocolError(f"tensor dtype {dtype!r} is not an allowed float dtype")
    if not isinstance(shape, list) or not all(isinstance(n, int) and n >= 0 for n in shape):
        raise ProtocolError(f"tensor shape {shape!r} is not a list of sizes")
    raw = rest[_LEN.size + header_len :]
    n_elems = 1
    for n in shape:
        n_elems *= n  # Python ints: a crafted huge shape cannot wrap to small
    expected = n_elems * np.dtype(dtype).itemsize
    if len(raw) != expected:
        raise ProtocolError(
            f"tensor body has {len(raw)} bytes; shape {shape} dtype "
            f"{dtype} needs {expected}"
        )
    try:
        tensor = np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(shape)
    except ValueError as exc:
        raise ProtocolError(f"tensor body does not match its header: {exc}") from None
    return header, tensor


def _parse_json(raw: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"frame body must be a JSON object, got {type(message).__name__}")
    return message
