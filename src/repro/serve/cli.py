"""CLI subcommands for the serving layer.

::

    python -m repro.cli bundle pack --scenario tess-loud-oneplus7t \
        --classifier logistic --cnn --out models/tess.zip --subsample 10
    python -m repro.cli bundle inspect models/tess.zip
    python -m repro.cli bundle quantize models/tess.zip \
        --out models/tess-int8.zip --version 1-int8
    python -m repro.cli bundle delta models/tess-int8.zip \
        --parent models/tess.zip --out models/tess-int8.delta.zip
    python -m repro.cli serve --bundle models/tess.zip --burst 64
    python -m repro.cli serve --bundle models/tess.zip \
        --bundle models/tess-int8.zip --canary tess@1-int8:0.25 --burst 64
    python -m repro.cli serve --bundle models/tess.zip \
        --stream-scenario tess-loud-oneplus7t
    python -m repro.cli serve --bundle models/tess.zip \
        --listen 127.0.0.1:7860 --tenant phones:200:50:2
    python -m repro.cli client --connect 127.0.0.1:7860 --tenant phones
    python -m repro.cli gate pack --out models/gate.zip --subsample 8
    python -m repro.cli gate score --bundle models/gate.zip \
        --rate-cap 125 --lowpass 1000 --noise 0 --lsb 0

``bundle pack`` trains the chosen pipeline on a scenario through the
collection engine and writes a versioned, hash-stamped artifact
(``--distill-width`` additionally distills the CNN into a narrower
student and packs that instead); ``bundle inspect`` verifies and prints
a manifest — variant kind, quantisation metadata and provenance lineage
included (``--parent`` supplies parent artifacts for delta bundles);
``bundle quantize`` derives an int8 variant from a packed bundle;
``bundle delta`` re-writes a bundle as a delta archive against a
parent; ``serve`` loads a bundle into a registry and either answers a
synthetic feature burst or streams a freshly recorded session
end-to-end through the
:class:`~repro.serve.stream.StreamServingClient`. With ``--listen`` it
instead exposes the server over TCP behind the multi-tenant
:class:`~repro.serve.frontend.ServingFrontend`; ``client`` talks to
such a front-end with the blocking
:class:`~repro.serve.frontend.FrontendClient`.

``gate pack`` runs the defense×attack grid
(:func:`repro.eval.defense_grid.run_defense_grid`) and packs the
resulting leakage report into a hash-stamped gate bundle; ``gate
score`` answers "how much does this sensor config leak?" — against a
live front-end with ``--connect``, or by loading ``--bundle`` into an
ephemeral loopback server so the answer goes through the same serving
stack either way.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]

#: Classifier kinds `bundle pack` accepts: the persistable subset of the
#: paper's table rows (LMT and the one-vs-rest wrapper have no JSON form).
PACKABLE_CLASSIFIERS = ("logistic", "random_forest", "random_subspace")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Model-bundle packaging and batched inference serving.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pack = sub.add_parser("pack", help="train a pipeline and write a bundle")
    pack.add_argument("--scenario", required=True,
                      help="canonical scenario to train on")
    pack.add_argument("--classifier", default="logistic",
                      choices=PACKABLE_CLASSIFIERS,
                      help="feature classifier to pack (default: logistic)")
    pack.add_argument("--cnn", action="store_true",
                      help="also train + pack the feature CNN as the primary")
    pack.add_argument("--out", required=True,
                      help="bundle path (directory, or a .zip archive)")
    pack.add_argument("--name", default=None,
                      help="bundle name (default: the scenario name)")
    pack.add_argument("--version", default="1",
                      help="bundle version string (default: 1)")
    pack.add_argument("--subsample", type=int, default=20, metavar="N",
                      help="utterances per emotion class (default: 20)")
    pack.add_argument("--seed", type=int, default=0)
    pack.add_argument("--fast", action="store_true",
                      help="shrink the CNN for a quick pack")
    pack.add_argument("--n-jobs", type=int, default=1, metavar="N",
                      help="collection engine workers")
    pack.add_argument("--distill-width", type=float, default=None,
                      metavar="W",
                      help="with --cnn: distill the trained CNN into a "
                           "width-W student and pack the student instead")

    inspect = sub.add_parser("inspect",
                             help="verify a bundle and print its manifest")
    inspect.add_argument("path", help="bundle directory or .zip")
    inspect.add_argument("--parent", action="append", default=None,
                         metavar="PATH",
                         help="parent bundle artifact for delta "
                              "verification (repeatable)")

    quantize = sub.add_parser(
        "quantize", help="derive an int8 variant from a packed bundle")
    quantize.add_argument("path", help="source bundle directory or .zip")
    quantize.add_argument("--out", required=True,
                          help="output path for the quantised bundle")
    quantize.add_argument("--version", default=None,
                          help="version for the variant (default: "
                               "<source-version>-int8)")
    quantize.add_argument("--variant", default="int8",
                          choices=("int8", "distilled-int8"),
                          help="variant label to record (default: int8)")
    quantize.add_argument("--delta", action="store_true",
                          help="write a delta archive against the source "
                               "bundle instead of a full artifact")

    delta = sub.add_parser(
        "delta", help="re-write a bundle as a delta archive vs a parent")
    delta.add_argument("path", help="full bundle to convert")
    delta.add_argument("--parent", required=True,
                       help="parent bundle artifact the delta ships against")
    delta.add_argument("--out", required=True, help="delta archive path")

    serve = sub.add_parser("serve", help="serve a bundle (demo loop)")
    serve.add_argument("--bundle", required=True, action="append",
                       help="bundle to load (repeatable)")
    serve.add_argument("--burst", type=int, default=None, metavar="N",
                       help="answer N synthetic feature requests and exit")
    serve.add_argument("--stream-scenario", default=None, metavar="NAME",
                       help="record a session for NAME and serve its stream")
    serve.add_argument("--subsample", type=int, default=3, metavar="N",
                       help="utterances per class in the streamed session")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="expose the server over TCP (multi-tenant "
                            "front-end) instead of running a local demo")
    serve.add_argument("--tenant", action="append", default=None,
                       metavar="NAME:RATE[:BURST[:WEIGHT]]",
                       help="tenant admission contract (repeatable); "
                            "e.g. phones:200:50:2")
    serve.add_argument("--dispatch-rate", type=float, default=None,
                       metavar="RPS", help="pace dispatch into the batcher")
    serve.add_argument("--duration", type=float, default=None, metavar="S",
                       help="with --listen: stop after S seconds "
                            "(default: run until interrupted)")
    serve.add_argument("--canary", default=None,
                       metavar="NAME@VERSION:FRACTION",
                       help="route FRACTION of the default model's bare-name "
                            "traffic to a candidate version")
    serve.add_argument("--gate", default=None, metavar="PATH",
                       help="also load a privacy-gate bundle; the "
                            "front-end then answers `gate` ops")
    serve.add_argument("--max-batch", type=int, default=32)
    serve.add_argument("--linger-ms", type=float, default=2.0)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--metrics", action="store_true",
                       help="print serving metrics at exit")

    client = sub.add_parser("client",
                            help="send requests to a --listen front-end")
    client.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="front-end address")
    client.add_argument("--tenant", default="cli",
                        help="tenant to identify as (default: cli)")
    client.add_argument("--n", type=int, default=8, metavar="N",
                        help="number of synthetic requests (default: 8)")
    client.add_argument("--n-features", type=int, default=None, metavar="D",
                        help="feature vector width (default: the paper's "
                             "24-dim Table II schema)")
    client.add_argument("--lane", choices=("realtime", "backfill"),
                        default="realtime")
    client.add_argument("--binary", action="store_true",
                        help="ship features as binary tensor frames")
    client.add_argument("--model", default=None,
                        help="model ref to request (default: server default)")
    client.add_argument("--ping", action="store_true",
                        help="just check liveness and exit")
    client.add_argument("--seed", type=int, default=7)

    gate = sub.add_parser("gate", help="privacy-gate leakage scoring")
    gate_sub = gate.add_subparsers(dest="gate_command", required=True)

    gate_pack = gate_sub.add_parser(
        "pack", help="run the defense grid and pack a gate bundle")
    gate_pack.add_argument("--out", required=True,
                           help="gate bundle path (directory or .zip)")
    gate_pack.add_argument("--scenario", action="append", default=None,
                           metavar="NAME",
                           help="scenario per attacked task head "
                                "(repeatable; default: the emotion head "
                                "on tess-loud-oneplus7t)")
    gate_pack.add_argument("--rate-cap", type=float, action="append",
                           default=None, metavar="HZ",
                           help="sampling-rate cap axis value (repeatable; "
                                "default: 1000 200)")
    gate_pack.add_argument("--lowpass", type=float, action="append",
                           default=None, metavar="HZ",
                           help="low-pass cutoff axis value (repeatable; "
                                "default: 1000 20)")
    gate_pack.add_argument("--noise", type=float, action="append",
                           default=None, metavar="RMS",
                           help="injected-noise RMS axis value (repeatable; "
                                "default: 0)")
    gate_pack.add_argument("--lsb", type=float, action="append",
                           default=None, metavar="LSB",
                           help="quantisation step axis value (repeatable; "
                                "default: 0)")
    gate_pack.add_argument("--classifier", action="append", default=None,
                           choices=("logistic", "random_forest"),
                           help="attacker classifiers (repeatable; "
                                "default: both)")
    gate_pack.add_argument("--mode", action="append", default=None,
                           choices=("static", "adaptive"),
                           help="attacker modes (repeatable; default: both)")
    gate_pack.add_argument("--name", default="privacy-gate")
    gate_pack.add_argument("--version", default="1")
    gate_pack.add_argument("--subsample", type=int, default=12, metavar="N",
                           help="utterances per class (default: 12)")
    gate_pack.add_argument("--seed", type=int, default=0)
    gate_pack.add_argument("--noise-seed", type=int, default=0)
    gate_pack.add_argument("--n-jobs", type=int, default=1, metavar="N")

    gate_score = gate_sub.add_parser(
        "score", help="score a sensor config against a packed gate")
    source = gate_score.add_mutually_exclusive_group(required=True)
    source.add_argument("--bundle", default=None,
                        help="gate bundle to serve over an ephemeral "
                             "loopback front-end")
    source.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="live front-end already serving a gate")
    gate_score.add_argument("--rate-cap", type=float, required=True,
                            metavar="HZ", help="sampling-rate cap to score")
    gate_score.add_argument("--lowpass", type=float, required=True,
                            metavar="HZ", help="low-pass cutoff to score")
    gate_score.add_argument("--noise", type=float, default=0.0,
                            metavar="RMS", help="injected-noise RMS")
    gate_score.add_argument("--lsb", type=float, default=0.0,
                            metavar="LSB", help="quantisation step")
    gate_score.add_argument("--task", default=None,
                            help="attacked task head (default: the grid's "
                                 "first swept task)")
    gate_score.add_argument("--mode", default="adaptive",
                            choices=("static", "adaptive"))
    gate_score.add_argument("--tenant", default="cli")
    return parser


def _cmd_pack(args) -> int:
    from repro.eval.experiment import (
        collect_scenario_datasets,
        make_classifier,
    )
    from repro.ml.preprocessing import clean_features
    from repro.serve.bundle import ModelBundle, save_bundle

    bundle_data = collect_scenario_datasets(
        args.scenario, subsample=args.subsample, seed=args.seed,
        n_jobs=args.n_jobs,
    )
    X, y, _ = clean_features(bundle_data.features.X, bundle_data.features.y)
    print(f"collected : {X.shape[0]} feature vectors from {args.scenario}")
    classifier = make_classifier(args.classifier, seed=args.seed, fast=True)
    classifier.fit(X, y)
    print(f"trained   : {args.classifier} "
          f"(train accuracy {classifier.score(X, y):.2%})")
    cnn = None
    if args.cnn:
        cnn = make_classifier("cnn", seed=args.seed, fast=True)
        if args.fast:
            cnn.epochs = min(cnn.epochs, 10)
        cnn.fit(X, y)
        print(f"trained   : feature CNN "
              f"(train accuracy {cnn.score(X, y):.2%})")
        if args.distill_width is not None:
            from repro.nn.distill import distill_feature_cnn

            student = distill_feature_cnn(
                cnn, X, y, width_scale=args.distill_width
            )
            print(f"distilled : width {args.distill_width:g} student "
                  f"(train accuracy {student.score(X, y):.2%})")
            cnn = student
    elif args.distill_width is not None:
        raise SystemExit("--distill-width requires --cnn")
    bundle = ModelBundle.create(
        name=args.name or args.scenario,
        version=args.version,
        classifier=classifier,
        cnn=cnn,
        provenance={
            "scenario": args.scenario,
            "subsample": args.subsample,
            "seed": args.seed,
            "classifier": args.classifier,
            "cnn": bool(args.cnn),
            "n_rows": int(X.shape[0]),
            **(
                {"distill_width": float(args.distill_width)}
                if args.distill_width is not None
                else {}
            ),
        },
    )
    manifest = save_bundle(bundle, args.out)
    print(f"packed    : {manifest.ref} -> {args.out}")
    for member, meta in sorted(manifest.members.items()):
        print(f"  {member:<18} {meta['bytes']:>9} B  sha256 "
              f"{str(meta['sha256'])[:16]}…")
    return 0


def _parent_resolver_from_paths(paths):
    """ref -> path resolver over explicitly supplied parent artifacts."""
    from repro.serve.bundle import read_manifest

    table = {}
    for path in paths or ():
        table[read_manifest(path).ref] = path

    def resolve(ref: str):
        if ref not in table:
            raise KeyError(
                f"parent {ref} not among --parent artifacts "
                f"({sorted(table) or 'none given'})"
            )
        return table[ref]

    return resolve


def _print_lineage(manifest) -> None:
    """One line per provenance link, nearest ancestor first."""
    links = manifest.lineage()
    if not links:
        return
    print("lineage   :")
    for link in links:
        role = (
            "delta base"
            if manifest.delta_base and link == dict(manifest.delta_base)
            else "parent"
        )
        pin = str(link.get("manifest_sha256", ""))
        pin_text = f"  manifest sha256 {pin[:16]}…" if pin else ""
        print(f"  {role:<10} {link.get('ref')}{pin_text}")


def _cmd_inspect(args) -> int:
    from repro.serve.bundle import BundleError, verify_bundle

    resolver = (
        _parent_resolver_from_paths(args.parent) if args.parent else None
    )
    try:
        manifest, members = verify_bundle(args.path, parent_resolver=resolver)
    except BundleError as exc:
        print(f"REJECTED: {exc}", file=sys.stderr)
        return 1
    print(f"bundle    : {manifest.ref} (format v{manifest.format_version})")
    print(f"variant   : {manifest.variant}"
          + (" (delta archive)" if manifest.delta_base else ""))
    print(f"labels    : {', '.join(str(x) for x in manifest.labels)}")
    print(f"features  : {len(manifest.feature_schema)} "
          f"({', '.join(manifest.feature_schema[:4])}, …)")
    if manifest.nn_policy:
        print(f"nn policy : {manifest.nn_policy}")
    if manifest.provenance:
        print(f"provenance: {manifest.provenance}")
    if manifest.quantization:
        quant = manifest.quantization
        print(f"quantised : {quant.get('scheme')} "
              f"(weights {quant.get('weight_dtype')}, "
              f"scales {quant.get('scale_dtype')}, qmax {quant.get('qmax')})")
        for layer in quant.get("layers", []):
            print(f"  layer {layer.get('layer'):>2} "
                  f"{str(layer.get('type')):<18} "
                  f"{str(layer.get('weight_shape')):<18} "
                  f"{layer.get('channels'):>4} ch  scales "
                  f"[{layer.get('scale_min'):.3g}, "
                  f"{layer.get('scale_max'):.3g}] "
                  f"mean {layer.get('scale_mean'):.3g}")
    _print_lineage(manifest)
    print("members   :")
    for member, meta in sorted(manifest.members.items()):
        print(f"  {member:<18} {meta['bytes']:>9} B  sha256 "
              f"{str(meta['sha256'])[:16]}…  [verified]")
    return 0


def _cmd_quantize(args) -> int:
    from repro.serve.bundle import (
        BundleError,
        load_bundle,
        quantize_bundle,
        save_bundle,
        save_delta_bundle,
        verify_bundle,
    )

    try:
        source_manifest, _ = verify_bundle(args.path)
        source = load_bundle(args.path)
    except BundleError as exc:
        print(f"REJECTED: {exc}", file=sys.stderr)
        return 1
    version = args.version or f"{source.manifest.version}-{args.variant}"
    try:
        derived = quantize_bundle(source, version=version, variant=args.variant)
    except BundleError as exc:
        print(f"CANNOT QUANTISE: {exc}", file=sys.stderr)
        return 1
    if args.delta:
        manifest = save_delta_bundle(derived, args.out, source_manifest)
        shipped = {
            name
            for name in manifest.members
            if str(source_manifest.members.get(name, {}).get("sha256"))
            != manifest.members[name]["sha256"]
        }
        print(f"quantised : {manifest.ref} [{manifest.variant}] -> {args.out} "
              f"(delta vs {source_manifest.ref}: ships "
              f"{len(shipped)}/{len(manifest.members)} members)")
    else:
        manifest = save_bundle(derived, args.out)
        print(f"quantised : {manifest.ref} [{manifest.variant}] -> {args.out}")
    for layer in manifest.quantization.get("layers", []):
        print(f"  layer {layer.get('layer'):>2} "
              f"{str(layer.get('type')):<18} {layer.get('channels'):>4} ch")
    return 0


def _cmd_delta(args) -> int:
    from repro.serve.bundle import BundleError, load_bundle, verify_bundle

    try:
        parent_manifest, _ = verify_bundle(args.parent)
        bundle = load_bundle(args.path)
    except BundleError as exc:
        print(f"REJECTED: {exc}", file=sys.stderr)
        return 1
    from repro.serve.bundle import save_delta_bundle

    try:
        manifest = save_delta_bundle(bundle, args.out, parent_manifest)
    except BundleError as exc:
        print(f"CANNOT DELTA: {exc}", file=sys.stderr)
        return 1
    shipped = sum(
        1
        for name in manifest.members
        if str(parent_manifest.members.get(name, {}).get("sha256"))
        != manifest.members[name]["sha256"]
    )
    print(f"delta     : {manifest.ref} -> {args.out} "
          f"(vs {parent_manifest.ref}: ships {shipped}/"
          f"{len(manifest.members)} members)")
    return 0


def _print_serve_metrics() -> None:
    from repro.obs import metrics

    print("\n--- serving metrics ---")
    print(metrics().render_table())


def _parse_canary(spec: str) -> tuple:
    """Parse ``NAME@VERSION:FRACTION`` into its parts."""
    ref, sep, fraction_text = spec.rpartition(":")
    if not sep or "@" not in ref:
        raise SystemExit(f"expected NAME@VERSION:FRACTION, got {spec!r}")
    name, _, version = ref.partition("@")
    try:
        fraction = float(fraction_text)
    except ValueError:
        raise SystemExit(
            f"canary fraction must be a number, got {fraction_text!r}"
        ) from None
    return name, version, fraction


def _parse_hostport(spec: str) -> tuple:
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"expected HOST:PORT, got {spec!r}")
    return host or "127.0.0.1", int(port)


def _parse_tenants(specs):
    from repro.serve.admission import TenantConfig

    tenants = []
    for spec in specs or ():
        parts = spec.split(":")
        if not 2 <= len(parts) <= 4:
            raise SystemExit(
                f"expected NAME:RATE[:BURST[:WEIGHT]], got {spec!r}"
            )
        name, rate = parts[0], float(parts[1])
        burst = float(parts[2]) if len(parts) > 2 else max(1.0, rate)
        weight = float(parts[3]) if len(parts) > 3 else 1.0
        tenants.append(
            TenantConfig(name, rate=rate, burst=burst, weight=weight)
        )
    return tenants


def _serve_listen(args, server) -> None:
    import time as _time

    from repro.serve.frontend import ServingFrontend

    host, port = _parse_hostport(args.listen)
    frontend = ServingFrontend(
        server,
        host=host,
        port=port,
        tenants=_parse_tenants(args.tenant),
        dispatch_rate=args.dispatch_rate,
    )
    with frontend:
        print(f"listening : {frontend.host}:{frontend.port} "
              f"(ctrl-C drains and exits)")
        try:
            if args.duration is not None:
                _time.sleep(args.duration)
            else:
                while True:
                    _time.sleep(3600)
        except KeyboardInterrupt:
            print("\ndraining  : answering admitted requests…")
    print(f"frontend  : {frontend.accepted} accepted, "
          f"{frontend.answered} answered, {frontend.shed} shed")


def _cmd_serve(args) -> int:
    from repro.serve.registry import ModelRegistry
    from repro.serve.server import InferenceServer, serve_burst

    registry = ModelRegistry()
    default_ref: Optional[str] = None
    for path in args.bundle:
        name, version = registry.register(path)
        print(f"registered: {name}@{version} from {path}")
        # The FIRST bundle serves bare-name traffic; later ones are
        # rollout candidates (register() flips the default to the
        # newest registration, so pin it back below).
        if default_ref is None:
            default_ref = f"{name}@{version}"
    gate = None
    if args.gate:
        from repro.attack.privacy_gate import GateScorer
        from repro.serve.bundle import load_gate_bundle

        gate_manifest, gate_report = load_gate_bundle(args.gate)
        gate = GateScorer(gate_report)
        print(f"gate      : {gate_manifest.ref} "
              f"(tasks: {', '.join(gate_report.tasks)})")
    server = InferenceServer(
        registry,
        model=default_ref,
        max_batch=args.max_batch,
        max_linger_s=args.linger_ms / 1e3,
        gate=gate,
    )
    if default_ref is not None:
        name, _, version = default_ref.partition("@")
        registry.set_default(name, version)
        # Bare-name submissions are what canary routing splits.
        server.default_model = name
    with server:
        if args.canary:
            name, version, fraction = _parse_canary(args.canary)
            server.set_canary(name, version, fraction)
            print(f"canary    : {fraction:.0%} of {name} -> {name}@{version}")
        if args.listen:
            _serve_listen(args, server)
        elif args.stream_scenario:
            _serve_stream(args, server)
        else:
            n = args.burst or 32
            rng = np.random.default_rng(args.seed)
            bundle = registry.get(default_ref)
            rows = rng.normal(size=(n, bundle.n_features))
            results = serve_burst(server, rows)
            ok = sum(1 for r in results if r.ok)
            print(f"burst     : {ok}/{n} ok, "
                  f"mean latency "
                  f"{1e3 * float(np.mean([r.latency_s for r in results])):.1f} ms")
        print(f"server    : {server.requests_answered} answered in "
              f"{server.batches_run} batches")
    if args.metrics:
        _print_serve_metrics()
    return 0


def _serve_stream(args, server) -> None:
    from repro.attack.realtime import StreamingDetector
    from repro.attack.scenarios import get_scenario
    from repro.datasets import build_corpus
    from repro.phone.recording import record_session
    from repro.serve.stream import StreamServingClient

    scenario = get_scenario(args.stream_scenario)
    corpus = build_corpus(scenario.dataset).subsample(
        per_class=args.subsample, seed=args.seed
    )
    channel = scenario.channel(seed=args.seed)
    session = record_session(corpus, channel, specs=corpus.specs, seed=args.seed)
    client = StreamServingClient(
        server,
        StreamingDetector(fs=session.fs, threshold_factor=3.0),
    )
    for start in range(0, session.trace.size, 4096):
        client.process(session.trace[start : start + 4096])
    client.finish()
    results = client.results()
    correct = labelled = 0
    for region, _, result in results:
        truth = session.label_at(0.5 * (region.start_s + region.end_s))
        if truth is None or not result.ok:
            continue
        labelled += 1
        correct += int(result.label == truth)
    print(f"stream    : {len(results)} regions served; "
          f"{correct}/{labelled} labelled regions correct")


def _cmd_client(args) -> int:
    from repro.serve.frontend import FrontendClient

    host, port = _parse_hostport(args.connect)
    with FrontendClient(host, port, tenant=args.tenant) as client:
        pong = client.ping()
        if pong.get("op") != "pong":
            print(f"unexpected ping reply: {pong}", file=sys.stderr)
            return 1
        if args.ping:
            print(f"pong      : {host}:{port} is live")
            return 0
        if args.n_features is None:
            from repro.attack.features import FEATURE_NAMES

            width = len(FEATURE_NAMES)
        else:
            width = args.n_features
        rng = np.random.default_rng(args.seed)
        ok = shed = err = 0
        latencies: List[float] = []
        for _ in range(args.n):
            reply = client.predict(
                rng.normal(size=width),
                lane=args.lane,
                model=args.model,
                binary=args.binary,
            )
            status = reply.get("status")
            if status == "ok":
                ok += 1
                latencies.append(float(reply.get("latency_s", 0.0)))
            elif status == "shed":
                shed += 1
                print(f"shed      : reason={reply.get('reason')} "
                      f"retry_after_s={reply.get('retry_after_s')}")
            else:
                err += 1
                print(f"error     : {reply.get('error')}", file=sys.stderr)
        mean_ms = 1e3 * float(np.mean(latencies)) if latencies else 0.0
        print(f"client    : {ok} ok, {shed} shed, {err} error "
              f"(tenant={args.tenant}, lane={args.lane}, "
              f"mean server latency {mean_ms:.1f} ms)")
        return 0 if err == 0 else 1


def _cmd_gate_pack(args) -> int:
    from repro.attack.privacy_gate import DefenseAxes
    from repro.eval.defense_grid import run_defense_grid
    from repro.serve.bundle import save_gate_bundle

    axes = DefenseAxes(
        rate_caps_hz=tuple(args.rate_cap) if args.rate_cap else (1000.0, 200.0),
        lowpass_hz=tuple(args.lowpass) if args.lowpass else (1000.0, 20.0),
        noise_rms=tuple(args.noise) if args.noise else (0.0,),
        quant_lsb=tuple(args.lsb) if args.lsb else (0.0,),
    )
    scenarios = tuple(args.scenario) if args.scenario else None
    report = run_defense_grid(
        scenarios=scenarios,
        axes=axes,
        modes=tuple(args.mode) if args.mode else ("static", "adaptive"),
        classifiers=(
            tuple(args.classifier)
            if args.classifier
            else ("logistic", "random_forest")
        ),
        subsample=args.subsample,
        seed=args.seed,
        noise_seed=args.noise_seed,
        n_jobs=args.n_jobs,
    )
    n_cells = len(report.cells)
    n_degraded = len(report.degraded_cells())
    frontier = report.safe_frontier()
    print(f"grid      : {n_cells} cells over {len(list(axes.configs()))} "
          f"configs x {len(report.tasks)} tasks "
          f"({n_degraded} degraded)")
    print(f"frontier  : {[c.name for c in frontier] or 'EMPTY'}")
    manifest = save_gate_bundle(
        report, args.out, name=args.name, version=args.version
    )
    print(f"packed    : {manifest.ref} -> {args.out}")
    for member, meta in sorted(manifest.members.items()):
        print(f"  {member:<18} {meta['bytes']:>9} B  sha256 "
              f"{str(meta['sha256'])[:16]}…")
    return 0


def _print_gate_reply(reply) -> int:
    status = reply.get("status")
    if status == "refused":
        print(f"REFUSED   : {reply.get('error')}")
        return 2
    if status != "ok":
        print(f"error     : {reply.get('error')}", file=sys.stderr)
        return 1
    config = reply.get("config", {})
    print(f"config    : cap {config.get('rate_cap_hz'):g} Hz, "
          f"lpf {config.get('lowpass_hz'):g} Hz, "
          f"noise {config.get('noise_rms'):g}, "
          f"lsb {config.get('quant_lsb'):g}")
    print(f"attacker  : {reply.get('task')} head, {reply.get('mode')} mode")
    print(f"accuracy  : {reply.get('accuracy'):.3f} "
          f"(chance {reply.get('chance'):.3f}, "
          f"margin {reply.get('margin'):+.3f})")
    kind = "swept cell" if reply.get("exact") else (
        f"interpolated over {reply.get('n_corners')} corners")
    print(f"leakage   : {reply.get('leakage'):.3f}  [{kind}]")
    return 0


def _cmd_gate_score(args) -> int:
    from repro.serve.frontend import FrontendClient

    def ask(client: FrontendClient) -> int:
        reply = client.gate_score(
            rate_cap_hz=args.rate_cap,
            lowpass_hz=args.lowpass,
            noise_rms=args.noise,
            quant_lsb=args.lsb,
            task=args.task,
            mode=args.mode,
        )
        return _print_gate_reply(reply)

    if args.connect:
        host, port = _parse_hostport(args.connect)
        with FrontendClient(host, port, tenant=args.tenant) as client:
            return ask(client)

    # Local bundle: verify + load it, then answer through the same
    # serving stack a live deployment uses (ephemeral loopback).
    from repro.attack.privacy_gate import GateScorer
    from repro.serve.bundle import BundleError, load_gate_bundle
    from repro.serve.frontend import ServingFrontend
    from repro.serve.registry import ModelRegistry
    from repro.serve.server import InferenceServer

    try:
        manifest, report = load_gate_bundle(args.bundle)
    except BundleError as exc:
        print(f"REJECTED: {exc}", file=sys.stderr)
        return 1
    print(f"gate      : {manifest.ref} "
          f"(tasks: {', '.join(report.tasks)})")
    server = InferenceServer(ModelRegistry(), gate=GateScorer(report))
    with server:
        frontend = ServingFrontend(server, host="127.0.0.1", port=0)
        with frontend:
            with FrontendClient(
                frontend.host, frontend.port, tenant=args.tenant
            ) as client:
                return ask(client)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Accept `repro bundle pack …`, `repro serve …`, `repro client …`
    # and `repro gate …` spellings: the dispatcher in repro.cli
    # forwards the whole tail.
    if argv and argv[0] == "bundle":
        argv = argv[1:]
    elif argv and argv[0] in ("serve", "client", "gate"):
        argv = [argv[0]] + argv[1:]
    args = build_parser().parse_args(argv)
    if args.command == "pack":
        return _cmd_pack(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "quantize":
        return _cmd_quantize(args)
    if args.command == "delta":
        return _cmd_delta(args)
    if args.command == "client":
        return _cmd_client(args)
    if args.command == "gate":
        if args.gate_command == "pack":
            return _cmd_gate_pack(args)
        return _cmd_gate_score(args)
    return _cmd_serve(args)


if __name__ == "__main__":
    raise SystemExit(main())
