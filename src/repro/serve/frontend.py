"""Asyncio network front-end: multi-tenant intake for the inference server.

The "millions of users" story: many phones (tenants) stream requests at
one shared backend. :class:`ServingFrontend` owns a TCP listener
speaking the :mod:`repro.serve.protocol` frame format, runs every
request through the :mod:`repro.serve.admission` controller (per-tenant
token buckets, weighted fair queueing, realtime-over-backfill lanes) and
dispatches the admitted ones into an existing
:class:`~repro.serve.server.InferenceServer`, which keeps micro-batching
exactly as before. The event loop lives on a private thread, so the
front-end drops into synchronous code (tests, the CLI, benchmarks) with
``start()``/``stop()``.

Contracts, layered on the server's own:

- **admit-or-tell**: every well-formed request is answered exactly once
  — with a verdict if admitted, or a ``shed`` response carrying
  ``reason`` and ``retry_after_s`` if not. Nothing is silently dropped.
- **fair under flood**: dispatch order is WFQ across tenants, so one
  greedy client cannot starve the others; its excess is shed back to it
  with back-off hints while everyone else keeps their share.
- **lanes**: ``realtime`` requests always dispatch before ``backfill``;
  under inflight pressure backfill is withheld entirely (preempted at
  batch granularity) until the realtime side clears.
- **graceful drain**: ``stop()`` (and hot-swap restarts) first stops
  accepting, sheds new arrivals with ``reason="draining"``, then serves
  every already-admitted request to completion before closing sockets —
  mirroring the server's exactly-once ``ServeFuture`` contract.

A malformed frame (oversized, garbage, undecodable JSON) kills only the
connection that sent it, after a best-effort ``error`` response.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set

import numpy as np

from repro.obs import metrics, tracer
from repro.serve.admission import (
    AdmissionController,
    Admitted,
    TenantConfig,
    TokenBucket,
)
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    LANES,
    FrameDecoder,
    ProtocolError,
    encode_message,
)
from repro.serve.server import (
    InferenceServer,
    ServeResult,
    ServerOverloaded,
)

__all__ = ["AsyncFrontendClient", "FrontendClient", "ServingFrontend"]


@dataclass(eq=False)
class _Connection:
    """One client socket: its writer plus liveness for orphan detection."""

    writer: asyncio.StreamWriter
    closed: bool = False

    def send(self, message: Dict[str, Any]) -> bool:
        if self.closed:
            return False
        try:
            self.writer.write(encode_message(message))
            return True
        except Exception:  # noqa: BLE001 - peer vanished mid-write
            self.closed = True
            return False


@dataclass
class _PendingRequest:
    """One admitted request waiting for (or in) the inference server."""

    conn: _Connection
    msg_id: Any
    tenant: str
    lane: str
    kind: str
    payload: np.ndarray
    fs: Optional[float]
    model: Optional[str]
    timeout_s: Optional[float]
    accepted_at: float = field(default_factory=time.perf_counter)


class ServingFrontend:
    """TCP front-end with admission control over an :class:`InferenceServer`.

    Parameters
    ----------
    server:
        The started inference server requests are dispatched into.
    host, port:
        Listen address; port 0 binds an ephemeral port (read ``.port``
        after :meth:`start`).
    tenants:
        :class:`TenantConfig` contracts for known tenants; unknown
        tenant names are admitted under ``default_tenant``.
    default_tenant:
        Policy template for unregistered tenants (default: unlimited
        rate, weight 1, backlog 64).
    max_inflight:
        Cap on requests handed to the server but not yet answered;
        defaults to half the server's queue so the frontend never trips
        the server's own overload path.
    dispatch_rate:
        Optional global pacing (requests/s) of dispatch into the
        backend — models a constrained backend and makes fair-queueing
        behaviour reproducible under test; ``None`` dispatches as fast
        as the inflight cap allows.
    backfill_pressure:
        Fraction of ``max_inflight`` above which backfill dispatch is
        withheld (preemption under pressure).
    drain_timeout_s:
        Longest :meth:`stop` waits for admitted requests to finish.
    """

    def __init__(
        self,
        server: InferenceServer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tenants: Optional[List[TenantConfig]] = None,
        default_tenant: Optional[TenantConfig] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        max_inflight: Optional[int] = None,
        dispatch_rate: Optional[float] = None,
        backfill_pressure: float = 0.5,
        drain_timeout_s: float = 30.0,
    ):
        self.server = server
        self.host = host
        self.port = int(port)
        self.max_frame_bytes = int(max_frame_bytes)
        if max_inflight is None:
            max_inflight = max(8, server._queue.maxsize // 2)
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = int(max_inflight)
        self.dispatch_rate = dispatch_rate
        if not 0.0 < backfill_pressure <= 1.0:
            raise ValueError("backfill_pressure must be in (0, 1]")
        self._backfill_limit = max(1, int(backfill_pressure * self.max_inflight))
        self.drain_timeout_s = float(drain_timeout_s)
        self.admission = AdmissionController(
            tenants=tenants,
            default_config=default_tenant,
            drain_rate=self._service_rate,
        )
        self._dispatch_bucket: Optional[TokenBucket] = None
        if dispatch_rate is not None:
            if dispatch_rate <= 0:
                raise ValueError("dispatch_rate must be positive")
            self._dispatch_bucket = TokenBucket(
                dispatch_rate, burst=max(1.0, dispatch_rate / 20.0)
            )
        self._connections: Set[_Connection] = set()
        self._inflight = 0
        self._completions: Deque[float] = deque(maxlen=128)
        self.accepted = 0
        self.answered = 0
        self.shed = 0
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._dispatcher_stop = False

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ServingFrontend":
        """Bind the listener on a private event-loop thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("frontend already started")
        self._started.clear()
        self._startup_error = None
        self._dispatcher_stop = False
        self._thread = threading.Thread(
            target=self._thread_main, name="serve-frontend", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Drain gracefully: shed new work, answer all admitted, close."""
        if self._thread is None:
            return
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join()
        self._thread = None
        self._loop = None

    def __enter__(self) -> "ServingFrontend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._startup_error = exc
        finally:
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stop_event = asyncio.Event()
        listener = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = listener.sockets[0].getsockname()[1]
        self._started.set()
        dispatcher = asyncio.create_task(self._dispatch_loop())
        await self._stop_event.wait()

        # Graceful drain: no new connections, new offers shed, admitted
        # requests dispatched and answered before the sockets close.
        self.admission.start_draining()
        listener.close()
        await listener.wait_closed()
        deadline = self._loop.time() + self.drain_timeout_s
        while (
            self.admission.backlog() > 0 or self._inflight > 0
        ) and self._loop.time() < deadline:
            self._wake.set()
            await asyncio.sleep(0.005)
        # Stop the dispatcher cooperatively BEFORE cancelling: on
        # Python 3.11, wait_for can swallow a cancellation that races
        # with its inner future completing (gh-86296), which would leave
        # the task running forever — the flag guarantees its loop exits
        # even when the CancelledError is eaten.
        self._dispatcher_stop = True
        self._wake.set()
        dispatcher.cancel()
        try:
            await dispatcher
        except asyncio.CancelledError:
            pass
        for conn in list(self._connections):
            conn.closed = True
            try:
                conn.writer.close()
            except Exception:  # noqa: BLE001
                pass
        await asyncio.sleep(0)

    # -- connection handling -------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        decoder = FrameDecoder(self.max_frame_bytes)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    messages = decoder.feed(data)
                except ProtocolError as exc:
                    # Only this connection dies; a best-effort error
                    # response tells the peer why.
                    metrics().count("frontend.protocol_errors")
                    conn.send({"op": "error", "error": str(exc)})
                    break
                for message, tensor in messages:
                    self._handle_message(conn, message, tensor)
        finally:
            conn.closed = True
            self._connections.discard(conn)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001
                pass

    def _handle_message(
        self, conn: _Connection, message: Dict[str, Any], tensor: Optional[np.ndarray]
    ) -> None:
        op = message.get("op")
        if op == "ping":
            conn.send({"op": "pong", "id": message.get("id")})
            return
        if op == "gate":
            self._handle_gate(conn, message)
            return
        if op != "predict":
            conn.send(
                {
                    "op": "error",
                    "id": message.get("id"),
                    "error": f"unknown op {op!r}",
                }
            )
            return
        msg_id = message.get("id")
        tenant = str(message.get("tenant") or "default")
        try:
            pending = self._parse_predict(conn, message, tensor, tenant)
        except (TypeError, ValueError) as exc:
            metrics().count("frontend.bad_requests", tenant=tenant)
            conn.send(
                {
                    "op": "result",
                    "id": msg_id,
                    "status": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            return
        decision = self.admission.offer(tenant, pending.lane, pending)
        if decision is not None:
            self.shed += 1
            metrics().count("frontend.shed", tenant=tenant, reason=decision.reason)
            tracer().record(
                "frontend.shed",
                0.0,
                metric_labels={"tenant": tenant, "reason": decision.reason},
                tenant=tenant,
                lane=pending.lane,
                reason=decision.reason,
            )
            conn.send(
                {
                    "op": "shed",
                    "id": msg_id,
                    "status": "shed",
                    "reason": decision.reason,
                    "retry_after_s": round(decision.retry_after_s, 6),
                }
            )
            return
        self.accepted += 1
        metrics().count("frontend.requests", tenant=tenant, lane=pending.lane)
        metrics().gauge("frontend.backlog", self.admission.backlog())
        assert self._wake is not None
        self._wake.set()

    def _handle_gate(self, conn: _Connection, message: Dict[str, Any]) -> None:
        """Answer one privacy-gate leakage query synchronously.

        Gate scoring is a pure table lookup / interpolation over the
        packed :class:`~repro.attack.privacy_gate.LeakageReport`, so it
        bypasses the batching queue entirely: no lane, no admission, no
        shed. Out-of-range configs come back as ``status: "refused"``
        (the scorer will not extrapolate beyond the swept grid) rather
        than a transport error, so callers can distinguish "unsafe to
        answer" from "malformed request".
        """
        from repro.attack.privacy_gate import GateRangeError

        msg_id = message.get("id")
        metrics().count("frontend.gate_requests")
        gate = getattr(self.server, "gate", None)
        if gate is None:
            conn.send(
                {
                    "op": "gate_result",
                    "id": msg_id,
                    "status": "error",
                    "error": "no privacy gate loaded on this server",
                }
            )
            return
        config = message.get("config")
        if not isinstance(config, dict):
            conn.send(
                {
                    "op": "gate_result",
                    "id": msg_id,
                    "status": "error",
                    "error": "gate needs a config object with rate_cap_hz, "
                    "lowpass_hz, noise_rms and quant_lsb",
                }
            )
            return
        try:
            score = gate.score(
                rate_cap_hz=float(config["rate_cap_hz"]),
                lowpass_hz=float(config["lowpass_hz"]),
                noise_rms=float(config["noise_rms"]),
                quant_lsb=float(config["quant_lsb"]),
                task=message.get("task"),
                mode=str(message.get("mode", "adaptive")),
            )
        except GateRangeError as exc:
            metrics().count("frontend.gate_refused")
            conn.send(
                {
                    "op": "gate_result",
                    "id": msg_id,
                    "status": "refused",
                    "error": str(exc),
                }
            )
            return
        except (KeyError, TypeError, ValueError) as exc:
            conn.send(
                {
                    "op": "gate_result",
                    "id": msg_id,
                    "status": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            return
        conn.send({"op": "gate_result", "id": msg_id, "status": "ok", **score})

    def _parse_predict(
        self,
        conn: _Connection,
        message: Dict[str, Any],
        tensor: Optional[np.ndarray],
        tenant: str,
    ) -> _PendingRequest:
        lane = message.get("lane", "realtime")
        if lane not in LANES:
            raise ValueError(f"unknown lane {lane!r}; expected one of {LANES}")
        kind = message.get("kind", "features")
        if kind not in ("features", "window"):
            raise ValueError(f"unknown request kind {kind!r}")
        if tensor is not None:
            payload = np.asarray(tensor, dtype=float)
        else:
            raw = message.get("payload")
            if not isinstance(raw, list) or not raw:
                raise ValueError("predict needs a non-empty payload list or tensor")
            payload = np.asarray(raw, dtype=float)
        if payload.ndim != 1:
            raise ValueError(f"payload must be 1-D, got shape {payload.shape}")
        fs = message.get("fs")
        if kind == "window":
            if fs is None or float(fs) <= 0:
                raise ValueError("window requests need a positive fs")
            fs = float(fs)
        else:
            fs = None
        timeout_s = message.get("timeout_s")
        if timeout_s is not None:
            timeout_s = float(timeout_s)
            if timeout_s <= 0:
                raise ValueError("timeout_s must be positive")
        model = message.get("model")
        return _PendingRequest(
            conn=conn,
            msg_id=message.get("id"),
            tenant=tenant,
            lane=lane,
            kind=kind,
            payload=payload,
            fs=fs,
            model=str(model) if model is not None else None,
            timeout_s=timeout_s,
        )

    # -- dispatch ------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while not self._dispatcher_stop:
            pause_s = self._dispatch_ready()
            if pause_s is not None:
                # Pacing bucket dry with work waiting: sleep exactly
                # until the next token instead of busy-polling.
                await asyncio.sleep(pause_s)
                continue
            self._wake.clear()
            if self._dispatchable():
                continue  # re-check: a slot freed between clear and here
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=0.05)
            except asyncio.TimeoutError:
                pass

    def _dispatchable(self) -> bool:
        """Whether :meth:`_dispatch_ready` could dispatch something right now.

        Must mirror its lane gating exactly: any weaker condition (e.g.
        total backlog under ``max_inflight``) makes the dispatch loop
        ``continue`` forever when only preempted backfill is waiting,
        starving the event loop so the completion callbacks that would
        free inflight slots never run.
        """
        if self.admission.backlog(lane="realtime") > 0:
            return self._inflight < self.max_inflight
        if self.admission.backlog(lane="backfill") > 0:
            return self._inflight < self._backfill_limit
        return False

    def _dispatch_ready(self) -> Optional[float]:
        """Dispatch as much as caps allow; returns a pacing sleep if blocked."""
        while self._inflight < self.max_inflight:
            realtime_waiting = self.admission.backlog(lane="realtime") > 0
            backfill_waiting = self.admission.backlog(lane="backfill") > 0
            if not realtime_waiting and not backfill_waiting:
                return None
            allow_backfill = (
                not realtime_waiting and self._inflight < self._backfill_limit
            )
            if not realtime_waiting and not allow_backfill:
                return None  # backfill preempted by inflight pressure
            if self._dispatch_bucket is not None:
                if not self._dispatch_bucket.try_take(1.0):
                    return max(self._dispatch_bucket.time_until(1.0), 1e-4)
            entry = self.admission.next(allow_backfill=allow_backfill)
            if entry is None:
                return None
            self._submit_entry(entry)
        return None

    def _submit_entry(self, entry: Admitted) -> None:
        pending = entry.item
        assert isinstance(pending, _PendingRequest)
        try:
            if pending.kind == "window":
                future = self.server.submit_window(
                    pending.payload,
                    pending.fs,
                    model=pending.model,
                    timeout_s=pending.timeout_s,
                )
            else:
                future = self.server.submit_features(
                    pending.payload,
                    model=pending.model,
                    timeout_s=pending.timeout_s,
                )
        except ServerOverloaded as exc:
            # The inflight cap makes this rare; the admitted request is
            # still answered exactly once — as an explicit shed with the
            # server's own retry estimate.
            self._answer_shed(pending, "backend", exc.retry_after_s or 0.05)
            return
        except Exception as exc:  # noqa: BLE001 - e.g. server stopped
            self._answer_error(pending, f"{type(exc).__name__}: {exc}")
            return
        self._inflight += 1
        metrics().gauge("frontend.inflight", self._inflight)
        future.add_done_callback(
            lambda result, p=pending: self._post_result(p, result)
        )

    def _post_result(self, pending: _PendingRequest, result: ServeResult) -> None:
        """Hop a resolution from the batcher thread onto the event loop.

        Runs on the server's batcher thread and must never raise (the
        ``add_done_callback`` contract): if the drain deadline expired
        with this request still inflight, the loop is already closed and
        ``call_soon_threadsafe`` raises RuntimeError — swallowing it
        loses only a response nobody is waiting for, while letting it
        propagate would kill the batcher worker.
        """
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._on_result, pending, result)
        except RuntimeError:
            pass  # event loop closed after the drain deadline expired

    # -- resolution ----------------------------------------------------------
    def _on_result(self, pending: _PendingRequest, result: ServeResult) -> None:
        self._inflight -= 1
        self._completions.append(time.perf_counter())
        latency = time.perf_counter() - pending.accepted_at
        self.answered += 1
        tracer().record(
            "frontend.request",
            latency,
            metric_labels={
                "tenant": pending.tenant,
                "lane": pending.lane,
                "status": result.status,
            },
            tenant=pending.tenant,
            lane=pending.lane,
            status=result.status,
        )
        metrics().count(
            "frontend.responses", tenant=pending.tenant, status=result.status
        )
        response: Dict[str, Any] = {
            "op": "result",
            "id": pending.msg_id,
            "status": result.status,
            "model": result.model,
            "latency_s": round(latency, 6),
        }
        if result.ok:
            response["label"] = result.label
            response["used"] = result.used
            if result.proba is not None:
                response["proba"] = [float(p) for p in result.proba]
        else:
            response["error"] = result.error
        if not pending.conn.send(response):
            metrics().count("frontend.orphaned", tenant=pending.tenant)
        assert self._wake is not None
        self._wake.set()

    def _answer_shed(
        self, pending: _PendingRequest, reason: str, retry_after_s: float
    ) -> None:
        self.shed += 1
        self.accepted -= 1  # it never reached the backend; reclassified as shed
        metrics().count("frontend.shed", tenant=pending.tenant, reason=reason)
        pending.conn.send(
            {
                "op": "shed",
                "id": pending.msg_id,
                "status": "shed",
                "reason": reason,
                "retry_after_s": round(retry_after_s, 6),
            }
        )

    def _answer_error(self, pending: _PendingRequest, error: str) -> None:
        self.answered += 1
        metrics().count(
            "frontend.responses", tenant=pending.tenant, status="error"
        )
        pending.conn.send(
            {
                "op": "result",
                "id": pending.msg_id,
                "status": "error",
                "error": error,
            }
        )

    def _service_rate(self) -> float:
        """Recent completion rate (req/s) for retry-after pricing."""
        if len(self._completions) < 2:
            return 0.0
        span = self._completions[-1] - self._completions[0]
        if span <= 0:
            return 0.0
        return (len(self._completions) - 1) / span


class AsyncFrontendClient:
    """Pipelined asyncio client: submit many requests, await each response.

    Each :meth:`submit` writes one frame and returns an
    :class:`asyncio.Future` resolving to the response message (a
    ``result`` or ``shed`` dict). A background reader task correlates
    responses by ``id``, so any number of requests can be in flight on
    one connection — the open-loop load generator the benchmark needs.
    """

    def __init__(self, host: str, port: int, tenant: str = "default"):
        self.host = host
        self.port = int(port)
        self.tenant = tenant
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._task: Optional[asyncio.Task] = None

    async def connect(self) -> "AsyncFrontendClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._task = asyncio.create_task(self._read_loop())
        return self

    async def close(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._task = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except Exception:  # noqa: BLE001
                pass
            self._writer = None
        self._fail_pending(ConnectionError("client closed"))

    def submit(
        self,
        features: Optional[np.ndarray] = None,
        *,
        window: Optional[np.ndarray] = None,
        fs: Optional[float] = None,
        lane: str = "realtime",
        model: Optional[str] = None,
        timeout_s: Optional[float] = None,
        binary: bool = False,
    ) -> "asyncio.Future[Dict[str, Any]]":
        """Send one predict request; resolve with its response message."""
        if self._writer is None:
            raise ConnectionError("client is not connected")
        if (features is None) == (window is None):
            raise ValueError("pass exactly one of features= or window=")
        msg_id = next(self._ids)
        message: Dict[str, Any] = {
            "op": "predict",
            "id": msg_id,
            "tenant": self.tenant,
            "lane": lane,
        }
        if model is not None:
            message["model"] = model
        if timeout_s is not None:
            message["timeout_s"] = timeout_s
        payload = features if features is not None else window
        payload = np.asarray(payload, dtype=float)
        if window is not None:
            message["kind"] = "window"
            message["fs"] = float(fs) if fs is not None else None
        else:
            message["kind"] = "features"
        if binary:
            frame = encode_message(message, payload)
        else:
            message["payload"] = [float(x) for x in payload]
            frame = encode_message(message)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[msg_id] = future
        self._writer.write(frame)
        return future

    async def predict(self, features: np.ndarray, **kwargs) -> Dict[str, Any]:
        return await self.submit(features, **kwargs)

    async def ping(self) -> Dict[str, Any]:
        if self._writer is None:
            raise ConnectionError("client is not connected")
        msg_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[msg_id] = future
        self._writer.write(encode_message({"op": "ping", "id": msg_id}))
        return await future

    async def _read_loop(self) -> None:
        assert self._reader is not None
        decoder = FrameDecoder()
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    self._fail_pending(ConnectionError("server closed the connection"))
                    return
                for message, _ in decoder.feed(data):
                    self._route(message)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - reset, protocol, decode, ...
            # Any transport or framing failure must resolve the pending
            # futures; otherwise every in-flight submit() hangs until
            # the caller's own outer timeout.
            self._fail_pending(exc)

    def _route(self, message: Dict[str, Any]) -> None:
        if message.get("op") == "error" and message.get("id") is None:
            self._fail_pending(ProtocolError(str(message.get("error"))))
            return
        future = self._pending.pop(message.get("id"), None)
        if future is not None and not future.done():
            future.set_result(message)

    def _fail_pending(self, exc: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)


class FrontendClient:
    """Blocking one-request-at-a-time client (CLI and simple scripts)."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        timeout_s: float = 30.0,
    ):
        import socket

        self.tenant = tenant
        self._sock = socket.create_connection((host, int(port)), timeout=timeout_s)
        self._decoder = FrameDecoder()
        self._ids = itertools.count(1)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "FrontendClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(self, frame: bytes) -> Dict[str, Any]:
        self._sock.sendall(frame)
        while True:
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            messages = self._decoder.feed(data)
            if messages:
                return messages[0][0]

    def ping(self) -> Dict[str, Any]:
        return self._roundtrip(encode_message({"op": "ping", "id": next(self._ids)}))

    def predict(
        self,
        features: np.ndarray,
        *,
        lane: str = "realtime",
        model: Optional[str] = None,
        timeout_s: Optional[float] = None,
        binary: bool = False,
    ) -> Dict[str, Any]:
        """Send one feature-vector request and block for its response."""
        features = np.asarray(features, dtype=float)
        message: Dict[str, Any] = {
            "op": "predict",
            "id": next(self._ids),
            "tenant": self.tenant,
            "lane": lane,
            "kind": "features",
        }
        if model is not None:
            message["model"] = model
        if timeout_s is not None:
            message["timeout_s"] = timeout_s
        if binary:
            frame = encode_message(message, features)
        else:
            message["payload"] = [float(x) for x in features]
            frame = encode_message(message)
        return self._roundtrip(frame)

    def gate_score(
        self,
        *,
        rate_cap_hz: float,
        lowpass_hz: float,
        noise_rms: float,
        quant_lsb: float,
        task: Optional[str] = None,
        mode: str = "adaptive",
    ) -> Dict[str, Any]:
        """Ask the server's privacy gate how much a sensor config leaks.

        Returns the ``gate_result`` message: ``status`` is ``"ok"``
        (with accuracy/margin/leakage fields), ``"refused"`` when the
        config falls outside the swept grid, or ``"error"``.
        """
        message: Dict[str, Any] = {
            "op": "gate",
            "id": next(self._ids),
            "tenant": self.tenant,
            "config": {
                "rate_cap_hz": float(rate_cap_hz),
                "lowpass_hz": float(lowpass_hz),
                "noise_rms": float(noise_rms),
                "quant_lsb": float(quant_lsb),
            },
            "mode": mode,
        }
        if task is not None:
            message["task"] = task
        return self._roundtrip(encode_message(message))
