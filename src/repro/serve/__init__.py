"""Serving layer: versioned model bundles + a batched inference server.

The deploy-online half of the paper's threat model at production scale:
:mod:`repro.serve.bundle` packages a trained pipeline (scaler, any
:mod:`repro.ml.persistence` classifier kind, CNN weights) into a
hash-verified ``name@version`` artifact; :mod:`repro.serve.registry`
loads, warm-caches and hot-swaps those artifacts; and
:mod:`repro.serve.server` answers feature-vector and raw-window
prediction requests through micro-batches with bounded queues,
deadlines and CNN-to-classifier degrade. :mod:`repro.serve.stream`
connects the :mod:`repro.attack.realtime` front end so a raw
accelerometer stream is served end-to-end.
"""

from repro.serve.bundle import (
    BUNDLE_FORMAT_VERSION,
    BundleError,
    BundleFormatError,
    BundleIntegrityError,
    BundleManifest,
    ModelBundle,
    load_bundle,
    save_bundle,
    verify_bundle,
)
from repro.serve.registry import ModelRegistry, parse_ref
from repro.serve.server import (
    InferenceServer,
    ServeError,
    ServeFuture,
    ServeResult,
    ServerOverloaded,
    ServerStopped,
    serve_burst,
)
from repro.serve.stream import RemoteClassifier, StreamServingClient

__all__ = [
    "BUNDLE_FORMAT_VERSION",
    "BundleError",
    "BundleFormatError",
    "BundleIntegrityError",
    "BundleManifest",
    "ModelBundle",
    "ModelRegistry",
    "InferenceServer",
    "RemoteClassifier",
    "ServeError",
    "ServeFuture",
    "ServeResult",
    "ServerOverloaded",
    "ServerStopped",
    "StreamServingClient",
    "load_bundle",
    "parse_ref",
    "save_bundle",
    "serve_burst",
    "verify_bundle",
]
