"""Serving layer: versioned model bundles + a batched inference server.

The deploy-online half of the paper's threat model at production scale:
:mod:`repro.serve.bundle` packages a trained pipeline (scaler, any
:mod:`repro.ml.persistence` classifier kind, CNN weights) into a
hash-verified ``name@version`` artifact; :mod:`repro.serve.registry`
loads, warm-caches and hot-swaps those artifacts; and
:mod:`repro.serve.server` answers feature-vector and raw-window
prediction requests through micro-batches with bounded queues,
deadlines and CNN-to-classifier degrade. Bundles come in quantised
variants (``int8``, ``distilled-int8`` via :mod:`repro.nn.quant` /
:mod:`repro.nn.distill`) with manifest provenance, ship as delta
archives against a registered parent, and roll out gradually through
the server's canary/shadow routing (promote/rollback over the
registry's hot-swap default). :mod:`repro.serve.stream`
connects the :mod:`repro.attack.realtime` front end so a raw
accelerometer stream is served end-to-end.

The network tier sits on top: :mod:`repro.serve.protocol` defines the
length-prefixed JSON/binary frame format, :mod:`repro.serve.admission`
the per-tenant token buckets + weighted fair queueing + priority lanes,
and :mod:`repro.serve.frontend` the asyncio TCP front-end that admits,
schedules, load-sheds (with retry-after hints) and gracefully drains
multi-tenant traffic into the batching server.
"""

from repro.serve.admission import (
    AdmissionController,
    ShedDecision,
    TenantConfig,
    TokenBucket,
)
from repro.serve.bundle import (
    BUNDLE_FORMAT_VERSION,
    BUNDLE_VARIANTS,
    BundleError,
    BundleFormatError,
    BundleIntegrityError,
    BundleManifest,
    ModelBundle,
    load_bundle,
    manifest_sha256,
    quantize_bundle,
    save_bundle,
    save_delta_bundle,
    verify_bundle,
)
from repro.serve.frontend import (
    AsyncFrontendClient,
    FrontendClient,
    ServingFrontend,
)
from repro.serve.protocol import FrameDecoder, ProtocolError, encode_message
from repro.serve.registry import ModelRegistry, parse_ref
from repro.serve.server import (
    InferenceServer,
    ServeError,
    ServeFuture,
    ServeResult,
    ServerOverloaded,
    ServerStopped,
    serve_burst,
)
from repro.serve.stream import RemoteClassifier, StreamServingClient

__all__ = [
    "AdmissionController",
    "AsyncFrontendClient",
    "BUNDLE_FORMAT_VERSION",
    "BundleError",
    "FrameDecoder",
    "FrontendClient",
    "ProtocolError",
    "ServingFrontend",
    "ShedDecision",
    "TenantConfig",
    "TokenBucket",
    "encode_message",
    "BundleFormatError",
    "BundleIntegrityError",
    "BundleManifest",
    "ModelBundle",
    "ModelRegistry",
    "InferenceServer",
    "RemoteClassifier",
    "ServeError",
    "ServeFuture",
    "ServeResult",
    "ServerOverloaded",
    "ServerStopped",
    "StreamServingClient",
    "BUNDLE_VARIANTS",
    "load_bundle",
    "manifest_sha256",
    "parse_ref",
    "quantize_bundle",
    "save_bundle",
    "save_delta_bundle",
    "serve_burst",
    "verify_bundle",
]
