"""Model registry: load, cache and hot-swap bundles by ``name@version``.

The registry maps bundle *refs* to artifact paths and keeps the most
recently used bundles warm in an LRU cache, so a serving process pays
the load-and-verify cost of a bundle once, not per request. Publishing
a new version is a hot swap: :meth:`ModelRegistry.set_default` flips
which version a bare ``name`` resolves to atomically, while in-flight
requests against the old version finish against the old bundle object.

Cache traffic is observable: ``registry.loads`` / ``registry.hits`` /
``registry.evictions`` counters land in the ambient
:mod:`repro.obs` metrics registry, labelled per bundle.

The registry doubles as the *parent resolver* for delta bundles: a
registered delta artifact is materialised against its (already
registered) parent, with every member hash re-verified against the
child manifest on each cold load.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs import metrics, trace
from repro.serve.bundle import ModelBundle, load_bundle

__all__ = ["ModelRegistry", "parse_ref"]

_PathLike = Union[str, Path]


def parse_ref(ref: str) -> Tuple[str, Optional[str]]:
    """Split ``"name@version"`` (or bare ``"name"``) into its parts."""
    ref = str(ref).strip()
    if not ref:
        raise ValueError("empty model ref")
    if "@" in ref:
        name, _, version = ref.partition("@")
        if not name or not version:
            raise ValueError(f"malformed model ref {ref!r}; want name@version")
        return name, version
    return ref, None


class ModelRegistry:
    """Thread-safe bundle store with a warm-model LRU.

    Parameters
    ----------
    max_loaded:
        How many bundles stay warm at once; the least recently *used*
        bundle is evicted when the cap is exceeded. Evicted bundles are
        reloaded (and re-integrity-checked) on next use.
    """

    def __init__(self, max_loaded: int = 4):
        if max_loaded < 1:
            raise ValueError("max_loaded must be >= 1")
        self.max_loaded = int(max_loaded)
        self._lock = threading.RLock()
        #: (name, version) -> artifact path
        self._paths: Dict[Tuple[str, str], Path] = {}
        #: name -> version served for a bare-name request
        self._defaults: Dict[str, str] = {}
        #: warm LRU: (name, version) -> ModelBundle, oldest first
        self._loaded: "OrderedDict[Tuple[str, str], ModelBundle]" = OrderedDict()
        self.loads = 0
        self.hits = 0
        self.evictions = 0

    # -- registration -------------------------------------------------------
    def register(
        self, path: _PathLike, name: Optional[str] = None,
        version: Optional[str] = None,
    ) -> Tuple[str, str]:
        """Register a bundle artifact; returns its ``(name, version)``.

        ``name``/``version`` default to the values in the artifact's own
        manifest (verified on the spot, so a tampered artifact is
        rejected at registration, not at first request). The newest
        registration of a name becomes its default version. A *delta*
        artifact resolves its parent chain through this registry, so
        parents must be registered before their deltas.
        """
        from repro.serve.bundle import verify_bundle

        path = Path(path)
        if name is None or version is None:
            manifest, _ = verify_bundle(path, parent_resolver=self._parent_path)
            name = name if name is not None else manifest.name
            version = version if version is not None else manifest.version
        name, version = str(name), str(version)
        with self._lock:
            self._paths[(name, version)] = path
            self._defaults[name] = version
            # A re-registered ref must not serve a stale warm copy.
            self._loaded.pop((name, version), None)
        return name, version

    def set_default(self, name: str, version: str) -> None:
        """Hot-swap which version a bare ``name`` resolves to."""
        with self._lock:
            if (name, version) not in self._paths:
                raise KeyError(
                    f"unknown bundle {name}@{version}; registered: "
                    f"{self.refs()}"
                )
            self._defaults[name] = version

    # -- introspection ------------------------------------------------------
    def refs(self) -> List[str]:
        """Every registered ``name@version``, sorted."""
        with self._lock:
            return sorted(f"{n}@{v}" for n, v in self._paths)

    def versions(self, name: str) -> List[str]:
        with self._lock:
            return sorted(v for n, v in self._paths if n == name)

    def default_version(self, name: str) -> Optional[str]:
        with self._lock:
            return self._defaults.get(name)

    def loaded_refs(self) -> List[str]:
        """Warm bundles, least recently used first."""
        with self._lock:
            return [f"{n}@{v}" for n, v in self._loaded]

    def _parent_path(self, ref: str) -> Path:
        """Artifact path for a fully-qualified ref (delta parent lookup)."""
        name, version = parse_ref(ref)
        if version is None:
            raise KeyError(
                f"delta parent ref {ref!r} must be fully qualified "
                "(name@version)"
            )
        with self._lock:
            path = self._paths.get((name, version))
        if path is None:
            raise KeyError(
                f"delta parent {ref} is not registered; register the parent "
                "bundle before its delta"
            )
        return path

    # -- resolution ---------------------------------------------------------
    def resolve(self, ref: str) -> Tuple[str, str]:
        """Canonical ``(name, version)`` for a ref, applying the default."""
        name, version = parse_ref(ref)
        with self._lock:
            if version is None:
                version = self._defaults.get(name)
                if version is None:
                    raise KeyError(
                        f"unknown bundle name {name!r}; registered: "
                        f"{self.refs()}"
                    )
            if (name, version) not in self._paths:
                raise KeyError(
                    f"unknown bundle {name}@{version}; registered: "
                    f"{self.refs()}"
                )
        return name, version

    def get(self, ref: str) -> ModelBundle:
        """The warm bundle for ``ref``, loading (and evicting) as needed."""
        name, version = self.resolve(ref)
        key = (name, version)
        with self._lock:
            bundle = self._loaded.get(key)
            if bundle is not None:
                self._loaded.move_to_end(key)
                self.hits += 1
                metrics().count("registry.hits", bundle=f"{name}@{version}")
                return bundle
            path = self._paths[key]
        # Load outside the lock: verification + parsing can be slow and
        # must not block unrelated lookups.
        with trace(
            "registry.load", bundle=f"{name}@{version}",
            metric_labels={"bundle": f"{name}@{version}"},
        ):
            bundle = load_bundle(path, parent_resolver=self._parent_path)
        with self._lock:
            if key not in self._paths:  # unregistered while loading
                raise KeyError(f"bundle {name}@{version} was unregistered")
            self._loaded[key] = bundle
            self._loaded.move_to_end(key)
            self.loads += 1
            metrics().count("registry.loads", bundle=f"{name}@{version}")
            while len(self._loaded) > self.max_loaded:
                evicted_key, _ = self._loaded.popitem(last=False)
                self.evictions += 1
                metrics().count(
                    "registry.evictions",
                    bundle=f"{evicted_key[0]}@{evicted_key[1]}",
                )
        return bundle

    def __len__(self) -> int:
        with self._lock:
            return len(self._paths)
