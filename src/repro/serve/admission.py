"""Per-tenant admission control: token buckets, weighted fair queueing, lanes.

The front-end's answer to the one-greedy-client problem: every tenant
gets a :class:`TenantConfig` (a token-bucket rate limit, a fair-queueing
weight, a bounded per-lane backlog) and the :class:`AdmissionController`
decides, per request, between *queue* and *shed* — and, across queued
requests, *who goes next*.

Scheduling is classic virtual-time weighted fair queueing (WFQ) run
independently per lane: each tenant's queue head carries a finish tag
``max(lane virtual time, previous tag) + cost / weight``; dequeue always
picks the smallest tag, so over any backlogged interval tenant
throughput converges to the weight ratio no matter how unbalanced the
arrival streams are. The ``realtime`` lane has strict priority over
``backfill``: backfill is only offered when no realtime request is
waiting, and the front-end additionally withholds backfill dispatch
under inflight pressure (preemption at batch granularity).

Shedding never drops silently: every decision is a
:class:`ShedDecision` with a ``reason`` and a ``retry_after_s`` hint —
time until the token bucket refills for rate sheds, estimated
backlog-drain time for queue-full sheds — that the wire protocol
forwards verbatim so clients can back off instead of hammering.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.serve.protocol import LANES

__all__ = [
    "Admitted",
    "AdmissionController",
    "ShedDecision",
    "TenantConfig",
    "TokenBucket",
]


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's admission policy.

    ``rate``/``burst`` bound how fast requests are *accepted* (token
    bucket, ``float("inf")`` disables the limit); ``weight`` sets the
    tenant's WFQ share among backlogged tenants; ``max_backlog`` bounds
    the queued-but-not-dispatched requests per lane.
    """

    name: str
    weight: float = 1.0
    rate: float = float("inf")
    burst: float = 32.0
    max_backlog: int = 64

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.rate <= 0:
            raise ValueError("tenant rate must be positive (inf to disable)")
        if self.burst <= 0:
            raise ValueError("tenant burst must be positive")
        if self.max_backlog < 1:
            raise ValueError("tenant max_backlog must be >= 1")


class TokenBucket:
    """Lazy-refill token bucket over an injectable monotonic clock."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        if self.rate == float("inf"):
            self._tokens = self.burst
        else:
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_take(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def time_until(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available (0 if already)."""
        self._refill()
        if self._tokens >= n:
            return 0.0
        if self.rate == float("inf"):
            return 0.0
        return (n - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


@dataclass(frozen=True)
class ShedDecision:
    """Why a request was not queued, and when to try again."""

    reason: str  # "rate" | "backlog" | "draining"
    retry_after_s: float


@dataclass
class Admitted:
    """One queued request: the opaque ``item`` plus its scheduling tags."""

    tenant: str
    lane: str
    item: object
    seq: int
    finish_tag: float = 0.0


@dataclass
class _TenantState:
    config: TenantConfig
    bucket: TokenBucket
    queues: Dict[str, Deque[Admitted]] = field(
        default_factory=lambda: {lane: deque() for lane in LANES}
    )
    #: Last assigned WFQ finish tag per lane (monotone per tenant).
    finish: Dict[str, float] = field(default_factory=lambda: {lane: 0.0 for lane in LANES})


class AdmissionController:
    """Token-bucket admission + per-lane WFQ over the registered tenants.

    Unknown tenants are admitted under ``default_config`` (a private
    copy per tenant name), so the front-end serves anonymous traffic
    with sane bounds while named tenants get their contracted shares.
    ``drain_rate`` is an optional callable returning the dispatcher's
    recent service rate (requests/s); it prices the ``retry_after_s``
    hint on backlog sheds.

    Not thread-safe by design: the front-end drives it from a single
    event loop. (The clock is injectable so tests run on virtual time.)
    """

    def __init__(
        self,
        tenants: Optional[List[TenantConfig]] = None,
        *,
        default_config: Optional[TenantConfig] = None,
        drain_rate: Optional[Callable[[], float]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._clock = clock
        self._drain_rate = drain_rate
        self._default = default_config or TenantConfig("default")
        self._tenants: Dict[str, _TenantState] = {}
        self._vtime: Dict[str, float] = {lane: 0.0 for lane in LANES}
        self._seq = 0
        self._draining = False
        for config in tenants or []:
            self.configure(config)

    def configure(self, config: TenantConfig) -> None:
        """Register (or re-register) one tenant's policy."""
        state = self._tenants.get(config.name)
        if state is None:
            self._tenants[config.name] = _TenantState(
                config=config,
                bucket=TokenBucket(config.rate, config.burst, clock=self._clock),
            )
        else:
            state.config = config
            state.bucket = TokenBucket(config.rate, config.burst, clock=self._clock)

    def tenant_config(self, tenant: str) -> TenantConfig:
        return self._state(tenant).config

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            config = TenantConfig(
                tenant,
                weight=self._default.weight,
                rate=self._default.rate,
                burst=self._default.burst,
                max_backlog=self._default.max_backlog,
            )
            state = _TenantState(
                config=config,
                bucket=TokenBucket(config.rate, config.burst, clock=self._clock),
            )
            self._tenants[tenant] = state
        return state

    # -- intake --------------------------------------------------------------
    def start_draining(self) -> None:
        """Shed every future offer; already-queued requests still drain."""
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    def offer(
        self, tenant: str, lane: str, item: object, *, cost: float = 1.0
    ) -> Optional[ShedDecision]:
        """Queue one request; returns a :class:`ShedDecision` instead if shed."""
        if lane not in LANES:
            raise ValueError(f"unknown lane {lane!r}; expected one of {LANES}")
        if self._draining:
            return ShedDecision(reason="draining", retry_after_s=1.0)
        state = self._state(tenant)
        queue = state.queues[lane]
        if len(queue) >= state.config.max_backlog:
            return ShedDecision(
                reason="backlog",
                retry_after_s=self._backlog_eta(len(queue), cost),
            )
        if not state.bucket.try_take(cost):
            return ShedDecision(
                reason="rate",
                retry_after_s=max(state.bucket.time_until(cost), 1e-3),
            )
        tag = max(self._vtime[lane], state.finish[lane]) + cost / state.config.weight
        state.finish[lane] = tag
        self._seq += 1
        queue.append(Admitted(tenant=tenant, lane=lane, item=item, seq=self._seq, finish_tag=tag))
        return None

    def _backlog_eta(self, depth: int, cost: float) -> float:
        rate = self._drain_rate() if self._drain_rate is not None else 0.0
        if rate <= 0:
            return 0.1
        return min(max((depth * cost) / rate, 1e-3), 30.0)

    # -- scheduling ----------------------------------------------------------
    def next(self, *, allow_backfill: bool = True) -> Optional[Admitted]:
        """Pop the WFQ-next request: realtime first, then (optionally) backfill."""
        entry = self._pop_lane("realtime")
        if entry is None and allow_backfill:
            entry = self._pop_lane("backfill")
        return entry

    def _pop_lane(self, lane: str) -> Optional[Admitted]:
        best: Optional[_TenantState] = None
        for state in self._tenants.values():
            queue = state.queues[lane]
            if not queue:
                continue
            if best is None or queue[0].finish_tag < best.queues[lane][0].finish_tag:
                best = state
        if best is None:
            return None
        entry = best.queues[lane].popleft()
        self._vtime[lane] = entry.finish_tag
        return entry

    # -- introspection -------------------------------------------------------
    def backlog(self, lane: Optional[str] = None, tenant: Optional[str] = None) -> int:
        """Queued-but-undispatched requests, filtered by lane and/or tenant."""
        lanes = LANES if lane is None else (lane,)
        states = (
            self._tenants.values()
            if tenant is None
            else ([self._tenants[tenant]] if tenant in self._tenants else [])
        )
        return sum(len(state.queues[ln]) for state in states for ln in lanes)

    def tenants(self) -> List[str]:
        return sorted(self._tenants)
