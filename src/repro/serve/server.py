"""Batched inference server over versioned model bundles.

The online half of the paper's threat model at traffic scale: requests
(Table II feature vectors, or raw accelerometer windows that still need
feature extraction) arrive on a bounded queue, a batcher thread groups
them into micro-batches — up to ``max_batch`` requests, waiting at most
``max_linger_s`` after the first — and each batch runs one
``predict_proba`` per model group over a shared
:class:`~repro.parallel.ExecutorPool`.

Guarantees:

- **exactly-once answers** — every accepted request resolves its
  :class:`ServeFuture` with exactly one :class:`ServeResult`, whether
  the prediction succeeded, the model faulted (error value), the
  deadline passed (timeout value), or the server stopped;
- **backpressure** — a full queue rejects new work immediately with
  :class:`ServerOverloaded` instead of buffering without bound;
- **graceful degrade** — a CNN fault retries the batch against the
  bundle's fallback feature classifier; a fault that persists is
  isolated per request (row-by-row) so one poison request cannot take
  down its batchmates, and the server stays up;
- **observability** — ``serve.batch`` spans around every batch,
  ``serve.request`` timer records per answered request, and counters
  for submissions, batches, fallbacks, timeouts and rejections in the
  ambient :mod:`repro.obs` registry; every answer also lands in the
  per-resolved-version ``serve.version.responses`` counter;
- **canary / shadow rollout** — :meth:`InferenceServer.set_canary`
  routes a configured fraction of the *bare-name* traffic for a model
  to a candidate version (requests that pin ``name@version`` are never
  rerouted); in shadow mode the candidate predicts alongside the
  default and only agreement counters (``serve.shadow.*``) are
  emitted, no client sees a candidate answer.
  :meth:`~InferenceServer.promote_canary` flips the registry default to
  the candidate; :meth:`~InferenceServer.rollback_canary` withdraws the
  candidate, leaving the prior default untouched — in-flight routed
  requests still resolve against the candidate bundle, so no accepted
  request is dropped by either transition.

Batching changes scheduling, never answers: a burst served batched
yields the same predictions as serial single-request inference (see
``benchmarks/test_serving.py`` for the throughput this buys).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attack.features import extract_features
from repro.obs import metrics, trace, tracer
from repro.parallel import ExecutorPool
from repro.serve.registry import ModelRegistry

__all__ = [
    "InferenceServer",
    "ServeFuture",
    "ServeResult",
    "ServeError",
    "ServerOverloaded",
    "ServerStopped",
]


class ServeError(RuntimeError):
    """Base class for serving-layer failures."""


class ServerOverloaded(ServeError):
    """The bounded request queue is full; the caller should back off.

    ``retry_after_s`` is the server's own estimate of when a retry is
    worth making — current queue depth in batches times the recent
    batch latency — so callers back off for as long as the backlog
    actually needs, not a guessed constant.
    """

    def __init__(self, message: str, retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServerStopped(ServeError):
    """The server is not accepting requests."""


@dataclass(frozen=True)
class ServeResult:
    """The answer to one request (an error *value*, never an exception).

    ``ok`` results carry the predicted ``label`` and the full ``proba``
    row over ``labels``-ordered classes; failed results carry ``error``
    and a ``status`` of ``"error"`` or ``"timeout"``.
    """

    request_id: int
    status: str  # "ok" | "error" | "timeout"
    model: str
    label: Optional[str] = None
    proba: Optional[np.ndarray] = None
    used: Optional[str] = None  # "cnn" | "classifier"
    error: Optional[str] = None
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class ServeFuture:
    """Handle to an in-flight request; resolves exactly once."""

    def __init__(self, request_id: int):
        self.request_id = request_id
        self._event = threading.Event()
        self._result: Optional[ServeResult] = None
        self._resolved = 0
        self._lock = threading.Lock()
        self._callbacks: List = []

    def _resolve(self, result: ServeResult) -> None:
        with self._lock:
            if self._resolved:
                raise AssertionError(
                    f"request {self.request_id} resolved twice "
                    f"(exactly-once answer invariant broken)"
                )
            self._resolved = 1
            self._result = result
            callbacks, self._callbacks = self._callbacks, []
        self._event.set()
        for callback in callbacks:
            callback(result)

    def add_done_callback(self, callback) -> None:
        """Run ``callback(result)`` on resolution (immediately if already done).

        Callbacks fire on the resolving thread (the batcher); keep them
        cheap and never raise — this is the bridge the asyncio front-end
        uses to hop results back onto its event loop.
        """
        with self._lock:
            if not self._resolved:
                self._callbacks.append(callback)
                return
            result = self._result
        assert result is not None
        callback(result)

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ServeResult:
        """Block for the answer; raises :class:`ServeError` on wait timeout."""
        if not self._event.wait(timeout):
            raise ServeError(
                f"request {self.request_id} not answered within {timeout}s"
            )
        assert self._result is not None
        return self._result


@dataclass
class _Canary:
    """Rollout state for one model name."""

    version: str
    fraction: float
    shadow: bool
    submitted: int = 0  # bare-name submissions seen since set_canary
    routed: int = 0  # of those, sent to the candidate (shadow: 0)

    def take(self) -> bool:
        """Deterministic counter split: route ⌊c·f⌋ of the first c."""
        self.submitted += 1
        routed = int(self.submitted * self.fraction) > int(
            (self.submitted - 1) * self.fraction
        )
        if routed:
            self.routed += 1
        return routed


@dataclass
class _Request:
    request_id: int
    kind: str  # "features" | "window"
    payload: np.ndarray
    fs: Optional[float]
    model: str
    deadline: float
    enqueued: float
    future: ServeFuture = field(repr=False, default=None)  # type: ignore


class InferenceServer:
    """Micro-batching prediction server over a :class:`ModelRegistry`.

    Parameters
    ----------
    registry:
        Where bundles come from (loaded lazily, warm-cached, hot-swappable).
    model:
        Default bundle ref (``name`` or ``name@version``) for requests
        that do not name one.
    max_batch:
        Largest micro-batch; 1 disables batching (the serial baseline).
    max_linger_s:
        Longest the batcher waits after the first queued request before
        dispatching a partial batch.
    max_queue:
        Bounded-queue depth; submissions beyond it raise
        :class:`ServerOverloaded`.
    default_timeout_s:
        Per-request deadline when the submission does not carry one. A
        request still queued past its deadline is answered with a
        timeout value instead of occupying a batch slot.
    pool:
        Optional shared :class:`~repro.parallel.ExecutorPool` used to
        fan independent per-model groups of one batch out; ``serial``
        and ``thread`` pools only (models and futures do not cross
        process boundaries). Defaults to a private serial pool.
    gate:
        Optional :class:`~repro.attack.privacy_gate.GateScorer` serving
        leakage queries (the ``gate`` frontend op) alongside — or
        instead of — prediction traffic. Gate scoring is a pure lookup/
        interpolation, so it is answered synchronously by the frontend
        and never occupies a batch slot.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        model: Optional[str] = None,
        *,
        max_batch: int = 32,
        max_linger_s: float = 0.002,
        max_queue: int = 256,
        default_timeout_s: float = 10.0,
        pool: Optional[ExecutorPool] = None,
        gate=None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_linger_s < 0:
            raise ValueError("max_linger_s must be >= 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if pool is not None and pool.executor == "process":
            raise ValueError(
                "InferenceServer needs a serial or thread pool; model "
                "objects and futures do not cross process boundaries"
            )
        self.registry = registry
        self.default_model = model
        self.max_batch = int(max_batch)
        self.max_linger_s = float(max_linger_s)
        self.default_timeout_s = float(default_timeout_s)
        self._pool = pool if pool is not None else ExecutorPool(n_jobs=1)
        self._owns_pool = pool is None
        self._queue: "queue.Queue[_Request]" = queue.Queue(maxsize=max_queue)
        self._ids = itertools.count(1)
        self._stop = threading.Event()
        self._state_lock = threading.Lock()
        self._accepting = False
        self._thread: Optional[threading.Thread] = None
        self.requests_accepted = 0
        self.requests_answered = 0
        self.batches_run = 0
        #: name -> live canary rollout, guarded by its own small lock so
        #: routing never contends with the accept/queue critical section.
        self._canary_lock = threading.Lock()
        self._canaries: Dict[str, _Canary] = {}
        #: EWMA of recent batch wall time; prices ServerOverloaded's
        #: retry_after_s hint (None until the first batch completes).
        self._batch_latency_s: Optional[float] = None
        #: Optional privacy-gate scorer; the frontend answers ``gate``
        #: ops against it without going through the batching queue.
        self.gate = gate

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "InferenceServer":
        if self._thread is not None:
            raise ServeError("server already started")
        self._stop.clear()
        self._accepting = True
        self._thread = threading.Thread(
            target=self._batcher_loop, name="serve-batcher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting work, drain the queue, answer every straggler."""
        with self._state_lock:
            # Atomic with the accept-check in _submit: once this flips,
            # no new request can reach the queue, so the drain below
            # answers everything that ever got in.
            self._accepting = False
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        # The batcher drains before exiting; anything that still slipped
        # in is answered with a stopped-server error value.
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            self._answer(
                request,
                ServeResult(
                    request_id=request.request_id,
                    status="error",
                    model=request.model,
                    error="server stopped before the request was served",
                ),
            )
        if self._owns_pool:
            self._pool.close()

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission ---------------------------------------------------------
    def _submit(
        self,
        kind: str,
        payload: np.ndarray,
        fs: Optional[float],
        model: Optional[str],
        timeout_s: Optional[float],
    ) -> ServeFuture:
        if not self._accepting:
            raise ServerStopped("server is not running; call start()")
        ref = model if model is not None else self.default_model
        if ref is None:
            raise ServeError(
                "no model named on the request and the server has no default"
            )
        ref = self._canary_ref(str(ref))
        timeout = self.default_timeout_s if timeout_s is None else float(timeout_s)
        now = time.perf_counter()
        request = _Request(
            request_id=next(self._ids),
            kind=kind,
            payload=payload,
            fs=fs,
            model=str(ref),
            deadline=now + timeout,
            enqueued=now,
        )
        request.future = ServeFuture(request.request_id)
        with self._state_lock:
            if not self._accepting:
                raise ServerStopped("server is not running; call start()")
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                metrics().count("serve.rejected", reason="overloaded")
                retry_after = self.estimate_retry_after()
                raise ServerOverloaded(
                    f"request queue full ({self._queue.maxsize}); retry in "
                    f"~{retry_after:.3f}s",
                    retry_after_s=retry_after,
                ) from None
            self.requests_accepted += 1
        metrics().count("serve.requests", kind=kind)
        return request.future

    def submit_features(
        self,
        features: np.ndarray,
        model: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> ServeFuture:
        """Queue one Table II feature vector for prediction."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 1:
            raise ValueError(
                f"expected a 1-D feature vector, got shape {features.shape}"
            )
        return self._submit("features", features, None, model, timeout_s)

    def submit_window(
        self,
        samples: np.ndarray,
        fs: float,
        model: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> ServeFuture:
        """Queue a raw accelerometer window; features are extracted in-batch."""
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1 or samples.size < 4:
            raise ValueError(
                f"expected a 1-D window of >= 4 samples, got shape {samples.shape}"
            )
        if fs <= 0:
            raise ValueError("fs must be positive")
        return self._submit("window", samples, float(fs), model, timeout_s)

    # -- canary rollout -----------------------------------------------------
    def _canary_ref(self, ref: str) -> str:
        """Apply canary routing to a submission's model ref.

        Only bare names are rerouted — a request pinning
        ``name@version`` always gets exactly that version. The split is
        a deterministic counter (exactly ⌊c·f⌋ of the first ``c``
        bare-name submissions go to the candidate), so the configured
        fraction is met without randomness.
        """
        if "@" in ref:
            return ref
        with self._canary_lock:
            canary = self._canaries.get(ref)
            if canary is None or canary.shadow:
                return ref
            if not canary.take():
                return ref
            routed_ref = f"{ref}@{canary.version}"
        metrics().count("serve.canary.routed", model=routed_ref)
        return routed_ref

    def set_canary(
        self, name: str, version: str, fraction: float, shadow: bool = False
    ) -> None:
        """Start a canary rollout: send ``fraction`` of the bare-name
        traffic for ``name`` to candidate ``version``.

        With ``shadow=True`` no client traffic is rerouted; instead the
        candidate predicts alongside the default on the same rows and
        ``serve.shadow.agree`` / ``serve.shadow.disagree`` counters
        record argmax agreement (``fraction`` is ignored).
        """
        if not shadow and not 0.0 < fraction <= 1.0:
            raise ValueError("canary fraction must be in (0, 1]")
        self.registry.resolve(f"{name}@{version}")  # must exist now
        with self._canary_lock:
            self._canaries[str(name)] = _Canary(
                version=str(version),
                fraction=float(fraction) if not shadow else 0.0,
                shadow=bool(shadow),
            )

    def canary_status(self, name: str) -> Optional[dict]:
        """Live rollout state for ``name`` (None when no canary is set)."""
        with self._canary_lock:
            canary = self._canaries.get(name)
            if canary is None:
                return None
            return {
                "version": canary.version,
                "fraction": canary.fraction,
                "shadow": canary.shadow,
                "submitted": canary.submitted,
                "routed": canary.routed,
            }

    def clear_canary(self, name: str) -> None:
        """Withdraw the canary for ``name`` (no-op when none is set)."""
        with self._canary_lock:
            self._canaries.pop(name, None)

    def promote_canary(self, name: str) -> str:
        """Make the canary version the registry default; ends the rollout.

        Returns the promoted version. In-flight requests against the old
        default finish against the old bundle object (registry hot-swap
        semantics).
        """
        with self._canary_lock:
            canary = self._canaries.get(name)
            if canary is None:
                raise ServeError(f"no canary rollout is live for {name!r}")
            version = canary.version
        self.registry.set_default(name, version)
        self.clear_canary(name)
        metrics().count("serve.canary.promoted", model=f"{name}@{version}")
        return version

    def rollback_canary(self, name: str) -> Optional[str]:
        """Withdraw the canary, keeping the prior default in place.

        Returns the default version traffic falls back to. Requests
        already routed to the candidate still resolve against it — an
        accepted request is never dropped by a rollback.
        """
        with self._canary_lock:
            canary = self._canaries.pop(name, None)
        if canary is None:
            raise ServeError(f"no canary rollout is live for {name!r}")
        metrics().count(
            "serve.canary.rolled_back", model=f"{name}@{canary.version}"
        )
        return self.registry.default_version(name)

    def predict(
        self,
        features: np.ndarray,
        model: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> ServeResult:
        """Blocking convenience: submit a feature vector and wait."""
        timeout = self.default_timeout_s if timeout_s is None else float(timeout_s)
        future = self.submit_features(features, model=model, timeout_s=timeout)
        # Wait a little past the serving deadline: a deadline miss comes
        # back as a timeout *value*, not a dropped future.
        return future.result(timeout=timeout + 5.0)

    # -- batching -----------------------------------------------------------
    def _batcher_loop(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.02)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            batch = [first]
            t_first = time.perf_counter()
            while len(batch) < self.max_batch:
                remaining = self.max_linger_s - (time.perf_counter() - t_first)
                if remaining <= 0:
                    break
                try:
                    batch.append(self._queue.get(timeout=remaining))
                except queue.Empty:
                    break
            try:
                self._run_batch(batch)
            except Exception as exc:  # noqa: BLE001 - the server must stay up
                for request in batch:
                    if not request.future.done():
                        self._answer(
                            request,
                            ServeResult(
                                request_id=request.request_id,
                                status="error",
                                model=request.model,
                                error=f"internal batch failure: "
                                      f"{type(exc).__name__}: {exc}",
                            ),
                        )

    def _run_batch(self, batch: List[_Request]) -> None:
        self.batches_run += 1
        t_start = time.perf_counter()
        groups: Dict[str, List[_Request]] = {}
        for request in batch:
            groups.setdefault(request.model, []).append(request)
        with trace(
            "serve.batch", n=len(batch), models=len(groups), metric_labels={}
        ):
            metrics().count("serve.batches")
            metrics().observe("serve.batch_size", len(batch))
            self._pool.map(self._run_group, list(groups.items()))
        elapsed = time.perf_counter() - t_start
        previous = self._batch_latency_s
        self._batch_latency_s = (
            elapsed if previous is None else 0.7 * previous + 0.3 * elapsed
        )

    def estimate_retry_after(self) -> float:
        """Expected seconds until the current backlog has been batched away.

        Queue depth in batches times the recent (EWMA) batch latency;
        before the first batch has run, a linger-based floor stands in.
        Clamped to [1ms, 10s] so a pathological measurement never turns
        into a zero or an hour of client back-off.
        """
        per_batch = self._batch_latency_s
        if per_batch is None or per_batch <= 0:
            per_batch = self.max_linger_s + 0.005
        batches_ahead = max(1.0, self._queue.qsize() / float(self.max_batch))
        return float(min(max(batches_ahead * per_batch, 1e-3), 10.0))

    # -- per-group execution ------------------------------------------------
    def _run_group(self, group: Tuple[str, List[_Request]]) -> None:
        model_ref, requests = group
        now = time.perf_counter()
        live: List[_Request] = []
        for request in requests:
            if now >= request.deadline:
                metrics().count("serve.timeouts", model=model_ref)
                self._answer(
                    request,
                    ServeResult(
                        request_id=request.request_id,
                        status="timeout",
                        model=model_ref,
                        error="deadline exceeded while queued",
                    ),
                )
            else:
                live.append(request)
        if not live:
            return
        try:
            bundle = self.registry.get(model_ref)
        except Exception as exc:  # noqa: BLE001 - unknown/corrupt bundle
            metrics().count("serve.errors", model=model_ref, reason="bundle")
            for request in live:
                self._answer(
                    request,
                    ServeResult(
                        request_id=request.request_id,
                        status="error",
                        model=model_ref,
                        error=f"{type(exc).__name__}: {exc}",
                    ),
                )
            return
        rows, prepared = self._prepare_rows(live, bundle, model_ref)
        if not prepared:
            return
        X = np.vstack(rows)
        with trace(
            "serve.predict", model=model_ref, n=len(prepared),
            metric_labels={"model": model_ref},
        ):
            outcomes = self._predict_group(bundle, X, model_ref)
        self._shadow_compare(model_ref, bundle, X, outcomes)
        labels = bundle.labels
        for request, outcome in zip(prepared, outcomes):
            proba, used, error = outcome
            if error is not None:
                metrics().count("serve.errors", model=model_ref, reason="model")
                result = ServeResult(
                    request_id=request.request_id,
                    status="error",
                    model=model_ref,
                    error=error,
                )
            else:
                result = ServeResult(
                    request_id=request.request_id,
                    status="ok",
                    model=model_ref,
                    label=str(labels[int(np.argmax(proba))]),
                    proba=proba,
                    used=used,
                )
            self._answer(request, result)

    def _prepare_rows(
        self, live: List[_Request], bundle, model_ref: str
    ) -> Tuple[List[np.ndarray], List[_Request]]:
        """Feature rows for the live requests; bad inputs answered early."""
        rows: List[np.ndarray] = []
        prepared: List[_Request] = []
        n_features = bundle.n_features
        for request in live:
            try:
                if request.kind == "window":
                    row = np.nan_to_num(
                        extract_features(request.payload, request.fs), nan=0.0
                    )
                else:
                    row = request.payload
                    if row.size != n_features:
                        raise ValueError(
                            f"feature vector has {row.size} entries; bundle "
                            f"{model_ref} serves {n_features} "
                            f"({bundle.manifest.feature_schema[:3]}…)"
                        )
            except Exception as exc:  # noqa: BLE001 - bad input, not a crash
                metrics().count("serve.errors", model=model_ref, reason="input")
                self._answer(
                    request,
                    ServeResult(
                        request_id=request.request_id,
                        status="error",
                        model=model_ref,
                        error=f"{type(exc).__name__}: {exc}",
                    ),
                )
                continue
            rows.append(row)
            prepared.append(request)
        return rows, prepared

    def _predict_group(
        self, bundle, X: np.ndarray, model_ref: str
    ) -> List[Tuple[Optional[np.ndarray], Optional[str], Optional[str]]]:
        """Per-row ``(proba, used, error)`` outcomes for one model group.

        Tries the bundle's predictors in degrade order on the whole
        batch; if every predictor faults batch-wise, falls back to
        row-by-row isolation so only the poison rows carry error values.
        """
        roles = bundle.predictors()
        for i, (role, _) in enumerate(roles):
            try:
                proba = bundle.predict_proba_with(role, X)
                if i > 0:
                    metrics().count(
                        "serve.fallbacks", model=model_ref, to=role,
                        value=X.shape[0],
                    )
                return [(proba[j], role, None) for j in range(X.shape[0])]
            except Exception:  # noqa: BLE001 - degrade to the next predictor
                if i + 1 < len(roles):
                    metrics().count("serve.degrades", model=model_ref)
                continue
        # Batch-wise everything faulted: isolate per row.
        metrics().count("serve.row_isolation", model=model_ref)
        outcomes: List[Tuple[Optional[np.ndarray], Optional[str], Optional[str]]] = []
        for j in range(X.shape[0]):
            row = X[j : j + 1]
            answer: Tuple[Optional[np.ndarray], Optional[str], Optional[str]]
            answer = (None, None, "no predictor available")
            for role, _ in roles:
                try:
                    proba = bundle.predict_proba_with(role, row)
                    answer = (proba[0], role, None)
                    break
                except Exception as exc:  # noqa: BLE001
                    answer = (None, None, f"{type(exc).__name__}: {exc}")
            outcomes.append(answer)
        return outcomes

    def _shadow_compare(self, model_ref: str, bundle, X, outcomes) -> None:
        """Shadow-mode canary: predict with the candidate, count agreement.

        Runs inline on the group's rows (shadowing deliberately pays the
        candidate's inference cost without exposing its answers).
        Candidate faults only increment ``serve.shadow.errors`` — the
        default path's answers are already committed.
        """
        with self._canary_lock:
            canary = self._canaries.get(model_ref)
            if canary is None or not canary.shadow:
                return
            candidate_ref = f"{model_ref}@{canary.version}"
        try:
            candidate = self.registry.get(candidate_ref)
            with trace(
                "serve.shadow", model=candidate_ref, n=X.shape[0],
                metric_labels={"model": candidate_ref},
            ):
                cand_proba = candidate.predict_proba(X)
        except Exception:  # noqa: BLE001 - shadow must never hurt serving
            metrics().count("serve.shadow.errors", model=candidate_ref)
            return
        cand_labels = candidate.labels
        for j, (proba, _used, error) in enumerate(outcomes):
            if error is not None or proba is None:
                continue
            primary = str(bundle.labels[int(np.argmax(proba))])
            shadow = str(cand_labels[int(np.argmax(cand_proba[j]))])
            outcome = "agree" if primary == shadow else "disagree"
            metrics().count(f"serve.shadow.{outcome}", model=candidate_ref)

    # -- resolution ---------------------------------------------------------
    def _version_label(self, ref: str) -> str:
        """Fully-qualified ``name@version`` for per-version counters.

        Canary-routed and pinned requests already carry the version;
        bare names resolve through the registry's *current* default (a
        hot swap mid-flight attributes the answer to the new default).
        Unresolvable refs are counted under the raw ref.
        """
        if "@" in ref:
            return ref
        try:
            name, version = self.registry.resolve(ref)
        except Exception:  # noqa: BLE001 - unknown model, counted as-is
            return ref
        return f"{name}@{version}"

    def _answer(self, request: _Request, result: ServeResult) -> None:
        latency = time.perf_counter() - request.enqueued
        result = ServeResult(
            request_id=result.request_id,
            status=result.status,
            model=result.model,
            label=result.label,
            proba=result.proba,
            used=result.used,
            error=result.error,
            latency_s=latency,
        )
        request.future._resolve(result)
        with self._state_lock:
            self.requests_answered += 1
        tracer().record(
            "serve.request",
            latency,
            metric_labels={"status": result.status, "model": result.model},
            request_id=request.request_id,
            status=result.status,
        )
        metrics().count("serve.responses", status=result.status)
        metrics().count(
            "serve.version.responses",
            model=self._version_label(result.model),
            status=result.status,
        )


def serve_burst(
    server: InferenceServer,
    feature_rows: Sequence[np.ndarray],
    model: Optional[str] = None,
    timeout_s: float = 30.0,
) -> List[ServeResult]:
    """Submit a burst of feature vectors and collect every answer, in order."""
    futures = [
        server.submit_features(row, model=model, timeout_s=timeout_s)
        for row in feature_rows
    ]
    return [future.result(timeout=timeout_s + 5.0) for future in futures]
