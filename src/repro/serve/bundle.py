"""Versioned, integrity-checked model bundles.

A *bundle* is the deployable artifact of the train-offline /
deploy-online threat model (EmoLeak §IV): everything the online side of
the attack needs to answer prediction requests, packaged as a directory
or a single ``.zip``:

- ``manifest.json`` — bundle format version, name@version, provenance
  (corpus/scenario/seed), the served label map, the Table II feature
  schema, the :mod:`repro.nn.policy` the CNN was trained under, and a
  SHA-256 hash of every other member;
- ``classifier.json`` — optional feature classifier, any
  :mod:`repro.ml.persistence` kind (the CNN's degrade target);
- ``scaler.json`` — optional :class:`~repro.ml.preprocessing.StandardScaler`
  applied to feature-vector inputs before the *feature classifier*
  (the CNN adapters embed their own scaler);
- ``cnn.json`` + ``cnn_weights.npz`` — optional CNN adapter
  (:class:`~repro.eval.experiment.FeatureCNNClassifier` or
  :class:`~repro.eval.experiment.SpectrogramCNNClassifier`), weights
  written by :meth:`repro.nn.model.Sequential.save_weights`.

``load_bundle`` verifies *every* member hash against the manifest before
parsing a single byte of model data — a tampered or truncated bundle is
rejected with :class:`BundleIntegrityError` and never instantiates a
model. Unknown format versions and classifier kinds are rejected just
as loudly (:class:`BundleFormatError`).

Bundles come in *variants* (``float32`` — the default float pipeline,
``int8`` — the same CNN post-training-quantised via
:mod:`repro.nn.quant`, ``distilled-int8`` — a distilled student CNN,
quantised). Non-float variants carry their quantisation metadata
(per-layer scale summaries) and a ``parent`` provenance pointer — the
ref and manifest SHA-256 of the bundle they were derived from — in the
manifest. :func:`quantize_bundle` derives an int8 variant from a loaded
float bundle; :func:`save_delta_bundle` writes a *delta* archive that
ships only the members that changed against a parent bundle (the
manifest still lists the full member set with hashes, so
:func:`verify_bundle` proves integrity of the merged bundle — parent
bytes included — against the child manifest before anything is parsed).
"""

from __future__ import annotations

import hashlib
import io
import json
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.attack.features import FEATURE_NAMES
from repro.ml.persistence import (
    classifier_from_dict,
    classifier_to_dict,
    scaler_from_dict,
    scaler_to_dict,
)
from repro.ml.preprocessing import StandardScaler
from repro.nn.policy import get_policy, policy_scope

__all__ = [
    "BUNDLE_FORMAT_VERSION",
    "BUNDLE_VARIANTS",
    "BundleError",
    "BundleFormatError",
    "BundleIntegrityError",
    "BundleManifest",
    "ModelBundle",
    "save_bundle",
    "load_bundle",
    "verify_bundle",
    "manifest_sha256",
    "quantize_bundle",
    "read_manifest",
    "save_delta_bundle",
    "GATE_KIND",
    "save_gate_bundle",
    "load_gate_bundle",
]

#: Current on-disk bundle layout version. Readers refuse anything else.
BUNDLE_FORMAT_VERSION = 1

#: Known bundle variants. ``float32`` is the historical default and is
#: left implicit in manifests written before (and after) this field
#: existed, so float bundles stay byte-identical.
BUNDLE_VARIANTS = ("float32", "int8", "distilled-int8")

#: Longest delta-bundle parent chain a reader will follow.
DELTA_CHAIN_LIMIT = 8

MANIFEST_MEMBER = "manifest.json"
CLASSIFIER_MEMBER = "classifier.json"
SCALER_MEMBER = "scaler.json"
CNN_CONFIG_MEMBER = "cnn.json"
CNN_WEIGHTS_MEMBER = "cnn_weights.npz"
GATE_MEMBER = "gate.json"

#: provenance["kind"] marking a privacy-gate bundle (a serialized
#: LeakageReport instead of a predictor).
GATE_KIND = "privacy-gate"

_PathLike = Union[str, Path]


class BundleError(ValueError):
    """Base class for bundle packaging/loading failures."""


class BundleFormatError(BundleError):
    """The bundle's declared format (version, member set, kind) is unknown."""


class BundleIntegrityError(BundleError):
    """A member is missing, truncated, or fails its SHA-256 check."""


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass
class BundleManifest:
    """The bundle's self-description (the ``manifest.json`` member)."""

    name: str
    version: str
    labels: List[str]
    format_version: int = BUNDLE_FORMAT_VERSION
    feature_schema: List[str] = field(default_factory=lambda: list(FEATURE_NAMES))
    provenance: Dict[str, object] = field(default_factory=dict)
    nn_policy: Dict[str, str] = field(default_factory=dict)
    created_unix: float = 0.0
    members: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Bundle variant; "float32" (the implicit default) is not emitted,
    #: so pre-variant manifests round-trip byte-identically.
    variant: str = "float32"
    #: Quantisation metadata (scheme, qmax, per-layer scale summary).
    quantization: Dict[str, object] = field(default_factory=dict)
    #: Provenance pointer to the bundle this one was derived from:
    #: ``{"ref": ..., "manifest_sha256": ...}``.
    parent: Dict[str, object] = field(default_factory=dict)
    #: Present only on delta archives: the parent whose member bytes
    #: complete this bundle, pinned by its manifest hash.
    delta_base: Dict[str, object] = field(default_factory=dict)

    @property
    def ref(self) -> str:
        """The bundle's registry address, ``name@version``."""
        return f"{self.name}@{self.version}"

    def lineage(self) -> List[Dict[str, object]]:
        """The provenance chain recorded in this manifest, nearest first."""
        out: List[Dict[str, object]] = []
        if self.parent:
            out.append(dict(self.parent))
        if self.delta_base and self.delta_base != self.parent:
            out.append(dict(self.delta_base))
        return out

    def to_dict(self) -> dict:
        payload = {
            "format_version": self.format_version,
            "name": self.name,
            "version": self.version,
            "labels": list(self.labels),
            "feature_schema": list(self.feature_schema),
            "provenance": dict(self.provenance),
            "nn_policy": dict(self.nn_policy),
            "created_unix": self.created_unix,
            "members": {k: dict(v) for k, v in self.members.items()},
        }
        # Variant fields are emitted only when non-default so float32
        # manifests (and their golden fixtures) stay byte-identical.
        if self.variant != "float32":
            payload["variant"] = self.variant
        if self.quantization:
            payload["quantization"] = dict(self.quantization)
        if self.parent:
            payload["parent"] = dict(self.parent)
        if self.delta_base:
            payload["delta_base"] = dict(self.delta_base)
        return payload

    @classmethod
    def from_dict(cls, payload: dict, source: str) -> "BundleManifest":
        try:
            format_version = int(payload["format_version"])
        except (KeyError, TypeError, ValueError) as exc:
            raise BundleFormatError(
                f"{source}: manifest has no readable format_version"
            ) from exc
        if format_version != BUNDLE_FORMAT_VERSION:
            raise BundleFormatError(
                f"{source}: unsupported bundle format version "
                f"{format_version} (this reader supports "
                f"{BUNDLE_FORMAT_VERSION})"
            )
        try:
            return cls(
                name=str(payload["name"]),
                version=str(payload["version"]),
                labels=list(payload["labels"]),
                format_version=format_version,
                feature_schema=list(payload.get("feature_schema", FEATURE_NAMES)),
                provenance=dict(payload.get("provenance", {})),
                nn_policy=dict(payload.get("nn_policy", {})),
                created_unix=float(payload.get("created_unix", 0.0)),
                members={
                    str(k): dict(v)
                    for k, v in dict(payload.get("members", {})).items()
                },
                variant=str(payload.get("variant", "float32")),
                quantization=dict(payload.get("quantization", {})),
                parent=dict(payload.get("parent", {})),
                delta_base=dict(payload.get("delta_base", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BundleFormatError(f"{source}: malformed manifest: {exc}") from exc


# -- CNN adapter (de)serialisation ------------------------------------------

#: kind tag -> (adapter class path resolved lazily, builder name)
_CNN_KINDS = (
    "feature_cnn",
    "spectrogram_cnn",
    "quantized_feature_cnn",
    "quantized_spectrogram_cnn",
)


def _cnn_adapter_classes():
    from repro.eval.experiment import FeatureCNNClassifier, SpectrogramCNNClassifier

    return {
        "feature_cnn": FeatureCNNClassifier,
        "spectrogram_cnn": SpectrogramCNNClassifier,
    }


def _cnn_kind_of(adapter) -> str:
    from repro.nn.quant import QuantizedCNNClassifier

    if isinstance(adapter, QuantizedCNNClassifier):
        return f"quantized_{adapter.base_kind}"
    classes = _cnn_adapter_classes()
    for kind, cls in classes.items():
        if isinstance(adapter, cls):
            return kind
    raise TypeError(
        f"cannot package {type(adapter).__name__} as a bundle CNN; "
        f"supported: {sorted(c.__name__ for c in classes.values())} "
        "and QuantizedCNNClassifier"
    )


def _quantized_cnn_to_members(adapter) -> Tuple[dict, bytes]:
    from repro.nn.quant import quantized_model_to_members

    model_config, weights = quantized_model_to_members(adapter.qmodel)
    config = {
        "kind": f"quantized_{adapter.base_kind}",
        "classes": np.asarray(adapter.classes_).tolist(),
        "model": model_config,
    }
    if adapter.base_kind == "feature_cnn":
        config["scaler"] = scaler_to_dict(adapter._scaler)
    return config, weights


def _quantized_cnn_from_members(config: dict, weights: bytes, source: str):
    from repro.nn.quant import (
        QuantizedCNNClassifier,
        quantized_model_from_members,
    )

    base_kind = str(config["kind"]).removeprefix("quantized_")
    try:
        qmodel = quantized_model_from_members(
            dict(config["model"]), weights, source=source
        )
    except (KeyError, ValueError) as exc:
        raise BundleFormatError(
            f"{source}: bad quantised CNN members: {exc}"
        ) from exc
    scaler = (
        scaler_from_dict(config["scaler"]) if base_kind == "feature_cnn" else None
    )
    return QuantizedCNNClassifier(
        qmodel,
        classes=np.asarray(config["classes"]),
        base_kind=base_kind,
        scaler=scaler,
    )


def _cnn_to_members(adapter) -> Tuple[dict, bytes]:
    """Serialise a fitted CNN adapter to (config dict, weights-npz bytes)."""
    kind = _cnn_kind_of(adapter)
    if kind.startswith("quantized_"):
        return _quantized_cnn_to_members(adapter)
    adapter._check_fitted()
    model = adapter._model
    policy = get_policy()
    config = {
        "kind": kind,
        "classes": np.asarray(adapter.classes_).tolist(),
        "width_scale": adapter.width_scale,
        "seed": adapter.seed,
        "input_shape": list(model.input_shape_),
        "policy": {
            "compute_dtype": str(policy.compute_dtype),
            "conv_kernel": policy.conv_kernel,
        },
    }
    if kind == "feature_cnn":
        config["scaler"] = scaler_to_dict(adapter._scaler)
    buffer = io.BytesIO()
    model.save_weights(buffer)
    return config, buffer.getvalue()


def _cnn_from_members(config: dict, weights: bytes, source: str):
    """Rebuild a CNN adapter from its bundle members."""
    kind = config.get("kind")
    if kind in ("quantized_feature_cnn", "quantized_spectrogram_cnn"):
        return _quantized_cnn_from_members(config, weights, source)
    classes = _cnn_adapter_classes()
    if kind not in classes:
        raise BundleFormatError(
            f"{source}: unknown CNN kind {kind!r}; supported: {_CNN_KINDS}"
        )
    from repro.attack.models import build_feature_cnn, build_spectrogram_cnn

    adapter = classes[kind](
        width_scale=float(config["width_scale"]), seed=int(config["seed"])
    )
    adapter.classes_ = np.asarray(config["classes"])
    input_shape = tuple(int(d) for d in config["input_shape"])
    policy = dict(config.get("policy", {}))
    builder = build_feature_cnn if kind == "feature_cnn" else build_spectrogram_cnn
    with policy_scope(
        compute_dtype=policy.get("compute_dtype"),
        conv_kernel=policy.get("conv_kernel"),
    ):
        model = builder(
            adapter.classes_.size,
            width_scale=adapter.width_scale,
            seed=adapter.seed,
        )
        model.build(input_shape)
    buffer = io.BytesIO(weights)
    buffer.name = f"{source}:{CNN_WEIGHTS_MEMBER}"
    model.load_weights(buffer)
    adapter._model = model
    if kind == "feature_cnn":
        adapter._scaler = scaler_from_dict(config["scaler"])
    return adapter


@dataclass
class ModelBundle:
    """A loaded (or about-to-be-saved) inference pipeline.

    ``cnn`` is the primary predictor when present; ``classifier`` is the
    degrade target (or the primary when no CNN is packed). ``scaler``,
    when present, is applied to feature-vector inputs before the feature
    classifier only — the CNN adapters carry their own scaler.
    """

    manifest: BundleManifest
    classifier: Optional[object] = None
    cnn: Optional[object] = None
    scaler: Optional[StandardScaler] = None

    @classmethod
    def create(
        cls,
        name: str,
        version: str,
        classifier=None,
        cnn=None,
        scaler: Optional[StandardScaler] = None,
        provenance: Optional[dict] = None,
        feature_schema=FEATURE_NAMES,
    ) -> "ModelBundle":
        """Assemble a bundle from fitted parts, validating consistency."""
        if classifier is None and cnn is None:
            raise BundleError("a bundle needs a classifier, a CNN, or both")
        labels: Optional[np.ndarray] = None
        for part in (cnn, classifier):
            if part is None:
                continue
            part_classes = getattr(part, "classes_", None)
            if part_classes is None:
                raise BundleError(
                    f"{type(part).__name__} is not fitted (no classes_)"
                )
            if labels is None:
                labels = np.asarray(part_classes)
            elif not np.array_equal(labels, np.asarray(part_classes)):
                raise BundleError(
                    "CNN and fallback classifier disagree on the label map: "
                    f"{np.asarray(part_classes).tolist()} vs {labels.tolist()}"
                )
        policy = get_policy()
        manifest = BundleManifest(
            name=str(name),
            version=str(version),
            labels=np.asarray(labels).tolist(),
            feature_schema=list(feature_schema),
            provenance=dict(provenance or {}),
            nn_policy={
                "compute_dtype": str(policy.compute_dtype),
                "conv_kernel": policy.conv_kernel,
            },
            created_unix=time.time(),
        )
        return cls(manifest=manifest, classifier=classifier, cnn=cnn, scaler=scaler)

    # -- prediction ---------------------------------------------------------
    @property
    def labels(self) -> np.ndarray:
        return np.asarray(self.manifest.labels)

    @property
    def n_features(self) -> int:
        return len(self.manifest.feature_schema)

    def predictors(self) -> List[Tuple[str, object]]:
        """(role, predictor) pairs in degrade order: primary first."""
        out: List[Tuple[str, object]] = []
        if self.cnn is not None:
            out.append(("cnn", self.cnn))
        if self.classifier is not None:
            out.append(("classifier", self.classifier))
        return out

    def _classifier_input(self, X: np.ndarray) -> np.ndarray:
        return self.scaler.transform(X) if self.scaler is not None else X

    def predict_proba_with(self, role: str, X: np.ndarray) -> np.ndarray:
        """Probabilities from one named predictor (``cnn``/``classifier``)."""
        X = np.asarray(X, dtype=float)
        if role == "cnn":
            if self.cnn is None:
                raise BundleError(f"bundle {self.manifest.ref} packs no CNN")
            return self.cnn.predict_proba(X)
        if role == "classifier":
            if self.classifier is None:
                raise BundleError(
                    f"bundle {self.manifest.ref} packs no feature classifier"
                )
            return self.classifier.predict_proba(self._classifier_input(X))
        raise ValueError(f"unknown predictor role {role!r}")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Primary predictor's probabilities, degrading to the fallback.

        The server does its own per-request degrade accounting; this is
        the convenience path for offline use.
        """
        roles = self.predictors()
        if not roles:
            raise BundleError("bundle packs no predictor")
        last_exc: Optional[Exception] = None
        for role, _ in roles:
            try:
                return self.predict_proba_with(role, X)
            except Exception as exc:  # noqa: BLE001 - degrade on any model fault
                last_exc = exc
        raise last_exc

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.labels[np.argmax(proba, axis=1)]


# -- member I/O --------------------------------------------------------------


def _bundle_members(bundle: ModelBundle) -> Dict[str, bytes]:
    """Serialise every non-manifest member to bytes."""
    members: Dict[str, bytes] = {}
    if bundle.classifier is not None:
        members[CLASSIFIER_MEMBER] = json.dumps(
            classifier_to_dict(bundle.classifier)
        ).encode()
    if bundle.scaler is not None:
        members[SCALER_MEMBER] = json.dumps(
            scaler_to_dict(bundle.scaler)
        ).encode()
    if bundle.cnn is not None:
        config, weights = _cnn_to_members(bundle.cnn)
        members[CNN_CONFIG_MEMBER] = json.dumps(config).encode()
        members[CNN_WEIGHTS_MEMBER] = weights
    return members


def _is_zip_path(path: Path) -> bool:
    return path.suffix.lower() == ".zip"


def _manifest_bytes(manifest: BundleManifest) -> bytes:
    """The canonical on-disk encoding of a manifest."""
    return json.dumps(manifest.to_dict(), indent=2).encode()


def manifest_sha256(manifest: BundleManifest) -> str:
    """SHA-256 of the manifest's canonical bytes (the provenance pin).

    Equals the hash of the ``manifest.json`` written by
    :func:`save_bundle` for the same (stamped) manifest, so a parent
    pointer recorded at derivation time can be checked against the
    parent artifact on disk at load time.
    """
    return _sha256(_manifest_bytes(manifest))


def save_bundle(bundle: ModelBundle, path: _PathLike) -> BundleManifest:
    """Write a bundle to ``path`` (a directory, or a ``.zip`` archive).

    The manifest is (re)stamped with the SHA-256 of every member as
    written, so a later :func:`load_bundle` can prove integrity.
    Returns the stamped manifest.
    """
    path = Path(path)
    members = _bundle_members(bundle)
    if not members:
        raise BundleError("refusing to save an empty bundle (no predictors)")
    bundle.manifest.members = {
        name: {"sha256": _sha256(data), "bytes": len(data)}
        for name, data in sorted(members.items())
    }
    # A full save is self-contained: never carry a delta pin over from a
    # bundle that was loaded through a delta chain.
    bundle.manifest.delta_base = {}
    manifest_bytes = _manifest_bytes(bundle.manifest)
    if _is_zip_path(path):
        path.parent.mkdir(parents=True, exist_ok=True)
        with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as zf:
            zf.writestr(MANIFEST_MEMBER, manifest_bytes)
            for name, data in sorted(members.items()):
                zf.writestr(name, data)
    else:
        path.mkdir(parents=True, exist_ok=True)
        (path / MANIFEST_MEMBER).write_bytes(manifest_bytes)
        for name, data in members.items():
            (path / name).write_bytes(data)
    return bundle.manifest


def save_delta_bundle(
    bundle: ModelBundle, path: _PathLike, parent: BundleManifest
) -> BundleManifest:
    """Write a *delta* archive shipping only members changed vs ``parent``.

    The child manifest still declares the **full** member set with
    hashes; the archive body contains just the members whose bytes
    differ from (or do not exist in) the parent, plus a ``delta_base``
    pointer pinning the parent by ref and manifest SHA-256. A reader
    needs the parent artifact (via ``parent_resolver``) to materialise
    the bundle, and every byte — parent-sourced or shipped — is verified
    against the child manifest before parsing.
    """
    path = Path(path)
    if not parent.members:
        raise BundleError(
            f"parent manifest {parent.ref} has no stamped member hashes; "
            "save or load the parent bundle first"
        )
    members = _bundle_members(bundle)
    if not members:
        raise BundleError("refusing to save an empty bundle (no predictors)")
    bundle.manifest.members = {
        name: {"sha256": _sha256(data), "bytes": len(data)}
        for name, data in sorted(members.items())
    }
    bundle.manifest.delta_base = {
        "ref": parent.ref,
        "manifest_sha256": manifest_sha256(parent),
    }
    changed = {
        name: data
        for name, data in members.items()
        if str(parent.members.get(name, {}).get("sha256"))
        != bundle.manifest.members[name]["sha256"]
    }
    manifest_bytes = _manifest_bytes(bundle.manifest)
    if _is_zip_path(path):
        path.parent.mkdir(parents=True, exist_ok=True)
        with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as zf:
            zf.writestr(MANIFEST_MEMBER, manifest_bytes)
            for name, data in sorted(changed.items()):
                zf.writestr(name, data)
    else:
        path.mkdir(parents=True, exist_ok=True)
        (path / MANIFEST_MEMBER).write_bytes(manifest_bytes)
        for name, data in changed.items():
            (path / name).write_bytes(data)
    return bundle.manifest


def quantize_bundle(
    bundle: ModelBundle,
    version: str,
    variant: str = "int8",
    name: Optional[str] = None,
) -> ModelBundle:
    """Derive an ``int8``/``distilled-int8`` variant from a float bundle.

    The CNN is fused (BatchNorm folded) and weight-quantised via
    :mod:`repro.nn.quant`; the fallback classifier and scaler are
    carried over unchanged. The new manifest records the variant, the
    per-layer quantisation summary, and a ``parent`` provenance pointer
    to ``bundle`` (pinned by manifest hash when the source manifest has
    stamped members).
    """
    from repro.nn.quant import QMAX, quantize_adapter

    if variant not in ("int8", "distilled-int8"):
        raise BundleError(
            f"unknown quantised variant {variant!r}; "
            f"expected one of {BUNDLE_VARIANTS[1:]}"
        )
    if bundle.cnn is None:
        raise BundleError(
            f"bundle {bundle.manifest.ref} packs no CNN to quantise"
        )
    quantized = quantize_adapter(bundle.cnn)
    derived = ModelBundle.create(
        name=name if name is not None else bundle.manifest.name,
        version=version,
        classifier=bundle.classifier,
        cnn=quantized,
        scaler=bundle.scaler,
        provenance=dict(bundle.manifest.provenance),
        feature_schema=list(bundle.manifest.feature_schema),
    )
    derived.manifest.variant = variant
    derived.manifest.quantization = {
        "scheme": "symmetric-per-output-channel",
        "qmax": QMAX,
        "weight_dtype": "int8",
        "scale_dtype": "float32",
        "layers": quantized.quantization_summary(),
    }
    parent_pointer: Dict[str, object] = {"ref": bundle.manifest.ref}
    if bundle.manifest.members:
        parent_pointer["manifest_sha256"] = manifest_sha256(bundle.manifest)
    derived.manifest.parent = parent_pointer
    return derived


def save_gate_bundle(
    report,
    path: _PathLike,
    name: str = "privacy-gate",
    version: str = "1",
    provenance: Optional[dict] = None,
) -> BundleManifest:
    """Pack a :class:`~repro.attack.privacy_gate.LeakageReport` into a
    versioned, integrity-checked gate bundle (directory or ``.zip``).

    Gate bundles reuse the model-bundle container — same manifest, same
    member hashing, same :func:`verify_bundle` — but pack a single
    ``gate.json`` member (the serialized leakage grid) instead of a
    predictor, and are marked ``provenance["kind"] == "privacy-gate"``.
    ``labels`` carries the grid's task list.
    """
    path = Path(path)
    payload = report.to_payload() if hasattr(report, "to_payload") else dict(report)
    data = json.dumps(payload, indent=2, sort_keys=True).encode()
    merged_provenance = {
        "kind": GATE_KIND,
        "schema": payload.get("schema"),
        "scenarios": dict(payload.get("scenarios", {})),
        "seed": payload.get("seed"),
        "subsample": payload.get("subsample"),
    }
    merged_provenance.update(provenance or {})
    manifest = BundleManifest(
        name=str(name),
        version=str(version),
        labels=[str(t) for t in payload.get("tasks", [])],
        feature_schema=[],
        provenance=merged_provenance,
        created_unix=time.time(),
        members={GATE_MEMBER: {"sha256": _sha256(data), "bytes": len(data)}},
    )
    manifest_bytes = _manifest_bytes(manifest)
    if _is_zip_path(path):
        path.parent.mkdir(parents=True, exist_ok=True)
        with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as zf:
            zf.writestr(MANIFEST_MEMBER, manifest_bytes)
            zf.writestr(GATE_MEMBER, data)
    else:
        path.mkdir(parents=True, exist_ok=True)
        (path / MANIFEST_MEMBER).write_bytes(manifest_bytes)
        (path / GATE_MEMBER).write_bytes(data)
    return manifest


def load_gate_bundle(path: _PathLike):
    """Load a gate bundle; returns ``(manifest, LeakageReport)``.

    Every member hash is verified (:func:`verify_bundle`) before the
    gate payload is parsed — a tampered gate bundle is rejected with
    :class:`BundleIntegrityError` without interpreting a byte of it.
    Model bundles are rejected with :class:`BundleFormatError` (use
    :func:`load_bundle`), as is a gate payload with an unknown schema.
    """
    from repro.attack.privacy_gate import LeakageReport

    path = Path(path)
    manifest, members = verify_bundle(path)
    source = str(path)
    kind = manifest.provenance.get("kind")
    if kind != GATE_KIND:
        raise BundleFormatError(
            f"{source}: not a privacy-gate bundle "
            f"(provenance kind {kind!r}); use load_bundle for model bundles"
        )
    if GATE_MEMBER not in members:
        raise BundleFormatError(f"{source}: gate bundle packs no {GATE_MEMBER}")
    try:
        payload = json.loads(members[GATE_MEMBER].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BundleFormatError(f"{source}: bad {GATE_MEMBER}: {exc}") from exc
    try:
        report = LeakageReport.from_payload(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise BundleFormatError(
            f"{source}: malformed gate payload: {exc}"
        ) from exc
    return manifest, report


def read_manifest(path: _PathLike) -> BundleManifest:
    """The manifest of a bundle artifact, WITHOUT integrity verification.

    For introspection only (e.g. learning a delta parent's ref before
    resolution); never parse model members based on this alone.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no bundle at {path}")
    if _is_zip_path(path) or path.is_file():
        try:
            with zipfile.ZipFile(path) as zf:
                manifest_bytes = zf.read(MANIFEST_MEMBER)
        except (zipfile.BadZipFile, KeyError) as exc:
            raise BundleIntegrityError(
                f"{path}: cannot read {MANIFEST_MEMBER}: {exc}"
            ) from exc
    else:
        member = path / MANIFEST_MEMBER
        if not member.is_file():
            raise BundleIntegrityError(f"{path}: bundle has no {MANIFEST_MEMBER}")
        manifest_bytes = member.read_bytes()
    try:
        payload = json.loads(manifest_bytes.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BundleIntegrityError(
            f"{path}: {MANIFEST_MEMBER} is not valid JSON: {exc}"
        ) from exc
    return BundleManifest.from_dict(payload, source=str(path))


def _read_members(path: Path) -> Dict[str, bytes]:
    """All member bytes of a bundle directory or zip, by member name."""
    if not path.exists():
        raise FileNotFoundError(f"no bundle at {path}")
    if _is_zip_path(path) or path.is_file():
        try:
            with zipfile.ZipFile(path) as zf:
                return {info.filename: zf.read(info) for info in zf.infolist()}
        except zipfile.BadZipFile as exc:
            raise BundleIntegrityError(
                f"{path}: not a readable bundle archive: {exc}"
            ) from exc
    return {
        member.name: member.read_bytes()
        for member in sorted(path.iterdir())
        if member.is_file()
    }


def _verify(
    path: Path,
    parent_resolver: Optional[Callable[[str], _PathLike]],
    depth: int,
) -> Tuple[BundleManifest, Dict[str, bytes], bytes]:
    """Core verification; returns the raw manifest bytes as well."""
    members = _read_members(path)
    manifest_bytes = members.pop(MANIFEST_MEMBER, None)
    if manifest_bytes is None:
        raise BundleIntegrityError(f"{path}: bundle has no {MANIFEST_MEMBER}")
    try:
        manifest_payload = json.loads(manifest_bytes.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BundleIntegrityError(
            f"{path}: {MANIFEST_MEMBER} is not valid JSON: {exc}"
        ) from exc
    manifest = BundleManifest.from_dict(manifest_payload, source=str(path))
    if manifest.delta_base:
        if depth >= DELTA_CHAIN_LIMIT:
            raise BundleFormatError(
                f"{path}: delta-bundle parent chain exceeds "
                f"{DELTA_CHAIN_LIMIT} links"
            )
        ref = str(manifest.delta_base.get("ref", ""))
        expected_parent_sha = str(manifest.delta_base.get("manifest_sha256", ""))
        if not ref or not expected_parent_sha:
            raise BundleFormatError(
                f"{path}: delta_base must carry both 'ref' and "
                "'manifest_sha256'"
            )
        if parent_resolver is None:
            raise BundleIntegrityError(
                f"{path}: delta bundle needs parent {ref} but no "
                "parent_resolver was given (register the parent first, or "
                "pass parent_resolver=)"
            )
        try:
            parent_path = Path(parent_resolver(ref))
        except Exception as exc:
            raise BundleIntegrityError(
                f"{path}: cannot resolve delta parent {ref}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        _, parent_members, parent_manifest_bytes = _verify(
            parent_path, parent_resolver, depth + 1
        )
        parent_sha = _sha256(parent_manifest_bytes)
        if parent_sha != expected_parent_sha:
            raise BundleIntegrityError(
                f"{path}: delta parent {ref} manifest hash mismatch "
                f"(sha256 {parent_sha[:12]}… != pinned "
                f"{expected_parent_sha[:12]}…); the parent artifact is not "
                "the one this delta was built against"
            )
        # Complete the member set from the (verified) parent — only the
        # members the child manifest declares, so a delta can also drop
        # members. The hash check below still runs against the CHILD
        # manifest: parent bytes get no trust carried over.
        for name in manifest.members:
            if name not in members and name in parent_members:
                members[name] = parent_members[name]
    declared = set(manifest.members)
    actual = set(members)
    if actual - declared:
        raise BundleIntegrityError(
            f"{path}: undeclared members {sorted(actual - declared)} "
            "(not covered by the manifest hashes)"
        )
    if declared - actual:
        raise BundleIntegrityError(
            f"{path}: missing members {sorted(declared - actual)}"
        )
    for name in sorted(declared):
        expected = str(manifest.members[name].get("sha256", ""))
        actual_hash = _sha256(members[name])
        if actual_hash != expected:
            raise BundleIntegrityError(
                f"{path}: member {name!r} failed its integrity check "
                f"(sha256 {actual_hash[:12]}… != manifest {expected[:12]}…); "
                "refusing to load a tampered bundle"
            )
    return manifest, members, manifest_bytes


def verify_bundle(
    path: _PathLike,
    parent_resolver: Optional[Callable[[str], _PathLike]] = None,
) -> Tuple[BundleManifest, Dict[str, bytes]]:
    """Read a bundle and prove member integrity; parse no model data.

    Returns ``(manifest, member_bytes)`` once *every* hash checks out.
    Raises :class:`BundleFormatError` for unknown format versions and
    :class:`BundleIntegrityError` for missing, extra, truncated or
    tampered members — before any model byte is interpreted.

    For *delta* bundles, ``parent_resolver(ref)`` must return the
    artifact path of the parent bundle; the parent (itself possibly a
    delta) is verified recursively, its manifest hash is checked against
    the child's ``delta_base`` pin, and the merged member set is then
    verified member-by-member against the child manifest — parent bytes
    get no trust carried over.
    """
    manifest, members, _ = _verify(Path(path), parent_resolver, depth=0)
    return manifest, members


def load_bundle(
    path: _PathLike,
    parent_resolver: Optional[Callable[[str], _PathLike]] = None,
) -> ModelBundle:
    """Load and integrity-check a bundle written by :func:`save_bundle`.

    Hashes are verified for every member before any model is
    instantiated; unknown classifier kinds or CNN kinds are rejected
    with an error naming the bundle. ``parent_resolver`` is required to
    materialise delta bundles (see :func:`verify_bundle`).
    """
    path = Path(path)
    manifest, members = verify_bundle(path, parent_resolver=parent_resolver)
    classifier = None
    scaler = None
    cnn = None
    source = str(path)
    if CLASSIFIER_MEMBER in members:
        try:
            classifier = classifier_from_dict(
                json.loads(members[CLASSIFIER_MEMBER].decode())
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise BundleFormatError(
                f"{source}: bad {CLASSIFIER_MEMBER}: {exc}"
            ) from exc
    if SCALER_MEMBER in members:
        try:
            scaler = scaler_from_dict(json.loads(members[SCALER_MEMBER].decode()))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise BundleFormatError(
                f"{source}: bad {SCALER_MEMBER}: {exc}"
            ) from exc
    if CNN_CONFIG_MEMBER in members or CNN_WEIGHTS_MEMBER in members:
        if not (CNN_CONFIG_MEMBER in members and CNN_WEIGHTS_MEMBER in members):
            raise BundleFormatError(
                f"{source}: CNN members must come as a pair "
                f"({CNN_CONFIG_MEMBER} + {CNN_WEIGHTS_MEMBER})"
            )
        try:
            config = json.loads(members[CNN_CONFIG_MEMBER].decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BundleFormatError(
                f"{source}: bad {CNN_CONFIG_MEMBER}: {exc}"
            ) from exc
        cnn = _cnn_from_members(config, members[CNN_WEIGHTS_MEMBER], source)
    if classifier is None and cnn is None:
        raise BundleFormatError(f"{source}: bundle packs no predictor")
    return ModelBundle(manifest=manifest, classifier=classifier, cnn=cnn,
                       scaler=scaler)
