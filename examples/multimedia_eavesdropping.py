#!/usr/bin/env python
"""Multimedia eavesdropping: profiling emotion in played-back content.

The paper's threat model (Section III-A, scenario c) includes the victim
playing multimedia audio through the loudspeaker — a video call
recording, a voice note, streamed content. The attacker's app sees only
accelerometer samples, yet can build an *emotional profile* of what the
victim listens to over time.

This example simulates a "listening day": a mixed playlist drawn from
the CREMA-D-style corpus is played through a Galaxy S10's loudspeaker in
several sittings. The attacker (a) recovers per-clip emotion predictions
with a classifier trained on their own device-matched recordings, then
(b) aggregates them into the kind of psychographic profile the paper's
introduction warns about.

Run:
    python examples/multimedia_eavesdropping.py
"""

from collections import Counter

import numpy as np

from repro.attack import EmoLeakAttack
from repro.datasets import build_cremad
from repro.ml import LogisticRegression, clean_features
from repro.phone import VibrationChannel


def main() -> None:
    print("EmoLeak: multimedia emotional-profile eavesdropping")
    print("=" * 60)

    corpus = build_cremad(n_clips=1800, seed=2)
    channel = VibrationChannel("galaxys10")
    attack = EmoLeakAttack(channel, seed=3)

    # Attacker-side training data: the attacker records known clips on a
    # matching device (the paper's attacker "can record multiple
    # conversations or multimedia audio files over multiple days").
    train_corpus = corpus.subsample(per_class=100, seed=0)
    train = attack.collect_features(train_corpus)
    X_train, y_train, _ = clean_features(train.X, train.y)
    model = LogisticRegression().fit(X_train, y_train)
    print(f"attacker model trained on {X_train.shape[0]} recovered regions")

    # Victim-side: an unlabeled listening session with a skewed mix —
    # mostly sad and fearful content, which is what the attacker should
    # discover.
    rng = np.random.default_rng(7)
    weights = {"sad": 0.4, "fear": 0.25, "angry": 0.1,
               "happy": 0.1, "neutral": 0.1, "disgust": 0.05}
    train_ids = {s.utterance_id for s in train_corpus.specs}
    pool = [s for s in corpus.specs if s.utterance_id not in train_ids]
    playlist = []
    for spec in pool:
        if rng.random() < weights[spec.emotion]:
            playlist.append(spec)
    playlist = playlist[:150]
    true_mix = Counter(s.emotion for s in playlist)
    print(f"victim playlist: {len(playlist)} clips, true mix {dict(true_mix)}")

    victim = attack.collect_features(corpus, specs=playlist)
    X_victim, _, mask = clean_features(victim.X)
    predictions = model.predict(X_victim)
    predicted_mix = Counter(str(p) for p in predictions)

    print("\nrecovered emotional profile (top-3):")
    total = sum(predicted_mix.values())
    for emotion, count in predicted_mix.most_common(3):
        print(f"  {emotion:<8} {count / total:6.1%}")

    top_true = {e for e, _ in true_mix.most_common(2)}
    top_predicted = {e for e, _ in predicted_mix.most_common(2)}
    overlap = top_true & top_predicted
    print(f"\ntop-2 true emotions      : {sorted(top_true)}")
    print(f"top-2 recovered emotions : {sorted(top_predicted)}")
    print(f"profile agreement        : {len(overlap)}/2 "
          f"({'privacy leak confirmed' if overlap else 'profile missed'})")


if __name__ == "__main__":
    main()
