#!/usr/bin/env python
"""Ear-speaker eavesdropping: emotion from a handheld phone call.

Reproduces the paper's most surprising result (Table VI): even the *ear
speaker* — 36-46 dB SPL, pressed against the head, with the user's hand
and body moving — leaks enough vibration into the accelerometer to
classify the caller's emotion at ~4x the random-guess rate.

The scenario: a victim takes a call on a OnePlus 9 (stereo-capable ear
speaker) while a zero-permission app logs the accelerometer. All audio
is collected as one continuous recording (the paper's protocol), regions
are detected with the 8 Hz high-pass (detection path only!), and the
unfiltered regions feed the classifiers.

Run:
    python examples/ear_speaker_call.py
"""

import numpy as np

from repro.attack import EmoLeakAttack, RegionDetector
from repro.datasets import build_savee
from repro.eval import run_feature_experiment
from repro.phone import VibrationChannel, record_session


def main() -> None:
    print("EmoLeak: ear-speaker / handheld attack")
    print("=" * 60)

    corpus = build_savee(seed=0)
    channel = VibrationChannel("oneplus9", mode="ear_speaker",
                               placement="handheld")
    print(f"victim device : {channel.device.display_name} "
          f"(stereo ear speaker: {channel.device.stereo_ear_speaker})")
    print(f"corpus        : SAVEE, {len(corpus)} utterances, "
          f"{len(corpus.speakers)} speakers")

    # Show why the 8 Hz high-pass matters: record a short session and
    # compare the detector's speech/gap contrast with and without it.
    session = record_session(corpus, channel, specs=corpus.specs[:30], seed=1)
    speech_mask = np.zeros(session.trace.size, dtype=bool)
    for event in session.events:
        speech_mask[int(event.start_s * session.fs):int(event.end_s * session.fs)] = True

    for name, detector in (
        ("raw (no filter) ", RegionDetector(highpass_hz=None)),
        ("8 Hz high-pass  ", RegionDetector.for_setting("handheld")),
    ):
        envelope = detector.detection_signal(session.trace, session.fs)
        contrast = envelope[speech_mask].mean() / envelope[~speech_mask].mean()
        print(f"  detection contrast, {name}: {contrast:.2f}x")

    # Full attack: continuous session over the whole corpus, labelled
    # from the playback log, features extracted from unfiltered regions.
    attack = EmoLeakAttack(channel, seed=2)
    features = attack.collect_features(corpus)
    print(f"regions recovered: {features.X.shape[0]} "
          f"from {features.n_played} utterances")

    for classifier in ("random_forest", "random_subspace"):
        result = run_feature_experiment(features, classifier, seed=0, fast=True)
        print(f"  {result.summary()}")

    print()
    print("Paper Table VI (SAVEE, OnePlus 9): RandomForest 58.40%, "
          "CNN 60.52%, vs 14.28% chance.")


if __name__ == "__main__":
    main()
