#!/usr/bin/env python
"""Visualise the side channel in your terminal (Figs. 2, 3 and 7).

Renders, as ASCII art:

- **Fig. 3**: the raw accelerometer trace of a short table-top playback
  session, where each spoken word appears as a spike on the gravity
  baseline;
- **Fig. 2**: the 32x32 vibration spectrograms of the same carrier
  sentence spoken angrily vs sadly — visibly different textures;
- **Fig. 7**: the feature-CNN training/validation accuracy curves.

Run:
    python examples/visualize_sidechannel.py
"""


from repro.attack import EmoLeakAttack
from repro.datasets import build_tess
from repro.datasets.base import Corpus, UtteranceSpec
from repro.eval import run_feature_experiment
from repro.eval.plots import heatmap, line_plot, multi_line_plot
from repro.phone import VibrationChannel, record_session


def fig3_trace(corpus, channel) -> None:
    print("\n--- Fig. 3: word regions in the raw accelerometer trace ---")
    session = record_session(corpus, channel, specs=corpus.specs[:6],
                             gap_s=0.5, seed=0)
    print(line_plot(session.trace, width=72, height=10,
                    title=f"Z-axis acceleration (m/s^2), "
                          f"{session.duration_s:.1f}s of playback"))


def fig2_spectrograms(corpus, channel) -> None:
    print("\n--- Fig. 2: per-emotion vibration spectrograms ---")
    speaker = sorted(corpus.speakers)[0]
    specs = [
        UtteranceSpec(f"viz-{emotion}", speaker, emotion, seed=42,
                      mean_syllables=4.0, carrier=True)
        for emotion in ("angry", "sad")
    ]
    one_shot = Corpus(
        name="viz",
        emotions=corpus.emotions,
        speakers={speaker: corpus.speakers[speaker]},
        specs=specs,
        expressiveness=corpus.expressiveness,
        variability=0.0,
        audio_fs=corpus.audio_fs,
    )
    dataset = EmoLeakAttack(channel, seed=1).collect_spectrograms(one_shot)
    for image, label in zip(dataset.images, dataset.y):
        print()
        print(heatmap(image[..., 0], max_width=64, max_height=16,
                      title=f"spectrogram: '{label}' "
                            f"(frequency down, time across)"))


def fig7_curves(corpus, channel) -> None:
    print("\n--- Fig. 7: CNN training curves ---")
    features = EmoLeakAttack(channel, seed=2).collect_features(corpus)
    result = run_feature_experiment(features, "cnn", seed=0, fast=True)
    history = result.history
    print(multi_line_plot(
        {"train_acc": history.accuracy, "val_acc": history.val_accuracy},
        width=60, height=10,
        title=f"feature-CNN accuracy per epoch "
              f"(final test accuracy {result.accuracy:.0%})",
    ))


def main() -> None:
    print("EmoLeak side-channel visualisation")
    print("=" * 72)
    corpus = build_tess(words_per_emotion=10, seed=1)
    channel = VibrationChannel("oneplus7t")
    fig3_trace(corpus, channel)
    fig2_spectrograms(corpus, channel)
    fig7_curves(corpus, channel)


if __name__ == "__main__":
    main()
