#!/usr/bin/env python
"""Defense evaluation: how well do proposed mitigations stop EmoLeak?

Section VI-B of the paper discusses mitigations. This example measures
three of them on the TESS / OnePlus 7T / loudspeaker scenario:

1. **Android-12 sampling cap** (200 Hz, already deployed): reduces the
   spectral bandwidth available to the attacker.
2. **Aggressive rate limiting** (50 Hz): what a stricter OS policy buys.
3. **Sensor-side low-frequency isolation**: vibration-absorbing mounting
   modelled as extra chassis attenuation (the paper's hardware
   suggestion).

Run:
    python examples/defense_evaluation.py
"""

from dataclasses import replace

from repro.attack import EmoLeakAttack
from repro.datasets import build_tess
from repro.eval import run_feature_experiment
from repro.phone import VibrationChannel, get_device


def evaluate(channel: VibrationChannel, corpus, label: str) -> float:
    attack = EmoLeakAttack(channel, seed=0)
    features = attack.collect_features(corpus)
    if features.X.shape[0] < 30:
        print(f"  {label:<34} attack fails: "
              f"only {features.X.shape[0]} regions recovered")
        return 0.0
    result = run_feature_experiment(features, "random_forest", seed=0, fast=True)
    print(f"  {label:<34} accuracy {result.accuracy:6.2%} "
          f"({result.gain_over_chance:.1f}x chance), "
          f"extraction {features.extraction_rate:.0%}")
    return result.accuracy


def main() -> None:
    print("EmoLeak defense evaluation (TESS / OnePlus 7T / loudspeaker)")
    print("=" * 60)
    corpus = build_tess(words_per_emotion=25, seed=1)

    baseline = evaluate(VibrationChannel("oneplus7t"), corpus,
                        "no defense (420 Hz)")

    evaluate(VibrationChannel("oneplus7t", sample_rate=200.0), corpus,
             "Android 12 cap (200 Hz)")

    evaluate(VibrationChannel("oneplus7t", sample_rate=50.0), corpus,
             "strict rate limit (50 Hz)")

    # Hardware mitigation: vibration-absorbing sensor mounting, modelled
    # as an 80x weaker conductive path from the speaker to the IMU.
    damped = evaluate(
        VibrationChannel(
            replace(get_device("oneplus7t"),
                    loud_gain=get_device("oneplus7t").loud_gain / 80.0)
        ),
        corpus,
        "damped sensor mount (-38 dB)",
    )

    print()
    print("Takeaway (matching Section VI-B): the deployed 200 Hz cap barely")
    print(f"dents the attack (baseline {baseline:.0%}); even 50 Hz leaves it")
    print(f"far above chance, while mechanical isolation of the IMU drops it")
    print(f"to {damped:.0%} - the decisive defense is hardware, not rate limits.")


if __name__ == "__main__":
    main()
