#!/usr/bin/env python
"""Quickstart: run the EmoLeak attack end to end in under a minute.

Builds a small simulated TESS corpus, plays it through the OnePlus 7T
loudspeaker channel (table-top), detects speech regions in the
accelerometer stream, extracts the paper's Table II features, and trains
a logistic classifier — printing the accuracy next to the random-guess
rate, exactly the comparison the paper's tables make.

Run:
    python examples/quickstart.py
"""

from repro.attack import EmoLeakAttack
from repro.datasets import build_tess
from repro.eval import run_feature_experiment
from repro.phone import VibrationChannel


def main() -> None:
    print("EmoLeak quickstart")
    print("=" * 60)

    # 1. A small TESS-style corpus: 2 speakers x 7 emotions x 15 words.
    corpus = build_tess(words_per_emotion=15, seed=1)
    print(f"corpus: {len(corpus)} utterances, emotions: {corpus.emotions}")

    # 2. The victim device and scenario: OnePlus 7T, loudspeaker at max
    #    volume, phone on a table (the paper's strongest setting).
    channel = VibrationChannel("oneplus7t", mode="loudspeaker",
                               placement="table_top")
    print(f"channel: {channel.device.display_name}, "
          f"accelerometer at {channel.accel_fs:.0f} Hz")

    # 3. Run the attack's collection pipeline: play every utterance,
    #    record the accelerometer, detect speech regions, extract the
    #    24 time/frequency-domain features per region.
    attack = EmoLeakAttack(channel, seed=0)
    features = attack.collect_features(corpus)
    print(f"collected {features.X.shape[0]} feature vectors "
          f"({features.extraction_rate:.0%} of utterances; "
          f"paper reports ~90% table-top)")

    # 4. Train/evaluate with the paper's 80/20 split.
    for classifier in ("logistic", "random_forest"):
        result = run_feature_experiment(features, classifier, seed=0, fast=True)
        print(f"  {result.summary()}")

    print()
    print("The paper's corresponding cell (Table V, OnePlus 7T, Logistic)")
    print("reports 94.52% against a 14.28% random guess.")


if __name__ == "__main__":
    main()
