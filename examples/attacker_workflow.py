#!/usr/bin/env python
"""Full attacker workflow: scarce data, augmentation, training, deployment.

The paper's attacker model has two phases: an offline phase where the
attacker records known audio on matching hardware to train a model, and
a deployment phase where that model classifies the victim's motion
traces. This example runs the whole workflow with the library's
production features:

1. capture a *scarce* training set (the attacker rarely controls much
   recording time);
2. expand it with region-level augmentation;
3. train the paper's feature CNN with early stopping;
4. persist both models (CNN weights to .npz, random forest to JSON);
5. reload them in a fresh "deployed" instance and attack unseen traces.

Run:
    python examples/attacker_workflow.py
"""

import tempfile
from pathlib import Path


from repro.attack import EmoLeakAttack, RegionAugmenter, augmented_feature_dataset
from repro.datasets import build_tess
from repro.eval.experiment import FeatureCNNClassifier
from repro.ml import (
    RandomForest,
    accuracy_score,
    clean_features,
    load_classifier,
    save_classifier,
)
from repro.phone import VibrationChannel


def main() -> None:
    print("EmoLeak attacker workflow")
    print("=" * 60)
    corpus = build_tess(words_per_emotion=25, seed=1)
    channel = VibrationChannel("oneplus7t")

    # --- Phase 1: offline training on scarce attacker recordings -------
    train_corpus = corpus.subsample(per_class=8, seed=3)
    train_ids = {s.utterance_id for s in train_corpus.specs}
    print(f"attacker captures: {len(train_corpus)} utterances "
          f"({len(train_corpus) // 7} per emotion)")

    augmenter = RegionAugmenter(copies=3, seed=3)
    train = augmented_feature_dataset(
        corpus, channel, augmenter, specs=train_corpus.specs, seed=3
    )
    X_train, y_train, _ = clean_features(train.X, train.y)
    print(f"after 3x augmentation: {X_train.shape[0]} training rows")

    forest = RandomForest(n_estimators=30, seed=0)
    forest.fit(X_train, y_train)

    cnn = FeatureCNNClassifier(epochs=60, width_scale=0.5, seed=0)
    cnn.fit(X_train, y_train)
    print(f"feature CNN trained for {len(cnn.history_.loss)} epochs "
          f"(final loss {cnn.history_.loss[-1]:.3f})")

    # --- Phase 2: persist and redeploy ----------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        forest_path = Path(tmp) / "forest.json"
        save_classifier(forest, forest_path)
        deployed_forest = load_classifier(forest_path)
        print(f"forest model persisted: {forest_path.stat().st_size} bytes JSON")

        # --- Phase 3: attack unseen victim traces ----------------------
        victim_specs = [s for s in corpus.specs
                        if s.utterance_id not in train_ids]
        victim = EmoLeakAttack(channel, seed=11).collect_features(
            corpus, specs=victim_specs
        )
        X_victim, y_victim, _ = clean_features(victim.X, victim.y)
        print(f"victim traces: {X_victim.shape[0]} recovered regions")

        for name, model in (("random forest", deployed_forest), ("CNN", cnn)):
            accuracy = accuracy_score(y_victim, model.predict(X_victim))
            print(f"  deployed {name:<13} accuracy {accuracy:6.2%} "
                  f"(chance 14.29%)")


if __name__ == "__main__":
    main()
