"""Tests for the UtteranceBatch container and the batch policy knob."""

import numpy as np
import pytest

from repro.batch import (
    BATCH_DTYPES,
    BatchPolicy,
    UtteranceBatch,
    batch_dtype,
    batch_policy_scope,
    get_batch_policy,
    set_batch_policy,
)


def _ragged(rng, n=5, max_len=200):
    return [rng.normal(size=rng.integers(1, max_len)) for _ in range(n)]


class TestPackUnpack:
    def test_round_trip_is_identity(self, rng):
        rows = _ragged(rng)
        batch = UtteranceBatch.pack(rows, fs=500.0)
        out = batch.unpack()
        assert len(out) == len(rows)
        for a, b in zip(rows, out):
            assert a.tobytes() == b.tobytes()

    def test_row_views_match(self, rng):
        rows = _ragged(rng)
        batch = UtteranceBatch.pack(rows)
        for i, a in enumerate(rows):
            assert batch.row(i).tobytes() == a.tobytes()

    def test_padding_is_zero(self, rng):
        batch = UtteranceBatch.pack(_ragged(rng))
        batch.check_padding()
        for i in range(len(batch)):
            tail = batch.data[i, int(batch.lengths[i]):]
            assert not tail.size or not np.any(tail)

    def test_empty_batch(self):
        batch = UtteranceBatch.pack([])
        assert len(batch) == 0
        assert batch.unpack() == []
        assert batch.dtype == np.float64

    def test_zero_length_row(self):
        batch = UtteranceBatch.pack([np.ones(3), np.empty(0)])
        assert batch.row(1).size == 0
        assert batch.unpack()[1].size == 0

    def test_rejects_2d_rows(self):
        with pytest.raises(ValueError, match="row 1 must be 1-D"):
            UtteranceBatch.pack([np.ones(3), np.ones((2, 2))])

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError, match="lengths"):
            UtteranceBatch(data=np.zeros((2, 4)), lengths=np.array([1, 5]))
        with pytest.raises(ValueError, match="lengths"):
            UtteranceBatch(data=np.zeros((2, 4)), lengths=np.array([1]))

    def test_min_cols_pads_without_changing_rows(self, rng):
        rows = _ragged(rng, max_len=50)
        a = UtteranceBatch.pack(rows)
        b = UtteranceBatch.pack(rows, min_cols=500)
        assert b.max_len == 500
        for i in range(len(a)):
            assert a.row(i).tobytes() == b.row(i).tobytes()


class TestTransforms:
    def test_padded_to_preserves_rows(self, rng):
        batch = UtteranceBatch.pack(_ragged(rng))
        wide = batch.padded_to(batch.max_len + 173)
        assert wide.max_len == batch.max_len + 173
        wide.check_padding()
        for a, b in zip(batch.unpack(), wide.unpack()):
            assert a.tobytes() == b.tobytes()

    def test_padded_to_noop_when_narrower(self, rng):
        batch = UtteranceBatch.pack(_ragged(rng))
        assert batch.padded_to(1) is batch

    def test_permuted(self, rng):
        rows = _ragged(rng, n=6)
        batch = UtteranceBatch.pack(rows)
        order = [3, 1, 5, 0, 4, 2]
        perm = batch.permuted(order)
        for out_i, src_i in enumerate(order):
            assert perm.row(out_i).tobytes() == rows[src_i].tobytes()

    def test_permuted_rejects_non_permutation(self, rng):
        batch = UtteranceBatch.pack(_ragged(rng, n=3))
        with pytest.raises(ValueError, match="permutation"):
            batch.permuted([0, 0, 2])

    def test_astype(self, rng):
        batch = UtteranceBatch.pack(_ragged(rng))
        cast = batch.astype(np.float32)
        assert cast.dtype == np.float32
        assert batch.dtype == np.float64  # original untouched
        for a, b in zip(batch.unpack(), cast.unpack()):
            np.testing.assert_array_equal(a.astype(np.float32), b)


class TestBatchPolicy:
    def test_default_is_golden_float64(self):
        policy = get_batch_policy()
        assert policy.is_golden
        assert batch_dtype() == np.float64

    def test_scope_sets_and_restores(self):
        before = get_batch_policy()
        with batch_policy_scope(compute_dtype="float32") as policy:
            assert policy.compute_dtype == np.float32
            assert not policy.is_golden
            assert batch_dtype() == np.float32
        assert get_batch_policy() is before
        assert batch_dtype() == np.float64

    def test_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with batch_policy_scope(compute_dtype="float32"):
                raise RuntimeError("boom")
        assert batch_dtype() == np.float64

    def test_set_policy_rejects_unknown_dtype(self):
        with pytest.raises((ValueError, TypeError)):
            set_batch_policy(compute_dtype="float16")
        assert batch_dtype() == np.float64

    def test_dtype_registry(self):
        assert set(BATCH_DTYPES) == {"float32", "float64"}
        assert BatchPolicy("float32").compute_dtype == np.float32
