"""Fault injection for the batched pipeline: per-row isolation.

A poisoned utterance (NaN audio) must not take down its batchmates: the
stacked fast path fails for the whole chunk, the chunk degrades to
per-row processing, the poisoned row alone is dropped, and every healthy
row keeps its byte-identical product. The books must still balance —
fallbacks and isolated rows are counted, spans carry their statuses, and
a cache in front of the pass stays coherent.
"""

import numpy as np
import pytest

from repro.attack.engine import (
    CollectionCache,
    collect_datasets,
    reset_global_stats,
)
from repro.attack.regions import RegionDetector
from repro.obs import metrics, reset_observability, tracer


class PoisonedCorpus:
    """Delegating corpus whose selected utterances render as NaN audio."""

    def __init__(self, corpus, poisoned_ids):
        self._corpus = corpus
        self._poisoned = set(poisoned_ids)

    def __getattr__(self, name):
        return getattr(self._corpus, name)

    def _poison(self, spec, audio):
        if spec.utterance_id in self._poisoned:
            bad = np.array(audio, copy=True)
            bad[:] = np.nan
            return bad
        return audio

    def render(self, spec):
        return self._poison(spec, self._corpus.render(spec))

    def render_batch(self, specs):
        return [
            self._poison(spec, audio)
            for spec, audio in zip(specs, self._corpus.render_batch(specs))
        ]


class TestRowIsolation:
    def test_poisoned_row_does_not_corrupt_batchmates(
        self, tiny_tess, loud_channel
    ):
        specs = tiny_tess.specs[:8]
        clean = collect_datasets(
            tiny_tess, loud_channel, specs=specs, seed=4, pipeline="batched"
        )
        poisoned_id = specs[3].utterance_id
        bad_corpus = PoisonedCorpus(tiny_tess, [poisoned_id])

        reset_observability()
        dirty = collect_datasets(
            bad_corpus, loud_channel, specs=specs, seed=4,
            pipeline="batched", batch_chunk=8,
        )

        # Exactly the poisoned row is missing; all survivors are
        # byte-identical to the clean pass.
        assert dirty.features.X.shape[0] == clean.features.X.shape[0] - 1
        keep = [i for i, s in enumerate(specs) if s.utterance_id != poisoned_id]
        # Clean pass extracted one row per spec here, in spec order.
        assert clean.features.X.shape[0] == len(specs)
        assert dirty.features.X.tobytes() == clean.features.X[keep].tobytes()
        assert dirty.spectrograms.images.tobytes() == (
            clean.spectrograms.images[keep].tobytes()
        )

        # The degradation is accounted: one chunk fell back, one row was
        # isolated.
        reg = metrics()
        assert reg.counter_total("batch.chunk_fallbacks") == 1
        assert reg.counter_total("batch.rows_isolated") == 1

    def test_only_poisoned_chunk_degrades(self, tiny_tess, loud_channel):
        specs = tiny_tess.specs[:8]
        bad_corpus = PoisonedCorpus(tiny_tess, [specs[5].utterance_id])
        reset_observability()
        collect_datasets(
            bad_corpus, loud_channel, specs=specs, seed=4,
            pipeline="batched", batch_chunk=4,  # rows 0-3 clean, 4-7 poisoned
        )
        reg = metrics()
        assert reg.counter_total("batch.chunk_fallbacks") == 1
        assert reg.counter_total("batch.rows_isolated") == 1

    def test_spans_balanced_after_fallback(self, tiny_tess, loud_channel):
        specs = tiny_tess.specs[:6]
        bad_corpus = PoisonedCorpus(tiny_tess, [specs[0].utterance_id])
        reset_observability()
        result = collect_datasets(
            bad_corpus, loud_channel, specs=specs, seed=4,
            pipeline="batched", batch_chunk=6,
        )
        assert result.features.X.shape[0] == len(specs) - 1
        # The pass completed: the collect span closed "ok", and every
        # recorded span carries a terminal status.
        (collect_span,) = tracer().find("collect")
        assert collect_span.status == "ok"
        for name in ("render", "transmit", "detect", "product"):
            for span in tracer().find(name):
                assert span.status in ("ok", "error")
        # The failed batched attempt recorded its own detect time.
        assert metrics().timer("detect", status="error").count >= 1

    def test_counters_count_only_successful_rows(self, tiny_tess, loud_channel):
        specs = tiny_tess.specs[:6]
        bad_corpus = PoisonedCorpus(tiny_tess, [specs[2].utterance_id])
        reset_global_stats()
        result = collect_datasets(
            bad_corpus, loud_channel, specs=specs, seed=4,
            pipeline="batched", batch_chunk=6,
        )
        # The isolated row never completed transmit/detect, so per-row
        # counters reflect the survivors only; n_played still counts the
        # whole pass.
        assert result.stats.transmits == len(specs) - 1
        assert result.stats.renders == len(specs) - 1
        assert result.stats.n_played == len(specs)

    def test_cache_stays_coherent_after_fallback(self, tiny_tess, loud_channel):
        specs = tiny_tess.specs[:6]
        bad_corpus = PoisonedCorpus(tiny_tess, [specs[1].utterance_id])
        cache = CollectionCache()
        first = collect_datasets(
            bad_corpus, loud_channel, specs=specs, seed=4,
            pipeline="batched", batch_chunk=3, cache=cache,
        )
        assert cache.misses == 1
        again = collect_datasets(
            bad_corpus, loud_channel, specs=specs, seed=4,
            pipeline="batched", batch_chunk=3, cache=cache,
        )
        assert cache.hits == 1
        assert again.features.X.tobytes() == first.features.X.tobytes()


class TestNoRegions:
    def test_empty_detection_is_graceful(self, tiny_tess, loud_channel):
        # A detector that never fires: the batched pass must return
        # empty datasets with the full play count, not crash.
        detector = RegionDetector(threshold_factor=1e9, min_peak_ratio=1e9)
        specs = tiny_tess.specs[:5]
        result = collect_datasets(
            tiny_tess, loud_channel, specs=specs, seed=4,
            detector=detector, pipeline="batched",
        )
        assert result.features.X.shape == (0, 24)
        assert result.spectrograms.images.shape[0] == 0
        assert result.features.n_played == len(specs)
        assert result.stats.regions_used == 0
