"""End-to-end parity: the batched pipeline vs the per-utterance reference.

Under the golden float64 batch policy, ``collect_datasets`` must return
byte-identical datasets from either pipeline, at any chunk size and
under any executor. This is the tentpole contract: the batched data
plane is a pure reorganisation of the work, not a numerical variant.
"""

import numpy as np
import pytest

from repro.attack.engine import (
    DEFAULT_BATCH_CHUNK,
    DEFAULT_PIPELINE,
    PIPELINES,
    collect_datasets,
)
from repro.attack.pipeline import EmoLeakAttack


def _bytes(result):
    return (
        result.features.X.tobytes(),
        result.features.y.tolist(),
        result.spectrograms.images.tobytes(),
        result.spectrograms.y.tolist(),
    )


@pytest.fixture(scope="module")
def reference(request):
    tiny_tess = request.getfixturevalue("tiny_tess")
    loud_channel = request.getfixturevalue("loud_channel")
    specs = tiny_tess.specs[:12]
    result = collect_datasets(
        tiny_tess, loud_channel, specs=specs, seed=4, pipeline="per_utterance"
    )
    return specs, result


class TestPipelineDispatch:
    def test_defaults(self):
        assert DEFAULT_PIPELINE == "batched"
        assert set(PIPELINES) == {"batched", "per_utterance"}
        assert DEFAULT_BATCH_CHUNK >= 1

    def test_unknown_pipeline_rejected(self, tiny_tess, loud_channel):
        with pytest.raises(ValueError, match="pipeline"):
            collect_datasets(
                tiny_tess,
                loud_channel,
                specs=tiny_tess.specs[:2],
                pipeline="vectorised",
            )

    def test_dash_alias(self, tiny_tess, loud_channel, reference):
        specs, ref = reference
        got = collect_datasets(
            tiny_tess, loud_channel, specs=specs, seed=4, pipeline="per-utterance"
        )
        assert _bytes(got) == _bytes(ref)


class TestBatchedParity:
    @pytest.mark.parametrize("chunk", [1, 3, 64])
    def test_byte_identical_at_any_chunk_size(
        self, tiny_tess, loud_channel, reference, chunk
    ):
        specs, ref = reference
        got = collect_datasets(
            tiny_tess,
            loud_channel,
            specs=specs,
            seed=4,
            pipeline="batched",
            batch_chunk=chunk,
        )
        assert _bytes(got) == _bytes(ref)

    @pytest.mark.parametrize(
        "executor,n_jobs", [("serial", 1), ("thread", 3), ("process", 2)]
    )
    def test_byte_identical_under_any_executor(
        self, tiny_tess, loud_channel, reference, executor, n_jobs
    ):
        specs, ref = reference
        got = collect_datasets(
            tiny_tess,
            loud_channel,
            specs=specs,
            seed=4,
            pipeline="batched",
            batch_chunk=4,  # several chunks so the pool actually fans out
            executor=executor,
            n_jobs=n_jobs,
        )
        assert _bytes(got) == _bytes(ref)

    def test_default_pipeline_is_batched_and_identical(
        self, tiny_tess, loud_channel, reference
    ):
        specs, ref = reference
        got = collect_datasets(tiny_tess, loud_channel, specs=specs, seed=4)
        assert _bytes(got) == _bytes(ref)

    def test_counters_match_reference(self, tiny_tess, loud_channel, reference):
        specs, ref = reference
        got = collect_datasets(
            tiny_tess,
            loud_channel,
            specs=specs,
            seed=4,
            pipeline="batched",
            batch_chunk=5,
        )
        for field in ("renders", "transmits", "regions_detected", "regions_used",
                      "n_played"):
            assert getattr(got.stats, field) == getattr(ref.stats, field)

    def test_handheld_per_utterance_protocol(self, tiny_tess, ear_channel):
        # Handheld + continuous=False exercises the per-item channel
        # clones inside the batched transmit stage.
        specs = tiny_tess.specs[:6]
        ref = collect_datasets(
            tiny_tess, ear_channel, specs=specs, seed=2,
            continuous=False, pipeline="per_utterance",
        )
        got = collect_datasets(
            tiny_tess, ear_channel, specs=specs, seed=2,
            continuous=False, pipeline="batched", batch_chunk=2,
        )
        assert _bytes(got) == _bytes(ref)

    def test_continuous_ignores_pipeline(self, tiny_tess, ear_channel):
        specs = tiny_tess.specs[:4]
        ref = collect_datasets(
            tiny_tess, ear_channel, specs=specs, seed=2, pipeline="per_utterance"
        )
        got = collect_datasets(
            tiny_tess, ear_channel, specs=specs, seed=2, pipeline="batched"
        )
        assert _bytes(got) == _bytes(ref)


class TestAttackObjectPassThrough:
    def test_pipeline_knob_reaches_engine(self, tiny_tess, loud_channel, reference):
        specs, ref = reference
        attack = EmoLeakAttack(
            loud_channel, seed=4, pipeline="batched", batch_chunk=3
        )
        features = attack.collect_features(tiny_tess, specs=specs)
        assert features.X.tobytes() == ref.features.X.tobytes()
        both = attack.collect_datasets(tiny_tess, specs=specs)
        assert _bytes(both) == _bytes(ref)
