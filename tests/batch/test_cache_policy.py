"""Regression: CollectionCache keys must include the batch-policy dtype.

A float32 hot-path pass and a float64 golden pass produce different
arrays; if they shared a cache key, whichever ran first would poison the
other. ``collection_key`` folds the active compute dtype into the
digest, with ``None`` normalising to ``"float64"`` so the golden batched
pipeline still shares entries with the per-utterance reference (they are
byte-identical).
"""

import numpy as np

from repro.attack.engine import (
    CollectionCache,
    collect_datasets,
    collection_key,
    _default_detector,
)
from repro.batch import batch_policy_scope


class TestCollectionKeyDtype:
    def test_float64_is_the_default_key(self, tiny_tess, loud_channel):
        detector = _default_detector(loud_channel)
        specs = tiny_tess.specs[:3]
        base = collection_key(
            tiny_tess, loud_channel, specs, detector, False, 0
        )
        explicit = collection_key(
            tiny_tess, loud_channel, specs, detector, False, 0,
            batch_dtype="float64",
        )
        assert base == explicit

    def test_float32_keys_separately(self, tiny_tess, loud_channel):
        detector = _default_detector(loud_channel)
        specs = tiny_tess.specs[:3]
        golden = collection_key(
            tiny_tess, loud_channel, specs, detector, False, 0,
            batch_dtype="float64",
        )
        hot = collection_key(
            tiny_tess, loud_channel, specs, detector, False, 0,
            batch_dtype="float32",
        )
        assert golden != hot
        # Same readable prefix, different digest.
        assert golden.rsplit("-", 1)[0] == hot.rsplit("-", 1)[0]


class TestCrossPolicyCache:
    def test_policy_change_misses_and_recollects(self, tiny_tess, loud_channel):
        specs = tiny_tess.specs[:6]
        cache = CollectionCache()

        golden = collect_datasets(
            tiny_tess, loud_channel, specs=specs, seed=4,
            pipeline="batched", cache=cache,
        )
        assert cache.misses == 1 and cache.hits == 0
        assert golden.features.X.dtype == np.float64

        # Warm float64 cache must NOT serve the float32 policy.
        with batch_policy_scope(compute_dtype="float32"):
            hot = collect_datasets(
                tiny_tess, loud_channel, specs=specs, seed=4,
                pipeline="batched", cache=cache,
            )
        assert cache.misses == 2 and cache.hits == 0
        assert hot.features.X.dtype == np.float32
        assert hot.spectrograms.images.dtype == np.float32

        # Each policy now hits its own entry.
        again = collect_datasets(
            tiny_tess, loud_channel, specs=specs, seed=4,
            pipeline="batched", cache=cache,
        )
        assert cache.hits == 1
        assert again.features.X.tobytes() == golden.features.X.tobytes()
        with batch_policy_scope(compute_dtype="float32"):
            hot_again = collect_datasets(
                tiny_tess, loud_channel, specs=specs, seed=4,
                pipeline="batched", cache=cache,
            )
        assert cache.hits == 2
        assert hot_again.features.X.tobytes() == hot.features.X.tobytes()

    def test_hot_path_is_tolerance_close(self, tiny_tess, loud_channel):
        specs = tiny_tess.specs[:6]
        golden = collect_datasets(
            tiny_tess, loud_channel, specs=specs, seed=4, pipeline="batched"
        )
        with batch_policy_scope(compute_dtype="float32"):
            hot = collect_datasets(
                tiny_tess, loud_channel, specs=specs, seed=4, pipeline="batched"
            )
        # Same rows (region boundaries always run float64)...
        assert list(hot.features.y) == list(golden.features.y)
        assert hot.features.X.shape == golden.features.X.shape
        # ...with single-precision products close to the golden numerics.
        np.testing.assert_allclose(
            hot.features.X, golden.features.X.astype(np.float32),
            rtol=2e-3, atol=2e-3,
        )
        np.testing.assert_allclose(
            hot.spectrograms.images,
            golden.spectrograms.images.astype(np.float32),
            rtol=5e-3, atol=5e-3,
        )

    def test_per_utterance_pipeline_ignores_policy(self, tiny_tess, loud_channel):
        specs = tiny_tess.specs[:4]
        ref = collect_datasets(
            tiny_tess, loud_channel, specs=specs, seed=4,
            pipeline="per_utterance",
        )
        with batch_policy_scope(compute_dtype="float32"):
            got = collect_datasets(
                tiny_tess, loud_channel, specs=specs, seed=4,
                pipeline="per_utterance",
            )
        assert got.features.X.tobytes() == ref.features.X.tobytes()
